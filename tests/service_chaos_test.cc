/// Chaos suite for the fault-tolerant linkage service: every test runs a
/// real daemon over 127.0.0.1 with deterministic injected faults and
/// checks that the *outcome* — clusters, summaries, metered byte totals —
/// is byte-identical to a clean run, that the quorum option degrades
/// gracefully, that overload is shed with kBusy instead of stalls, and
/// that the TTL sweeper reclaims abandoned sessions.

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "net/frame.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace pprl {
namespace {

ClkEncoder SharedEncoder() {
  PipelineConfig config;
  return ClkEncoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
}

std::vector<Cluster> Sorted(std::vector<Cluster> clusters) {
  for (Cluster& c : clusters) std::sort(c.begin(), c.end());
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

/// Generates a small multi-owner scenario and encodes each database once,
/// so chaos and clean paths ship identical bytes.
std::vector<DatabaseOwner> MakeOwners(const std::vector<std::string>& names,
                                      size_t records_per_database) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = records_per_database;
  scenario.num_databases = names.size();
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  EXPECT_TRUE(dbs.ok());
  const ClkEncoder encoder = SharedEncoder();
  std::vector<DatabaseOwner> owners;
  for (size_t d = 0; d < names.size(); ++d) {
    owners.emplace_back(names[d], (*dbs)[d]);
    EXPECT_TRUE(owners[d].Encode(encoder).ok());
  }
  return owners;
}

uint64_t CounterValue(const std::string& name) {
  return obs::GlobalMetrics().GetCounter(name, "").value();
}

uint64_t CounterValue(const std::string& name, const std::string& label,
                      const std::string& value) {
  return obs::GlobalMetrics().GetCounter(name, "", {{label, value}}).value();
}

/// Waits until `server` has registered `count` owners (stagger helper).
void AwaitRegistrations(const LinkageUnitServer& server, size_t count, int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (server.owner_order().size() < count &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.owner_order().size(), count) << "owner never registered";
}

/// The headline chaos test: with the server killing and delaying sockets
/// at random (seeded) and every client connection hard-closed at a byte
/// point that guarantees a mid-shipment cut, the linkage must still
/// converge — producing byte-identical clusters, summaries and metered
/// shipment totals as a clean in-process run, with retransmitted spans
/// counted exactly once on both sides of the wire.
TEST(ServiceChaosTest, ChaosResumeMatchesCleanRun) {
  const std::vector<std::string> names = {"owner-a", "owner-b", "owner-c"};
  std::vector<DatabaseOwner> owners = MakeOwners(names, 80);
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;

  // Clean reference: the in-process channel path.
  Channel local_channel;
  LinkageUnitService local_unit("lu");
  LocalLinkageUnitSink sink(local_channel, local_unit);
  for (auto& owner : owners) ASSERT_TRUE(owner.ShipEncodings(sink).ok());
  auto local_result = local_unit.Link(options);
  ASSERT_TRUE(local_result.ok());

  const uint64_t resumed_before = CounterValue("pprl_session_resumed_total");
  const uint64_t close_faults_before =
      CounterValue("pprl_faults_injected_total", "kind", "close");
  const uint64_t io_retries_before = CounterValue("pprl_retries_total", "reason", "io");

  // Chaos run: server-side random close/delay on every accepted socket,
  // client-side deterministic hard close after 5000 sent bytes — less
  // than any owner's shipment, so every owner is forced through at least
  // one resume.
  LinkageUnitServerConfig server_config;
  server_config.name = "lu";
  server_config.expected_owners = 3;
  server_config.link_options = options;
  server_config.io_timeout_ms = 5000;
  server_config.accept_poll_ms = 20;
  server_config.chaos.seed = 42;
  server_config.chaos.close_rate = 0.02;
  server_config.chaos.delay_rate = 0.05;
  server_config.chaos.delay_ms = 1;
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  Channel client_channel;
  std::vector<std::thread> sessions;
  std::vector<Status> session_status(3, Status::OK());
  std::vector<OwnerLinkageSummary> summaries(3);
  std::vector<size_t> client_retries(3, 0);
  for (size_t d = 0; d < 3; ++d) {
    AwaitRegistrations(server, d, 30000);
    sessions.emplace_back([&, d] {
      RemoteOwnerClientConfig config;
      config.port = server.port();
      config.server_label = "lu";
      config.chunk_bytes = 1500;
      config.fault.seed = 1000 + d;
      config.fault.close_after_bytes_sent = 5000;
      config.retry.max_attempts = 40;
      config.retry.backoff_initial_ms = 5;
      config.retry.backoff_max_ms = 50;
      config.retry.jitter_seed = 11 + d;
      config.retry.deadline_ms = 60000;
      RemoteOwnerClient client(config, &client_channel);
      session_status[d] = owners[d].ShipEncodings(client);
      if (client.summary().has_value()) summaries[d] = *client.summary();
      client_retries[d] = client.retries();
    });
  }
  for (auto& t : sessions) t.join();
  ASSERT_TRUE(server.WaitUntilDone(30000).ok());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_TRUE(session_status[d].ok())
        << names[d] << ": " << session_status[d].ToString();
    EXPECT_GT(client_retries[d], 0u)
        << names[d] << " was never cut — the fault injector is not firing";
  }
  ASSERT_EQ(server.owner_order(), names);

  // Byte-identical outcome despite the faults.
  auto remote_result = server.result();
  ASSERT_TRUE(remote_result.ok());
  EXPECT_EQ(Sorted(remote_result->clusters), Sorted(local_result->clusters));
  EXPECT_EQ(remote_result->edges.size(), local_result->edges.size());
  EXPECT_EQ(remote_result->comparisons, local_result->comparisons);
  for (uint32_t d = 0; d < 3; ++d) {
    const OwnerLinkageSummary expected = SummarizeForOwner(*local_result, d);
    EXPECT_EQ(summaries[d].matches, expected.matches) << names[d];
    EXPECT_EQ(summaries[d].comparisons, expected.comparisons);
    EXPECT_EQ(summaries[d].total_clusters, expected.total_clusters);
    EXPECT_EQ(summaries[d].owners_linked, 3u);
    EXPECT_EQ(summaries[d].owners_expected, 3u);
    EXPECT_FALSE(summaries[d].degraded());
  }

  // Retransmitted spans are metered exactly once on both sides: the cost
  // columns under chaos equal the clean in-process totals to the byte.
  const auto local_bytes = local_channel.bytes_by_tag();
  EXPECT_EQ(server.channel().bytes_by_tag().at("encoded-filters"),
            local_bytes.at("encoded-filters"));
  EXPECT_EQ(client_channel.bytes_by_tag().at("encoded-filters"),
            local_bytes.at("encoded-filters"));

  // The fault machinery actually ran: sessions were resumed, faults were
  // injected, retries were counted.
  EXPECT_GT(CounterValue("pprl_session_resumed_total"), resumed_before);
  EXPECT_GT(CounterValue("pprl_faults_injected_total", "kind", "close"),
            close_faults_before);
  EXPECT_GT(CounterValue("pprl_retries_total", "reason", "io"), io_retries_before);

  server.Stop();
}

/// The quorum option: with min_owners = 2 of 3 expected and one owner
/// permanently missing, the unit links after the quiet period and every
/// summary is flagged degraded — matching a clean two-owner run.
TEST(ServiceChaosTest, QuorumProceedsWithoutStraggler) {
  const std::vector<std::string> names = {"owner-a", "owner-b", "owner-c"};
  std::vector<DatabaseOwner> owners = MakeOwners(names, 60);
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;

  // Clean reference: the two present owners, in process.
  Channel local_channel;
  LinkageUnitService local_unit("lu");
  LocalLinkageUnitSink sink(local_channel, local_unit);
  ASSERT_TRUE(owners[0].ShipEncodings(sink).ok());
  ASSERT_TRUE(owners[1].ShipEncodings(sink).ok());
  auto local_result = local_unit.Link(options);
  ASSERT_TRUE(local_result.ok());

  const uint64_t degraded_before = CounterValue("pprl_service_degraded_linkages_total");

  LinkageUnitServerConfig server_config;
  server_config.name = "lu";
  server_config.expected_owners = 3;
  server_config.min_owners = 2;
  server_config.quorum_wait_ms = 300;
  server_config.accept_poll_ms = 50;
  server_config.link_options = options;
  server_config.io_timeout_ms = 5000;
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::thread> sessions;
  std::vector<Status> session_status(2, Status::OK());
  std::vector<OwnerLinkageSummary> summaries(2);
  for (size_t d = 0; d < 2; ++d) {
    AwaitRegistrations(server, d, 15000);
    sessions.emplace_back([&, d] {
      RemoteOwnerClientConfig config;
      config.port = server.port();
      config.server_label = "lu";
      RemoteOwnerClient client(config);
      session_status[d] = owners[d].ShipEncodings(client);
      if (client.summary().has_value()) summaries[d] = *client.summary();
    });
  }
  // owner-c never shows up. After quorum_wait_ms of quiet the unit links
  // with the two owners it has.
  for (auto& t : sessions) t.join();
  ASSERT_TRUE(server.WaitUntilDone(15000).ok());
  EXPECT_TRUE(server.linkage_degraded());
  ASSERT_EQ(server.owner_order(),
            (std::vector<std::string>{"owner-a", "owner-b"}));

  auto remote_result = server.result();
  ASSERT_TRUE(remote_result.ok());
  EXPECT_EQ(Sorted(remote_result->clusters), Sorted(local_result->clusters));
  EXPECT_EQ(remote_result->comparisons, local_result->comparisons);
  for (uint32_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(session_status[d].ok()) << session_status[d].ToString();
    const OwnerLinkageSummary expected = SummarizeForOwner(*local_result, d);
    EXPECT_EQ(summaries[d].matches, expected.matches);
    EXPECT_EQ(summaries[d].owners_linked, 2u);
    EXPECT_EQ(summaries[d].owners_expected, 3u);
    EXPECT_TRUE(summaries[d].degraded()) << "partial result must be flagged";
  }
  EXPECT_EQ(CounterValue("pprl_service_degraded_linkages_total"), degraded_before + 1);

  server.Stop();
}

/// Overload shedding: with the session limit exhausted, new arrivals get
/// a typed kBusy frame (counted in pprl_shed_total) instead of a stalled
/// or dropped connection.
TEST(ServiceChaosTest, OverloadShedsWithBusy) {
  LinkageUnitServerConfig server_config;
  server_config.expected_owners = 2;
  server_config.max_sessions = 1;
  server_config.busy_retry_after_ms = 20;
  server_config.accept_poll_ms = 20;
  server_config.io_timeout_ms = 10000;  // the stalled slot stays held
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  // Occupy the single session slot with a connection that never speaks.
  ConnectOptions stall_options;
  stall_options.io_timeout_ms = 10000;
  auto stall = TcpConnection::Connect("127.0.0.1", server.port(), stall_options);
  ASSERT_TRUE(stall.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const uint64_t shed_before = CounterValue("pprl_shed_total", "reason", "sessions");

  EncodedDatabase shipment;
  shipment.ids = {1, 2};
  shipment.filters = {BitVector(64), BitVector(64)};
  shipment.filters[0].Set(3);

  RemoteOwnerClientConfig config;
  config.port = server.port();
  config.retry.max_attempts = 3;
  config.retry.backoff_initial_ms = 5;
  config.retry.deadline_ms = 5000;
  RemoteOwnerClient client(config);
  auto result = client.ShipAndAwait("owner-b", shipment);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("busy"), std::string::npos)
      << result.status().ToString();
  EXPECT_GE(CounterValue("pprl_shed_total", "reason", "sessions"), shed_before + 3)
      << "every shed attempt must be counted";

  (*stall)->Close();
  server.Stop();
}

/// TTL sweep: a session abandoned mid-shipment is reclaimed after its
/// idle TTL — the buffer reservation is released, the expiry is counted,
/// a later kResume gets kNotFound, and the owner can start over.
TEST(ServiceChaosTest, TtlSweepExpiresAbandonedSessions) {
  LinkageUnitServerConfig server_config;
  server_config.name = "lu";
  server_config.expected_owners = 2;
  server_config.session_ttl_ms = 150;
  server_config.accept_poll_ms = 30;
  server_config.io_timeout_ms = 5000;
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  // ~640-byte shipment, 128-byte chunks; the client is hard-closed after
  // 400 sent bytes with no retry — leaving a partial, unattached session.
  EncodedDatabase shipment;
  for (uint64_t i = 0; i < 40; ++i) {
    shipment.ids.push_back(100 + i);
    BitVector filter(64);
    filter.Set(i % 64);
    shipment.filters.push_back(std::move(filter));
  }

  const uint64_t expired_before = CounterValue("pprl_session_expired_total");
  {
    RemoteOwnerClientConfig config;
    config.port = server.port();
    config.chunk_bytes = 128;
    config.fault.seed = 9;
    config.fault.close_after_bytes_sent = 400;
    config.retry.max_attempts = 1;
    RemoteOwnerClient abandoned(config);
    auto result = abandoned.ShipAndAwait("owner-a", shipment);
    ASSERT_FALSE(result.ok()) << "the injected cut should have failed delivery";
  }

  // The sweeper runs on the accept thread's poll cadence.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (CounterValue("pprl_session_expired_total") == expired_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(CounterValue("pprl_session_expired_total"), expired_before + 1)
      << "abandoned session was never swept";

  // Resuming the swept session (the server's first id is 1) is answered
  // with a decodable kNotFound error, telling the owner to start over.
  ConnectOptions options;
  options.io_timeout_ms = 5000;
  auto conn = TcpConnection::Connect("127.0.0.1", server.port(), options);
  ASSERT_TRUE(conn.ok());
  ResumeMessage resume;
  resume.protocol_version = kWireProtocolVersion;
  resume.party = "owner-a";
  resume.session_id = 1;
  Frame frame;
  frame.type = static_cast<uint8_t>(MessageType::kResume);
  frame.payload = EncodeResume(resume);
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  ASSERT_TRUE((*conn)->Write(bytes.data(), bytes.size()).ok());
  FrameReader reader(**conn);
  auto reply = reader.ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  ASSERT_EQ(reply->type, static_cast<uint8_t>(MessageType::kError));
  auto error = DecodeError(reply->payload);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kNotFound);
  (*conn)->Close();

  // Starting over works: both owners deliver cleanly on fresh sessions.
  std::vector<std::thread> sessions;
  std::vector<Status> session_status(2, Status::OK());
  const std::vector<std::string> names = {"owner-a", "owner-b"};
  for (size_t d = 0; d < 2; ++d) {
    AwaitRegistrations(server, d, 15000);
    sessions.emplace_back([&, d] {
      RemoteOwnerClientConfig config;
      config.port = server.port();
      RemoteOwnerClient client(config);
      auto result = client.ShipAndAwait(names[d], shipment);
      session_status[d] = result.ok() ? Status::OK() : result.status();
    });
  }
  for (auto& t : sessions) t.join();
  ASSERT_TRUE(server.WaitUntilDone(15000).ok());
  for (size_t d = 0; d < 2; ++d) {
    EXPECT_TRUE(session_status[d].ok()) << session_status[d].ToString();
  }

  server.Stop();
}

}  // namespace
}  // namespace pprl
