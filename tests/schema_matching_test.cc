#include "pipeline/schema_matching.h"

#include <set>
#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace pprl {
namespace {

/// Builds a copy of `db` with renamed/permuted columns.
Database RenameAndPermute(const Database& db) {
  Database out;
  // Permutation: reverse the field order; rename with common aliases.
  const std::vector<std::string> aliases = {"PhoneNumber", "post_code", "street_addr",
                                            "town",        "BirthDate", "Gender",
                                            "Surname",     "GivenName"};
  const size_t n = db.schema.size();
  for (size_t i = 0; i < n; ++i) {
    const size_t src = n - 1 - i;
    out.schema.fields.push_back({aliases[i], db.schema.fields[src].type});
  }
  for (const Record& r : db.records) {
    Record copy = r;
    copy.values.clear();
    for (size_t i = 0; i < n; ++i) copy.values.push_back(r.values[n - 1 - i]);
    out.records.push_back(std::move(copy));
  }
  return out;
}

TEST(SchemaMatchingTest, AlignsIdenticalSchemas) {
  DataGenerator gen(GeneratorConfig{});
  const Database a = gen.GenerateClean(150);
  const Database b = gen.GenerateClean(150, 1000);
  const auto aligned = MatchSchemas(a, b);
  ASSERT_EQ(aligned.size(), a.schema.size());
  for (const auto& corr : aligned) {
    EXPECT_EQ(corr.a_field, corr.b_field);
    EXPECT_GT(corr.confidence, 0.8);
  }
}

TEST(SchemaMatchingTest, AlignsRenamedPermutedColumns) {
  DataGenerator gen(GeneratorConfig{});
  const Database a = gen.GenerateClean(200);
  const Database b = RenameAndPermute(gen.GenerateClean(200, 1000));
  const auto aligned = MatchSchemas(a, b);
  // Count correctly recovered correspondences (a field i should map to
  // b field n-1-i by construction).
  const int n = static_cast<int>(a.schema.size());
  int correct = 0;
  for (const auto& corr : aligned) {
    if (corr.b_field == n - 1 - corr.a_field) ++correct;
  }
  // Value profiles plus names like "Surname"/"last_name" should recover
  // most columns; demand a clear majority.
  EXPECT_GE(correct, n / 2 + 1) << "aligned " << aligned.size();
}

TEST(SchemaMatchingTest, OneToOneOutput) {
  DataGenerator gen(GeneratorConfig{});
  const Database a = gen.GenerateClean(100);
  const Database b = gen.GenerateClean(100, 500);
  const auto aligned = MatchSchemas(a, b);
  std::set<int> used_a, used_b;
  for (const auto& corr : aligned) {
    EXPECT_TRUE(used_a.insert(corr.a_field).second);
    EXPECT_TRUE(used_b.insert(corr.b_field).second);
  }
}

TEST(SchemaMatchingTest, MinConfidenceFilters) {
  DataGenerator gen(GeneratorConfig{});
  const Database a = gen.GenerateClean(100);
  const Database b = gen.GenerateClean(100, 500);
  SchemaMatchOptions strict;
  strict.min_confidence = 0.99;
  const auto aligned = MatchSchemas(a, b, strict);
  for (const auto& corr : aligned) EXPECT_GE(corr.confidence, 0.99);
}

TEST(ColumnProfileSimilarityTest, DiscriminatesColumnTypes) {
  const std::vector<std::string> names = {"mary", "john", "peter", "anna"};
  const std::vector<std::string> more_names = {"susan", "carl", "nina", "omar"};
  const std::vector<std::string> phones = {"0412345678", "0498765432", "0411111111",
                                           "0422222222"};
  EXPECT_GT(ColumnProfileSimilarity(names, more_names),
            ColumnProfileSimilarity(names, phones));
}

TEST(ColumnProfileSimilarityTest, EmptySamples) {
  EXPECT_GE(ColumnProfileSimilarity({}, {}), 0.0);
  EXPECT_LE(ColumnProfileSimilarity({}, {"x"}), 1.0);
}

}  // namespace
}  // namespace pprl
