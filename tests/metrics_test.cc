#include "obs/metrics.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"
#include "obs/stage_timer.h"

namespace pprl::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddSub) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.value(), -12);  // gauges may go negative
}

TEST(HistogramTest, ObservationsLandInLeBuckets) {
  Histogram h({0.1, 1.0, 10.0});
  h.Observe(0.05);   // <= 0.1
  h.Observe(0.1);    // le semantics: boundary belongs to its bucket
  h.Observe(0.5);    // <= 1.0
  h.Observe(10.0);   // <= 10.0
  h.Observe(100.0);  // +Inf
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.05 + 0.1 + 0.5 + 10.0 + 100.0);
}

TEST(HistogramTest, NoBoundsMeansEverythingIsInf) {
  Histogram h({});
  h.Observe(1.0);
  h.Observe(-3.0);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(h.count(), 2u);
}

TEST(RegistryTest, SameSeriesReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("pairs_total", "pairs");
  Counter& b = registry.GetCounter("pairs_total", "pairs");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter& in = registry.GetCounter("frames", "frames", {{"direction", "in"}});
  Counter& out = registry.GetCounter("frames", "frames", {{"direction", "out"}});
  EXPECT_NE(&in, &out);
  EXPECT_EQ(registry.size(), 2u);
  in.Increment(3);
  out.Increment(5);
  EXPECT_EQ(in.value(), 3u);
  EXPECT_EQ(out.value(), 5u);
}

TEST(RegistryTest, TypeMismatchReturnsDetachedInstrument) {
  MetricsRegistry registry;
  registry.GetCounter("depth", "a counter");
  Gauge& orphan = registry.GetGauge("depth", "now a gauge?");
  orphan.Set(99);  // must be safe to use...
  EXPECT_EQ(registry.size(), 1u);
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].type, MetricType::kCounter);  // ...but never exported
}

TEST(RegistryTest, SnapshotSortedByNameThenLabels) {
  MetricsRegistry registry;
  registry.GetCounter("zzz", "last");
  registry.GetCounter("aaa", "first", {{"tag", "b"}});
  registry.GetCounter("aaa", "first", {{"tag", "a"}});
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "aaa");
  EXPECT_EQ(snapshot[0].labels[0].second, "a");
  EXPECT_EQ(snapshot[1].labels[0].second, "b");
  EXPECT_EQ(snapshot[2].name, "zzz");
}

TEST(RegistryTest, HistogramSnapshotIsCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat", "latency", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(99.0);
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const auto& s = snapshot[0];
  EXPECT_EQ(s.type, MetricType::kHistogram);
  ASSERT_EQ(s.cumulative_counts.size(), 3u);
  EXPECT_EQ(s.cumulative_counts[0], 1u);
  EXPECT_EQ(s.cumulative_counts[1], 2u);
  EXPECT_EQ(s.cumulative_counts[2], 3u);  // +Inf == count
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.5 + 99.0);
}

// The lock-free fast path must not lose updates under contention; run
// under PPRL_SANITIZE=thread this also proves the data-race freedom the
// header claims.
TEST(RegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  Counter& counter = registry.GetCounter("hits", "hits");
  Histogram& histogram = registry.GetHistogram("obs", "obs", {0.5});
  Gauge& gauge = registry.GetGauge("depth", "depth");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix registration (locked) with updates (lock-free) on purpose.
      Counter& local = registry.GetCounter("hits", "hits");
      for (int i = 0; i < kPerThread; ++i) {
        local.Increment();
        gauge.Add(1);
        gauge.Sub(1);
        histogram.Observe(t % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(histogram.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  const auto buckets = histogram.bucket_counts();
  EXPECT_EQ(buckets[0] + buckets[1], histogram.count());
  EXPECT_DOUBLE_EQ(histogram.sum(),
                   (kThreads / 2) * kPerThread * 0.25 + (kThreads / 2) * kPerThread * 0.75);
}

TEST(RegistryTest, SnapshotWhileWritersRun) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("live", "live");
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load()) counter.Increment();
  });
  uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const auto snapshot = registry.Snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    const auto v = static_cast<uint64_t>(snapshot[0].value);
    EXPECT_GE(v, last);  // counters are monotone even mid-flight
    last = v;
  }
  stop.store(true);
  writer.join();
}

TEST(PrometheusTextTest, RendersFamiliesBucketsAndEscapes) {
  MetricsRegistry registry;
  registry.GetCounter("pprl_pairs_total", "Pairs compared").Increment(7);
  registry.GetCounter("pprl_bytes_total", "Bytes by tag", {{"tag", "clk\"v1\"\n"}})
      .Increment(9);
  registry.GetGauge("pprl_depth", "Queue depth").Set(-2);
  registry.GetHistogram("pprl_lat_seconds", "Latency", {0.5, 1.0}).Observe(0.75);
  const std::string text = RenderPrometheusText(registry.Snapshot());

  EXPECT_NE(text.find("# HELP pprl_pairs_total Pairs compared\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pprl_pairs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_pairs_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_bytes_total{tag=\"clk\\\"v1\\\"\\n\"} 9\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE pprl_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_depth -2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE pprl_lat_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_lat_seconds_bucket{le=\"0.5\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_lat_seconds_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_lat_seconds_bucket{le=\"+Inf\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_lat_seconds_count 1\n"), std::string::npos);
  EXPECT_NE(text.find("pprl_lat_seconds_sum 0.75\n"), std::string::npos);
}

TEST(PrometheusTextTest, HelpAndTypeOncePerFamily) {
  MetricsRegistry registry;
  registry.GetCounter("pprl_frames", "Frames", {{"direction", "in"}});
  registry.GetCounter("pprl_frames", "Frames", {{"direction", "out"}});
  const std::string text = RenderPrometheusText(registry.Snapshot());
  size_t first = text.find("# TYPE pprl_frames counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE pprl_frames counter", first + 1), std::string::npos);
}

TEST(JsonTest, RendersValuesAndHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("pairs", "p", {{"path", "kernel"}}).Increment(12);
  registry.GetHistogram("lat", "l", {1.0}).Observe(2.0);
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("\"name\": \"pairs\""), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+Inf\""), std::string::npos);
  EXPECT_NE(json.find("\"cumulative_count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST(JsonTest, DumpWritesFile) {
  GlobalMetrics().GetCounter("pprl_test_dump_total", "test").Increment();
  const std::string path = ::testing::TempDir() + "/metrics_dump.json";
  ASSERT_TRUE(DumpMetricsJson(path));
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("pprl_test_dump_total"), std::string::npos);
  std::remove(path.c_str());
}

TEST(StageTimerTest, RecordsIntoStageSecondsHistogram) {
  MetricsRegistry registry;
  double elapsed = 0;
  {
    StageTimer timer("encode", registry);
    elapsed = timer.Stop();
    timer.Stop();  // idempotent: must not observe twice
  }  // destructor after Stop(): still one observation
  EXPECT_GE(elapsed, 0.0);
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "pprl_stage_seconds");
  ASSERT_EQ(snapshot[0].labels.size(), 1u);
  EXPECT_EQ(snapshot[0].labels[0].first, "stage");
  EXPECT_EQ(snapshot[0].labels[0].second, "encode");
  EXPECT_EQ(snapshot[0].count, 1u);
  EXPECT_DOUBLE_EQ(snapshot[0].sum, elapsed);
}

TEST(StageTimerTest, DestructorRecordsWhenNotStopped) {
  MetricsRegistry registry;
  { StageTimer timer("block", registry); }
  const auto snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].count, 1u);
}

TEST(GlobalMetricsTest, IsSingleProcessWideRegistry) {
  MetricsRegistry& a = GlobalMetrics();
  MetricsRegistry& b = GlobalMetrics();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace pprl::obs
