#include "common/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int touched = 0;
  ParallelFor(pool, 5, 5, [&touched](size_t) { ++touched; });
  ParallelFor(pool, 7, 3, [&touched](size_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ParallelForTest, SumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> values(5000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 0, values.size(),
              [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), 5000LL * 4999 / 2);
}

}  // namespace
}  // namespace pprl
