#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 10; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 30);
}

TEST(ParallelForTest, CoversExactRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(pool, 0, 1000, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  int touched = 0;
  ParallelFor(pool, 5, 5, [&touched](size_t) { ++touched; });
  ParallelFor(pool, 7, 3, [&touched](size_t) { ++touched; });
  EXPECT_EQ(touched, 0);
}

TEST(ParallelForTest, SumMatchesSequential) {
  ThreadPool pool(4);
  std::vector<int64_t> values(5000);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<int64_t> sum{0};
  ParallelFor(pool, 0, values.size(),
              [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), 5000LL * 4999 / 2);
}

TEST(WorkStealingSchedulerTest, RunsAllSubmittedShards) {
  WorkStealingScheduler scheduler(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 500; ++i) {
    scheduler.Submit([&counter] { counter.fetch_add(1); });
  }
  scheduler.Wait();
  EXPECT_EQ(counter.load(), 500);
}

TEST(WorkStealingSchedulerTest, ReusableAcrossWaves) {
  WorkStealingScheduler scheduler(3);
  std::atomic<int> counter{0};
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 50; ++i) {
      scheduler.Submit([&counter] { counter.fetch_add(1); });
    }
    scheduler.Wait();
  }
  EXPECT_EQ(counter.load(), 150);
}

TEST(WorkStealingSchedulerTest, BackpressureBoundsPendingShards) {
  WorkStealingScheduler::Options options;
  options.num_threads = 2;
  options.max_pending = 4;
  WorkStealingScheduler scheduler(options);

  // Park both workers so submissions pile up against the cap.
  std::atomic<bool> release{false};
  std::atomic<int> parked{0};
  for (int i = 0; i < 2; ++i) {
    scheduler.Submit([&] {
      parked.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (parked.load() < 2) std::this_thread::yield();

  // The producer must block on the shard after the cap. Run it on a side
  // thread and verify it cannot finish until the workers are released.
  std::atomic<int> submitted{0};
  std::thread producer([&] {
    for (int i = 0; i < 20; ++i) {
      scheduler.Submit([] {});
      submitted.fetch_add(1);
    }
  });
  // Give the producer ample time to overshoot if backpressure were broken.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(submitted.load(), 5);  // max_pending, +1 for the one in Submit()
  EXPECT_LE(scheduler.pending(), 4u);

  release.store(true);
  producer.join();
  scheduler.Wait();
  EXPECT_EQ(submitted.load(), 20);
}

TEST(WorkStealingSchedulerTest, IdleWorkersStealFromLoadedDeque) {
  WorkStealingScheduler scheduler(4);
  // Pin every shard to worker 0. Workers pop their own deque FIFO, so the
  // gate shard parks worker 0 until another worker has finished one of the
  // remaining shards — which, with everything pinned to deque 0, it can
  // only have obtained by stealing.
  std::atomic<int> done{0};
  scheduler.SubmitTo(0, [&done] {
    while (done.load() == 0) std::this_thread::yield();
  });
  for (int i = 0; i < 100; ++i) {
    scheduler.SubmitTo(0, [&done] { done.fetch_add(1); });
  }
  scheduler.Wait();
  EXPECT_EQ(done.load(), 100);
  EXPECT_GT(scheduler.steal_count(), 0u);
}

/// Heavy steal contention: one worker's deque holds all the work while
/// seven thieves hammer it. Exercises the padded per-worker deque state
/// and the approx_size probe (thieves skip empty victims without locking
/// them); every shard must still run exactly once, and the failed-sweep
/// counter must tick for workers that found nothing anywhere.
TEST(WorkStealingSchedulerTest, StealStormRunsEveryShardOnce) {
  WorkStealingScheduler scheduler(8);
  constexpr int kShards = 4000;
  std::vector<std::atomic<int>> runs(kShards);
  // Gate worker 0 until a thief has finished a shard (same trick as
  // IdleWorkersStealFromLoadedDeque): on a box with fewer cores than
  // workers, worker 0 could otherwise drain all 4000 shards before any
  // thief thread is ever scheduled, and the storm would steal nothing.
  std::atomic<int> done{0};
  scheduler.SubmitTo(0, [&done] {
    while (done.load() == 0) std::this_thread::yield();
  });
  for (int i = 0; i < kShards; ++i) {
    scheduler.SubmitTo(0, [&runs, &done, i] {
      runs[i].fetch_add(1);
      done.fetch_add(1);
    });
  }
  scheduler.Wait();
  for (int i = 0; i < kShards; ++i) {
    ASSERT_EQ(runs[i].load(), 1) << "shard " << i;
  }
  EXPECT_GT(scheduler.steal_count(), 0u);
  // With 8 workers and one loaded deque, some sweep must have come up dry
  // (workers park only after a full failed sweep).
  EXPECT_GT(scheduler.steal_fail_count(), 0u);
}

TEST(WorkStealingSchedulerTest, DestructorDrainsInFlightShards) {
  std::atomic<int> counter{0};
  {
    WorkStealingScheduler scheduler(3);
    for (int i = 0; i < 100; ++i) {
      scheduler.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        counter.fetch_add(1);
      });
    }
    // No Wait(): the destructor must run everything before joining.
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroupTest, WaitsOnlyForOwnTasks) {
  WorkStealingScheduler scheduler(2);
  // A slow shard from another "session" sharing the scheduler must not
  // block this group's Wait().
  std::atomic<bool> release{false};
  std::atomic<bool> slow_done{false};
  scheduler.Submit([&] {
    while (!release.load()) std::this_thread::yield();
    slow_done.store(true);
  });

  TaskGroup group(scheduler);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_FALSE(slow_done.load());

  release.store(true);
  scheduler.Wait();
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroupTest, GroupsOnSharedSchedulerAreIndependent) {
  WorkStealingScheduler scheduler(4);
  TaskGroup first(scheduler);
  TaskGroup second(scheduler);
  std::atomic<int> first_count{0};
  std::atomic<int> second_count{0};
  for (int i = 0; i < 100; ++i) {
    first.Submit([&first_count] { first_count.fetch_add(1); });
    second.Submit([&second_count] { second_count.fetch_add(1); });
  }
  first.Wait();
  EXPECT_EQ(first_count.load(), 100);
  second.Wait();
  EXPECT_EQ(second_count.load(), 100);
}

}  // namespace
}  // namespace pprl
