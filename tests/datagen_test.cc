#include "datagen/generator.h"

#include <set>
#include <unordered_map>

#include <gtest/gtest.h>

#include "datagen/corruptor.h"
#include "datagen/lookup_data.h"
#include "encoding/numeric_encoding.h"

namespace pprl {
namespace {

TEST(GeneratorTest, StandardSchemaFields) {
  const Schema schema = DataGenerator::StandardSchema();
  EXPECT_EQ(schema.size(), 8u);
  EXPECT_EQ(schema.FieldIndex("first_name"), 0);
  EXPECT_EQ(schema.FieldIndex("dob"), 3);
  EXPECT_EQ(schema.FieldIndex("nope"), -1);
  EXPECT_EQ(schema.fields[3].type, FieldType::kDate);
  EXPECT_EQ(schema.fields[2].type, FieldType::kCategorical);
}

TEST(GeneratorTest, CleanDatabaseShape) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(50, 1000);
  EXPECT_EQ(db.size(), 50u);
  for (size_t i = 0; i < db.records.size(); ++i) {
    const Record& r = db.records[i];
    EXPECT_EQ(r.entity_id, 1000 + i);
    ASSERT_EQ(r.values.size(), db.schema.size());
    EXPECT_FALSE(r.values[0].empty());  // first name
    EXPECT_TRUE(r.values[2] == "m" || r.values[2] == "f");
    EXPECT_TRUE(DaysSinceEpoch(r.values[3]).ok()) << r.values[3];
  }
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GeneratorConfig config;
  config.seed = 5;
  DataGenerator g1(config), g2(config);
  const Database a = g1.GenerateClean(10);
  const Database b = g2.GenerateClean(10);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(a.records[i].values, b.records[i].values);
}

TEST(GeneratorTest, ZipfSkewMakesNamesRepeat) {
  GeneratorConfig config;
  config.zipf_skew = 1.4;
  DataGenerator gen(config);
  const Database db = gen.GenerateClean(500);
  std::unordered_map<std::string, int> counts;
  for (const auto& r : db.records) ++counts[r.values[1]];
  int max_count = 0;
  for (const auto& [name, count] : counts) max_count = std::max(max_count, count);
  // With strong skew the top surname must dominate.
  EXPECT_GT(max_count, 25);
}

TEST(GeneratorScenarioTest, OverlapProducesSharedEntities) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig config;
  config.records_per_database = 200;
  config.overlap = 0.4;
  auto dbs = gen.GenerateScenario(config);
  ASSERT_TRUE(dbs.ok());
  ASSERT_EQ(dbs->size(), 2u);
  std::set<uint64_t> ea, eb;
  for (const auto& r : (*dbs)[0].records) ea.insert(r.entity_id);
  for (const auto& r : (*dbs)[1].records) eb.insert(r.entity_id);
  std::set<uint64_t> shared;
  for (uint64_t e : ea) {
    if (eb.count(e)) shared.insert(e);
  }
  EXPECT_EQ(shared.size(), 80u);  // 0.4 * 200
}

TEST(GeneratorScenarioTest, MultiDatabaseScenario) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig config;
  config.records_per_database = 100;
  config.num_databases = 4;
  config.overlap = 0.3;
  auto dbs = gen.GenerateScenario(config);
  ASSERT_TRUE(dbs.ok());
  ASSERT_EQ(dbs->size(), 4u);
  // The 30 shared entities must appear in every database.
  std::set<uint64_t> shared;
  for (const auto& r : (*dbs)[0].records) {
    if (r.entity_id < 30) shared.insert(r.entity_id);
  }
  EXPECT_EQ(shared.size(), 30u);
  for (const auto& db : *dbs) {
    size_t found = 0;
    for (const auto& r : db.records) {
      if (r.entity_id < 30) ++found;
    }
    EXPECT_EQ(found, 30u);
  }
}

TEST(GeneratorScenarioTest, ValidatesArguments) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig bad;
  bad.num_databases = 1;
  EXPECT_FALSE(gen.GenerateScenario(bad).ok());
  bad.num_databases = 2;
  bad.overlap = 1.5;
  EXPECT_FALSE(gen.GenerateScenario(bad).ok());
}

TEST(GeneratorScenarioTest, RecordIdsAreConsecutive) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig config;
  config.records_per_database = 50;
  auto dbs = gen.GenerateScenario(config);
  ASSERT_TRUE(dbs.ok());
  for (const auto& db : *dbs) {
    for (size_t i = 0; i < db.records.size(); ++i) EXPECT_EQ(db.records[i].id, i);
  }
}

TEST(CorruptorTest, KeyboardTypoChangesOneEdit) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const std::string out = corruption::KeyboardTypo("elizabeth", rng);
    EXPECT_NE(out, "");
    const size_t len_diff =
        out.size() > 9 ? out.size() - 9 : 9 - out.size();
    EXPECT_LE(len_diff, 1u);
  }
}

TEST(CorruptorTest, OcrErrorUsesConfusionTable) {
  Rng rng(2);
  // "mole" contains 'o' and 'l' and 'm' confusions.
  bool changed = false;
  for (int i = 0; i < 20; ++i) {
    if (corruption::OcrError("mole", rng) != "mole") changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(CorruptorTest, NicknameVariationKnownNames) {
  Rng rng(3);
  const std::string varied = corruption::NicknameVariation("william", rng);
  EXPECT_TRUE(varied == "bill" || varied == "will");
  EXPECT_EQ(corruption::NicknameVariation("xqzw", rng), "xqzw");
  // Reverse direction: nickname back to a canonical name.
  const std::string canonical = corruption::NicknameVariation("bill", rng);
  EXPECT_EQ(canonical, "william");
}

TEST(CorruptorTest, DateErrorStaysValid) {
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const std::string out = corruption::DateError("1980-06-15", rng);
    EXPECT_TRUE(DaysSinceEpoch(out).ok()) << out;
    EXPECT_NE(out, "1980-06-15");
  }
}

TEST(CorruptorTest, PhoneticVariationChangesSpelling) {
  Rng rng(5);
  bool changed = false;
  for (int i = 0; i < 20; ++i) {
    if (corruption::PhoneticVariation("phillip", rng) != "phillip") changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(CorruptorTest, CorruptExactlyAppliesRequestedOps) {
  const Schema schema = DataGenerator::StandardSchema();
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(1);
  Corruptor corruptor(CorruptorConfig{}, 7);
  const Record zero = corruptor.CorruptExactly(schema, db.records[0], 0);
  EXPECT_EQ(zero.values, db.records[0].values);
  const Record five = corruptor.CorruptExactly(schema, db.records[0], 5);
  EXPECT_NE(five.values, db.records[0].values);
}

TEST(CorruptorTest, MeanCorruptionsControlsDirtiness) {
  const Schema schema = DataGenerator::StandardSchema();
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(200);
  CorruptorConfig light;
  light.mean_corruptions = 0.2;
  CorruptorConfig heavy;
  heavy.mean_corruptions = 4.0;
  Corruptor light_corruptor(light, 11), heavy_corruptor(heavy, 11);
  int light_changed = 0, heavy_changed = 0;
  for (const auto& r : db.records) {
    if (light_corruptor.Corrupt(schema, r).values != r.values) ++light_changed;
    if (heavy_corruptor.Corrupt(schema, r).values != r.values) ++heavy_changed;
  }
  EXPECT_LT(light_changed, heavy_changed);
  EXPECT_GT(heavy_changed, 150);
}

TEST(LookupDataTest, TablesNonEmptyAndLowerCase) {
  EXPECT_GT(datagen::kNumFemaleFirstNames, 50u);
  EXPECT_GT(datagen::kNumMaleFirstNames, 50u);
  EXPECT_GT(datagen::kNumLastNames, 50u);
  for (size_t i = 0; i < datagen::kNumLastNames; ++i) {
    for (char c : datagen::kLastNames[i]) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || c == ' ');
    }
  }
}

TEST(LookupDataTest, KeyboardNeighborsSymmetricSample) {
  // 'q' and 'w' neighbour each other.
  EXPECT_NE(datagen::KeyboardNeighbors('q').find('w'), std::string_view::npos);
  EXPECT_NE(datagen::KeyboardNeighbors('w').find('q'), std::string_view::npos);
  EXPECT_TRUE(datagen::KeyboardNeighbors('!').empty());
}

}  // namespace
}  // namespace pprl
