#include "linkage/comparison.h"

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

std::vector<BitVector> Encode(const std::vector<std::string>& names) {
  const BloomFilterEncoder encoder({500, 15, BloomHashScheme::kDoubleHashing, ""});
  std::vector<BitVector> out;
  for (const auto& n : names) out.push_back(encoder.EncodeString(n));
  return out;
}

PairSimilarityFunction Dice() {
  return [](const BitVector& a, const BitVector& b) { return DiceSimilarity(a, b); };
}

TEST(ComparisonEngineTest, ScoresCandidates) {
  const auto fa = Encode({"smith", "jones"});
  const auto fb = Encode({"smith", "brown"});
  const ComparisonEngine engine(Dice());
  const auto scored = engine.Compare(fa, fb, {{0, 0}, {0, 1}, {1, 1}});
  ASSERT_EQ(scored.size(), 3u);
  EXPECT_DOUBLE_EQ(scored[0].score, 1.0);
  EXPECT_LT(scored[1].score, 0.5);
  EXPECT_EQ(engine.last_comparison_count(), 3u);
}

TEST(ComparisonEngineTest, MinScoreFiltersEarly) {
  const auto fa = Encode({"smith"});
  const auto fb = Encode({"smith", "zzzzz"});
  const ComparisonEngine engine(Dice());
  const auto scored = engine.Compare(fa, fb, {{0, 0}, {0, 1}}, 0.8);
  ASSERT_EQ(scored.size(), 1u);
  EXPECT_EQ(scored[0].b, 0u);
  EXPECT_EQ(engine.last_comparison_count(), 2u);  // both were still compared
}

TEST(ComparisonEngineTest, EmptyCandidates) {
  const ComparisonEngine engine(Dice());
  EXPECT_TRUE(engine.Compare({}, {}, {}).empty());
  EXPECT_EQ(engine.last_comparison_count(), 0u);
}

TEST(ComparisonEngineTest, ParallelMatchesSequential) {
  const auto fa = Encode({"smith", "jones", "brown", "garcia", "miller"});
  const auto fb = Encode({"smyth", "jonas", "browne", "garza", "millar"});
  std::vector<CandidatePair> candidates;
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) candidates.push_back({i, j});
  }
  const ComparisonEngine engine(Dice());
  const auto sequential = engine.Compare(fa, fb, candidates, 0.3);
  const auto parallel = engine.CompareParallel(fa, fb, candidates, 0.3, 4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i], parallel[i]);
  }
}

TEST(CompareFieldwiseTest, PerFieldScores) {
  // Two fields, two records each.
  const auto first_a = Encode({"mary", "john"});
  const auto first_b = Encode({"mary", "jon"});
  const auto last_a = Encode({"smith", "jones"});
  const auto last_b = Encode({"smyth", "wilson"});
  const auto pairs = CompareFieldwise({first_a, last_a}, {first_b, last_b},
                                      {{0, 0}, {1, 1}}, Dice());
  ASSERT_EQ(pairs.size(), 2u);
  ASSERT_EQ(pairs[0].field_scores.size(), 2u);
  EXPECT_DOUBLE_EQ(pairs[0].field_scores[0], 1.0);     // mary == mary
  EXPECT_GT(pairs[0].field_scores[1], 0.5);            // smith ~ smyth
  EXPECT_LT(pairs[1].field_scores[1], 0.4);            // jones vs wilson
}

TEST(CompareFieldwiseTest, NoFields) {
  const auto pairs = CompareFieldwise({}, {}, {{0, 0}}, Dice());
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_TRUE(pairs[0].field_scores.empty());
}

}  // namespace
}  // namespace pprl
