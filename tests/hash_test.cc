#include "crypto/hash.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

// RFC 1321 / FIPS 180 reference vectors.

TEST(Md5Test, ReferenceVectors) {
  EXPECT_EQ(DigestToHex(Md5("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(DigestToHex(Md5("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(DigestToHex(Md5("message digest")), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(DigestToHex(Md5("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

TEST(Sha1Test, ReferenceVectors) {
  EXPECT_EQ(DigestToHex(Sha1("")), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(DigestToHex(Sha1("abc")), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(DigestToHex(Sha1("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256Test, ReferenceVectors) {
  EXPECT_EQ(DigestToHex(Sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(DigestToHex(Sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(DigestToHex(Sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MultiBlockMessage) {
  // One million 'a' characters (NIST long-message vector).
  const std::string million(1000000, 'a');
  EXPECT_EQ(DigestToHex(Sha256(million)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(HmacTest, Rfc4231Vectors) {
  // RFC 4231 test case 2.
  EXPECT_EQ(DigestToHex(HmacSha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // Wikipedia's classic example.
  EXPECT_EQ(DigestToHex(HmacSha256("key", "The quick brown fox jumps over the lazy dog")),
            "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8");
}

TEST(HmacTest, LongKeyIsHashedFirst) {
  const std::string long_key(200, 'k');
  // Consistency: must equal HMAC with SHA256(long_key) as the key material.
  const auto direct = HmacSha256(long_key, "data");
  const auto hashed_key = Sha256(long_key);
  const std::string key_str(reinterpret_cast<const char*>(hashed_key.data()),
                            hashed_key.size());
  EXPECT_EQ(DigestToHex(direct), DigestToHex(HmacSha256(key_str, "data")));
}

TEST(HmacTest, KeySeparation) {
  EXPECT_NE(DigestToHex(HmacSha256("key1", "data")),
            DigestToHex(HmacSha256("key2", "data")));
}

TEST(DigestHelpersTest, DigestToUint64LittleEndian) {
  std::array<uint8_t, 8> digest = {1, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(DigestToUint64(digest), 1u);
  digest = {0, 0, 0, 0, 0, 0, 0, 1};
  EXPECT_EQ(DigestToUint64(digest), uint64_t{1} << 56);
}

TEST(TabulationHashTest, DeterministicPerSeed) {
  const TabulationHash h1(42), h2(42), h3(43);
  EXPECT_EQ(h1.Hash("hello"), h2.Hash("hello"));
  EXPECT_NE(h1.Hash("hello"), h3.Hash("hello"));
  EXPECT_EQ(h1.Hash64(12345), h2.Hash64(12345));
}

TEST(TabulationHashTest, SpreadsBits) {
  const TabulationHash h(7);
  // Rough avalanche check: flipping one input bit flips ~half the output bits.
  int total_flips = 0;
  const int trials = 64;
  for (int bit = 0; bit < trials; ++bit) {
    const uint64_t a = h.Hash64(0);
    const uint64_t b = h.Hash64(uint64_t{1} << bit);
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / trials;
  EXPECT_GT(avg, 20.0);
  EXPECT_LT(avg, 44.0);
}

}  // namespace
}  // namespace pprl
