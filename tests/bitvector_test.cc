#include "common/bitvector.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pprl {
namespace {

TEST(BitVectorTest, StartsAllZero) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_EQ(bv.Count(), 0u);
  for (size_t i = 0; i < bv.size(); ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(99));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
}

TEST(BitVectorTest, SetFalseClearsBit) {
  BitVector bv(10);
  bv.Set(5);
  EXPECT_TRUE(bv.Get(5));
  bv.Set(5, false);
  EXPECT_FALSE(bv.Get(5));
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, FlipTogglesBit) {
  BitVector bv(70);
  bv.Flip(65);
  EXPECT_TRUE(bv.Get(65));
  bv.Flip(65);
  EXPECT_FALSE(bv.Get(65));
}

TEST(BitVectorTest, CountCachedAcrossMutation) {
  BitVector bv(128);
  for (size_t i = 0; i < 128; i += 2) bv.Set(i);
  EXPECT_EQ(bv.Count(), 64u);
  bv.Set(1);
  EXPECT_EQ(bv.Count(), 65u);  // cache must be invalidated by Set
  bv.Flip(1);
  EXPECT_EQ(bv.Count(), 64u);
  bv.Clear();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, AndOrXorCounts) {
  BitVector a(200), b(200);
  a.Set(3);
  a.Set(100);
  a.Set(150);
  b.Set(100);
  b.Set(150);
  b.Set(199);
  EXPECT_EQ(a.AndCount(b), 2u);
  EXPECT_EQ(a.OrCount(b), 4u);
  EXPECT_EQ(a.XorCount(b), 2u);
}

TEST(BitVectorTest, InPlaceOperators) {
  BitVector a(65), b(65);
  a.Set(0);
  a.Set(64);
  b.Set(64);
  BitVector and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Get(64));

  BitVector or_result = a;
  or_result |= b;
  EXPECT_EQ(or_result.Count(), 2u);

  BitVector xor_result = a;
  xor_result ^= b;
  EXPECT_EQ(xor_result.Count(), 1u);
  EXPECT_TRUE(xor_result.Get(0));
}

TEST(BitVectorTest, ConcatPreservesBothHalves) {
  BitVector a(3), b(4);
  a.Set(1);
  b.Set(0);
  b.Set(3);
  a.Concat(b);
  EXPECT_EQ(a.size(), 7u);
  EXPECT_FALSE(a.Get(0));
  EXPECT_TRUE(a.Get(1));
  EXPECT_TRUE(a.Get(3));
  EXPECT_TRUE(a.Get(6));
  EXPECT_EQ(a.Count(), 3u);
}

TEST(BitVectorTest, SetPositionsRoundTrip) {
  BitVector bv(300);
  const std::vector<uint32_t> expected = {0, 5, 63, 64, 128, 299};
  for (uint32_t pos : expected) bv.Set(pos);
  EXPECT_EQ(bv.SetPositions(), expected);
}

TEST(BitVectorTest, ToStringFromStringRoundTrip) {
  BitVector bv(9);
  bv.Set(2);
  bv.Set(8);
  const std::string s = bv.ToString();
  EXPECT_EQ(s, "001000001");
  EXPECT_EQ(BitVector::FromString(s), bv);
}

TEST(BitVectorTest, FromStringRejectsBadChars) {
  EXPECT_TRUE(BitVector::FromString("01x").empty());
}

TEST(BitVectorTest, EqualityRequiresSameLength) {
  BitVector a(5), b(6);
  EXPECT_FALSE(a == b);
  BitVector c(5);
  EXPECT_TRUE(a == c);
  c.Set(0);
  EXPECT_FALSE(a == c);
}

TEST(BitVectorTest, EmptyVector) {
  BitVector bv;
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_EQ(bv.ToString(), "");
  EXPECT_TRUE(bv.SetPositions().empty());
}

/// Property: for random vectors, |a| + |b| == |a AND b| + |a OR b|.
TEST(BitVectorProperty, InclusionExclusion) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t n = 1 + rng.NextUint64(500);
    BitVector a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(0.3)) a.Set(i);
      if (rng.NextBool(0.3)) b.Set(i);
    }
    EXPECT_EQ(a.Count() + b.Count(), a.AndCount(b) + a.OrCount(b));
    EXPECT_EQ(a.XorCount(b), a.OrCount(b) - a.AndCount(b));
  }
}

class BitVectorSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitVectorSizeTest, CountMatchesSetPositions) {
  const size_t n = GetParam();
  Rng rng(n);
  BitVector bv(n);
  size_t expected = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.4)) {
      bv.Set(i);
      ++expected;
    }
  }
  EXPECT_EQ(bv.Count(), expected);
  EXPECT_EQ(bv.SetPositions().size(), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorSizeTest,
                         ::testing::Values(1, 63, 64, 65, 127, 128, 129, 1000, 4096));

}  // namespace
}  // namespace pprl
