#include "linkage/compare_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/bit_matrix.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "linkage/comparison.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

constexpr SimilarityMeasure kAllMeasures[] = {
    SimilarityMeasure::kDice, SimilarityMeasure::kJaccard, SimilarityMeasure::kHamming,
    SimilarityMeasure::kOverlap, SimilarityMeasure::kCosine};

/// Random filters with strongly varying density (so cardinality bounds
/// actually separate pairs), plus deliberate edge rows: all-zero (empty)
/// filters and duplicated rows that score exactly 1.
std::vector<BitVector> RandomFilters(size_t n, size_t num_bits, Rng& rng) {
  std::vector<BitVector> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BitVector v(num_bits);
    const double density = 0.05 + 0.5 * rng.NextDouble();
    for (size_t b = 0; b < num_bits; ++b) {
      if (rng.NextBool(density)) v.Set(b);
    }
    out.push_back(std::move(v));
  }
  if (n >= 3 && num_bits > 0) {
    out[0].Clear();           // empty filter
    out[n - 1] = out[n / 2];  // exact duplicate pair across the databases
  }
  return out;
}

std::vector<CandidatePair> AllPairs(size_t na, size_t nb) {
  std::vector<CandidatePair> out;
  for (uint32_t i = 0; i < na; ++i) {
    for (uint32_t j = 0; j < nb; ++j) out.push_back({i, j});
  }
  return out;
}

TEST(BitMatrixTest, RoundTripsAndAlignment) {
  Rng rng(7);
  for (const size_t bits : {size_t{0}, size_t{1}, size_t{61}, size_t{127}, size_t{500},
                            size_t{1000}}) {
    const auto rows = RandomFilters(9, bits, rng);
    const BitMatrix m = BitMatrix::FromVectors(rows);
    EXPECT_EQ(m.num_rows(), rows.size());
    EXPECT_EQ(m.num_bits(), bits);
    EXPECT_EQ(m.stride_words() % 8, 0u) << "stride must stay a 64-byte multiple";
    const auto back = m.ToVectors();
    ASSERT_EQ(back.size(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(back[i], rows[i]) << "row " << i << " at " << bits << " bits";
      EXPECT_EQ(m.row_count(i), rows[i].Count());
      EXPECT_EQ(reinterpret_cast<uintptr_t>(m.row(i)) % 64, 0u)
          << "row " << i << " must start on a cache line";
    }
  }
}

TEST(BitMatrixTest, CopyIsDeep) {
  Rng rng(11);
  const BitMatrix a = BitMatrix::FromVectors(RandomFilters(4, 127, rng));
  BitMatrix b = a;
  b.mutable_row(0)[0] = ~b.mutable_row(0)[0];
  b.RecomputeCounts();
  EXPECT_NE(a.row(0)[0], b.row(0)[0]);
  EXPECT_EQ(a.ToVectors()[1], b.ToVectors()[1]);
}

TEST(CompareKernelsTest, UpperBoundDominatesEveryScore) {
  Rng rng(13);
  for (const size_t bits : {size_t{61}, size_t{127}, size_t{500}}) {
    const auto fa = RandomFilters(24, bits, rng);
    const auto fb = RandomFilters(24, bits, rng);
    for (const SimilarityMeasure m : kAllMeasures) {
      const auto reference = MeasureFunction(m);
      for (const auto& a : fa) {
        for (const auto& b : fb) {
          const double score = reference(a, b);
          const double bound = ScoreUpperBound(m, a.Count(), b.Count(), bits);
          EXPECT_GE(bound, score)
              << SimilarityMeasureName(m) << " bound must dominate at " << bits
              << " bits (|a|=" << a.Count() << ", |b|=" << b.Count() << ")";
          const double exact =
              ScoreFromIntersection(m, a.Count(), b.Count(), a.AndCount(b), bits);
          EXPECT_EQ(exact, score)
              << SimilarityMeasureName(m) << " intersection formula must be bitwise";
        }
      }
    }
  }
}

/// The heart of the PR's contract: for every measure, odd/word-straddling
/// bit lengths, empty filters, and a sweep of thresholds, the kernel path
/// must reproduce the std::function reference path exactly — same scores
/// to the bit, same kept pairs, same output order — while counting every
/// candidate and pruning only pairs the bound proves hopeless.
TEST(CompareKernelsTest, KernelMatchesReferenceBitwise) {
  Rng rng(17);
  for (const size_t bits : {size_t{61}, size_t{127}, size_t{500}}) {
    const auto fa = RandomFilters(40, bits, rng);
    const auto fb = RandomFilters(40, bits, rng);
    const auto candidates = AllPairs(fa.size(), fb.size());
    for (const SimilarityMeasure m : kAllMeasures) {
      const ComparisonEngine reference(MeasureFunction(m));
      const ComparisonEngine kernel(m);
      for (const double min_score : {0.0, 0.5, 0.7, 0.9}) {
        const auto expected = reference.Compare(fa, fb, candidates, min_score);
        const auto actual = kernel.Compare(fa, fb, candidates, min_score);
        ASSERT_EQ(expected.size(), actual.size())
            << SimilarityMeasureName(m) << " bits=" << bits << " min=" << min_score;
        for (size_t i = 0; i < expected.size(); ++i) {
          EXPECT_EQ(expected[i], actual[i])
              << SimilarityMeasureName(m) << " bits=" << bits << " min=" << min_score
              << " pair " << i << " (scores and order must be identical)";
        }
        EXPECT_EQ(kernel.last_comparison_count(), candidates.size());
        EXPECT_EQ(reference.last_pruned_count(), 0u);
        EXPECT_LE(kernel.last_pruned_count(), candidates.size());
        if (min_score == 0.0) {
          EXPECT_EQ(kernel.last_pruned_count(), 0u)
              << "nothing can fall below a zero threshold";
        }
      }
    }
  }
}

TEST(CompareKernelsTest, PruningFiresAtHighThresholds) {
  Rng rng(19);
  const auto fa = RandomFilters(60, 500, rng);
  const auto fb = RandomFilters(60, 500, rng);
  const auto candidates = AllPairs(fa.size(), fb.size());
  const ComparisonEngine kernel(SimilarityMeasure::kDice);
  const auto kept = kernel.Compare(fa, fb, candidates, 0.7);
  EXPECT_GT(kernel.last_pruned_count(), 0u)
      << "density spread from 5% to 55% must let the cardinality bound prune";
  EXPECT_EQ(kernel.last_comparison_count(), candidates.size());
  // Pruned pairs are exactly the ones the reference would have dropped.
  const ComparisonEngine reference(MeasureFunction(SimilarityMeasure::kDice));
  const auto expected = reference.Compare(fa, fb, candidates, 0.7);
  ASSERT_EQ(expected.size(), kept.size());
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(expected[i], kept[i]);
}

TEST(CompareKernelsTest, ParallelMatchesSequentialKernel) {
  Rng rng(23);
  const auto fa = RandomFilters(50, 127, rng);
  const auto fb = RandomFilters(50, 127, rng);
  const auto candidates = AllPairs(fa.size(), fb.size());
  for (const SimilarityMeasure m : kAllMeasures) {
    const ComparisonEngine kernel(m);
    const auto sequential = kernel.Compare(fa, fb, candidates, 0.6);
    const size_t sequential_pruned = kernel.last_pruned_count();
    for (const size_t threads : {size_t{1}, size_t{4}}) {
      const auto parallel = kernel.CompareParallel(fa, fb, candidates, 0.6, threads);
      ASSERT_EQ(sequential.size(), parallel.size())
          << SimilarityMeasureName(m) << " threads=" << threads;
      for (size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(sequential[i], parallel[i]);
      }
      EXPECT_EQ(kernel.last_comparison_count(), candidates.size());
      EXPECT_EQ(kernel.last_pruned_count(), sequential_pruned);
    }
  }
}

/// Thresholded runs through the Dice fast path (division-free band tests,
/// dense-run vectorization) and the chunked parallel engine: scores, kept
/// pairs, order, and the pruned/comparison accounting must all be
/// identical to the sequential kernel at every thread count.
TEST(CompareKernelsTest, ThresholdedParallelAccountingMatchesSequential) {
  Rng rng(31);
  for (const size_t bits : {size_t{127}, size_t{500}}) {
    const auto fa = RandomFilters(64, bits, rng);
    const auto fb = RandomFilters(64, bits, rng);
    const auto candidates = AllPairs(fa.size(), fb.size());
    const BitMatrix ma = BitMatrix::FromVectors(fa);
    const BitMatrix mb = BitMatrix::FromVectors(fb);
    const ComparisonEngine kernel(SimilarityMeasure::kDice);
    for (const double min_score : {0.5, 0.7, 0.85, 0.95}) {
      const auto sequential = kernel.CompareMatrices(ma, mb, candidates, min_score);
      const size_t sequential_pruned = kernel.last_pruned_count();
      for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
        const auto parallel =
            kernel.CompareMatricesParallel(ma, mb, candidates, min_score, threads);
        ASSERT_EQ(sequential.size(), parallel.size())
            << "bits=" << bits << " min=" << min_score << " threads=" << threads;
        for (size_t i = 0; i < sequential.size(); ++i) {
          EXPECT_EQ(sequential[i], parallel[i]);
        }
        EXPECT_EQ(kernel.last_comparison_count(), candidates.size())
            << "bits=" << bits << " min=" << min_score << " threads=" << threads;
        EXPECT_EQ(kernel.last_pruned_count(), sequential_pruned)
            << "bits=" << bits << " min=" << min_score << " threads=" << threads;
      }
    }
  }
}

/// One engine, one shared scheduler, several callers at once — the shape
/// the daemon runs. Every caller must get its own correct result while
/// the counters, being per-engine, settle to some completed call's totals.
TEST(CompareKernelsTest, ConcurrentCallersShareEngineAndScheduler) {
  Rng rng(37);
  const auto fa = RandomFilters(48, 500, rng);
  const auto fb = RandomFilters(48, 500, rng);
  const auto candidates = AllPairs(fa.size(), fb.size());
  const BitMatrix ma = BitMatrix::FromVectors(fa);
  const BitMatrix mb = BitMatrix::FromVectors(fb);
  const ComparisonEngine kernel(SimilarityMeasure::kDice);
  const auto expected = kernel.CompareMatrices(ma, mb, candidates, 0.7);
  const size_t expected_pruned = kernel.last_pruned_count();

  WorkStealingScheduler scheduler(4);
  constexpr int kCallers = 4;
  std::vector<std::vector<ScoredPair>> results(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      results[t] = kernel.CompareMatricesParallel(ma, mb, candidates, 0.7, scheduler);
    });
  }
  for (auto& c : callers) c.join();
  for (int t = 0; t < kCallers; ++t) {
    ASSERT_EQ(expected.size(), results[t].size()) << "caller " << t;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], results[t][i]) << "caller " << t << " pair " << i;
    }
  }
  EXPECT_EQ(kernel.last_comparison_count(), candidates.size());
  EXPECT_EQ(kernel.last_pruned_count(), expected_pruned);
}

TEST(CompareKernelsTest, ZeroLengthFiltersCompareDegenerate) {
  const std::vector<BitVector> fa(3), fb(3);  // zero-bit filters
  const auto candidates = AllPairs(3, 3);
  for (const SimilarityMeasure m : kAllMeasures) {
    const ComparisonEngine reference(MeasureFunction(m));
    const ComparisonEngine kernel(m);
    const auto expected = reference.Compare(fa, fb, candidates, 0.0);
    const auto actual = kernel.Compare(fa, fb, candidates, 0.0);
    ASSERT_EQ(expected.size(), actual.size()) << SimilarityMeasureName(m);
    for (size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(expected[i], actual[i]);
  }
}

TEST(CompareFieldwiseKernelTest, MatchesFunctionOverload) {
  Rng rng(29);
  const std::vector<std::vector<BitVector>> fa = {RandomFilters(12, 61, rng),
                                                  RandomFilters(12, 500, rng)};
  const std::vector<std::vector<BitVector>> fb = {RandomFilters(12, 61, rng),
                                                  RandomFilters(12, 500, rng)};
  const auto candidates = AllPairs(12, 12);
  for (const SimilarityMeasure m : kAllMeasures) {
    const auto expected = CompareFieldwise(fa, fb, candidates, MeasureFunction(m));
    const auto actual = CompareFieldwise(fa, fb, candidates, m);
    ASSERT_EQ(expected.size(), actual.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i].a, actual[i].a);
      EXPECT_EQ(expected[i].b, actual[i].b);
      ASSERT_EQ(expected[i].field_scores.size(), actual[i].field_scores.size());
      for (size_t f = 0; f < expected[i].field_scores.size(); ++f) {
        EXPECT_EQ(expected[i].field_scores[f], actual[i].field_scores[f])
            << SimilarityMeasureName(m) << " pair " << i << " field " << f;
      }
    }
  }
}

}  // namespace
}  // namespace pprl
