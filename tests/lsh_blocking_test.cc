#include "blocking/lsh_blocking.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "encoding/bloom_filter.h"

namespace pprl {
namespace {

std::vector<BitVector> EncodeNames(const std::vector<std::string>& names) {
  const BloomFilterEncoder encoder({1000, 20, BloomHashScheme::kDoubleHashing, ""});
  std::vector<BitVector> out;
  for (const auto& name : names) out.push_back(encoder.EncodeString(name));
  return out;
}

TEST(HammingLshTest, KeysPerTable) {
  Rng rng(1);
  const HammingLshBlocker blocker(1000, 5, 10, rng);
  EXPECT_EQ(blocker.num_tables(), 5u);
  EXPECT_EQ(blocker.bits_per_key(), 10u);
  const auto filters = EncodeNames({"smith"});
  const auto keys = blocker.Keys(filters[0]);
  EXPECT_EQ(keys.size(), 5u);
  // Keys are table-scoped.
  EXPECT_EQ(keys[0].substr(0, 3), "t0:");
  EXPECT_EQ(keys[4].substr(0, 3), "t4:");
}

TEST(HammingLshTest, IdenticalFiltersAlwaysCollide) {
  Rng rng(2);
  const HammingLshBlocker blocker(1000, 10, 20, rng);
  const auto fa = EncodeNames({"smith"});
  const auto fb = EncodeNames({"smith"});
  const auto pairs =
      HammingLshBlocker::CandidatePairs(blocker.BuildIndex(fa), blocker.BuildIndex(fb));
  ASSERT_EQ(pairs.size(), 1u);
}

TEST(HammingLshTest, SimilarCollideDissimilarRarely) {
  Rng rng(3);
  const HammingLshBlocker blocker(1000, 20, 16, rng);
  const auto fa = EncodeNames({"katherine"});
  const auto fb = EncodeNames({"catherine", "zzzzqqqq"});
  const auto pairs =
      HammingLshBlocker::CandidatePairs(blocker.BuildIndex(fa), blocker.BuildIndex(fb));
  bool found_similar = false, found_dissimilar = false;
  for (const auto& p : pairs) {
    if (p.b == 0) found_similar = true;
    if (p.b == 1) found_dissimilar = true;
  }
  EXPECT_TRUE(found_similar);
  EXPECT_FALSE(found_dissimilar);
}

TEST(HammingLshTest, CollisionProbabilityFormula) {
  Rng rng(4);
  const HammingLshBlocker blocker(1000, 10, 20, rng);
  EXPECT_DOUBLE_EQ(blocker.CollisionProbability(0), 1.0);
  EXPECT_LT(blocker.CollisionProbability(500), 0.01);
  // Monotone decreasing in distance.
  EXPECT_GT(blocker.CollisionProbability(50), blocker.CollisionProbability(150));
}

TEST(HammingLshTest, EmpiricalRecallMatchesTheory) {
  Rng rng(5);
  const size_t l = 500;
  const HammingLshBlocker blocker(l, 8, 12, rng);
  // Pairs at controlled Hamming distance d: flip d bits of a random filter.
  const size_t d = 60;
  size_t collisions = 0;
  const int trials = 300;
  for (int t = 0; t < trials; ++t) {
    BitVector x(l);
    for (size_t i = 0; i < l; ++i) {
      if (rng.NextBool(0.3)) x.Set(i);
    }
    BitVector y = x;
    // flip d distinct random positions
    std::vector<uint32_t> positions(l);
    for (size_t i = 0; i < l; ++i) positions[i] = static_cast<uint32_t>(i);
    rng.Shuffle(positions);
    for (size_t i = 0; i < d; ++i) y.Flip(positions[i]);
    const auto ka = blocker.Keys(x);
    const auto kb = blocker.Keys(y);
    for (size_t tbl = 0; tbl < ka.size(); ++tbl) {
      if (ka[tbl] == kb[tbl]) {
        ++collisions;
        break;
      }
    }
  }
  const double empirical = static_cast<double>(collisions) / trials;
  const double theory = blocker.CollisionProbability(d);
  EXPECT_NEAR(empirical, theory, 0.1);
}

TEST(MinHashLshTest, BandKeys) {
  const MinHashLshBlocker blocker(4, 3);
  MinHashSignature sig(12);
  for (size_t i = 0; i < 12; ++i) sig[i] = i;
  const auto keys = blocker.Keys(sig);
  ASSERT_EQ(keys.size(), 4u);
  EXPECT_EQ(keys[0], "b0:0,1,2,");
  EXPECT_EQ(keys[3], "b3:9,10,11,");
}

TEST(MinHashLshTest, IdenticalSignaturesCollide) {
  const MinHashLshBlocker blocker(8, 4);
  MinHashSignature sig(32, 7);
  const auto ia = blocker.BuildIndex({sig});
  const auto ib = blocker.BuildIndex({sig});
  EXPECT_EQ(MinHashLshBlocker::CandidatePairs(ia, ib).size(), 1u);
}

TEST(MinHashLshTest, CollisionProbabilitySCurve) {
  const MinHashLshBlocker blocker(20, 5);
  EXPECT_NEAR(blocker.CollisionProbability(1.0), 1.0, 1e-12);
  EXPECT_LT(blocker.CollisionProbability(0.2), 0.01);
  EXPECT_GT(blocker.CollisionProbability(0.9), 0.99);
  // S-curve: steeper in the middle.
  const double low = blocker.CollisionProbability(0.4);
  const double mid = blocker.CollisionProbability(0.6);
  const double high = blocker.CollisionProbability(0.8);
  EXPECT_GT(mid - low, 0.0);
  EXPECT_GT(high - mid, 0.0);
}

class LshTableSweep : public ::testing::TestWithParam<size_t> {};

/// Property: recall grows with table count (at fixed key width).
TEST_P(LshTableSweep, MoreTablesHigherCollisionProbability) {
  Rng rng(7);
  const HammingLshBlocker few(1000, GetParam(), 16, rng);
  Rng rng2(7);
  const HammingLshBlocker more(1000, GetParam() * 2, 16, rng2);
  EXPECT_LE(few.CollisionProbability(100), more.CollisionProbability(100) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Tables, LshTableSweep, ::testing::Values(1, 5, 10, 20));

}  // namespace
}  // namespace pprl
