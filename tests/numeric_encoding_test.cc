#include "encoding/numeric_encoding.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(NumericNeighborhoodTest, TokenCountAndCenter) {
  auto tokens = NumericNeighborhoodTokens("100", 1.0, 3);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->size(), 7u);
  EXPECT_EQ((*tokens)[3], "n100");  // center token
  EXPECT_EQ(tokens->front(), "n97");
  EXPECT_EQ(tokens->back(), "n103");
}

TEST(NumericNeighborhoodTest, StepGridSnapping) {
  // 102 with step 5 snaps to grid cell 20 (=100).
  auto tokens = NumericNeighborhoodTokens("102", 5.0, 1);
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(*tokens, (std::vector<std::string>{"n19", "n20", "n21"}));
}

TEST(NumericNeighborhoodTest, OverlapDecaysWithDistance) {
  auto t0 = NumericNeighborhoodTokens("50", 1.0, 5);
  auto t2 = NumericNeighborhoodTokens("52", 1.0, 5);
  auto t20 = NumericNeighborhoodTokens("70", 1.0, 5);
  ASSERT_TRUE(t0.ok() && t2.ok() && t20.ok());
  auto overlap = [](const std::vector<std::string>& a, const std::vector<std::string>& b) {
    size_t n = 0;
    for (const auto& x : a) {
      for (const auto& y : b) {
        if (x == y) ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(overlap(*t0, *t2), 9u);   // 11 - 2
  EXPECT_EQ(overlap(*t0, *t20), 0u);  // out of range
}

TEST(NumericNeighborhoodTest, RejectsBadInput) {
  EXPECT_FALSE(NumericNeighborhoodTokens("abc", 1.0, 3).ok());
  EXPECT_FALSE(NumericNeighborhoodTokens("12x", 1.0, 3).ok());
  EXPECT_FALSE(NumericNeighborhoodTokens("12", 0.0, 3).ok());
  EXPECT_FALSE(NumericNeighborhoodTokens("12", -1.0, 3).ok());
}

TEST(NumericNeighborhoodTest, AcceptsFloats) {
  auto tokens = NumericNeighborhoodTokens("3.7", 0.5, 2);
  ASSERT_TRUE(tokens.ok());
  // 3.7 / 0.5 = 7.4 -> rounds to 7
  EXPECT_EQ((*tokens)[2], "n7");
}

TEST(ExpectedNumericDiceTest, MatchesOverlapFormula) {
  // Same value -> 1; gap >= width -> 0; linear in between.
  EXPECT_DOUBLE_EQ(ExpectedNumericDice(10, 10, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(ExpectedNumericDice(10, 21, 1.0, 5), 0.0);
  EXPECT_NEAR(ExpectedNumericDice(10, 12, 1.0, 5), 9.0 / 11.0, 1e-12);
}

TEST(DaysSinceEpochTest, KnownDates) {
  EXPECT_EQ(DaysSinceEpoch("1970-01-01").value(), 0);
  EXPECT_EQ(DaysSinceEpoch("1970-01-02").value(), 1);
  EXPECT_EQ(DaysSinceEpoch("1969-12-31").value(), -1);
  EXPECT_EQ(DaysSinceEpoch("2000-03-01").value(), 11017);
  EXPECT_EQ(DaysSinceEpoch("2026-07-06").value(), 20640);
}

TEST(DaysSinceEpochTest, LeapYearHandling) {
  EXPECT_EQ(DaysSinceEpoch("2000-02-29").value() + 1,
            DaysSinceEpoch("2000-03-01").value());
  EXPECT_EQ(DaysSinceEpoch("1900-02-28").value() + 1,
            DaysSinceEpoch("1900-03-01").value());  // 1900 is not a leap year
}

TEST(DaysSinceEpochTest, RejectsMalformed) {
  EXPECT_FALSE(DaysSinceEpoch("1980/01/01").ok());
  EXPECT_FALSE(DaysSinceEpoch("01-01-1980").ok());
  EXPECT_FALSE(DaysSinceEpoch("1980-13-01").ok());
  EXPECT_FALSE(DaysSinceEpoch("1980-00-01").ok());
  EXPECT_FALSE(DaysSinceEpoch("1980-01-32").ok());
  EXPECT_FALSE(DaysSinceEpoch("198a-01-01").ok());
  EXPECT_FALSE(DaysSinceEpoch("").ok());
}

TEST(DateNeighborhoodTest, NearbyDatesShareTokens) {
  DateEncodingParams params;
  params.num_neighbors = 3;
  auto t1 = DateNeighborhoodTokens("1985-06-15", params);
  auto t2 = DateNeighborhoodTokens("1985-06-16", params);
  ASSERT_TRUE(t1.ok() && t2.ok());
  EXPECT_EQ(t1->size(), 7u);
  size_t shared = 0;
  for (const auto& x : *t1) {
    for (const auto& y : *t2) {
      if (x == y) ++shared;
    }
  }
  EXPECT_EQ(shared, 6u);
}

TEST(DateNeighborhoodTest, PropagatesDateErrors) {
  EXPECT_FALSE(DateNeighborhoodTokens("junk", DateEncodingParams{}).ok());
}

}  // namespace
}  // namespace pprl
