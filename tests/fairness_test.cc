#include "eval/fairness.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace pprl {
namespace {

/// Databases where group "m" records always match correctly and group "f"
/// records are systematically missed.
struct BiasedFixture {
  Database a;
  Database b;
  std::vector<ScoredPair> predicted;
};

BiasedFixture MakeBiased() {
  BiasedFixture f;
  f.a.schema = f.b.schema = DataGenerator::StandardSchema();
  const int sex_idx = f.a.schema.FieldIndex("sex");
  // 4 male entities (0-3) and 4 female entities (4-7), all shared.
  for (uint64_t e = 0; e < 8; ++e) {
    Record r;
    r.id = e;
    r.entity_id = e;
    r.values.assign(f.a.schema.size(), "x");
    r.values[static_cast<size_t>(sex_idx)] = e < 4 ? "m" : "f";
    f.a.records.push_back(r);
    f.b.records.push_back(r);
  }
  // Predictions: all male matches found, only 1 of 4 female matches.
  for (uint32_t i = 0; i < 4; ++i) f.predicted.push_back({i, i, 0.9});
  f.predicted.push_back({4, 4, 0.9});
  return f;
}

TEST(EvaluateByGroupTest, SplitsByProtectedField) {
  const BiasedFixture f = MakeBiased();
  const GroundTruth truth(f.a, f.b);
  const GroupConfusion by_group = EvaluateByGroup(f.predicted, truth, f.a, "sex");
  ASSERT_EQ(by_group.size(), 2u);
  EXPECT_DOUBLE_EQ(by_group.at("m").Recall(), 1.0);
  EXPECT_DOUBLE_EQ(by_group.at("f").Recall(), 0.25);
  EXPECT_EQ(by_group.at("f").false_negatives, 3u);
}

TEST(EvaluateByGroupTest, MissingProtectedValueGroup) {
  BiasedFixture f = MakeBiased();
  const int sex_idx = f.a.schema.FieldIndex("sex");
  f.a.records[0].values[static_cast<size_t>(sex_idx)].clear();
  const GroundTruth truth(f.a, f.b);
  const GroupConfusion by_group = EvaluateByGroup(f.predicted, truth, f.a, "sex");
  EXPECT_EQ(by_group.count("<missing>"), 1u);
}

TEST(EvaluateByGroupTest, UnknownFieldFallsBackToSingleGroup) {
  const BiasedFixture f = MakeBiased();
  const GroundTruth truth(f.a, f.b);
  const GroupConfusion by_group =
      EvaluateByGroup(f.predicted, truth, f.a, "not_a_field");
  ASSERT_EQ(by_group.size(), 1u);
  EXPECT_EQ(by_group.count("<missing>"), 1u);
}

TEST(FairnessGapsTest, DetectsRecallGap) {
  const BiasedFixture f = MakeBiased();
  const GroundTruth truth(f.a, f.b);
  const FairnessGaps gaps =
      ComputeFairnessGaps(EvaluateByGroup(f.predicted, truth, f.a, "sex"));
  EXPECT_DOUBLE_EQ(gaps.recall_gap, 0.75);
  EXPECT_DOUBLE_EQ(gaps.precision_gap, 0.0);  // both groups precise
  EXPECT_GT(gaps.f1_gap, 0.3);
}

TEST(FairnessGapsTest, FairPredictionsHaveZeroGaps) {
  BiasedFixture f = MakeBiased();
  f.predicted.clear();
  for (uint32_t i = 0; i < 8; ++i) f.predicted.push_back({i, i, 0.9});
  const GroundTruth truth(f.a, f.b);
  const FairnessGaps gaps =
      ComputeFairnessGaps(EvaluateByGroup(f.predicted, truth, f.a, "sex"));
  EXPECT_DOUBLE_EQ(gaps.recall_gap, 0.0);
  EXPECT_DOUBLE_EQ(gaps.precision_gap, 0.0);
  EXPECT_DOUBLE_EQ(gaps.f1_gap, 0.0);
}

TEST(FairnessGapsTest, EmptyGroups) {
  const FairnessGaps gaps = ComputeFairnessGaps({});
  EXPECT_DOUBLE_EQ(gaps.recall_gap, 0.0);
}

}  // namespace
}  // namespace pprl
