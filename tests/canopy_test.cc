#include "blocking/canopy.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "eval/metrics.h"
#include "datagen/generator.h"

namespace pprl {
namespace {

MinHashSignature Sign(const MinHasher& hasher, const std::string& value) {
  return hasher.Sign(QGrams(NormalizeQid(value)));
}

TEST(CanopyBlockerTest, SimilarRecordsShareCanopy) {
  const MinHasher hasher(128, 1);
  const std::vector<MinHashSignature> a = {Sign(hasher, "katherine"),
                                           Sign(hasher, "wilson")};
  const std::vector<MinHashSignature> b = {Sign(hasher, "catherine"),
                                           Sign(hasher, "nguyen")};
  CanopyBlocker blocker(0.3, 0.8, 7);
  const auto pairs = blocker.CandidatePairs(a, b);
  bool found = false;
  for (const auto& p : pairs) {
    if (p.a == 0 && p.b == 0) found = true;
    EXPECT_FALSE(p.a == 1 && p.b == 1);  // wilson/nguyen unrelated
  }
  EXPECT_TRUE(found);
}

TEST(CanopyBlockerTest, EmptyInputs) {
  CanopyBlocker blocker(0.3, 0.8, 1);
  EXPECT_TRUE(blocker.CandidatePairs({}, {}).empty());
  const MinHasher hasher(64, 2);
  const std::vector<MinHashSignature> a = {Sign(hasher, "x")};
  EXPECT_TRUE(blocker.CandidatePairs(a, {}).empty());
}

TEST(CanopyBlockerTest, SwappedThresholdsReordered) {
  // (loose, tight) passed reversed must still work.
  const MinHasher hasher(64, 3);
  const std::vector<MinHashSignature> a = {Sign(hasher, "smith")};
  const std::vector<MinHashSignature> b = {Sign(hasher, "smith")};
  CanopyBlocker blocker(0.9, 0.2, 5);
  EXPECT_EQ(blocker.CandidatePairs(a, b).size(), 1u);
}

TEST(CanopyBlockerTest, CountsCanopies) {
  const MinHasher hasher(64, 4);
  const std::vector<MinHashSignature> a = {Sign(hasher, "alpha"), Sign(hasher, "zzzz")};
  const std::vector<MinHashSignature> b = {Sign(hasher, "alpha"), Sign(hasher, "qqqq")};
  CanopyBlocker blocker(0.4, 0.9, 11);
  blocker.CandidatePairs(a, b);
  EXPECT_GE(blocker.last_num_canopies(), 2u);
  EXPECT_LE(blocker.last_num_canopies(), 4u);
}

TEST(CanopyBlockerTest, ReducesPairsOnGeneratedData) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 200;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const MinHasher hasher(128, 5);
  auto signatures = [&](const Database& db) {
    std::vector<MinHashSignature> sigs;
    for (const Record& r : db.records) {
      sigs.push_back(hasher.Sign(QGrams(
          NormalizeQid(r.values[0] + " " + r.values[1] + " " + r.values[3]))));
    }
    return sigs;
  };
  const auto sa = signatures((*dbs)[0]);
  const auto sb = signatures((*dbs)[1]);
  CanopyBlocker blocker(0.25, 0.7, 13);
  const auto pairs = blocker.CandidatePairs(sa, sb);
  const GroundTruth truth((*dbs)[0], (*dbs)[1]);
  const auto quality = EvaluateBlocking(pairs, truth, 200, 200);
  EXPECT_GT(quality.reduction_ratio, 0.5);
  EXPECT_GT(quality.pairs_completeness, 0.6);
}

}  // namespace
}  // namespace pprl
