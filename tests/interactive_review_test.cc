#include "linkage/interactive_review.h"

#include <gtest/gtest.h>

#include "datagen/corruptor.h"
#include "datagen/generator.h"

namespace pprl {
namespace {

Record MakeRecord(const std::string& first, const std::string& last,
                  const std::string& dob) {
  Record r;
  r.values = {first, last, "f", dob, "springfield", "1 main st", "2000", "0400000000"};
  return r;
}

const std::vector<std::string> kReviewFields = {"first_name", "last_name", "dob"};

TEST(MaskPairTest, RevealsRequestedPositions) {
  const MaskedPair none = MaskPair("smith", "smyth", 0, 1);
  EXPECT_EQ(none.a, "*****");
  EXPECT_EQ(none.b, "*****");
  const MaskedPair all = MaskPair("smith", "smyth", 5, 1);
  EXPECT_EQ(all.a, "smith");
  EXPECT_EQ(all.b, "smyth");
  const MaskedPair partial = MaskPair("smith", "smyth", 2, 1);
  size_t visible = 0;
  for (char c : partial.a) {
    if (c != '*') ++visible;
  }
  EXPECT_EQ(visible, 2u);
}

TEST(MaskPairTest, UnequalLengths) {
  const MaskedPair m = MaskPair("ab", "abcdef", 6, 3);
  EXPECT_EQ(m.a.size(), 2u);
  EXPECT_EQ(m.b.size(), 6u);
}

TEST(ReviewPairTest, IdenticalRecordsDecidedQuickly) {
  const Schema schema = DataGenerator::StandardSchema();
  const Record r = MakeRecord("mary", "smith", "1980-01-01");
  ReviewPolicy policy;
  auto outcome = ReviewPair(schema, r, r, kReviewFields, policy, 1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->decided);
  EXPECT_TRUE(outcome->is_match);
  EXPECT_EQ(outcome->rounds_used, 1u);
  EXPECT_LT(outcome->fraction_revealed, 0.45);
}

TEST(ReviewPairTest, DifferentRecordsRejected) {
  const Schema schema = DataGenerator::StandardSchema();
  const Record a = MakeRecord("mary", "smith", "1980-01-01");
  const Record b = MakeRecord("john", "nguyen", "1955-12-31");
  ReviewPolicy policy;
  auto outcome = ReviewPair(schema, a, b, kReviewFields, policy, 2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->decided);
  EXPECT_FALSE(outcome->is_match);
}

TEST(ReviewPairTest, NearMatchNeedsMoreRounds) {
  const Schema schema = DataGenerator::StandardSchema();
  const Record a = MakeRecord("katherine", "anderson", "1980-01-01");
  const Record b = MakeRecord("catherine", "andersen", "1980-01-01");
  ReviewPolicy policy;
  policy.decide_margin = 0.93;
  auto outcome = ReviewPair(schema, a, b, kReviewFields, policy, 3);
  ASSERT_TRUE(outcome.ok());
  // Whatever the decision, it must have cost more disclosure than an
  // identical pair does.
  const Record same = MakeRecord("katherine", "anderson", "1980-01-01");
  auto easy = ReviewPair(schema, same, same, kReviewFields, policy, 3);
  ASSERT_TRUE(easy.ok());
  EXPECT_GE(outcome->rounds_used, easy->rounds_used);
}

TEST(ReviewPairTest, ValidatesArguments) {
  const Schema schema = DataGenerator::StandardSchema();
  const Record r = MakeRecord("a", "b", "1980-01-01");
  EXPECT_FALSE(ReviewPair(schema, r, r, {}, ReviewPolicy{}, 1).ok());
  EXPECT_FALSE(ReviewPair(schema, r, r, {"no_field"}, ReviewPolicy{}, 1).ok());
  ReviewPolicy zero;
  zero.max_rounds = 0;
  EXPECT_FALSE(ReviewPair(schema, r, r, kReviewFields, zero, 1).ok());
}

TEST(ReviewPairsTest, BatchMetersPrivacyBudget) {
  const Schema schema = DataGenerator::StandardSchema();
  DataGenerator gen(GeneratorConfig{});
  Database db = gen.GenerateClean(30);
  Corruptor corruptor(CorruptorConfig{}, 5);
  std::vector<Record> corrupted;
  corrupted.reserve(30);
  for (const Record& r : db.records) {
    corrupted.push_back(corruptor.CorruptExactly(schema, r, 1));
  }
  std::vector<std::pair<const Record*, const Record*>> pairs;
  for (size_t i = 0; i < 30; ++i) {
    // Half true pairs (corrupted copies), half cross pairs (different people).
    if (i % 2 == 0) {
      pairs.push_back({&db.records[i], &corrupted[i]});
    } else {
      pairs.push_back({&db.records[i], &db.records[(i + 7) % 30]});
    }
  }
  ReviewPolicy policy;
  auto result = ReviewPairs(schema, pairs, kReviewFields, policy, 99);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outcomes.size(), 30u);
  // The whole point of [22]: deciding must not require full disclosure.
  EXPECT_LT(result->mean_fraction_revealed, 0.9);
  EXPECT_GT(result->mean_fraction_revealed, 0.0);
  // Most pairs here are easy; the batch should be mostly decided.
  size_t decided = 0;
  for (const auto& o : result->outcomes) decided += o.decided ? 1 : 0;
  EXPECT_GT(decided, 20u);
}

}  // namespace
}  // namespace pprl
