#include "crypto/sra.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

class SraTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(11);
    domain_ = new SraDomain(SraDomain::Generate(rng, 64));
  }
  static void TearDownTestSuite() {
    delete domain_;
    domain_ = nullptr;
  }

  static SraDomain* domain_;
};

SraDomain* SraTest::domain_ = nullptr;

TEST_F(SraTest, DomainIsSafePrime) {
  Rng rng(1);
  EXPECT_TRUE(IsProbablePrime(domain_->p, rng));
  EXPECT_TRUE(IsProbablePrime(domain_->q, rng));
  EXPECT_EQ(domain_->q.ShiftLeft(1) + BigInt(1), domain_->p);
}

TEST_F(SraTest, EncryptDecryptRoundTrip) {
  Rng rng(3);
  auto cipher = SraCipher::Generate(*domain_, rng);
  ASSERT_TRUE(cipher.ok());
  for (int64_t v : {2, 17, 123456}) {
    auto enc = cipher->Encrypt(BigInt(v));
    ASSERT_TRUE(enc.ok());
    auto dec = cipher->Decrypt(enc.value());
    ASSERT_TRUE(dec.ok());
    EXPECT_EQ(dec.value(), BigInt(v));
  }
}

TEST_F(SraTest, Commutativity) {
  Rng rng(5);
  auto a = SraCipher::Generate(*domain_, rng);
  auto b = SraCipher::Generate(*domain_, rng);
  ASSERT_TRUE(a.ok() && b.ok());
  const BigInt x(987654);
  const BigInt ab = b->Encrypt(a->Encrypt(x).value()).value();
  const BigInt ba = a->Encrypt(b->Encrypt(x).value()).value();
  EXPECT_EQ(ab, ba);
}

TEST_F(SraTest, EncryptStringDeterministicPerKey) {
  Rng rng(7);
  auto cipher = SraCipher::Generate(*domain_, rng);
  ASSERT_TRUE(cipher.ok());
  EXPECT_EQ(cipher->EncryptString("alice"), cipher->EncryptString("alice"));
  EXPECT_NE(cipher->EncryptString("alice"), cipher->EncryptString("bob"));
}

TEST_F(SraTest, RejectsOutOfRange) {
  Rng rng(9);
  auto cipher = SraCipher::Generate(*domain_, rng);
  ASSERT_TRUE(cipher.ok());
  EXPECT_FALSE(cipher->Encrypt(BigInt(0)).ok());
  EXPECT_FALSE(cipher->Encrypt(domain_->p).ok());
  EXPECT_FALSE(cipher->Decrypt(BigInt(-1)).ok());
}

TEST_F(SraTest, PrivateSetIntersectionFindsExactMatches) {
  Rng rng(13);
  const std::vector<std::string> a = {"alice", "bob", "carol", "dave"};
  const std::vector<std::string> b = {"eve", "carol", "alice", "mallory"};
  size_t bytes = 0;
  const auto matches = SraPrivateSetIntersection(a, b, *domain_, rng, &bytes);
  // Indices into `a` whose value occurs in `b`: alice (0) and carol (2).
  EXPECT_EQ(matches, (std::vector<size_t>{0, 2}));
  EXPECT_GT(bytes, 0u);
}

TEST_F(SraTest, PrivateSetIntersectionEmptySets) {
  Rng rng(17);
  EXPECT_TRUE(SraPrivateSetIntersection({}, {"x"}, *domain_, rng).empty());
  EXPECT_TRUE(SraPrivateSetIntersection({"x"}, {}, *domain_, rng).empty());
}

TEST_F(SraTest, PrivateSetIntersectionNoOverlap) {
  Rng rng(19);
  const auto matches =
      SraPrivateSetIntersection({"a", "b"}, {"c", "d"}, *domain_, rng);
  EXPECT_TRUE(matches.empty());
}

TEST_F(SraTest, CommunicationScalesWithInputs) {
  Rng rng(23);
  size_t small_bytes = 0, large_bytes = 0;
  SraPrivateSetIntersection({"a"}, {"b"}, *domain_, rng, &small_bytes);
  SraPrivateSetIntersection({"a", "b", "c", "d"}, {"e", "f", "g", "h"}, *domain_, rng,
                            &large_bytes);
  EXPECT_GT(large_bytes, small_bytes);
}

}  // namespace
}  // namespace pprl
