#include "linkage/clustering.h"

#include <set>
#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

RecordRef R(uint32_t db, uint32_t rec) { return RecordRef{db, rec}; }

TEST(ConnectedComponentsTest, MergesTransitively) {
  const std::vector<MatchEdge> edges = {
      {R(0, 1), R(1, 1), 0.9},
      {R(1, 1), R(2, 1), 0.9},
      {R(0, 2), R(1, 2), 0.8},
  };
  const auto clusters = ConnectedComponents(edges);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].size(), 3u);  // the chained triple
  EXPECT_EQ(clusters[1].size(), 2u);
}

TEST(ConnectedComponentsTest, EmptyEdges) {
  EXPECT_TRUE(ConnectedComponents({}).empty());
}

TEST(ConnectedComponentsTest, SelfContainedPairs) {
  const auto clusters = ConnectedComponents({{R(0, 0), R(1, 0), 1.0}});
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (Cluster{R(0, 0), R(1, 0)}));
}

TEST(StarClusteringTest, AvoidsChainMerging) {
  // A weak bridge between two strong pairs: star keeps them apart when the
  // bridge endpoint is claimed by a stronger centre first.
  const std::vector<MatchEdge> edges = {
      {R(0, 0), R(1, 0), 0.95},
      {R(0, 1), R(1, 1), 0.95},
      {R(1, 0), R(0, 1), 0.55},  // bridge
  };
  const auto star = StarClustering(edges);
  const auto components = ConnectedComponents(edges);
  EXPECT_EQ(components.size(), 1u);  // components over-merge
  EXPECT_EQ(star.size(), 2u);        // star does not
}

TEST(StarClusteringTest, EveryRecordAssignedOnce) {
  const std::vector<MatchEdge> edges = {
      {R(0, 0), R(1, 0), 0.9}, {R(0, 0), R(1, 1), 0.8}, {R(1, 0), R(2, 2), 0.7}};
  const auto clusters = StarClustering(edges);
  std::set<RecordRef> seen;
  for (const auto& cluster : clusters) {
    for (const auto& ref : cluster) EXPECT_TRUE(seen.insert(ref).second);
  }
  EXPECT_EQ(seen.size(), 4u);
}

class IncrementalClustererTest : public ::testing::Test {
 protected:
  static BitVector Encode(const std::string& name) {
    const BloomFilterEncoder encoder({500, 15, BloomHashScheme::kDoubleHashing, ""});
    return encoder.EncodeString(name);
  }
  static PairSimilarityFunction Dice() {
    return [](const BitVector& a, const BitVector& b) { return DiceSimilarity(a, b); };
  }
};

TEST_F(IncrementalClustererTest, GroupsSimilarRecords) {
  IncrementalClusterer clusterer(0.7, Dice());
  const size_t c1 = clusterer.Insert(R(0, 0), Encode("katherine"));
  const size_t c2 = clusterer.Insert(R(1, 0), Encode("catherine"));
  const size_t c3 = clusterer.Insert(R(2, 0), Encode("zzzzyyyy"));
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, c3);
  EXPECT_EQ(clusterer.clusters().size(), 2u);
}

TEST_F(IncrementalClustererTest, OnePerDatabaseConstraint) {
  IncrementalClusterer clusterer(0.7, Dice());
  clusterer.set_one_per_database(true);
  clusterer.Insert(R(0, 0), Encode("smith"));
  // Same database: must open a new cluster even though identical.
  const size_t c = clusterer.Insert(R(0, 1), Encode("smith"));
  EXPECT_EQ(c, 1u);
  // Different database: may join.
  const size_t c2 = clusterer.Insert(R(1, 0), Encode("smith"));
  EXPECT_TRUE(c2 == 0u || c2 == 1u);
}

TEST_F(IncrementalClustererTest, ComparisonsGrowSubQuadraticallyWithClusters) {
  IncrementalClusterer clusterer(0.95, Dice());
  // 20 distinct names -> ~20 clusters; comparisons <= n * clusters.
  for (uint32_t i = 0; i < 20; ++i) {
    clusterer.Insert(R(0, i), Encode("name" + std::to_string(i * 7919)));
  }
  EXPECT_LE(clusterer.comparisons(), 20u * 20u);
  EXPECT_GT(clusterer.comparisons(), 0u);
}

TEST_F(IncrementalClustererTest, RepresentativeIsMajority) {
  IncrementalClusterer clusterer(0.5, Dice());
  clusterer.Insert(R(0, 0), Encode("smith"));
  clusterer.Insert(R(1, 0), Encode("smith"));
  clusterer.Insert(R(2, 0), Encode("smyth"));
  // All three should have landed in one cluster.
  ASSERT_EQ(clusterer.clusters().size(), 1u);
  EXPECT_EQ(clusterer.clusters()[0].size(), 3u);
}

TEST(ClustersInAtLeastTest, SubsetMatching) {
  const std::vector<Cluster> clusters = {
      {R(0, 0), R(1, 0), R(2, 0)},      // 3 databases
      {R(0, 1), R(1, 1)},               // 2 databases
      {R(0, 2), R(0, 3)},               // 1 database (internal duplicate)
  };
  EXPECT_EQ(ClustersInAtLeast(clusters, 3).size(), 1u);
  EXPECT_EQ(ClustersInAtLeast(clusters, 2).size(), 2u);
  EXPECT_EQ(ClustersInAtLeast(clusters, 1).size(), 3u);
  EXPECT_TRUE(ClustersInAtLeast(clusters, 4).empty());
}

}  // namespace
}  // namespace pprl
