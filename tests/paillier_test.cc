#include "crypto/paillier.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

class PaillierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    auto generated = Paillier::Generate(rng, 128);
    ASSERT_TRUE(generated.ok()) << generated.status().ToString();
    paillier_ = std::make_unique<Paillier>(std::move(generated).value());
    rng_ = std::make_unique<Rng>(77);
  }

  std::unique_ptr<Paillier> paillier_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(PaillierTest, EncryptDecryptRoundTrip) {
  for (int64_t v : {0, 1, 2, 255, 123456, 99999999}) {
    auto c = paillier_->Encrypt(BigInt(v), *rng_);
    ASSERT_TRUE(c.ok());
    auto d = paillier_->Decrypt(c.value());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(d.value(), BigInt(v)) << "value " << v;
  }
}

TEST_F(PaillierTest, EncryptionIsRandomized) {
  auto c1 = paillier_->Encrypt(BigInt(5), *rng_);
  auto c2 = paillier_->Encrypt(BigInt(5), *rng_);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->value, c2->value);  // semantic security needs fresh randomness
}

TEST_F(PaillierTest, HomomorphicAddition) {
  auto ca = paillier_->Encrypt(BigInt(1234), *rng_);
  auto cb = paillier_->Encrypt(BigInt(8766), *rng_);
  ASSERT_TRUE(ca.ok() && cb.ok());
  const auto sum = paillier_->AddCiphertexts(ca.value(), cb.value());
  EXPECT_EQ(paillier_->Decrypt(sum).value(), BigInt(10000));
}

TEST_F(PaillierTest, HomomorphicPlaintextAddition) {
  auto c = paillier_->Encrypt(BigInt(100), *rng_);
  ASSERT_TRUE(c.ok());
  const auto shifted = paillier_->AddPlaintext(c.value(), BigInt(23));
  EXPECT_EQ(paillier_->Decrypt(shifted).value(), BigInt(123));
}

TEST_F(PaillierTest, NegativePlaintextAdditionWraps) {
  auto c = paillier_->Encrypt(BigInt(100), *rng_);
  ASSERT_TRUE(c.ok());
  const auto shifted = paillier_->AddPlaintext(c.value(), BigInt(-30));
  EXPECT_EQ(paillier_->Decrypt(shifted).value(), BigInt(70));
}

TEST_F(PaillierTest, HomomorphicScalarMultiplication) {
  auto c = paillier_->Encrypt(BigInt(111), *rng_);
  ASSERT_TRUE(c.ok());
  const auto tripled = paillier_->MultiplyPlaintext(c.value(), BigInt(3));
  EXPECT_EQ(paillier_->Decrypt(tripled).value(), BigInt(333));
}

TEST_F(PaillierTest, RerandomizePreservesPlaintext) {
  auto c = paillier_->Encrypt(BigInt(555), *rng_);
  ASSERT_TRUE(c.ok());
  const auto r = paillier_->Rerandomize(c.value(), *rng_);
  EXPECT_NE(r.value, c->value);
  EXPECT_EQ(paillier_->Decrypt(r).value(), BigInt(555));
}

TEST_F(PaillierTest, RejectsOutOfRangePlaintext) {
  EXPECT_FALSE(paillier_->Encrypt(BigInt(-1), *rng_).ok());
  EXPECT_FALSE(paillier_->Encrypt(paillier_->public_key().n, *rng_).ok());
}

TEST_F(PaillierTest, RejectsOutOfRangeCiphertext) {
  EXPECT_FALSE(paillier_->Decrypt({paillier_->public_key().n_squared}).ok());
  EXPECT_FALSE(paillier_->Decrypt({BigInt(-3)}).ok());
}

TEST(PaillierGenerateTest, RejectsTinyModulus) {
  Rng rng(1);
  EXPECT_FALSE(Paillier::Generate(rng, 8).ok());
}

TEST(PaillierGenerateTest, SumOfManyEncryptions) {
  Rng rng(5);
  auto paillier = Paillier::Generate(rng, 96);
  ASSERT_TRUE(paillier.ok());
  // Homomorphically accumulate 0..19.
  auto acc = paillier->Encrypt(BigInt(0), rng);
  ASSERT_TRUE(acc.ok());
  PaillierCiphertext total = acc.value();
  for (int64_t i = 0; i < 20; ++i) {
    auto c = paillier->Encrypt(BigInt(i), rng);
    ASSERT_TRUE(c.ok());
    total = paillier->AddCiphertexts(total, c.value());
  }
  EXPECT_EQ(paillier->Decrypt(total).value(), BigInt(190));
}

}  // namespace
}  // namespace pprl
