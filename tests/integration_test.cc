/// End-to-end integration tests spanning datagen -> encoding -> blocking ->
/// comparison -> classification -> clustering -> evaluation, i.e. the whole
/// PPRL process of the survey's overview section.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "blocking/lsh_blocking.h"
#include "datagen/generator.h"
#include "encoding/bloom_filter.h"
#include "eval/fairness.h"
#include "eval/metrics.h"
#include "filtering/ppjoin.h"
#include "linkage/classifier.h"
#include "linkage/clustering.h"
#include "linkage/comparison.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

TEST(IntegrationTest, ManualPipelineMatchesHighLevelApi) {
  // Build the same linkage once through the composable pieces and once
  // through PprlPipeline; the results must coincide.
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 150;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];

  PipelineConfig config;
  config.blocking = BlockingScheme::kNone;  // deterministic comparison set
  config.match_threshold = 0.8;
  auto high_level = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(high_level.ok());

  // Manual: CLK encode, full pairs, Dice, threshold, greedy 1:1.
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  auto fa = encoder.EncodeDatabase(a);
  auto fb = encoder.EncodeDatabase(b);
  ASSERT_TRUE(fa.ok() && fb.ok());
  const ComparisonEngine engine(
      [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });
  auto scored = engine.Compare(*fa, *fb, FullPairs(a.size(), b.size()), 0.8);
  auto matches = GreedyOneToOne(ThresholdClassifier(0.8, 0.8).SelectMatches(scored));

  ASSERT_EQ(matches.size(), high_level->matches.size());
}

TEST(IntegrationTest, PpjoinAgreesWithFullComparison) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 120;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  auto fa = encoder.EncodeDatabase((*dbs)[0]);
  auto fb = encoder.EncodeDatabase((*dbs)[1]);
  ASSERT_TRUE(fa.ok() && fb.ok());

  const double threshold = 0.8;
  const PpjoinIndex index(*fb, threshold);
  const auto joined = index.Join(*fa);

  const ComparisonEngine engine(
      [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });
  const auto scored =
      engine.Compare(*fa, *fb, FullPairs(fa->size(), fb->size()), threshold);
  EXPECT_EQ(joined.size(), scored.size());
}

TEST(IntegrationTest, MultiDatabaseClusteringFindsSharedEntities) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 80;
  scenario.num_databases = 3;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 0.5;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());

  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  IncrementalClusterer clusterer(
      0.75, [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });
  clusterer.set_one_per_database(true);

  // Stream all records through the incremental clusterer.
  std::map<std::pair<uint32_t, uint32_t>, uint64_t> entity_of;
  for (uint32_t d = 0; d < 3; ++d) {
    const Database& db = (*dbs)[d];
    auto filters = encoder.EncodeDatabase(db);
    ASSERT_TRUE(filters.ok());
    for (uint32_t r = 0; r < db.records.size(); ++r) {
      clusterer.Insert({d, r}, (*filters)[r]);
      entity_of[{d, r}] = db.records[r].entity_id;
    }
  }

  // Shared entities (ids < 40) should mostly form 3-database clusters.
  const auto full_clusters = ClustersInAtLeast(clusterer.clusters(), 3);
  size_t pure = 0;
  for (const auto& cluster : full_clusters) {
    std::set<uint64_t> entities;
    for (const auto& ref : cluster) entities.insert(entity_of[{ref.database, ref.record}]);
    if (entities.size() == 1) ++pure;
  }
  EXPECT_GT(full_clusters.size(), 20u);
  // Most 3-way clusters must be pure (same true entity).
  EXPECT_GT(static_cast<double>(pure) / static_cast<double>(full_clusters.size()), 0.8);
}

TEST(IntegrationTest, FellegiSunterOnEncodedFieldsBeatsLooseThreshold) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 150;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];
  const GroundTruth truth(a, b);

  // Field-level Bloom filters for four QIDs.
  BloomFilterParams params;
  params.num_bits = 500;
  params.num_hashes = 15;
  const BloomFilterEncoder encoder(params);
  const std::vector<std::string> fields = {"first_name", "last_name", "dob", "city"};
  std::vector<std::vector<BitVector>> fa(fields.size()), fb(fields.size());
  for (size_t f = 0; f < fields.size(); ++f) {
    const int idx = a.schema.FieldIndex(fields[f]);
    ASSERT_GE(idx, 0);
    for (const Record& r : a.records) {
      fa[f].push_back(encoder.EncodeString(r.values[static_cast<size_t>(idx)]));
    }
    for (const Record& r : b.records) {
      fb[f].push_back(encoder.EncodeString(r.values[static_cast<size_t>(idx)]));
    }
  }
  const auto pairs = CompareFieldwise(
      fa, fb, FullPairs(a.size(), b.size()),
      [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });

  FellegiSunterClassifier::Params fs_params;
  fs_params.agreement_threshold = 0.65;
  fs_params.initial_prevalence = 0.01;
  FellegiSunterClassifier fs(fs_params);
  ASSERT_TRUE(fs.Fit(pairs).ok());
  const auto fs_matches = fs.SelectMatches(pairs, 0.0);
  std::vector<ScoredPair> fs_scored;
  for (const auto& p : fs_matches) fs_scored.push_back({p.a, p.b, 1.0});
  const double fs_f1 = EvaluateMatches(fs_scored, truth).F1();
  EXPECT_GT(fs_f1, 0.6);
}

TEST(IntegrationTest, FairnessMeasurableOnPipelineOutput) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 200;
  scenario.corruption.mean_corruptions = 1.5;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];
  PipelineConfig config;
  config.match_threshold = 0.8;
  auto output = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(output.ok());
  const GroundTruth truth(a, b);
  const auto by_group = EvaluateByGroup(output->matches, truth, a, "sex");
  EXPECT_GE(by_group.size(), 2u);
  const FairnessGaps gaps = ComputeFairnessGaps(by_group);
  EXPECT_GE(gaps.recall_gap, 0.0);
  EXPECT_LE(gaps.recall_gap, 1.0);
}

}  // namespace
}  // namespace pprl
