/// End-to-end parity of the I/O subsystem: the streaming ingest path and
/// the legacy materializing path must produce byte-identical CLK matrices,
/// the CSV and PCLK shard files must load to byte-identical matrices, and
/// a linkage run over either must produce identical clusters.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "datagen/io.h"
#include "encoding/bloom_filter.h"
#include "encoding/clk_io.h"
#include "filtering/ppjoin.h"
#include "io/ingest.h"
#include "io/pclk.h"
#include "linkage/clustering.h"
#include "linkage/matching.h"

namespace pprl {
namespace {

/// A small population with deliberate dialect hazards (quoted commas,
/// escaped quotes, empty values) and cross-party overlap.
std::string MakeQidCsv(int party, int rows) {
  std::string csv = "id,first_name,last_name,city\n";
  for (int r = 0; r < rows; ++r) {
    // Entities 0..rows-1 for party 0; party 1 shifts by rows/2, so half of
    // its records name the same people.
    const int entity = party == 0 ? r : r + rows / 2;
    csv += std::to_string(1000 * (party + 1) + r) + ",";
    csv += "\"name" + std::to_string(entity) + ", jr\",";
    if (entity % 7 == 0) {
      csv += "\"o\"\"hara" + std::to_string(entity) + "\",";
    } else {
      csv += "fam" + std::to_string(entity) + ",";
    }
    csv += (entity % 5 == 0) ? "\n" : "city" + std::to_string(entity % 3) + "\n";
  }
  return csv;
}

std::string WriteTempFile(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  EXPECT_NE(f, nullptr);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return path;
}

ClkEncoder MakeEncoder() {
  BloomFilterParams params;
  params.num_bits = 512;
  std::vector<ClkFieldConfig> fields;
  for (const char* name : {"first_name", "last_name", "city"}) {
    ClkFieldConfig field;
    field.field_name = name;
    field.num_hashes = 10;
    fields.push_back(field);
  }
  return ClkEncoder(std::move(params), std::move(fields));
}

void ExpectShardsBitIdentical(const EncodedShard& a, const EncodedShard& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.ids, b.ids);
  ASSERT_EQ(a.bits.num_bits(), b.bits.num_bits());
  for (size_t r = 0; r < a.size(); ++r) {
    ASSERT_EQ(std::memcmp(a.bits.row(r), b.bits.row(r),
                          a.bits.words_per_row() * 8),
              0)
        << "row " << r << " differs";
  }
}

/// The legacy materializing chain: whole-file CsvTable -> Database ->
/// per-record BitVectors -> shard.
EncodedShard LegacyEncode(const std::string& path, const ClkEncoder& encoder) {
  auto table = ReadCsvFile(path);
  EXPECT_TRUE(table.ok()) << table.status().ToString();
  auto db = DatabaseFromCsv(*table);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  EncodedDatabase encoded;
  for (const Record& record : db->records) {
    auto filter = encoder.Encode(db->schema, record);
    EXPECT_TRUE(filter.ok()) << filter.status().ToString();
    encoded.ids.push_back(record.id);
    encoded.filters.push_back(std::move(*filter));
  }
  return ShardFromEncodedDatabase(encoded);
}

std::vector<Cluster> LinkToClusters(const EncodedShard& a,
                                    const EncodedShard& b) {
  const EncodedDatabase a_db = EncodedDatabaseFromShard(a);
  const EncodedDatabase b_db = EncodedDatabaseFromShard(b);
  const PpjoinIndex index(b_db.filters, /*dice_threshold=*/0.8);
  const auto joined = index.Join(a_db.filters);
  std::vector<ScoredPair> scored;
  for (const auto& m : joined) scored.push_back({m.a, m.b, m.dice});
  std::vector<MatchEdge> edges;
  for (const ScoredPair& m : GreedyOneToOne(std::move(scored))) {
    edges.push_back({{0, static_cast<uint32_t>(m.a)},
                     {1, static_cast<uint32_t>(m.b)},
                     m.score});
  }
  return ConnectedComponents(edges);
}

class IngestParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_csv_ = WriteTempFile("parity_a.csv", MakeQidCsv(0, 120));
    b_csv_ = WriteTempFile("parity_b.csv", MakeQidCsv(1, 120));
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) std::remove(p.c_str());
    std::remove(a_csv_.c_str());
    std::remove(b_csv_.c_str());
  }
  std::string Track(const std::string& path) {
    cleanup_.push_back(path);
    return path;
  }

  std::string a_csv_, b_csv_;
  std::vector<std::string> cleanup_;
};

TEST_F(IngestParityTest, StreamingEncodeMatchesLegacyEncodeBitwise) {
  const ClkEncoder encoder = MakeEncoder();
  auto streamed = io::EncodeCsvToShard(a_csv_, encoder);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  const EncodedShard legacy = LegacyEncode(a_csv_, encoder);
  ExpectShardsBitIdentical(legacy, *streamed);
}

TEST_F(IngestParityTest, StreamingDatabaseMatchesLegacyDatabase) {
  auto table = ReadCsvFile(a_csv_);
  ASSERT_TRUE(table.ok());
  auto legacy = DatabaseFromCsv(*table);
  ASSERT_TRUE(legacy.ok());
  auto streamed = io::ReadDatabaseCsvStream(a_csv_);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  ASSERT_EQ(legacy->size(), streamed->size());
  ASSERT_EQ(legacy->schema.size(), streamed->schema.size());
  for (size_t i = 0; i < legacy->schema.size(); ++i) {
    EXPECT_EQ(legacy->schema.fields[i].name, streamed->schema.fields[i].name);
    EXPECT_EQ(legacy->schema.fields[i].type, streamed->schema.fields[i].type);
  }
  for (size_t r = 0; r < legacy->size(); ++r) {
    EXPECT_EQ(legacy->records[r].id, streamed->records[r].id);
    EXPECT_EQ(legacy->records[r].entity_id, streamed->records[r].entity_id);
    EXPECT_EQ(legacy->records[r].values, streamed->records[r].values);
  }
}

TEST_F(IngestParityTest, CsvAndPclkShardFilesLoadBitIdentical) {
  const ClkEncoder encoder = MakeEncoder();
  auto shard = io::EncodeCsvToShard(a_csv_, encoder);
  ASSERT_TRUE(shard.ok());

  const std::string csv_path = Track(::testing::TempDir() + "/parity_a_clks.csv");
  const std::string pclk_path = Track(::testing::TempDir() + "/parity_a_clks.pclk");
  ASSERT_TRUE(io::WriteShardFile(csv_path, *shard).ok());
  ASSERT_TRUE(io::WriteShardFile(pclk_path, *shard).ok());

  EXPECT_EQ(io::DetectShardFileFormat(csv_path), io::ShardFileFormat::kCsv);
  EXPECT_EQ(io::DetectShardFileFormat(pclk_path), io::ShardFileFormat::kPclk);

  auto from_csv = io::ReadShardAuto(csv_path);
  auto from_pclk = io::ReadShardAuto(pclk_path);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ASSERT_TRUE(from_pclk.ok()) << from_pclk.status().ToString();
  ExpectShardsBitIdentical(*shard, *from_csv);
  ExpectShardsBitIdentical(*shard, *from_pclk);

  // The legacy interchange reader sees the same database the new writer
  // produced (cross-compatibility of the CSV side).
  auto legacy_read = ReadEncodedDatabase(csv_path);
  ASSERT_TRUE(legacy_read.ok()) << legacy_read.status().ToString();
  ExpectShardsBitIdentical(*shard, ShardFromEncodedDatabase(*legacy_read));
}

TEST_F(IngestParityTest, ClustersIdenticalAcrossFormats) {
  const ClkEncoder encoder = MakeEncoder();
  auto a = io::EncodeCsvToShard(a_csv_, encoder);
  auto b = io::EncodeCsvToShard(b_csv_, encoder);
  ASSERT_TRUE(a.ok() && b.ok());

  const std::string a_csv = Track(::testing::TempDir() + "/parity_link_a.csv");
  const std::string b_csv = Track(::testing::TempDir() + "/parity_link_b.csv");
  const std::string a_pclk = Track(::testing::TempDir() + "/parity_link_a.pclk");
  const std::string b_pclk = Track(::testing::TempDir() + "/parity_link_b.pclk");
  ASSERT_TRUE(io::WriteShardFile(a_csv, *a).ok());
  ASSERT_TRUE(io::WriteShardFile(b_csv, *b).ok());
  ASSERT_TRUE(io::WriteShardFile(a_pclk, *a).ok());
  ASSERT_TRUE(io::WriteShardFile(b_pclk, *b).ok());

  auto a_from_csv = io::ReadShardAuto(a_csv);
  auto b_from_csv = io::ReadShardAuto(b_csv);
  auto a_from_pclk = io::ReadShardAuto(a_pclk);
  auto b_from_pclk = io::ReadShardAuto(b_pclk);
  ASSERT_TRUE(a_from_csv.ok() && b_from_csv.ok());
  ASSERT_TRUE(a_from_pclk.ok() && b_from_pclk.ok());

  const std::vector<Cluster> via_csv = LinkToClusters(*a_from_csv, *b_from_csv);
  const std::vector<Cluster> via_pclk =
      LinkToClusters(*a_from_pclk, *b_from_pclk);
  ASSERT_GT(via_csv.size(), 0u) << "corpus produced no matches at all";
  EXPECT_EQ(via_csv, via_pclk);
}

TEST_F(IngestParityTest, IngestStatsAreReported) {
  const ClkEncoder encoder = MakeEncoder();
  io::IngestStats stats;
  auto shard = io::EncodeCsvToShard(a_csv_, encoder, {}, &stats);
  ASSERT_TRUE(shard.ok());
  EXPECT_EQ(stats.records, shard->size());
  EXPECT_GT(stats.input_bytes, 0u);
  EXPECT_GE(stats.seconds, 0.0);
}

TEST_F(IngestParityTest, SchemaPeekMatchesFullIngest) {
  auto schema = io::ReadCsvSchema(a_csv_);
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  auto db = io::ReadDatabaseCsvStream(a_csv_);
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(schema->size(), db->schema.size());
  for (size_t i = 0; i < schema->size(); ++i) {
    EXPECT_EQ(schema->fields[i].name, db->schema.fields[i].name);
    EXPECT_EQ(schema->fields[i].type, db->schema.fields[i].type);
  }
  // "id" is bookkeeping, not a QID.
  EXPECT_EQ(schema->FieldIndex("id"), -1);
  EXPECT_NE(schema->FieldIndex("first_name"), -1);
}

}  // namespace
}  // namespace pprl
