#include "common/status.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad l");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad l");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad l");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ProtocolViolation("x").code(), StatusCode::kProtocolViolation);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

namespace {
Status FailsWhenNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  PPRL_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::Internal("reached end");
}
}  // namespace

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UsesReturnIfError(1).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace pprl
