#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_blocking.h"
#include "blocking/partitioner.h"
#include "common/random.h"

namespace pprl {
namespace {

std::vector<std::string> SyntheticKeys(size_t n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back("t3:block-" + std::to_string(i * 2654435761u));
  }
  return keys;
}

TEST(PartitionerTest, AutoResolvesByRingSize) {
  EXPECT_EQ(BlockPartitioner(1).effective_scheme(), PartitionScheme::kRendezvous);
  EXPECT_EQ(BlockPartitioner(8).effective_scheme(), PartitionScheme::kRendezvous);
  EXPECT_EQ(BlockPartitioner(9).effective_scheme(),
            PartitionScheme::kConsistentRing);
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRendezvous), "rendezvous");
}

TEST(PartitionerTest, SeparatelyConstructedPartitionersAgree) {
  // The coordinator and every worker build their own partitioner from just
  // (num_workers, scheme); the whole design rests on them agreeing.
  for (const auto scheme :
       {PartitionScheme::kRendezvous, PartitionScheme::kConsistentRing}) {
    BlockPartitioner here(4, scheme);
    BlockPartitioner there(4, scheme);
    for (const std::string& key : SyntheticKeys(2000)) {
      ASSERT_EQ(here.WorkerForKey(key), there.WorkerForKey(key)) << key;
    }
  }
}

TEST(PartitionerTest, RendezvousBalancesKeysAcrossWorkers) {
  const size_t kKeys = 20000, kWorkers = 4;
  BlockPartitioner partitioner(kWorkers, PartitionScheme::kRendezvous);
  std::vector<size_t> counts(kWorkers, 0);
  for (const std::string& key : SyntheticKeys(kKeys)) {
    const uint32_t w = partitioner.WorkerForKey(key);
    ASSERT_LT(w, kWorkers);
    ++counts[w];
  }
  // Rendezvous is uniform; 20k keys over 4 workers lands each within a few
  // percent of 5000. Allow 10%.
  const double expected = static_cast<double>(kKeys) / kWorkers;
  for (size_t w = 0; w < kWorkers; ++w) {
    EXPECT_NEAR(static_cast<double>(counts[w]), expected, 0.10 * expected)
        << "worker " << w;
  }
}

TEST(PartitionerTest, RingBalancesKeysWithinVnodeVariance) {
  const size_t kKeys = 20000, kWorkers = 12;  // > 8 so kAuto picks the ring
  BlockPartitioner partitioner(kWorkers, PartitionScheme::kAuto);
  ASSERT_EQ(partitioner.effective_scheme(), PartitionScheme::kConsistentRing);
  std::vector<size_t> counts(kWorkers, 0);
  for (const std::string& key : SyntheticKeys(kKeys)) {
    ++counts[partitioner.WorkerForKey(key)];
  }
  // A 64-vnode ring balances to roughly ±sqrt(1/vnodes) ≈ 12% relative
  // error per worker; allow a generous 40% band but require every worker
  // to own a real share.
  const double expected = static_cast<double>(kKeys) / kWorkers;
  for (size_t w = 0; w < kWorkers; ++w) {
    EXPECT_GT(counts[w], expected * 0.6) << "worker " << w;
    EXPECT_LT(counts[w], expected * 1.4) << "worker " << w;
  }
}

TEST(PartitionerTest, ResizeMovesOnlyAFractionOfKeysToTheNewWorker) {
  // The minimal-disruption property both schemes are chosen for: growing
  // the ring W -> W+1 moves ~1/(W+1) of the keys, all of them TO the new
  // worker — no key moves between two old workers.
  const auto keys = SyntheticKeys(20000);
  for (const auto scheme :
       {PartitionScheme::kRendezvous, PartitionScheme::kConsistentRing}) {
    BlockPartitioner before(4, scheme);
    BlockPartitioner after(5, scheme);
    size_t moved = 0;
    for (const std::string& key : keys) {
      const uint32_t was = before.WorkerForKey(key);
      const uint32_t now = after.WorkerForKey(key);
      if (was != now) {
        ++moved;
        EXPECT_EQ(now, 4u) << "key moved between two surviving workers: " << key;
      }
    }
    const double fraction = static_cast<double>(moved) / keys.size();
    EXPECT_GT(fraction, 0.10) << PartitionSchemeName(scheme);
    EXPECT_LT(fraction, 0.35) << PartitionSchemeName(scheme);
  }
}

TEST(PartitionerTest, OwnedPairsPartitionTheCandidateSet) {
  // Build two LSH indexes over random filters and check the canonical-key
  // rule's contract: per-worker owned sets are sorted, pairwise disjoint,
  // and their union is exactly the deduplicated single-machine candidate
  // list — the property that makes scattered compare counters sum to the
  // single-daemon totals.
  const size_t kBits = 256, kRecords = 300;
  Rng data_rng(7);
  std::vector<BitVector> a_filters, b_filters;
  for (size_t i = 0; i < kRecords; ++i) {
    BitVector av(kBits), bv(kBits);
    for (size_t bit = 0; bit < kBits; ++bit) {
      if (data_rng.NextUint64() % 3 == 0) av.Set(bit);
      if (data_rng.NextUint64() % 3 == 0) bv.Set(bit);
    }
    // Inject overlap so many pairs collide in several tables — the case
    // that double-counts if ownership is not canonicalized.
    if (i % 3 == 0) bv = av;
    a_filters.push_back(av);
    b_filters.push_back(bv);
  }
  Rng lsh_rng(42);
  HammingLshBlocker blocker(kBits, /*num_tables=*/6, /*bits_per_key=*/12, lsh_rng);
  const BlockIndex a = blocker.BuildIndex(a_filters);
  const BlockIndex b = blocker.BuildIndex(b_filters);

  std::vector<CandidatePair> reference = HammingLshBlocker::CandidatePairs(a, b);
  std::sort(reference.begin(), reference.end());
  ASSERT_GT(reference.size(), 100u) << "scenario produced too few candidates";

  for (const size_t num_workers : {1u, 2u, 4u, 7u}) {
    BlockPartitioner partitioner(num_workers);
    std::vector<CandidatePair> merged;
    size_t total = 0;
    for (uint32_t w = 0; w < num_workers; ++w) {
      const auto owned = OwnedCandidatePairs(a, b, partitioner, w);
      EXPECT_TRUE(std::is_sorted(owned.begin(), owned.end())) << "worker " << w;
      total += owned.size();
      merged.insert(merged.end(), owned.begin(), owned.end());
    }
    // Disjoint (sizes add up to the union's size) and complete.
    EXPECT_EQ(total, reference.size()) << num_workers << " workers";
    std::sort(merged.begin(), merged.end());
    EXPECT_EQ(merged, reference) << num_workers << " workers";
  }
}

TEST(PartitionerTest, OwnedPairsAreStableAcrossCallOrder) {
  // Ownership of a pair depends only on its canonical key, never on which
  // worker asks first or how many pairs other workers own.
  const size_t kBits = 128;
  Rng data_rng(11);
  std::vector<BitVector> filters;
  for (size_t i = 0; i < 80; ++i) {
    BitVector v(kBits);
    for (size_t bit = 0; bit < kBits; ++bit) {
      if (data_rng.NextUint64() % 4 == 0) v.Set(bit);
    }
    filters.push_back(v);
  }
  Rng lsh_rng(5);
  HammingLshBlocker blocker(kBits, 4, 10, lsh_rng);
  const BlockIndex index = blocker.BuildIndex(filters);

  BlockPartitioner partitioner(3);
  const auto first = OwnedCandidatePairs(index, index, partitioner, 2);
  const auto again = OwnedCandidatePairs(index, index, partitioner, 2);
  EXPECT_EQ(first, again);
}

}  // namespace
}  // namespace pprl
