#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"

namespace pprl {
namespace {

/// One GET against the daemon's metrics endpoint; returns the raw HTTP
/// response (headers + body).
std::string Scrape(uint16_t port) {
  ConnectOptions options;
  options.io_timeout_ms = 5000;
  auto conn = TcpConnection::Connect("127.0.0.1", port, options);
  if (!conn.ok()) return "connect failed: " + conn.status().ToString();
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  if (!(*conn)->Write(reinterpret_cast<const uint8_t*>(request.data()), request.size())
           .ok()) {
    return "write failed";
  }
  std::string response;
  uint8_t buf[4096];
  while (true) {
    auto n = (*conn)->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    response.append(reinterpret_cast<const char*>(buf), *n);
  }
  return response;
}

ClkEncoder SharedEncoder() {
  PipelineConfig config;
  return ClkEncoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
}

std::vector<Cluster> Sorted(std::vector<Cluster> clusters) {
  for (Cluster& c : clusters) std::sort(c.begin(), c.end());
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

/// The acceptance test of the networked subsystem: a 3-owner linkage
/// through LinkageUnitServer over 127.0.0.1 must produce the same clusters
/// and the same metered "encoded-filters" byte totals as the in-process
/// Channel path; framing overhead is accounted for separately.
TEST(ServiceRoundtripTest, ThreeOwnerLoopbackMatchesInProcessPath) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 120;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());

  const std::vector<std::string> names = {"hospital-a", "hospital-b", "registry-c"};
  const ClkEncoder encoder = SharedEncoder();
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;

  // Owners encode once; both paths ship the identical encodings.
  std::vector<DatabaseOwner> owners;
  for (size_t d = 0; d < 3; ++d) {
    owners.emplace_back(names[d], (*dbs)[d]);
    ASSERT_TRUE(owners[d].Encode(encoder).ok());
  }

  // ---- Path 1: in-process channel (the reference cost model). ----
  Channel local_channel;
  LinkageUnitService local_unit("lu");
  LocalLinkageUnitSink sink(local_channel, local_unit);
  for (size_t d = 0; d < 3; ++d) {
    ASSERT_TRUE(owners[d].ShipEncodings(sink).ok());
  }
  auto local_result = local_unit.Link(options);
  ASSERT_TRUE(local_result.ok());

  // ---- Path 2: real sockets through the daemon. ----
  LinkageUnitServerConfig server_config;
  server_config.name = "lu";
  server_config.expected_owners = 3;
  server_config.link_options = options;
  server_config.io_timeout_ms = 10000;
  server_config.metrics_port = 0;  // ephemeral Prometheus side endpoint
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  ASSERT_GT(server.metrics_port(), 0);

  Channel client_channel;  // shared by all owners (thread-safe)
  std::vector<std::thread> sessions;
  std::vector<Status> session_status(3, Status::OK());
  std::vector<OwnerLinkageSummary> summaries(3);
  for (size_t d = 0; d < 3; ++d) {
    // Stagger the sessions so shipment order (= database order at the
    // unit) is deterministic and comparable with the in-process run.
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (server.owner_order().size() < d &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(server.owner_order().size(), d) << "previous owner never registered";
    sessions.emplace_back([&, d] {
      RemoteOwnerClientConfig config;
      config.port = server.port();
      config.server_label = "lu";
      RemoteOwnerClient client(config, &client_channel);
      session_status[d] = owners[d].ShipEncodings(client);
      if (client.summary().has_value()) summaries[d] = *client.summary();
    });
  }
  for (auto& t : sessions) t.join();
  ASSERT_TRUE(server.WaitUntilDone(15000).ok());
  for (size_t d = 0; d < 3; ++d) {
    EXPECT_TRUE(session_status[d].ok()) << names[d] << ": "
                                        << session_status[d].ToString();
  }
  ASSERT_EQ(server.owner_order(), names);

  // Same clusters and edges as the in-process run.
  auto remote_result = server.result();
  ASSERT_TRUE(remote_result.ok());
  EXPECT_EQ(Sorted(remote_result->clusters), Sorted(local_result->clusters));
  EXPECT_EQ(remote_result->edges.size(), local_result->edges.size());
  EXPECT_EQ(remote_result->comparisons, local_result->comparisons);
  EXPECT_GT(remote_result->edges.size(), 30u);

  // Same metered byte totals for the shipments, on both sides of the wire.
  const auto local_bytes = local_channel.bytes_by_tag();
  const auto server_bytes = server.channel().bytes_by_tag();
  const auto client_bytes = client_channel.bytes_by_tag();
  ASSERT_TRUE(local_bytes.count("encoded-filters"));
  EXPECT_EQ(server_bytes.at("encoded-filters"), local_bytes.at("encoded-filters"));
  EXPECT_EQ(client_bytes.at("encoded-filters"), local_bytes.at("encoded-filters"));
  EXPECT_EQ(server.channel().messages_by_tag().at("encoded-filters"), 3u);
  EXPECT_EQ(local_channel.messages_by_tag().at("encoded-filters"), 3u);
  for (const std::string& owner : names) {
    EXPECT_EQ(server.channel().MessagesBetween(owner, "lu"),
              2u);  // hello + one shipment chunk
  }

  // Framing overhead: every inbound frame costs exactly one 12-byte
  // header beyond its metered payload, and every shipment chunk a fixed
  // session/offset/checksum header on top. Report it separately, as a
  // real cost table would.
  size_t inbound_payload = 0;
  for (const auto& [tag, bytes] : server_bytes) {
    if (tag == "hello" || tag == "encoded-filters") inbound_payload += bytes;
  }
  const size_t inbound_frames = 6;  // 3 × (hello + shipment chunk)
  const size_t chunk_headers = 3 * kShipmentChunkOverheadBytes;
  EXPECT_EQ(server.wire_bytes_received(),
            inbound_payload + inbound_frames * 12 + chunk_headers);
  std::printf("[ cost ] shipments %zu B, framing overhead %zu B (%.3f%%)\n",
              server_bytes.at("encoded-filters"),
              server.wire_bytes_received() - inbound_payload,
              100.0 *
                  static_cast<double>(server.wire_bytes_received() - inbound_payload) /
                  static_cast<double>(inbound_payload));

  // Each owner's summary matches a locally computed projection.
  for (uint32_t d = 0; d < 3; ++d) {
    const OwnerLinkageSummary expected = SummarizeForOwner(*local_result, d);
    EXPECT_EQ(summaries[d].matches, expected.matches) << names[d];
    EXPECT_EQ(summaries[d].comparisons, expected.comparisons);
    EXPECT_EQ(summaries[d].total_clusters, expected.total_clusters);
    EXPECT_GT(summaries[d].matches.size(), 10u) << names[d];
    EXPECT_EQ(summaries[d].owners_linked, 3u);
    EXPECT_EQ(summaries[d].owners_expected, 3u);
    EXPECT_FALSE(summaries[d].degraded());
  }

  // The daemon's observability surface: a Prometheus scrape of the side
  // endpoint must expose the per-stage latency histograms and the channel
  // byte counters of the run that just finished.
  const std::string scrape = Scrape(server.metrics_port());
  EXPECT_NE(scrape.find("200 OK"), std::string::npos) << scrape;
  EXPECT_NE(scrape.find("# TYPE pprl_stage_seconds histogram"), std::string::npos);
  for (const char* stage : {"block", "compare", "cluster"}) {
    EXPECT_NE(scrape.find("pprl_stage_seconds_bucket{stage=\"" + std::string(stage) +
                          "\",le=\"+Inf\"}"),
              std::string::npos)
        << "missing stage histogram: " << stage;
  }
  EXPECT_NE(scrape.find("pprl_channel_bytes_total{tag=\"encoded-filters\"}"),
            std::string::npos);
  EXPECT_NE(scrape.find("pprl_service_session_seconds_count"), std::string::npos);

  // And the global registry itself recorded the daemon's work: sessions
  // served, frames moved, pairs compared.
  auto& metrics = obs::GlobalMetrics();
  EXPECT_GE(metrics.GetCounter("pprl_service_sessions_total",
                               "Owner sessions accepted")
                .value(),
            3u);
  EXPECT_GE(metrics
                .GetCounter("pprl_net_frames_total", "Frames moved",
                            {{"direction", "in"}})
                .value(),
            6u);  // 3 × (hello + shipment)
  EXPECT_GT(metrics.GetCounter("pprl_compare_pairs_total", "Pairs compared").value(),
            0u);
  EXPECT_GE(metrics
                .GetCounter("pprl_service_messages_total", "Protocol messages",
                            {{"type", "encoded-filters"}, {"direction", "in"}})
                .value(),
            3u);

  server.Stop();
}

TEST(ServiceRoundtripTest, MismatchedFilterLengthIsRejectedOverTheWire) {
  LinkageUnitServerConfig server_config;
  server_config.expected_owners = 2;
  server_config.io_timeout_ms = 5000;
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  EncodedDatabase ship_512;
  ship_512.ids = {1, 2};
  ship_512.filters = {BitVector(512), BitVector(512)};
  ship_512.filters[0].Set(3);
  ship_512.filters[1].Set(5);

  EncodedDatabase ship_256;
  ship_256.ids = {7};
  ship_256.filters = {BitVector(256)};

  RemoteOwnerClientConfig config;
  config.port = server.port();

  // First owner fixes 512 bits; run it in the background because it will
  // (correctly) block awaiting results that never come.
  std::thread first([&] {
    RemoteOwnerClient client(config);
    (void)client.ShipAndAwait("owner-a", ship_512);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.owner_order().empty() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.owner_order().size(), 1u);

  RemoteOwnerClient second(config);
  auto result = second.ShipAndAwait("owner-b", ship_256);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("256"), std::string::npos);

  server.Stop();  // fails owner-a's pending session
  first.join();
}

TEST(ServiceRoundtripTest, DuplicateOwnerNameIsRejectedOverTheWire) {
  LinkageUnitServerConfig server_config;
  server_config.expected_owners = 3;
  server_config.io_timeout_ms = 5000;
  LinkageUnitServer server(server_config);
  ASSERT_TRUE(server.Start().ok());

  EncodedDatabase shipment;
  shipment.ids = {1};
  shipment.filters = {BitVector(64)};
  shipment.filters[0].Set(1);

  RemoteOwnerClientConfig config;
  config.port = server.port();

  std::thread first([&] {
    RemoteOwnerClient client(config);
    (void)client.ShipAndAwait("owner-a", shipment);
  });
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.owner_order().empty() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.owner_order().size(), 1u);

  RemoteOwnerClient duplicate(config);
  auto result = duplicate.ShipAndAwait("owner-a", shipment);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);

  server.Stop();
  first.join();
}

}  // namespace
}  // namespace pprl
