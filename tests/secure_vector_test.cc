#include "crypto/secure_vector.h"

#include <memory>

#include <gtest/gtest.h>

namespace pprl {
namespace {

BitVector FromBits(const std::string& bits) { return BitVector::FromString(bits); }

class SecureVectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(2024);
    auto generated = Paillier::Generate(rng, 128);
    ASSERT_TRUE(generated.ok());
    paillier_ = std::make_unique<Paillier>(std::move(generated).value());
    rng_ = std::make_unique<Rng>(5);
  }

  std::unique_ptr<Paillier> paillier_;
  std::unique_ptr<Rng> rng_;
};

TEST_F(SecureVectorTest, DotProductMatchesPlain) {
  const BitVector x = FromBits("1011010");
  const BitVector y = FromBits("1110011");
  auto encrypted = EncryptBitVector(*paillier_, x, *rng_);
  ASSERT_TRUE(encrypted.ok());
  const auto dot = HomomorphicDotProduct(*paillier_, encrypted.value(), y);
  EXPECT_EQ(paillier_->Decrypt(dot).value().ToInt64(),
            static_cast<int64_t>(x.AndCount(y)));
}

TEST_F(SecureVectorTest, DotProductWithEmptyY) {
  const BitVector x = FromBits("111");
  const BitVector y = FromBits("000");
  auto encrypted = EncryptBitVector(*paillier_, x, *rng_);
  ASSERT_TRUE(encrypted.ok());
  const auto dot = HomomorphicDotProduct(*paillier_, encrypted.value(), y);
  EXPECT_EQ(paillier_->Decrypt(dot).value().ToInt64(), 0);
}

TEST_F(SecureVectorTest, HammingMatchesPlain) {
  const BitVector x = FromBits("10110100");
  const BitVector y = FromBits("11100110");
  auto encrypted = EncryptBitVector(*paillier_, x, *rng_);
  ASSERT_TRUE(encrypted.ok());
  const auto d = HomomorphicHammingDistance(*paillier_, encrypted.value(), y);
  EXPECT_EQ(paillier_->Decrypt(d).value().ToInt64(),
            static_cast<int64_t>(x.XorCount(y)));
}

TEST(SecureHammingDistanceTest, EndToEndMatchesPlain) {
  Rng rng(9);
  for (int trial = 0; trial < 5; ++trial) {
    BitVector x(40), y(40);
    for (size_t i = 0; i < 40; ++i) {
      if (rng.NextBool(0.4)) x.Set(i);
      if (rng.NextBool(0.4)) y.Set(i);
    }
    auto result = SecureHammingDistance(x, y, rng, 96);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->distance, x.XorCount(y));
    EXPECT_EQ(result->encryptions, 40u);
    EXPECT_GT(result->bytes, 0u);
  }
}

TEST(SecureHammingDistanceTest, RejectsLengthMismatch) {
  Rng rng(1);
  EXPECT_FALSE(SecureHammingDistance(BitVector(8), BitVector(9), rng, 64).ok());
}

/// Property sweep: the identity d = |y| + sum(x) - 2*dot holds for every
/// random instance; decryption must agree with the plaintext XOR count.
class SecureVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SecureVectorPropertyTest, RandomInstances) {
  Rng rng(GetParam());
  auto paillier = Paillier::Generate(rng, 96);
  ASSERT_TRUE(paillier.ok());
  const size_t n = 16 + rng.NextUint64(32);
  BitVector x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.5)) x.Set(i);
    if (rng.NextBool(0.5)) y.Set(i);
  }
  auto encrypted = EncryptBitVector(*paillier, x, rng);
  ASSERT_TRUE(encrypted.ok());
  const auto d = HomomorphicHammingDistance(*paillier, encrypted.value(), y);
  EXPECT_EQ(paillier->Decrypt(d).value().ToInt64(), static_cast<int64_t>(x.XorCount(y)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecureVectorPropertyTest, ::testing::Range<uint64_t>(0, 6));

}  // namespace
}  // namespace pprl
