#include "encoding/hardening.h"

#include <cmath>

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

BitVector EncodedName(const std::string& name) {
  const BloomFilterEncoder encoder({1000, 20, BloomHashScheme::kDoubleHashing, ""});
  return encoder.EncodeString(name);
}

TEST(BalanceTest, ProducesExactlyHalfOnes) {
  const BitVector bf = EncodedName("smith");
  const BitVector balanced = Balance(bf, 42);
  EXPECT_EQ(balanced.size(), 2 * bf.size());
  EXPECT_EQ(balanced.Count(), bf.size());  // exactly 50% ones
}

TEST(BalanceTest, DeterministicPerKey) {
  const BitVector bf = EncodedName("smith");
  EXPECT_EQ(Balance(bf, 1), Balance(bf, 1));
  EXPECT_NE(Balance(bf, 1), Balance(bf, 2));
}

TEST(BalanceTest, PreservesSimilarityOrdering) {
  const BitVector smith = Balance(EncodedName("smith"), 7);
  const BitVector smyth = Balance(EncodedName("smyth"), 7);
  const BitVector jones = Balance(EncodedName("jones"), 7);
  EXPECT_GT(DiceSimilarity(smith, smyth), DiceSimilarity(smith, jones));
}

TEST(XorFoldTest, HalvesLength) {
  const BitVector bf = EncodedName("smith");
  const BitVector folded = XorFold(bf);
  EXPECT_EQ(folded.size(), bf.size() / 2);
}

TEST(XorFoldTest, FoldIsXorOfHalves) {
  BitVector bf(8);
  bf.Set(0);
  bf.Set(4);  // cancel at position 0
  bf.Set(1);  // survive at position 1
  const BitVector folded = XorFold(bf);
  EXPECT_FALSE(folded.Get(0));
  EXPECT_TRUE(folded.Get(1));
}

TEST(XorFoldTest, PreservesSimilarityOrdering) {
  const BitVector smith = XorFold(EncodedName("smith"));
  const BitVector smyth = XorFold(EncodedName("smyth"));
  const BitVector jones = XorFold(EncodedName("jones"));
  EXPECT_GT(DiceSimilarity(smith, smyth), DiceSimilarity(smith, jones));
}

TEST(Rule90Test, KnownPattern) {
  // 00100 -> neighbours of each cell: 01010.
  const BitVector input = BitVector::FromString("00100");
  const BitVector output = Rule90(input);
  EXPECT_EQ(output.ToString(), "01010");
}

TEST(Rule90Test, EmptyInputOk) { EXPECT_EQ(Rule90(BitVector()).size(), 0u); }

TEST(Rule90Test, PreservesLength) {
  const BitVector bf = EncodedName("smith");
  EXPECT_EQ(Rule90(bf).size(), bf.size());
}

TEST(BlipTest, FlipFractionNearProbability) {
  Rng rng(5);
  const BitVector bf = EncodedName("smith");
  const BitVector noisy = Blip(bf, 0.1, rng);
  const double flipped =
      static_cast<double>(bf.XorCount(noisy)) / static_cast<double>(bf.size());
  EXPECT_NEAR(flipped, 0.1, 0.03);
}

TEST(BlipTest, ZeroProbabilityIsIdentity) {
  Rng rng(5);
  const BitVector bf = EncodedName("smith");
  EXPECT_EQ(Blip(bf, 0.0, rng), bf);
}

TEST(BlipTest, SimilarityDegradesGracefully) {
  Rng rng(6);
  const BitVector smith = EncodedName("smith");
  const BitVector smyth = EncodedName("smyth");
  const double clean = DiceSimilarity(smith, smyth);
  const double noisy =
      DiceSimilarity(Blip(smith, 0.05, rng), Blip(smyth, 0.05, rng));
  EXPECT_LT(std::abs(clean - noisy), 0.25);
}

TEST(BlipEpsilonTest, KnownValues) {
  EXPECT_NEAR(BlipEpsilon(0.1), std::log(9.0), 1e-12);
  EXPECT_NEAR(BlipEpsilon(0.25), std::log(3.0), 1e-12);
  EXPECT_TRUE(std::isinf(BlipEpsilon(0.0)));
}

TEST(RecordSaltTest, StablePerValueAndKey) {
  EXPECT_EQ(RecordSalt("1980", "k"), RecordSalt("1980", "k"));
  EXPECT_NE(RecordSalt("1980", "k"), RecordSalt("1981", "k"));
  EXPECT_NE(RecordSalt("1980", "k1"), RecordSalt("1980", "k2"));
  EXPECT_EQ(RecordSalt("1980", "k").size(), 16u);
}

class BlipSweep : public ::testing::TestWithParam<double> {};

/// Property: hardened encodings reduce the per-position frequency signal as
/// flip probability rises, at the cost of similarity fidelity.
TEST_P(BlipSweep, HigherNoiseLowersSimilarity) {
  Rng rng(17);
  const double f = GetParam();
  const BitVector a = EncodedName("katherine");
  const BitVector b = EncodedName("catherine");
  const double noisy = DiceSimilarity(Blip(a, f, rng), Blip(b, f, rng));
  const double clean = DiceSimilarity(a, b);
  if (f > 0.0) {
    EXPECT_LT(noisy, clean + 0.05);
  }
  // Even heavy noise must not invert the relationship with an unrelated name.
  const BitVector unrelated = EncodedName("zzzyyqq");
  EXPECT_GT(noisy, DiceSimilarity(Blip(a, f, rng), Blip(unrelated, f, rng)) - 0.1);
}

INSTANTIATE_TEST_SUITE_P(FlipProbs, BlipSweep, ::testing::Values(0.0, 0.02, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace pprl
