#include "privacy/dp.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(LaplaceMechanismTest, NoiseCenteredOnTruth) {
  Rng rng(1);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += LaplaceMechanism(100.0, 1.0, 0.5, rng);
  EXPECT_NEAR(sum / n, 100.0, 0.2);
}

TEST(LaplaceMechanismTest, SmallerEpsilonMoreNoise) {
  Rng rng(2);
  double var_tight = 0, var_loose = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const double tight = LaplaceMechanism(0, 1.0, 2.0, rng);
    const double loose = LaplaceMechanism(0, 1.0, 0.2, rng);
    var_tight += tight * tight;
    var_loose += loose * loose;
  }
  EXPECT_GT(var_loose, 10 * var_tight);
}

TEST(LaplaceMechanismTest, ZeroEpsilonReturnsTruth) {
  Rng rng(3);
  EXPECT_DOUBLE_EQ(LaplaceMechanism(42.0, 1.0, 0.0, rng), 42.0);
}

TEST(RandomizedResponseTest, KeepProbabilityMatchesEpsilon) {
  Rng rng(4);
  const double epsilon = 1.0;
  const double expected_keep = std::exp(epsilon) / (1 + std::exp(epsilon));
  int kept = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (RandomizedResponse(true, epsilon, rng)) ++kept;
  }
  EXPECT_NEAR(static_cast<double>(kept) / n, expected_keep, 0.02);
}

TEST(RandomizedResponseTest, EstimatorIsUnbiased) {
  Rng rng(5);
  const double epsilon = 1.5;
  const size_t n = 10000;
  const size_t true_ones = 3000;
  size_t observed = 0;
  for (size_t i = 0; i < n; ++i) {
    const bool bit = i < true_ones;
    if (RandomizedResponse(bit, epsilon, rng)) ++observed;
  }
  const double estimate = RandomizedResponseEstimate(observed, n, epsilon);
  EXPECT_NEAR(estimate, static_cast<double>(true_ones), 300);
}

TEST(RandomizedResponseTest, EstimatorEdgeCases) {
  EXPECT_DOUBLE_EQ(RandomizedResponseEstimate(5, 0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(RandomizedResponseEstimate(50, 100, 0.0), 50.0);  // 2p-1 = 0
}

TEST(PrivacyBudgetTest, SpendAndExhaust) {
  PrivacyBudget budget(1.0);
  EXPECT_TRUE(budget.Spend(0.4));
  EXPECT_TRUE(budget.Spend(0.6));
  EXPECT_FALSE(budget.Spend(0.01));
  EXPECT_NEAR(budget.spent(), 1.0, 1e-12);
  EXPECT_NEAR(budget.remaining(), 0.0, 1e-12);
}

TEST(PrivacyBudgetTest, RejectsNegativeAndOverspend) {
  PrivacyBudget budget(0.5);
  EXPECT_FALSE(budget.Spend(-0.1));
  EXPECT_FALSE(budget.Spend(0.6));
  EXPECT_DOUBLE_EQ(budget.spent(), 0.0);
}

TEST(NoisyCountTest, NeverNegative) {
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(NoisyCount(2, 0.5, rng), 0u);
  }
}

TEST(NoisyCountTest, CenteredOnTruth) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(NoisyCount(1000, 1.0, rng));
  EXPECT_NEAR(sum / n, 1000.0, 1.0);
}

TEST(NoisyCountTest, ZeroEpsilonIsIdentity) {
  Rng rng(8);
  EXPECT_EQ(NoisyCount(77, 0.0, rng), 77u);
}

}  // namespace
}  // namespace pprl
