#include "encoding/minhash.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/strings.h"

namespace pprl {
namespace {

double TrueJaccard(const std::vector<std::string>& a, const std::vector<std::string>& b) {
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& x : sa) inter += sb.count(x);
  const size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

TEST(MinHashTest, SignatureLength) {
  const MinHasher hasher(64, 1);
  const auto sig = hasher.Sign({"a", "b", "c"});
  EXPECT_EQ(sig.size(), 64u);
}

TEST(MinHashTest, DeterministicPerSeed) {
  const MinHasher h1(32, 5), h2(32, 5), h3(32, 6);
  const std::vector<std::string> tokens = {"ab", "bc", "cd"};
  EXPECT_EQ(h1.Sign(tokens), h2.Sign(tokens));
  EXPECT_NE(h1.Sign(tokens), h3.Sign(tokens));
}

TEST(MinHashTest, OrderAndDuplicatesIrrelevant) {
  const MinHasher hasher(32, 9);
  EXPECT_EQ(hasher.Sign({"x", "y", "z"}), hasher.Sign({"z", "x", "y", "x"}));
}

TEST(MinHashTest, IdenticalSetsEstimateOne) {
  const MinHasher hasher(64, 2);
  const auto sig = hasher.Sign({"ab", "bc"});
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard(sig, sig), 1.0);
}

TEST(MinHashTest, DisjointSetsEstimateNearZero) {
  const MinHasher hasher(128, 3);
  const auto sa = hasher.Sign({"aa", "bb", "cc", "dd"});
  const auto sb = hasher.Sign({"ee", "ff", "gg", "hh"});
  EXPECT_LT(MinHasher::EstimateJaccard(sa, sb), 0.1);
}

TEST(MinHashTest, EstimateTracksTrueJaccard) {
  const MinHasher hasher(256, 7);
  const auto ga = QGrams("katherine");
  const auto gb = QGrams("catherine");
  const double estimated = MinHasher::EstimateJaccard(hasher.Sign(ga), hasher.Sign(gb));
  EXPECT_NEAR(estimated, TrueJaccard(ga, gb), 0.12);
}

TEST(MinHashTest, MismatchedSignaturesReturnZero) {
  const MinHasher h32(32, 1), h64(64, 1);
  EXPECT_DOUBLE_EQ(
      MinHasher::EstimateJaccard(h32.Sign({"a"}), h64.Sign({"a"})), 0.0);
  EXPECT_DOUBLE_EQ(MinHasher::EstimateJaccard({}, {}), 0.0);
}

class MinHashAccuracySweep : public ::testing::TestWithParam<size_t> {};

/// Property: estimation error shrinks as the signature grows (~1/sqrt(k)).
TEST_P(MinHashAccuracySweep, ErrorWithinStatisticalBound) {
  const size_t k = GetParam();
  const MinHasher hasher(k, 11);
  const auto ga = QGrams("elizabeth taylor");
  const auto gb = QGrams("elisabeth tailor");
  const double truth = TrueJaccard(ga, gb);
  const double estimate = MinHasher::EstimateJaccard(hasher.Sign(ga), hasher.Sign(gb));
  // 4-sigma bound on a Bernoulli mean with k trials.
  const double bound = 4.0 * std::sqrt(truth * (1 - truth) / static_cast<double>(k));
  EXPECT_NEAR(estimate, truth, bound + 0.02);
}

INSTANTIATE_TEST_SUITE_P(SignatureSizes, MinHashAccuracySweep,
                         ::testing::Values(16, 64, 256, 1024));

}  // namespace
}  // namespace pprl
