#include "encoding/bloom_filter.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

BloomFilterParams SmallParams() {
  BloomFilterParams params;
  params.num_bits = 500;
  params.num_hashes = 15;
  return params;
}

TEST(BloomFilterParamsTest, Validation) {
  EXPECT_TRUE(SmallParams().Validate().ok());
  BloomFilterParams zero_bits = SmallParams();
  zero_bits.num_bits = 0;
  EXPECT_FALSE(zero_bits.Validate().ok());
  BloomFilterParams zero_hashes = SmallParams();
  zero_hashes.num_hashes = 0;
  EXPECT_FALSE(zero_hashes.Validate().ok());
  BloomFilterParams keyed = SmallParams();
  keyed.scheme = BloomHashScheme::kKeyedHmac;
  EXPECT_FALSE(keyed.Validate().ok());  // missing key
  keyed.secret_key = "k";
  EXPECT_TRUE(keyed.Validate().ok());
}

TEST(BloomFilterEncoderTest, DeterministicEncoding) {
  const BloomFilterEncoder encoder(SmallParams());
  EXPECT_EQ(encoder.EncodeString("smith"), encoder.EncodeString("smith"));
  EXPECT_NE(encoder.EncodeString("smith"), encoder.EncodeString("jones"));
}

TEST(BloomFilterEncoderTest, TokenPositionsWithinRange) {
  const BloomFilterEncoder encoder(SmallParams());
  const auto positions = encoder.TokenPositions("ab");
  EXPECT_EQ(positions.size(), SmallParams().num_hashes);
  for (uint32_t pos : positions) EXPECT_LT(pos, SmallParams().num_bits);
}

TEST(BloomFilterEncoderTest, AllTokenBitsAreSet) {
  const BloomFilterEncoder encoder(SmallParams());
  const std::vector<std::string> tokens = {"ab", "bc", "cd"};
  const BitVector filter = encoder.EncodeTokens(tokens);
  for (const std::string& token : tokens) {
    for (uint32_t pos : encoder.TokenPositions(token)) {
      EXPECT_TRUE(filter.Get(pos));
    }
  }
}

TEST(BloomFilterEncoderTest, KeyedSchemeDiffersByKey) {
  BloomFilterParams p1 = SmallParams();
  p1.scheme = BloomHashScheme::kKeyedHmac;
  p1.secret_key = "key-one";
  BloomFilterParams p2 = p1;
  p2.secret_key = "key-two";
  const BloomFilterEncoder e1(p1), e2(p2);
  EXPECT_NE(e1.EncodeString("smith"), e2.EncodeString("smith"));
}

TEST(BloomFilterEncoderTest, NormalizationBeforeEncoding) {
  const BloomFilterEncoder encoder(SmallParams());
  EXPECT_EQ(encoder.EncodeString("  SMITH "), encoder.EncodeString("smith"));
}

/// The core Figure-2 property: Dice of encoded filters tracks the Dice of
/// the underlying q-gram sets for similar and dissimilar names.
TEST(BloomFilterEncoderTest, DicePreservation) {
  const BloomFilterEncoder encoder(SmallParams());
  const BitVector smith = encoder.EncodeString("smith");
  const BitVector smyth = encoder.EncodeString("smyth");
  const BitVector jones = encoder.EncodeString("jones");
  const double sim_close = DiceSimilarity(smith, smyth);
  const double sim_far = DiceSimilarity(smith, jones);
  const double raw_close = QGramDiceSimilarity("smith", "smyth");
  EXPECT_GT(sim_close, sim_far);
  EXPECT_NEAR(sim_close, raw_close, 0.15);  // collisions bias upward slightly
  EXPECT_EQ(DiceSimilarity(smith, smith), 1.0);
}

TEST(ClkEncoderTest, EncodesStandardRecord) {
  const Schema schema = DataGenerator::StandardSchema();
  Record record;
  record.values = {"mary", "smith", "f", "1980-02-29", "springfield",
                   "12 main st", "2000", "0412345678"};
  BloomFilterParams params;
  params.num_bits = 1000;
  std::vector<ClkFieldConfig> fields;
  ClkFieldConfig first;
  first.field_name = "first_name";
  fields.push_back(first);
  ClkFieldConfig dob;
  dob.field_name = "dob";
  fields.push_back(dob);
  const ClkEncoder encoder(params, fields);
  auto clk = encoder.Encode(schema, record);
  ASSERT_TRUE(clk.ok());
  EXPECT_GT(clk->Count(), 0u);
  EXPECT_EQ(clk->size(), 1000u);
}

TEST(ClkEncoderTest, UnknownFieldFails) {
  const Schema schema = DataGenerator::StandardSchema();
  Record record;
  record.values.assign(schema.size(), "x");
  ClkFieldConfig bogus;
  bogus.field_name = "no_such_field";
  const ClkEncoder encoder(SmallParams(), {bogus});
  EXPECT_FALSE(encoder.Encode(schema, record).ok());
}

TEST(ClkEncoderTest, ShortRecordFails) {
  const Schema schema = DataGenerator::StandardSchema();
  Record record;  // no values at all
  ClkFieldConfig first;
  first.field_name = "first_name";
  const ClkEncoder encoder(SmallParams(), {first});
  EXPECT_FALSE(encoder.Encode(schema, record).ok());
}

TEST(ClkEncoderTest, FieldSeparationPreventsCrossFieldCollisions) {
  // Identical value in different fields must produce different positions.
  const Schema schema = DataGenerator::StandardSchema();
  Record r1, r2;
  r1.values = {"jo", "", "", "", "", "", "", ""};
  r2.values = {"", "jo", "", "", "", "", "", ""};
  ClkFieldConfig first, last;
  first.field_name = "first_name";
  last.field_name = "last_name";
  const ClkEncoder encoder(SmallParams(), {first, last});
  auto c1 = encoder.Encode(schema, r1);
  auto c2 = encoder.Encode(schema, r2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1.value(), c2.value());
}

TEST(ClkEncoderTest, NumericFieldUsesNeighborhoodTokens) {
  Schema schema;
  schema.fields = {{"age", FieldType::kNumeric}};
  Record r30, r31, r60;
  r30.values = {"30"};
  r31.values = {"31"};
  r60.values = {"60"};
  ClkFieldConfig age;
  age.field_name = "age";
  age.numeric_step = 1.0;
  age.numeric_neighbors = 5;
  BloomFilterParams params;
  params.num_bits = 1000;
  const ClkEncoder encoder(params, {age});
  const BitVector f30 = encoder.Encode(schema, r30).value();
  const BitVector f31 = encoder.Encode(schema, r31).value();
  const BitVector f60 = encoder.Encode(schema, r60).value();
  EXPECT_GT(DiceSimilarity(f30, f31), 0.8);
  // Far-apart values share no tokens; only hash collisions remain.
  EXPECT_LT(DiceSimilarity(f30, f60), 0.3);
}

TEST(ClkEncoderTest, NonNumericValueInNumericFieldFails) {
  Schema schema;
  schema.fields = {{"age", FieldType::kNumeric}};
  Record bad;
  bad.values = {"not-a-number"};
  ClkFieldConfig age;
  age.field_name = "age";
  age.numeric_step = 1.0;
  const ClkEncoder encoder(SmallParams(), {age});
  EXPECT_FALSE(encoder.Encode(schema, bad).ok());
}

TEST(ClkEncoderTest, EncodeDatabaseMatchesPerRecord) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(20);
  BloomFilterParams params;
  params.num_bits = 800;
  ClkFieldConfig first;
  first.field_name = "first_name";
  const ClkEncoder encoder(params, {first});
  auto all = encoder.EncodeDatabase(db);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), db.records.size());
  for (size_t i = 0; i < db.records.size(); ++i) {
    EXPECT_EQ((*all)[i], encoder.Encode(db.schema, db.records[i]).value());
  }
}

class BloomLengthSweep : public ::testing::TestWithParam<size_t> {};

/// Property: longer filters reduce collision bias, so encoded Dice converges
/// to raw q-gram Dice from above as l grows.
TEST_P(BloomLengthSweep, CollisionBiasShrinksWithLength) {
  BloomFilterParams params;
  params.num_bits = GetParam();
  params.num_hashes = 10;
  const BloomFilterEncoder encoder(params);
  const double raw = QGramDiceSimilarity("katherine", "catherine");
  const double encoded = DiceSimilarity(encoder.EncodeString("katherine"),
                                        encoder.EncodeString("catherine"));
  const double bias = std::abs(encoded - raw);
  // At l = 4000 the bias must be tiny; at 250 it may be sizable.
  if (GetParam() >= 4000) {
    EXPECT_LT(bias, 0.05);
  } else {
    EXPECT_LT(bias, 0.4);
  }
}

INSTANTIATE_TEST_SUITE_P(Lengths, BloomLengthSweep,
                         ::testing::Values(250, 500, 1000, 2000, 4000));

}  // namespace
}  // namespace pprl
