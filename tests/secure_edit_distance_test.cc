#include "crypto/secure_edit_distance.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(PlainEditDistanceTest, KnownValues) {
  EXPECT_EQ(PlainEditDistance("", ""), 0u);
  EXPECT_EQ(PlainEditDistance("abc", ""), 3u);
  EXPECT_EQ(PlainEditDistance("", "abc"), 3u);
  EXPECT_EQ(PlainEditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(PlainEditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(PlainEditDistance("same", "same"), 0u);
}

TEST(SecureEditDistanceTest, MatchesPlainOnExamples) {
  Rng rng(42);
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"peter", "pedro"}, {"ann", "anne"}, {"jo", "jo"}, {"a", "b"}, {"", "xy"},
  };
  for (const auto& [a, b] : cases) {
    auto result = SecureEditDistance(a, b, rng, 96);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->distance, PlainEditDistance(a, b)) << a << " vs " << b;
  }
}

TEST(SecureEditDistanceTest, MetersProtocolCost) {
  Rng rng(1);
  auto result = SecureEditDistance("smith", "smyth", rng, 96);
  ASSERT_TRUE(result.ok());
  // One one-hot vector per character of `a` (28 encryptions each) plus the
  // DP row initialisations and the per-cell blinded mins.
  EXPECT_GT(result->encryptions, 5u * 28u);
  EXPECT_GT(result->decryptions, 25u * 3u);  // 3 per interior cell
  EXPECT_GT(result->messages, 25u);
  EXPECT_GT(result->bytes, 0u);
}

TEST(SecureEditDistanceTest, CostGrowsQuadratically) {
  Rng rng(2);
  auto small = SecureEditDistance("abcd", "abcd", rng, 96);
  auto large = SecureEditDistance("abcdabcd", "abcdabcd", rng, 96);
  ASSERT_TRUE(small.ok() && large.ok());
  // 4x the cells -> roughly 4x the decryptions.
  EXPECT_GT(large->decryptions, 3 * small->decryptions);
}

TEST(SecureEditDistanceTest, HandlesSpacesAndUnknownChars) {
  Rng rng(3);
  auto result = SecureEditDistance("de la cruz", "dela cruz!", rng, 96);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, PlainEditDistance("de la cruz", "dela cruz!"));
}

/// Property sweep: random lowercase strings, secure == plain.
class SecureEditDistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SecureEditDistancePropertyTest, AgreesWithPlain) {
  Rng rng(GetParam());
  auto random_string = [&rng](size_t max_len) {
    std::string s;
    const size_t len = rng.NextUint64(max_len + 1);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>('a' + rng.NextUint64(26));
    }
    return s;
  };
  const std::string a = random_string(6);
  const std::string b = random_string(6);
  auto result = SecureEditDistance(a, b, rng, 80);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->distance, PlainEditDistance(a, b)) << "'" << a << "' vs '" << b << "'";
}

INSTANTIATE_TEST_SUITE_P(RandomStrings, SecureEditDistancePropertyTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace pprl
