#include "linkage/multiparty.h"

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

std::vector<BitVector> EncodeNames(const std::vector<std::string>& names) {
  const BloomFilterEncoder encoder({300, 10, BloomHashScheme::kDoubleHashing, ""});
  std::vector<BitVector> out;
  for (const auto& n : names) out.push_back(encoder.EncodeString(n));
  return out;
}

std::vector<const BitVector*> Pointers(const std::vector<BitVector>& filters) {
  std::vector<const BitVector*> out;
  for (const auto& f : filters) out.push_back(&f);
  return out;
}

class SecureCbfTest : public ::testing::TestWithParam<CommunicationPattern> {};

TEST_P(SecureCbfTest, AggregateEqualsPlainCounts) {
  Rng rng(5);
  const auto filters = EncodeNames({"smith", "smyth", "smithe", "smit"});
  const auto pointers = Pointers(filters);
  MultiPartyCost cost;
  auto counts = SecureCbfAggregate(pointers, GetParam(), rng, &cost);
  ASSERT_TRUE(counts.ok());
  // The masks must cancel exactly: counts == plain sum of bits.
  for (size_t pos = 0; pos < filters[0].size(); ++pos) {
    uint32_t expected = 0;
    for (const auto& f : filters) expected += f.Get(pos) ? 1 : 0;
    EXPECT_EQ((*counts)[pos], expected) << "position " << pos;
  }
  EXPECT_GT(cost.messages, 0u);
  EXPECT_GT(cost.bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Patterns, SecureCbfTest,
                         ::testing::Values(CommunicationPattern::kStar,
                                           CommunicationPattern::kSequential,
                                           CommunicationPattern::kRing,
                                           CommunicationPattern::kTree));

TEST(SecureCbfTest, RejectsFewerThanThreeParties) {
  Rng rng(1);
  const auto filters = EncodeNames({"a", "b"});
  EXPECT_FALSE(
      SecureCbfAggregate(Pointers(filters), CommunicationPattern::kStar, rng, nullptr)
          .ok());
}

TEST(SecureCbfTest, RejectsMismatchedLengths) {
  Rng rng(1);
  BitVector a(100), b(100), c(200);
  EXPECT_FALSE(
      SecureCbfAggregate({&a, &b, &c}, CommunicationPattern::kStar, rng, nullptr).ok());
}

TEST(SecureMultiPartyDiceTest, MatchesDirectDice) {
  Rng rng(9);
  const auto filters = EncodeNames({"katherine", "catherine", "katharine"});
  const auto pointers = Pointers(filters);
  auto secure = SecureMultiPartyDice(pointers, CommunicationPattern::kRing, rng, nullptr);
  ASSERT_TRUE(secure.ok());
  EXPECT_NEAR(secure.value(), DiceSimilarity(pointers), 1e-12);
}

TEST(SecureMultiPartyDiceTest, IdenticalFiltersGiveOne) {
  Rng rng(11);
  const auto filters = EncodeNames({"smith", "smith", "smith"});
  auto secure =
      SecureMultiPartyDice(Pointers(filters), CommunicationPattern::kTree, rng, nullptr);
  ASSERT_TRUE(secure.ok());
  EXPECT_DOUBLE_EQ(secure.value(), 1.0);
}

TEST(PatternCostTest, AnalyticCosts) {
  const size_t p = 8;
  const auto star = PatternCost(CommunicationPattern::kStar, p, 100);
  EXPECT_EQ(star.messages, 8u);
  EXPECT_EQ(star.rounds, 1u);
  const auto seq = PatternCost(CommunicationPattern::kSequential, p, 100);
  EXPECT_EQ(seq.messages, 7u);
  EXPECT_EQ(seq.rounds, 7u);
  const auto ring = PatternCost(CommunicationPattern::kRing, p, 100);
  EXPECT_EQ(ring.messages, 8u);
  EXPECT_EQ(ring.rounds, 8u);
  const auto tree = PatternCost(CommunicationPattern::kTree, p, 100);
  EXPECT_EQ(tree.messages, 7u);
  EXPECT_EQ(tree.rounds, 3u);  // ceil(log2 8)
  EXPECT_EQ(tree.bytes, 700u);
}

TEST(PatternCostTest, TreeRoundsLogarithmic) {
  EXPECT_EQ(PatternCost(CommunicationPattern::kTree, 16, 1).rounds, 4u);
  EXPECT_EQ(PatternCost(CommunicationPattern::kTree, 17, 1).rounds, 5u);
}

TEST(SecureCbfTest, TreeFewerRoundsThanSequential) {
  Rng rng(13);
  const auto filters =
      EncodeNames({"a", "b", "c", "d", "e", "f", "g", "h"});
  const auto pointers = Pointers(filters);
  MultiPartyCost seq_cost, tree_cost;
  ASSERT_TRUE(SecureCbfAggregate(pointers, CommunicationPattern::kSequential, rng,
                                 &seq_cost)
                  .ok());
  ASSERT_TRUE(
      SecureCbfAggregate(pointers, CommunicationPattern::kTree, rng, &tree_cost).ok());
  EXPECT_LT(tree_cost.rounds, seq_cost.rounds);
}

}  // namespace
}  // namespace pprl
