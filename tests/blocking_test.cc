#include "blocking/blocking.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/metrics.h"

namespace pprl {
namespace {

Database MakeDb(const std::vector<std::pair<std::string, std::string>>& names,
                uint64_t first_entity = 0) {
  Database db;
  db.schema = DataGenerator::StandardSchema();
  for (size_t i = 0; i < names.size(); ++i) {
    Record r;
    r.id = i;
    r.entity_id = first_entity + i;
    r.values = {names[i].first, names[i].second, "f", "1980-01-01",
                "springfield", "1 main st", "2000", "0400000000"};
    db.records.push_back(std::move(r));
  }
  return db;
}

TEST(StandardBlockerTest, SameKeysShareBlocks) {
  const Database a = MakeDb({{"mary", "smith"}, {"john", "jones"}});
  const Database b = MakeDb({{"mary", "smyth"}, {"peter", "brown"}});
  const StandardBlocker blocker(SoundexNameKey("k"));
  const auto pairs =
      StandardBlocker::CandidatePairs(blocker.BuildIndex(a), blocker.BuildIndex(b));
  // smith/smyth soundex-collide with the same first initial -> (0,0) only.
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].a, 0u);
  EXPECT_EQ(pairs[0].b, 0u);
}

TEST(StandardBlockerTest, KeyedBlockingDiffersByKey) {
  const Database a = MakeDb({{"mary", "smith"}});
  const StandardBlocker b1(SoundexNameKey("key-1"));
  const StandardBlocker b2(SoundexNameKey("key-2"));
  const auto i1 = b1.BuildIndex(a);
  const auto i2 = b2.BuildIndex(a);
  EXPECT_NE(i1.begin()->first, i2.begin()->first);
}

TEST(StandardBlockerTest, CandidatePairsDeduplicated) {
  // Key function emitting two identical keys must not duplicate pairs.
  const BlockingKeyFunction multi = [](const Schema&, const Record&) {
    return std::vector<std::string>{"k1", "k2"};
  };
  const Database a = MakeDb({{"x", "y"}});
  const Database b = MakeDb({{"p", "q"}});
  const StandardBlocker blocker(multi);
  const auto pairs =
      StandardBlocker::CandidatePairs(blocker.BuildIndex(a), blocker.BuildIndex(b));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(ExactAttributeKeyTest, BlocksOnNormalizedValue) {
  const Database a = MakeDb({{"ann", "lee"}});
  Database b = MakeDb({{"ann", "lee"}});
  b.records[0].values[6] = "2000";  // same postcode
  const StandardBlocker blocker(ExactAttributeKey("postcode", "k"));
  const auto pairs =
      StandardBlocker::CandidatePairs(blocker.BuildIndex(a), blocker.BuildIndex(b));
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(ExactAttributeKeyTest, MissingFieldYieldsNoKeys) {
  const Database a = MakeDb({{"ann", "lee"}});
  const StandardBlocker blocker(ExactAttributeKey("nonexistent", "k"));
  EXPECT_TRUE(blocker.BuildIndex(a).empty());
}

TEST(FullPairsTest, CrossProduct) {
  const auto pairs = FullPairs(3, 2);
  EXPECT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs.front(), (CandidatePair{0, 0}));
  EXPECT_EQ(pairs.back(), (CandidatePair{2, 1}));
  EXPECT_TRUE(FullPairs(0, 5).empty());
}

/// Collects a shard stream back into one vector, checking shard ids are
/// sequential and every shard except the last respects `shard_size`.
std::vector<CandidatePair> CollectShards(size_t shard_size,
                                         const std::function<void(const CandidateShardFn&)>& produce) {
  std::vector<CandidatePair> all;
  uint32_t next_id = 0;
  bool saw_short_shard = false;
  produce([&](CandidateShard shard) {
    EXPECT_EQ(shard.shard_id, next_id++) << "shard ids must be sequential";
    EXPECT_FALSE(shard.pairs.empty()) << "empty shards must not be emitted";
    if (shard_size != 0) {
      EXPECT_FALSE(saw_short_shard) << "only the final shard may be short";
      EXPECT_LE(shard.pairs.size(), shard_size);
      if (shard.pairs.size() < shard_size) saw_short_shard = true;
    }
    all.insert(all.end(), shard.pairs.begin(), shard.pairs.end());
  });
  return all;
}

/// The streaming generators must reproduce their materializing
/// counterparts byte for byte at any shard size — that equivalence is what
/// makes the parallel pipeline's output independent of sharding.
TEST(StreamFullPairsTest, MatchesFullPairsAtEveryShardSize) {
  const auto expected = FullPairs(23, 17);
  for (const size_t shard_size : {size_t{0}, size_t{1}, size_t{7}, size_t{64},
                                  size_t{1000}}) {
    const auto streamed = CollectShards(shard_size, [&](const CandidateShardFn& emit) {
      StreamFullPairs(23, 17, shard_size, emit);
    });
    ASSERT_EQ(expected.size(), streamed.size()) << "shard_size=" << shard_size;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], streamed[i]) << "shard_size=" << shard_size;
    }
  }
  // Degenerate sides stream nothing.
  size_t shards_seen = 0;
  StreamFullPairs(0, 5, 8, [&](CandidateShard) { ++shards_seen; });
  StreamFullPairs(5, 0, 8, [&](CandidateShard) { ++shards_seen; });
  EXPECT_EQ(shards_seen, 0u);
}

TEST(StreamBlockedPairsTest, MatchesCandidatePairsAtEveryShardSize) {
  // Overlapping multi-key blocks so deduplication and cross-key merges are
  // actually exercised.
  const BlockingKeyFunction keys = [](const Schema&, const Record& r) {
    const std::string& name = r.values.at(0);
    std::vector<std::string> out = {name.substr(0, 1)};
    if (name.size() > 1) out.push_back(name.substr(0, 2));
    return out;
  };
  const Database a = MakeDb({{"ada", "x"}, {"adam", "y"}, {"bob", "z"}, {"ben", "w"}});
  const Database b = MakeDb({{"ada", "p"}, {"beth", "q"}, {"adele", "r"}});
  const StandardBlocker blocker(keys);
  const BlockIndex ia = blocker.BuildIndex(a);
  const BlockIndex ib = blocker.BuildIndex(b);
  const auto expected = StandardBlocker::CandidatePairs(ia, ib);
  ASSERT_FALSE(expected.empty());
  for (const size_t shard_size : {size_t{0}, size_t{1}, size_t{3}, size_t{100}}) {
    const auto streamed = CollectShards(shard_size, [&](const CandidateShardFn& emit) {
      StreamBlockedPairs(ia, ib, shard_size, emit);
    });
    ASSERT_EQ(expected.size(), streamed.size()) << "shard_size=" << shard_size;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], streamed[i]) << "shard_size=" << shard_size;
    }
  }
}

/// Collects a run-shard stream, materializing each shard, with the same
/// invariant checks as CollectShards plus the run-shard contract: shards
/// carry runs (never pairs), pair counts respect shard_size, and each
/// shard's expanded sequence is ascending (a, b) — the invariant the tiled
/// compare path sorts against.
std::vector<CandidatePair> CollectRunShards(
    size_t shard_size,
    const std::function<void(const CandidateShardFn&)>& produce) {
  std::vector<CandidatePair> all;
  uint32_t next_id = 0;
  bool saw_short_shard = false;
  produce([&](CandidateShard shard) {
    EXPECT_EQ(shard.shard_id, next_id++) << "shard ids must be sequential";
    EXPECT_TRUE(shard.pairs.empty()) << "run shards must not carry pairs";
    EXPECT_FALSE(shard.runs.empty()) << "empty shards must not be emitted";
    const size_t num_pairs = shard.num_pairs();
    if (shard_size != 0) {
      EXPECT_FALSE(saw_short_shard) << "only the final shard may be short";
      EXPECT_LE(num_pairs, shard_size);
      if (num_pairs < shard_size) saw_short_shard = true;
    }
    shard.MaterializePairs();
    EXPECT_EQ(shard.pairs.size(), num_pairs);
    for (size_t i = 1; i < shard.pairs.size(); ++i) {
      EXPECT_TRUE(shard.pairs[i - 1] < shard.pairs[i])
          << "expanded runs must ascend within a shard";
    }
    all.insert(all.end(), shard.pairs.begin(), shard.pairs.end());
  });
  return all;
}

/// The run producers must emit exactly the candidate sequence (and shard
/// boundaries) of their materializing counterparts — runs are a wire
/// format, not a different stream.
TEST(StreamPairRunsTest, FullRunsMatchFullPairsAtEveryShardSize) {
  const auto expected = FullPairs(23, 17);
  for (const size_t shard_size :
       {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{1000}}) {
    const auto streamed =
        CollectRunShards(shard_size, [&](const CandidateShardFn& emit) {
          StreamFullPairRuns(23, 17, shard_size, emit);
        });
    ASSERT_EQ(expected.size(), streamed.size()) << "shard_size=" << shard_size;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], streamed[i]) << "shard_size=" << shard_size;
    }
  }
  size_t shards_seen = 0;
  StreamFullPairRuns(0, 5, 8, [&](CandidateShard) { ++shards_seen; });
  StreamFullPairRuns(5, 0, 8, [&](CandidateShard) { ++shards_seen; });
  EXPECT_EQ(shards_seen, 0u);
}

TEST(StreamPairRunsTest, BlockedRunsMatchCandidatePairsAtEveryShardSize) {
  const BlockingKeyFunction keys = [](const Schema&, const Record& r) {
    const std::string& name = r.values.at(0);
    std::vector<std::string> out = {name.substr(0, 1)};
    if (name.size() > 1) out.push_back(name.substr(0, 2));
    return out;
  };
  const Database a = MakeDb({{"ada", "x"}, {"adam", "y"}, {"bob", "z"}, {"ben", "w"}});
  const Database b = MakeDb({{"ada", "p"}, {"beth", "q"}, {"adele", "r"}});
  const StandardBlocker blocker(keys);
  const BlockIndex ia = blocker.BuildIndex(a);
  const BlockIndex ib = blocker.BuildIndex(b);
  const auto expected = StandardBlocker::CandidatePairs(ia, ib);
  ASSERT_FALSE(expected.empty());
  for (const size_t shard_size : {size_t{0}, size_t{1}, size_t{3}, size_t{100}}) {
    const auto streamed =
        CollectRunShards(shard_size, [&](const CandidateShardFn& emit) {
          StreamBlockedPairRuns(ia, ib, shard_size, emit);
        });
    ASSERT_EQ(expected.size(), streamed.size()) << "shard_size=" << shard_size;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(expected[i], streamed[i]) << "shard_size=" << shard_size;
    }
  }
}

TEST(SortedNeighborhoodTest, WindowCoversAdjacentKeys) {
  const Database a = MakeDb({{"aaa", "aaa"}, {"zzz", "zzz"}});
  const Database b = MakeDb({{"aab", "aab"}, {"zzy", "zzy"}});
  // Key on raw last name (unkeyed for testability).
  const BlockingKeyFunction raw_key = [](const Schema& schema, const Record& r) {
    const int idx = schema.FieldIndex("last_name");
    return std::vector<std::string>{r.values[static_cast<size_t>(idx)]};
  };
  const SortedNeighborhoodBlocker blocker(raw_key, 2);
  const auto pairs = blocker.CandidatePairs(a, b);
  // Sorted keys: aaa(a0) aab(b0) zzy(b1) zzz(a1): window 2 pairs a0-b0, b1-a1.
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (CandidatePair{0, 0}));
  EXPECT_EQ(pairs[1], (CandidatePair{1, 1}));
}

TEST(SortedNeighborhoodTest, LargerWindowMoreCandidates) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig config;
  config.records_per_database = 100;
  config.overlap = 0.5;
  auto dbs = gen.GenerateScenario(config);
  ASSERT_TRUE(dbs.ok());
  const BlockingKeyFunction raw_key = [](const Schema& schema, const Record& r) {
    const int idx = schema.FieldIndex("last_name");
    return std::vector<std::string>{r.values[static_cast<size_t>(idx)]};
  };
  const SortedNeighborhoodBlocker narrow(raw_key, 3);
  const SortedNeighborhoodBlocker wide(raw_key, 10);
  EXPECT_LT(narrow.CandidatePairs((*dbs)[0], (*dbs)[1]).size(),
            wide.CandidatePairs((*dbs)[0], (*dbs)[1]).size());
}

TEST(BlockingQualityTest, SoundexBlockingOnGeneratedData) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig config;
  config.records_per_database = 300;
  config.overlap = 0.5;
  config.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(config);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];
  const GroundTruth truth(a, b);
  ASSERT_GT(truth.num_matches(), 100u);

  const StandardBlocker blocker(SoundexNameKey("k"));
  const auto pairs =
      StandardBlocker::CandidatePairs(blocker.BuildIndex(a), blocker.BuildIndex(b));
  const BlockingQuality quality = EvaluateBlocking(pairs, truth, a.size(), b.size());
  // Blocking must prune hard while keeping most true matches.
  EXPECT_GT(quality.reduction_ratio, 0.9);
  EXPECT_GT(quality.pairs_completeness, 0.6);
}

}  // namespace
}  // namespace pprl
