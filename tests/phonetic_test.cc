#include "encoding/phonetic.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(SoundexTest, ClassicExamples) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");  // H is transparent
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, CaseAndPunctuationInsensitive) {
  EXPECT_EQ(Soundex("o'brien"), Soundex("OBRIEN"));
  EXPECT_EQ(Soundex("smith"), Soundex("  S m i t h  "));
}

TEST(SoundexTest, SimilarSoundingNamesCollide) {
  EXPECT_EQ(Soundex("Smith"), Soundex("Smyth"));
  EXPECT_EQ(Soundex("Catherine"), Soundex("Katherine").substr(0, 4).replace(0, 1, "C"));
}

TEST(SoundexTest, EmptyAndNonAlpha) {
  EXPECT_EQ(Soundex(""), "Z000");
  EXPECT_EQ(Soundex("123"), "Z000");
}

TEST(SoundexTest, PadsShortCodes) {
  EXPECT_EQ(Soundex("Lee"), "L000");
  EXPECT_EQ(Soundex("Wu"), "W000");
}

TEST(NysiisTest, StableKnownCodes) {
  // Codes pinned against this implementation; the important property is
  // that sound-alike pairs share a code.
  EXPECT_EQ(Nysiis("Smith"), Nysiis("Smyth"));
  EXPECT_EQ(Nysiis("Bryan"), Nysiis("Brian"));
  EXPECT_EQ(Nysiis("Phillip"), Nysiis("Filip"));
  EXPECT_NE(Nysiis("Smith"), Nysiis("Jones"));
}

TEST(NysiisTest, MaxSixChars) {
  EXPECT_LE(Nysiis("Wolfeschlegelstein").size(), 6u);
}

TEST(NysiisTest, EmptyInput) { EXPECT_EQ(Nysiis(""), ""); }

TEST(NysiisTest, KnightMatchesNight) { EXPECT_EQ(Nysiis("Knight"), Nysiis("Night")); }

TEST(MetaphoneTest, SoundAlikePairsCollide) {
  EXPECT_EQ(Metaphone("Smith"), Metaphone("Smyth"));
  EXPECT_EQ(Metaphone("Phillip"), Metaphone("Filip"));
  EXPECT_EQ(Metaphone("Knight"), Metaphone("Night"));
  EXPECT_EQ(Metaphone("Wright"), Metaphone("Rite"));
}

TEST(MetaphoneTest, DistinguishesDifferentNames) {
  EXPECT_NE(Metaphone("Smith"), Metaphone("Jones"));
  EXPECT_NE(Metaphone("Brown"), Metaphone("Green"));
}

TEST(MetaphoneTest, RespectsMaxLength) {
  EXPECT_LE(Metaphone("Wolfeschlegelsteinhausen", 4).size(), 4u);
  EXPECT_LE(Metaphone("Wolfeschlegelsteinhausen").size(), 6u);
}

TEST(MetaphoneTest, EmptyInput) { EXPECT_EQ(Metaphone(""), ""); }

TEST(MetaphoneTest, InitialVowelKept) {
  EXPECT_EQ(Metaphone("Adam")[0], 'A');
  EXPECT_EQ(Metaphone("Eve")[0], 'E');
}

TEST(PhoneticTest, TypoRobustnessForBlocking) {
  // The property blocking needs: common single-typo variants usually keep
  // the same phonetic code.
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"johnson", "jonson"}, {"thompson", "tompson"}, {"connor", "conor"},
  };
  int same_soundex = 0;
  for (const auto& [a, b] : variants) {
    if (Soundex(a) == Soundex(b)) ++same_soundex;
  }
  EXPECT_GE(same_soundex, 2);
}

}  // namespace
}  // namespace pprl
