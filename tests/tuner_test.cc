#include "tuning/tuner.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pprl {
namespace {

/// A smooth 2-d objective with maximum 1.0 at (0.3, 0.7).
double Bump(const ParamPoint& p) {
  const double dx = p[0] - 0.3;
  const double dy = p[1] - 0.7;
  return std::exp(-(dx * dx + dy * dy) / 0.05);
}

std::vector<ParamSpec> UnitSquare() {
  return {{"x", 0.0, 1.0, false}, {"y", 0.0, 1.0, false}};
}

TEST(GridSearchTest, CoversTheGrid) {
  size_t evals = 0;
  const Objective counter = [&evals](const ParamPoint&) {
    ++evals;
    return 0.0;
  };
  GridSearch(UnitSquare(), counter, 4);
  EXPECT_EQ(evals, 16u);
}

TEST(GridSearchTest, FindsCoarseOptimum) {
  const auto result = GridSearch(UnitSquare(), Bump, 11);
  EXPECT_NEAR(result.best.point[0], 0.3, 0.05);
  EXPECT_NEAR(result.best.point[1], 0.7, 0.05);
  EXPECT_GT(result.best.value, 0.95);
}

TEST(GridSearchTest, SingleLevelUsesMidpoint) {
  const auto result = GridSearch(UnitSquare(), Bump, 1);
  ASSERT_EQ(result.history.size(), 1u);
  EXPECT_DOUBLE_EQ(result.history[0].point[0], 0.5);
}

TEST(GridSearchTest, IntegerParamsRounded) {
  const std::vector<ParamSpec> space = {{"k", 1, 10, true}};
  const auto result = GridSearch(space, [](const ParamPoint& p) { return p[0]; }, 10);
  for (const auto& eval : result.history) {
    EXPECT_DOUBLE_EQ(eval.point[0], std::round(eval.point[0]));
    EXPECT_GE(eval.point[0], 1.0);
    EXPECT_LE(eval.point[0], 10.0);
  }
  EXPECT_DOUBLE_EQ(result.best.point[0], 10.0);
}

TEST(RandomSearchTest, RespectsBudgetAndBounds) {
  Rng rng(1);
  const std::vector<ParamSpec> space = {{"x", -5, 5, false}};
  const auto result =
      RandomSearch(space, [](const ParamPoint& p) { return -p[0] * p[0]; }, 50, rng);
  EXPECT_EQ(result.history.size(), 50u);
  for (const auto& eval : result.history) {
    EXPECT_GE(eval.point[0], -5.0);
    EXPECT_LE(eval.point[0], 5.0);
  }
  EXPECT_NEAR(result.best.point[0], 0.0, 1.5);
}

TEST(BayesianOptTest, FindsOptimum) {
  Rng rng(3);
  const auto result = BayesianOptimization(UnitSquare(), Bump, 40, rng);
  EXPECT_EQ(result.history.size(), 40u);
  EXPECT_GT(result.best.value, 0.9);
}

TEST(BayesianOptTest, BeatsRandomSearchOnSameBudget) {
  // Averaged over seeds, BO should reach a better best value than random
  // search with the same evaluation budget (the E10 claim).
  double bo_total = 0, random_total = 0;
  const size_t budget = 25;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng_bo(seed);
    Rng rng_rs(seed + 100);
    bo_total += BayesianOptimization(UnitSquare(), Bump, budget, rng_bo).best.value;
    random_total += RandomSearch(UnitSquare(), Bump, budget, rng_rs).best.value;
  }
  EXPECT_GE(bo_total, random_total - 0.25);  // allow noise; BO must be competitive
}

TEST(BayesianOptTest, WarmupSmallerThanBudget) {
  Rng rng(5);
  BayesianOptOptions options;
  options.initial_random = 100;  // larger than budget
  const auto result = BayesianOptimization(UnitSquare(), Bump, 10, rng, options);
  EXPECT_EQ(result.history.size(), 10u);
}

TEST(TuningResultTest, BestAfterIsPrefixMaximum) {
  TuningResult result;
  result.history = {{{0.1}, 0.3}, {{0.2}, 0.9}, {{0.3}, 0.5}};
  EXPECT_DOUBLE_EQ(result.BestAfter(1), 0.3);
  EXPECT_DOUBLE_EQ(result.BestAfter(2), 0.9);
  EXPECT_DOUBLE_EQ(result.BestAfter(3), 0.9);
  EXPECT_DOUBLE_EQ(result.BestAfter(100), 0.9);
}

}  // namespace
}  // namespace pprl
