#include "common/random.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
    const int64_t v = rng.NextInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, LaplaceMoments) {
  Rng rng(13);
  const double scale = 1.5;
  double sum = 0, sq = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextLaplace(scale);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 2 * scale * scale, 0.3);  // Var = 2b^2
}

TEST(RngTest, BoolFrequency) {
  Rng rng(17);
  int heads = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfDistribution zipf(50, 1.0);
  double total = 0;
  for (size_t k = 0; k < 50; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(zipf.Pmf(50), 0.0);
}

TEST(ZipfTest, RankZeroMostLikely) {
  const ZipfDistribution zipf(100, 1.2);
  for (size_t k = 1; k < 100; ++k) EXPECT_GT(zipf.Pmf(0), zipf.Pmf(k));
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  const ZipfDistribution zipf(10, 1.0);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  const ZipfDistribution zipf(4, 0.0);
  for (size_t k = 0; k < 4; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.25, 1e-12);
}

}  // namespace
}  // namespace pprl
