#include "pipeline/party.h"

#include <set>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

class PartyTest : public ::testing::Test {
 protected:
  static ClkEncoder SharedEncoder() {
    PipelineConfig config;
    return ClkEncoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  }
};

TEST_F(PartyTest, ShipBeforeEncodeFails) {
  DataGenerator gen(GeneratorConfig{});
  DatabaseOwner owner("hospital-a", gen.GenerateClean(5));
  Channel channel;
  EXPECT_FALSE(owner.ShipEncodings(channel, "lu").ok());
  EXPECT_EQ(channel.total_messages(), 0u);  // nothing leaked
}

TEST_F(PartyTest, ShipmentIsMetered) {
  DataGenerator gen(GeneratorConfig{});
  DatabaseOwner owner("hospital-a", gen.GenerateClean(10));
  ASSERT_TRUE(owner.Encode(SharedEncoder()).ok());
  Channel channel;
  auto shipment = owner.ShipEncodings(channel, "lu");
  ASSERT_TRUE(shipment.ok());
  EXPECT_EQ(shipment->size(), 10u);
  EXPECT_EQ(channel.total_messages(), 1u);
  EXPECT_GT(channel.BytesBetween("hospital-a", "lu"), 10u * 100);
}

TEST_F(PartyTest, LinkageUnitRejectsBadShipments) {
  LinkageUnitService lu("lu");
  EncodedDatabase mismatched;
  mismatched.ids = {1};
  EXPECT_FALSE(lu.Receive("a", mismatched).ok());

  EncodedDatabase first;
  first.ids = {1};
  first.filters = {BitVector(100)};
  ASSERT_TRUE(lu.Receive("a", first).ok());
  EXPECT_FALSE(lu.Receive("a", first).ok());  // duplicate owner

  EncodedDatabase wrong_length;
  wrong_length.ids = {1};
  wrong_length.filters = {BitVector(64)};
  EXPECT_FALSE(lu.Receive("b", wrong_length).ok());
}

TEST_F(PartyTest, LinkNeedsTwoDatabases) {
  LinkageUnitService lu("lu");
  EncodedDatabase one;
  one.ids = {1};
  one.filters = {BitVector(100)};
  ASSERT_TRUE(lu.Receive("a", one).ok());
  EXPECT_FALSE(lu.Link(MultiPartyLinkageOptions{}).ok());
}

TEST_F(PartyTest, ThreeHospitalEndToEnd) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 150;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());

  // Keep entity ids aside for scoring before handing databases to owners.
  std::vector<std::vector<uint64_t>> entity_ids;
  for (const auto& db : *dbs) {
    std::vector<uint64_t> ids;
    for (const auto& r : db.records) ids.push_back(r.entity_id);
    entity_ids.push_back(std::move(ids));
  }

  const ClkEncoder encoder = SharedEncoder();
  Channel channel;
  LinkageUnitService lu("lu");
  const std::vector<std::string> names = {"hospital-a", "hospital-b", "registry-c"};
  for (size_t d = 0; d < 3; ++d) {
    DatabaseOwner owner(names[d], std::move((*dbs)[d]));
    ASSERT_TRUE(owner.Encode(encoder).ok());
    auto shipment = owner.ShipEncodings(channel, "lu");
    ASSERT_TRUE(shipment.ok());
    ASSERT_TRUE(lu.Receive(owner.name(), std::move(shipment).value()).ok());
  }
  EXPECT_EQ(lu.num_databases(), 3u);
  EXPECT_EQ(channel.total_messages(), 3u);

  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;
  auto result = lu.Link(options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->edges.size(), 50u);
  EXPECT_LT(result->comparisons, 3u * 150u * 150u);  // LSH pruned

  // Cluster purity against the retained ground truth.
  const auto full = ClustersInAtLeast(result->clusters, 3);
  size_t pure = 0;
  for (const Cluster& cluster : full) {
    std::set<uint64_t> entities;
    for (const RecordRef& ref : cluster) {
      entities.insert(entity_ids[ref.database][ref.record]);
    }
    if (entities.size() == 1) ++pure;
  }
  EXPECT_GT(full.size(), 25u);
  EXPECT_GT(static_cast<double>(pure) / static_cast<double>(full.size()), 0.75);
}

TEST_F(PartyTest, StarVsComponentsToggle) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 80;
  scenario.num_databases = 3;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const ClkEncoder encoder = SharedEncoder();
  Channel channel;
  LinkageUnitService lu("lu");
  for (size_t d = 0; d < 3; ++d) {
    DatabaseOwner owner("p" + std::to_string(d), std::move((*dbs)[d]));
    ASSERT_TRUE(owner.Encode(encoder).ok());
    ASSERT_TRUE(lu.Receive(owner.name(),
                           std::move(owner.ShipEncodings(channel, "lu")).value())
                    .ok());
  }
  MultiPartyLinkageOptions star;
  star.use_star_clustering = true;
  MultiPartyLinkageOptions components;
  components.use_star_clustering = false;
  auto star_result = lu.Link(star);
  auto comp_result = lu.Link(components);
  ASSERT_TRUE(star_result.ok() && comp_result.ok());
  EXPECT_EQ(star_result->edges.size(), comp_result->edges.size());
  EXPECT_GE(star_result->clusters.size(), comp_result->clusters.size());
}

}  // namespace
}  // namespace pprl
