#include "privacy/privacy_metrics.h"

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "encoding/hardening.h"

namespace pprl {
namespace {

TEST(DisclosureRiskTest, UniqueCodesFullyDisclose) {
  const std::vector<std::string> codes = {"a", "b", "c", "d"};
  EXPECT_DOUBLE_EQ(UniqueCodeDisclosureRisk(codes), 1.0);
  EXPECT_DOUBLE_EQ(MeanDisclosureRisk(codes), 1.0);
}

TEST(DisclosureRiskTest, SharedCodesLowerRisk) {
  const std::vector<std::string> codes = {"a", "a", "a", "a"};
  EXPECT_DOUBLE_EQ(UniqueCodeDisclosureRisk(codes), 0.0);
  EXPECT_DOUBLE_EQ(MeanDisclosureRisk(codes), 0.25);  // one group of 4
}

TEST(DisclosureRiskTest, MixedGroups) {
  // Two singletons and one pair: unique risk 2/4, mean risk 3 groups / 4.
  const std::vector<std::string> codes = {"a", "b", "c", "c"};
  EXPECT_DOUBLE_EQ(UniqueCodeDisclosureRisk(codes), 0.5);
  EXPECT_DOUBLE_EQ(MeanDisclosureRisk(codes), 0.75);
}

TEST(DisclosureRiskTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(UniqueCodeDisclosureRisk({}), 0.0);
  EXPECT_DOUBLE_EQ(MeanDisclosureRisk({}), 0.0);
}

TEST(CodeEntropyTest, UniformVsPointMass) {
  EXPECT_NEAR(CodeEntropyBits({"a", "b", "c", "d"}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(CodeEntropyBits({"a", "a", "a"}), 0.0);
}

TEST(InformationGainTest, FullDisclosureEqualsPlaintextEntropy) {
  // Code == plaintext: knowing the code pins the plaintext exactly.
  const std::vector<std::string> plain = {"x", "x", "y", "z"};
  EXPECT_NEAR(InformationGainBits(plain, plain), CodeEntropyBits(plain), 1e-12);
}

TEST(InformationGainTest, ConstantCodeRevealsNothing) {
  const std::vector<std::string> plain = {"x", "x", "y", "z"};
  const std::vector<std::string> code = {"c", "c", "c", "c"};
  EXPECT_NEAR(InformationGainBits(plain, code), 0.0, 1e-12);
}

TEST(InformationGainTest, PartialDisclosure) {
  // Code distinguishes {x} from {y,z}: gain = H(plain) - 0.5*H(y,z)
  const std::vector<std::string> plain = {"x", "x", "y", "z"};
  const std::vector<std::string> code = {"a", "a", "b", "b"};
  const double gain = InformationGainBits(plain, code);
  EXPECT_GT(gain, 0.0);
  EXPECT_LT(gain, CodeEntropyBits(plain));
}

TEST(InformationGainTest, SizeMismatchIsZero) {
  EXPECT_DOUBLE_EQ(InformationGainBits({"a"}, {"a", "b"}), 0.0);
}

TEST(BitFrequenciesTest, CountsPerPosition) {
  BitVector a(4), b(4);
  a.Set(0);
  a.Set(1);
  b.Set(1);
  const auto freq = BitFrequencies({a, b});
  ASSERT_EQ(freq.size(), 4u);
  EXPECT_DOUBLE_EQ(freq[0], 0.5);
  EXPECT_DOUBLE_EQ(freq[1], 1.0);
  EXPECT_DOUBLE_EQ(freq[2], 0.0);
}

TEST(BitFrequencySpreadTest, BalancingFlattensProfile) {
  const BloomFilterEncoder encoder({400, 12, BloomHashScheme::kDoubleHashing, ""});
  // A skewed population: many "smith", few others.
  std::vector<BitVector> plain, balanced;
  std::vector<std::string> names;
  for (int i = 0; i < 60; ++i) names.push_back("smith");
  for (int i = 0; i < 20; ++i) names.push_back("name" + std::to_string(i));
  for (const auto& name : names) {
    const BitVector bf = encoder.EncodeString(name);
    plain.push_back(bf);
    balanced.push_back(Balance(bf, 5));
  }
  // Balanced filters all have exactly 50% weight; the per-position variance
  // may remain, but the aggregate weight signal disappears. Check weights:
  for (const auto& f : balanced) EXPECT_EQ(f.Count(), 400u);
  EXPECT_GT(BitFrequencySpread(plain), 0.1);
}

TEST(BitFrequenciesTest, EmptyCollection) {
  EXPECT_TRUE(BitFrequencies({}).empty());
  EXPECT_DOUBLE_EQ(BitFrequencySpread({}), 0.0);
}

}  // namespace
}  // namespace pprl
