#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

TEST(CalibrateThresholdTest, SuggestedThresholdIsNearOptimal) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 300;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];

  PipelineConfig config;
  auto threshold = PprlPipeline::CalibrateThreshold(config, a, b);
  ASSERT_TRUE(threshold.ok()) << threshold.status().ToString();
  EXPECT_GT(threshold.value(), 0.55);
  EXPECT_LT(threshold.value(), 0.98);

  // Linking at the calibrated threshold must come close to the best F1
  // found by an exhaustive (ground-truth-using) threshold sweep.
  const GroundTruth truth(a, b);
  auto run_at = [&](double t) {
    PipelineConfig c = config;
    c.match_threshold = t;
    auto output = PprlPipeline(c).Link(a, b);
    return output.ok() ? EvaluateMatches(output->matches, truth).F1() : 0.0;
  };
  const double calibrated_f1 = run_at(threshold.value());
  double best_f1 = 0;
  for (double t = 0.6; t <= 0.95; t += 0.05) best_f1 = std::max(best_f1, run_at(t));
  EXPECT_GT(calibrated_f1, best_f1 - 0.12);
}

TEST(CalibrateThresholdTest, PropagatesPipelineErrors) {
  PipelineConfig broken;
  broken.bloom.num_bits = 0;
  Database empty;
  empty.schema = DataGenerator::StandardSchema();
  EXPECT_FALSE(PprlPipeline::CalibrateThreshold(broken, empty, empty).ok());
}

TEST(CalibrateThresholdTest, TooFewScoresFails) {
  DataGenerator gen(GeneratorConfig{});
  const Database tiny = gen.GenerateClean(2);
  PipelineConfig config;
  config.blocking = BlockingScheme::kNone;
  // 4 candidate scores < the mixture's minimum sample.
  EXPECT_FALSE(PprlPipeline::CalibrateThreshold(config, tiny, tiny).ok());
}

}  // namespace
}  // namespace pprl
