#include "crypto/bigint.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(BigIntTest, ConstructionAndDecimal) {
  EXPECT_EQ(BigInt().ToDecimal(), "0");
  EXPECT_EQ(BigInt(0).ToDecimal(), "0");
  EXPECT_EQ(BigInt(42).ToDecimal(), "42");
  EXPECT_EQ(BigInt(-42).ToDecimal(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToDecimal(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToDecimal(), "-9223372036854775808");
}

TEST(BigIntTest, FromDecimalRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  EXPECT_EQ(BigInt::FromDecimal(big).ToDecimal(), big);
  EXPECT_EQ(BigInt::FromDecimal("-" + big).ToDecimal(), "-" + big);
  EXPECT_EQ(BigInt::FromDecimal("0").ToDecimal(), "0");
  EXPECT_EQ(BigInt::FromDecimal("-0").ToDecimal(), "0");
  EXPECT_EQ(BigInt::FromDecimal("007").ToDecimal(), "7");
}

TEST(BigIntTest, AdditionWithCarries) {
  const BigInt a = BigInt::FromDecimal("99999999999999999999999999");
  EXPECT_EQ((a + BigInt(1)).ToDecimal(), "100000000000000000000000000");
  EXPECT_EQ((a + a).ToDecimal(), "199999999999999999999999998");
}

TEST(BigIntTest, SignedAddSub) {
  EXPECT_EQ((BigInt(5) + BigInt(-8)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(-5) + BigInt(8)).ToDecimal(), "3");
  EXPECT_EQ((BigInt(-5) + BigInt(-8)).ToDecimal(), "-13");
  EXPECT_EQ((BigInt(5) - BigInt(8)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(-5) - BigInt(-5)).ToDecimal(), "0");
}

TEST(BigIntTest, MultiplicationLarge) {
  const BigInt a = BigInt::FromDecimal("123456789012345678901234567890");
  const BigInt b = BigInt::FromDecimal("987654321098765432109876543210");
  EXPECT_EQ((a * b).ToDecimal(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).ToDecimal(), "0");
  EXPECT_EQ((a * BigInt(-1)).ToDecimal(), "-123456789012345678901234567890");
}

TEST(BigIntTest, DivisionAndRemainder) {
  const BigInt a = BigInt::FromDecimal("1000000000000000000000");
  const BigInt b = BigInt::FromDecimal("7777777777");
  const BigInt q = a / b;
  const BigInt r = a % b;
  EXPECT_EQ((q * b + r), a);
  EXPECT_TRUE(r >= BigInt(0));
  EXPECT_TRUE(r < b);
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToDecimal(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToDecimal(), "-3");
  EXPECT_EQ((BigInt(7) % BigInt(-2)).ToDecimal(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToDecimal(), "-1");
}

TEST(BigIntTest, DivisionBySingleLimb) {
  const BigInt a = BigInt::FromDecimal("123456789012345678901234567890");
  EXPECT_EQ((a / BigInt(10)).ToDecimal(), "12345678901234567890123456789");
  EXPECT_EQ((a % BigInt(10)).ToDecimal(), "0");
}

/// Randomised divmod invariant: a == q*b + r, 0 <= |r| < |b|.
TEST(BigIntProperty, DivModInvariant) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const BigInt a = BigInt::RandomBits(rng, 16 + rng.NextUint64(200));
    const BigInt b = BigInt::RandomBits(rng, 1 + rng.NextUint64(120));
    const BigInt q = a / b;
    const BigInt r = a % b;
    EXPECT_EQ(q * b + r, a);
    EXPECT_TRUE(r < b);
    EXPECT_TRUE(r >= BigInt(0));
  }
}

TEST(BigIntTest, Comparisons) {
  EXPECT_TRUE(BigInt(-5) < BigInt(3));
  EXPECT_TRUE(BigInt(3) < BigInt(5));
  EXPECT_TRUE(BigInt(-5) < BigInt(-3));
  EXPECT_TRUE(BigInt(5) == BigInt(5));
  EXPECT_TRUE(BigInt(5) != BigInt(-5));
  EXPECT_TRUE(BigInt::FromDecimal("10000000000000000000") >
              BigInt::FromDecimal("9999999999999999999"));
}

TEST(BigIntTest, Shifts) {
  EXPECT_EQ(BigInt(1).ShiftLeft(100).ToDecimal(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt(1).ShiftLeft(100).ShiftRight(100), BigInt(1));
  EXPECT_EQ(BigInt(255).ShiftRight(4).ToDecimal(), "15");
  EXPECT_EQ(BigInt(1).ShiftRight(1).ToDecimal(), "0");
}

TEST(BigIntTest, BitLengthAndBit) {
  EXPECT_EQ(BigInt(0).BitLength(), 0u);
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_TRUE(BigInt(5).Bit(0));
  EXPECT_FALSE(BigInt(5).Bit(1));
  EXPECT_TRUE(BigInt(5).Bit(2));
  EXPECT_FALSE(BigInt(5).Bit(64));
}

TEST(BigIntTest, PowMod) {
  // 3^20 mod 1000 = 3486784401 mod 1000 = 401.
  EXPECT_EQ(PowMod(BigInt(3), BigInt(20), BigInt(1000)).ToDecimal(), "401");
  // Fermat: a^(p-1) = 1 mod p for prime p.
  const BigInt p(1000003);
  EXPECT_EQ(PowMod(BigInt(12345), p - BigInt(1), p), BigInt(1));
  EXPECT_EQ(PowMod(BigInt(5), BigInt(0), BigInt(7)), BigInt(1));
}

TEST(BigIntTest, GcdLcm) {
  EXPECT_EQ(Gcd(BigInt(48), BigInt(36)), BigInt(12));
  EXPECT_EQ(Gcd(BigInt(-48), BigInt(36)), BigInt(12));
  EXPECT_EQ(Gcd(BigInt(17), BigInt(13)), BigInt(1));
  EXPECT_EQ(Gcd(BigInt(0), BigInt(9)), BigInt(9));
  EXPECT_EQ(Lcm(BigInt(4), BigInt(6)), BigInt(12));
  EXPECT_EQ(Lcm(BigInt(0), BigInt(6)), BigInt(0));
}

TEST(BigIntTest, ModInverse) {
  auto inv = ModInverse(BigInt(3), BigInt(11));
  ASSERT_TRUE(inv.ok());
  EXPECT_EQ(inv.value(), BigInt(4));  // 3*4 = 12 = 1 mod 11
  EXPECT_FALSE(ModInverse(BigInt(6), BigInt(9)).ok());  // gcd 3
}

TEST(BigIntProperty, ModInverseRandom) {
  Rng rng(7);
  const BigInt m = BigInt::RandomPrime(rng, 64);
  for (int trial = 0; trial < 20; ++trial) {
    const BigInt a = BigInt(1) + BigInt::Random(rng, m - BigInt(1));
    auto inv = ModInverse(a, m);
    ASSERT_TRUE(inv.ok());
    EXPECT_EQ(MulMod(a, inv.value(), m), BigInt(1));
  }
}

TEST(BigIntTest, MillerRabinKnownValues) {
  Rng rng(3);
  EXPECT_FALSE(IsProbablePrime(BigInt(0), rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(1), rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(2), rng));
  EXPECT_TRUE(IsProbablePrime(BigInt(97), rng));
  EXPECT_FALSE(IsProbablePrime(BigInt(561), rng));   // Carmichael number
  EXPECT_FALSE(IsProbablePrime(BigInt(8911), rng));  // Carmichael number
  EXPECT_TRUE(IsProbablePrime(BigInt::FromDecimal("170141183460469231731687303715884105727"),
                              rng));  // 2^127 - 1
  EXPECT_FALSE(IsProbablePrime(BigInt::FromDecimal("170141183460469231731687303715884105725"),
                               rng));
}

TEST(BigIntTest, RandomPrimeHasRequestedBits) {
  Rng rng(31);
  for (size_t bits : {16, 24, 48}) {
    const BigInt p = BigInt::RandomPrime(rng, bits);
    EXPECT_EQ(p.BitLength(), bits);
    EXPECT_TRUE(IsProbablePrime(p, rng));
  }
}

TEST(BigIntTest, RandomIsBounded) {
  Rng rng(41);
  const BigInt bound = BigInt::FromDecimal("1000000000000");
  for (int i = 0; i < 100; ++i) {
    const BigInt r = BigInt::Random(rng, bound);
    EXPECT_TRUE(r >= BigInt(0));
    EXPECT_TRUE(r < bound);
  }
}

TEST(BigIntTest, ToInt64) {
  EXPECT_EQ(BigInt(12345).ToInt64(), 12345);
  EXPECT_EQ(BigInt(-12345).ToInt64(), -12345);
  EXPECT_EQ(BigInt(0).ToInt64(), 0);
}

}  // namespace
}  // namespace pprl
