#include "encoding/rbf.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

std::vector<RbfFieldConfig> TwoFields(double first_weight, double last_weight) {
  RbfFieldConfig first;
  first.field_name = "first_name";
  first.weight = first_weight;
  RbfFieldConfig last;
  last.field_name = "last_name";
  last.weight = last_weight;
  return {first, last};
}

Record MakeRecord(const std::string& first, const std::string& last) {
  Record r;
  r.values = {first, last, "f", "1980-01-01", "springfield", "1 main st", "2000",
              "0400000000"};
  return r;
}

TEST(RbfEncoderTest, CreateValidatesInput) {
  RbfParams params;
  EXPECT_FALSE(RbfEncoder::Create(params, {}).ok());
  EXPECT_FALSE(RbfEncoder::Create(params, TwoFields(0.0, 1.0)).ok());
  RbfParams zero_len;
  zero_len.output_bits = 0;
  EXPECT_FALSE(RbfEncoder::Create(zero_len, TwoFields(1, 1)).ok());
  RbfParams keyed;
  keyed.scheme = BloomHashScheme::kKeyedHmac;
  EXPECT_FALSE(RbfEncoder::Create(keyed, TwoFields(1, 1)).ok());
  EXPECT_TRUE(RbfEncoder::Create(params, TwoFields(1, 1)).ok());
}

TEST(RbfEncoderTest, WeightsControlSampling) {
  RbfParams params;
  params.output_bits = 10000;
  auto encoder = RbfEncoder::Create(params, TwoFields(3.0, 1.0));
  ASSERT_TRUE(encoder.ok());
  const double from_first = static_cast<double>(encoder->BitsSampledFrom(0));
  const double from_last = static_cast<double>(encoder->BitsSampledFrom(1));
  EXPECT_EQ(from_first + from_last, 10000);
  EXPECT_NEAR(from_first / 10000, 0.75, 0.02);
}

TEST(RbfEncoderTest, DeterministicPerSeed) {
  const Schema schema = DataGenerator::StandardSchema();
  RbfParams params;
  auto e1 = RbfEncoder::Create(params, TwoFields(1, 1));
  auto e2 = RbfEncoder::Create(params, TwoFields(1, 1));
  params.sampling_seed = 99;
  auto e3 = RbfEncoder::Create(params, TwoFields(1, 1));
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());
  const Record r = MakeRecord("mary", "smith");
  EXPECT_EQ(e1->Encode(schema, r).value(), e2->Encode(schema, r).value());
  EXPECT_NE(e1->Encode(schema, r).value(), e3->Encode(schema, r).value());
}

TEST(RbfEncoderTest, SimilarRecordsScoreHigher) {
  const Schema schema = DataGenerator::StandardSchema();
  RbfParams params;
  auto encoder = RbfEncoder::Create(params, TwoFields(1, 1));
  ASSERT_TRUE(encoder.ok());
  const BitVector smith = encoder->Encode(schema, MakeRecord("mary", "smith")).value();
  const BitVector smyth = encoder->Encode(schema, MakeRecord("mary", "smyth")).value();
  const BitVector other = encoder->Encode(schema, MakeRecord("john", "nguyen")).value();
  EXPECT_GT(DiceSimilarity(smith, smyth), DiceSimilarity(smith, other));
  EXPECT_DOUBLE_EQ(DiceSimilarity(smith, smith), 1.0);
}

TEST(RbfEncoderTest, WeightingShiftsFieldInfluence) {
  // With nearly all weight on last_name, a first-name mismatch barely
  // moves the similarity; with the weight on first_name it dominates.
  const Schema schema = DataGenerator::StandardSchema();
  RbfParams params;
  auto last_heavy = RbfEncoder::Create(params, TwoFields(0.05, 0.95));
  auto first_heavy = RbfEncoder::Create(params, TwoFields(0.95, 0.05));
  ASSERT_TRUE(last_heavy.ok() && first_heavy.ok());
  const Record base = MakeRecord("mary", "smith");
  const Record diff_first = MakeRecord("john", "smith");
  const double sim_last_heavy =
      DiceSimilarity(last_heavy->Encode(schema, base).value(),
                     last_heavy->Encode(schema, diff_first).value());
  const double sim_first_heavy =
      DiceSimilarity(first_heavy->Encode(schema, base).value(),
                     first_heavy->Encode(schema, diff_first).value());
  EXPECT_GT(sim_last_heavy, 0.85);
  EXPECT_LT(sim_first_heavy, 0.4);
}

TEST(RbfEncoderTest, UnknownFieldFails) {
  RbfParams params;
  RbfFieldConfig bogus;
  bogus.field_name = "nope";
  auto encoder = RbfEncoder::Create(params, {bogus});
  ASSERT_TRUE(encoder.ok());
  const Schema schema = DataGenerator::StandardSchema();
  EXPECT_FALSE(encoder->Encode(schema, MakeRecord("a", "b")).ok());
}

TEST(RbfEncoderTest, EncodeDatabase) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(10);
  RbfParams params;
  auto encoder = RbfEncoder::Create(params, TwoFields(1, 1));
  ASSERT_TRUE(encoder.ok());
  auto filters = encoder->EncodeDatabase(db);
  ASSERT_TRUE(filters.ok());
  EXPECT_EQ(filters->size(), 10u);
  for (const auto& f : *filters) EXPECT_EQ(f.size(), params.output_bits);
}

}  // namespace
}  // namespace pprl
