#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace pprl {
namespace {

/// Two tiny databases with a known entity overlap.
struct Fixture {
  Database a;
  Database b;
};

Fixture MakeFixture() {
  Fixture f;
  f.a.schema = DataGenerator::StandardSchema();
  f.b.schema = f.a.schema;
  // a: entities 1,2,3 ; b: entities 2,3,4  -> true matches (1,0) and (2,1).
  for (uint64_t e : {1, 2, 3}) {
    Record r;
    r.id = f.a.records.size();
    r.entity_id = e;
    r.values.assign(f.a.schema.size(), "x");
    f.a.records.push_back(std::move(r));
  }
  for (uint64_t e : {2, 3, 4}) {
    Record r;
    r.id = f.b.records.size();
    r.entity_id = e;
    r.values.assign(f.b.schema.size(), "x");
    f.b.records.push_back(std::move(r));
  }
  return f;
}

TEST(GroundTruthTest, PairsFromEntityIds) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  EXPECT_EQ(truth.num_matches(), 2u);
  EXPECT_TRUE(truth.IsMatch(1, 0));  // entity 2
  EXPECT_TRUE(truth.IsMatch(2, 1));  // entity 3
  EXPECT_FALSE(truth.IsMatch(0, 0));
}

TEST(GroundTruthTest, DuplicateEntitiesProduceAllPairs) {
  Database a, b;
  a.schema = b.schema = DataGenerator::StandardSchema();
  for (int i = 0; i < 2; ++i) {
    Record r;
    r.entity_id = 7;
    r.values.assign(a.schema.size(), "x");
    a.records.push_back(r);
    b.records.push_back(r);
  }
  const GroundTruth truth(a, b);
  EXPECT_EQ(truth.num_matches(), 4u);  // 2x2
}

TEST(ConfusionCountsTest, Formulas) {
  ConfusionCounts counts;
  counts.true_positives = 8;
  counts.false_positives = 2;
  counts.false_negatives = 4;
  EXPECT_DOUBLE_EQ(counts.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(counts.Recall(), 8.0 / 12.0);
  EXPECT_NEAR(counts.F1(), 2 * 0.8 * (2.0 / 3) / (0.8 + 2.0 / 3), 1e-12);
  const ConfusionCounts zeros;
  EXPECT_DOUBLE_EQ(zeros.Precision(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.Recall(), 0.0);
  EXPECT_DOUBLE_EQ(zeros.F1(), 0.0);
}

TEST(EvaluateMatchesTest, CountsAgainstTruth) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> predicted = {
      {1, 0, 0.9},  // true positive
      {0, 0, 0.8},  // false positive
  };
  const ConfusionCounts counts = EvaluateMatches(predicted, truth);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 1u);
  EXPECT_EQ(counts.false_negatives, 1u);  // (2,1) missed
}

TEST(EvaluateMatchesTest, DuplicatePredictionsCountOnce) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> predicted = {{1, 0, 0.9}, {1, 0, 0.95}};
  const ConfusionCounts counts = EvaluateMatches(predicted, truth);
  EXPECT_EQ(counts.true_positives, 1u);
  EXPECT_EQ(counts.false_positives, 0u);
}

TEST(EvaluateBlockingTest, Metrics) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  // Candidates keep 1 of 2 true matches in 3 candidates out of 9 pairs.
  const std::vector<CandidatePair> candidates = {{1, 0}, {0, 0}, {2, 2}};
  const BlockingQuality q = EvaluateBlocking(candidates, truth, 3, 3);
  EXPECT_NEAR(q.reduction_ratio, 1.0 - 3.0 / 9.0, 1e-12);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 0.5);
  EXPECT_NEAR(q.pairs_quality, 1.0 / 3.0, 1e-12);
}

TEST(EvaluateBlockingTest, EmptyCandidates) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const BlockingQuality q = EvaluateBlocking({}, truth, 3, 3);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 1.0);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 0.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 0.0);
}

TEST(AucTest, PerfectSeparationIsOne) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> scored = {
      {1, 0, 0.9}, {2, 1, 0.8}, {0, 0, 0.3}, {0, 1, 0.2}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scored, truth), 1.0);
}

TEST(AucTest, ReversedScoresGiveZero) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> scored = {
      {1, 0, 0.1}, {2, 1, 0.2}, {0, 0, 0.8}, {0, 1, 0.9}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scored, truth), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> scored = {
      {1, 0, 0.5}, {2, 1, 0.5}, {0, 0, 0.5}, {0, 1, 0.5}};
  EXPECT_DOUBLE_EQ(AreaUnderRoc(scored, truth), 0.5);
}

TEST(AucTest, DegenerateClassesGiveHalf) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  EXPECT_DOUBLE_EQ(AreaUnderRoc({{0, 0, 0.9}}, truth), 0.5);  // only negatives
  EXPECT_DOUBLE_EQ(AreaUnderRoc({}, truth), 0.5);
}

TEST(ThresholdSweepTest, MonotoneRecall) {
  const Fixture f = MakeFixture();
  const GroundTruth truth(f.a, f.b);
  const std::vector<ScoredPair> scored = {
      {1, 0, 0.9}, {2, 1, 0.6}, {0, 0, 0.7}, {0, 1, 0.4}};
  const auto points = ThresholdSweep(scored, truth);
  ASSERT_EQ(points.size(), 4u);
  // Thresholds ascend; recall must descend (or stay) as threshold rises.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].threshold, points[i - 1].threshold);
    EXPECT_LE(points[i].recall, points[i - 1].recall + 1e-12);
  }
  // At the lowest threshold every pair is predicted: recall 1.
  EXPECT_DOUBLE_EQ(points.front().recall, 1.0);
  // At the highest threshold only (1,0): precision 1, recall 0.5.
  EXPECT_DOUBLE_EQ(points.back().precision, 1.0);
  EXPECT_DOUBLE_EQ(points.back().recall, 0.5);
}

}  // namespace
}  // namespace pprl
