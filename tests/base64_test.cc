#include "common/base64.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pprl {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) {
  return std::vector<uint8_t>(s.begin(), s.end());
}

TEST(Base64Test, Rfc4648Vectors) {
  EXPECT_EQ(Base64Encode(Bytes("")), "");
  EXPECT_EQ(Base64Encode(Bytes("f")), "Zg==");
  EXPECT_EQ(Base64Encode(Bytes("fo")), "Zm8=");
  EXPECT_EQ(Base64Encode(Bytes("foo")), "Zm9v");
  EXPECT_EQ(Base64Encode(Bytes("foob")), "Zm9vYg==");
  EXPECT_EQ(Base64Encode(Bytes("fooba")), "Zm9vYmE=");
  EXPECT_EQ(Base64Encode(Bytes("foobar")), "Zm9vYmFy");
}

TEST(Base64Test, DecodeVectors) {
  EXPECT_EQ(Base64Decode("Zm9vYmFy").value(), Bytes("foobar"));
  EXPECT_EQ(Base64Decode("Zg==").value(), Bytes("f"));
  EXPECT_EQ(Base64Decode("").value(), Bytes(""));
}

TEST(Base64Test, RejectsMalformedInput) {
  EXPECT_FALSE(Base64Decode("abc").ok());        // not multiple of 4
  EXPECT_FALSE(Base64Decode("ab!d").ok());       // bad character
  EXPECT_FALSE(Base64Decode("=abc").ok());       // padding at the start
  EXPECT_FALSE(Base64Decode("a=bc").ok());       // data after padding
  EXPECT_FALSE(Base64Decode("Zg==Zg==").ok());   // padding mid-stream
}

TEST(Base64Test, RoundTripRandomBinary) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> data(rng.NextUint64(200));
    for (auto& b : data) b = static_cast<uint8_t>(rng.NextUint64(256));
    auto decoded = Base64Decode(Base64Encode(data));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), data);
  }
}

}  // namespace
}  // namespace pprl
