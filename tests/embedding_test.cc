#include "encoding/embedding.h"

#include <gtest/gtest.h>

#include "crypto/secure_edit_distance.h"

namespace pprl {
namespace {

TEST(StringEmbedderTest, CreateValidatesArguments) {
  Rng rng(1);
  EXPECT_FALSE(StringEmbedder::Create(0, 5, rng).ok());
  EXPECT_FALSE(StringEmbedder::Create(5, 0, rng).ok());
  auto ok = StringEmbedder::Create(8, 5, rng);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->dimensions(), 8u);
}

TEST(StringEmbedderTest, SharedSeedGivesSharedReferenceSet) {
  Rng rng_a(99), rng_b(99);
  auto a = StringEmbedder::Create(6, 5, rng_a);
  auto b = StringEmbedder::Create(6, 5, rng_b);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->reference_set(), b->reference_set());
  EXPECT_EQ(a->Embed("smith"), b->Embed("smith"));
}

TEST(StringEmbedderTest, EmbeddingComponentsAreEditDistances) {
  const StringEmbedder embedder({"abc", "xyz"});
  const auto v = embedder.Embed("abd");
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);  // abc -> abd
  EXPECT_DOUBLE_EQ(v[1], 3.0);  // xyz -> abd
}

TEST(StringEmbedderTest, IdenticalStringsEmbedIdentically) {
  Rng rng(5);
  auto embedder = StringEmbedder::Create(10, 6, rng);
  ASSERT_TRUE(embedder.ok());
  EXPECT_EQ(embedder->Embed("garcia"), embedder->Embed("garcia"));
  EXPECT_DOUBLE_EQ(
      StringEmbedder::ChebyshevDistance(embedder->Embed("garcia"), embedder->Embed("garcia")),
      0.0);
}

/// The contractive (Lipschitz) property: Chebyshev distance of embeddings
/// lower-bounds true edit distance — the guarantee threshold filtering uses.
TEST(StringEmbedderTest, ChebyshevLowerBoundsEditDistance) {
  Rng rng(7);
  auto embedder = StringEmbedder::Create(12, 6, rng);
  ASSERT_TRUE(embedder.ok());
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"smith", "smyth"},   {"jones", "johnson"},  {"garcia", "garza"},
      {"anderson", "andersen"}, {"a", "zzzzzz"}, {"", "abc"},
  };
  for (const auto& [a, b] : pairs) {
    const double cheb =
        StringEmbedder::ChebyshevDistance(embedder->Embed(a), embedder->Embed(b));
    EXPECT_LE(cheb, static_cast<double>(PlainEditDistance(a, b)) + 1e-9)
        << a << " vs " << b;
  }
}

TEST(StringEmbedderTest, EuclideanDistanceBasics) {
  EXPECT_DOUBLE_EQ(StringEmbedder::EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(StringEmbedder::EuclideanDistance({1, 1}, {1, 1}), 0.0);
}

TEST(StringEmbedderTest, SimilarStringsCloserThanDissimilar) {
  Rng rng(11);
  auto embedder = StringEmbedder::Create(16, 6, rng);
  ASSERT_TRUE(embedder.ok());
  const auto smith = embedder->Embed("smith");
  const auto smyth = embedder->Embed("smyth");
  const auto wilson = embedder->Embed("wilson");
  EXPECT_LT(StringEmbedder::EuclideanDistance(smith, smyth),
            StringEmbedder::EuclideanDistance(smith, wilson));
}

}  // namespace
}  // namespace pprl
