#include "common/strings.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("MiXeD 123"), "mixed 123");
  EXPECT_EQ(ToUpper("MiXeD 123"), "MIXED 123");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("\t\n hi \r"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, SplitPreservesEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"a", "", "b"};
  EXPECT_EQ(Join(parts, ","), "a,,b");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringsTest, StripNonAlnum) {
  EXPECT_EQ(StripNonAlnum("o'brien-smith 3rd"), "obriensmith3rd");
  EXPECT_EQ(StripNonAlnum("!!!"), "");
}

TEST(StringsTest, NormalizeQid) {
  EXPECT_EQ(NormalizeQid("  John   SMITH "), "john smith");
  EXPECT_EQ(NormalizeQid("a\t\tb"), "a b");
  EXPECT_EQ(NormalizeQid(""), "");
}

TEST(QGramsTest, PaddedBigrams) {
  // "pete" padded -> _pete_ -> _p pe et te e_
  const auto grams = QGrams("pete");
  EXPECT_EQ(grams, (std::vector<std::string>{"_p", "pe", "et", "te", "e_"}));
}

TEST(QGramsTest, UnpaddedBigrams) {
  QGramOptions opts;
  opts.pad = false;
  EXPECT_EQ(QGrams("pete", opts), (std::vector<std::string>{"pe", "et", "te"}));
}

TEST(QGramsTest, TrigramCount) {
  QGramOptions opts;
  opts.q = 3;
  // padded length = 4 + 2*2 = 8 -> 6 trigrams
  EXPECT_EQ(QGrams("pete", opts).size(), 6u);
}

TEST(QGramsTest, PositionalDedupMakesSet) {
  QGramOptions opts;
  opts.pad = false;
  // "aaaa" -> aa, aa#1, aa#2 : all distinct
  const auto grams = QGrams("aaaa", opts);
  EXPECT_EQ(grams, (std::vector<std::string>{"aa", "aa#1", "aa#2"}));
}

TEST(QGramsTest, WithoutDedupRepeats) {
  QGramOptions opts;
  opts.pad = false;
  opts.positional_dedup = false;
  EXPECT_EQ(QGrams("aaaa", opts), (std::vector<std::string>{"aa", "aa", "aa"}));
}

TEST(QGramsTest, ShortAndEmptyInput) {
  QGramOptions opts;
  opts.pad = false;
  EXPECT_TRUE(QGrams("", opts).empty());
  EXPECT_EQ(QGrams("a", opts), (std::vector<std::string>{"a"}));
  // With padding even one char yields q-grams: _a a_ for q=2.
  EXPECT_EQ(QGrams("a").size(), 2u);
}

TEST(QGramsTest, ZeroQTreatedAsOne) {
  QGramOptions opts;
  opts.q = 0;
  opts.pad = false;
  EXPECT_EQ(QGrams("ab", opts).size(), 2u);
}

TEST(StringsTest, IsInteger) {
  EXPECT_TRUE(IsInteger("0"));
  EXPECT_TRUE(IsInteger("-15"));
  EXPECT_TRUE(IsInteger("123456789"));
  EXPECT_FALSE(IsInteger(""));
  EXPECT_FALSE(IsInteger("-"));
  EXPECT_FALSE(IsInteger("12a"));
  EXPECT_FALSE(IsInteger("1.5"));
}

class QGramLengthTest : public ::testing::TestWithParam<size_t> {};

/// Property: with padding, a string of length n yields n + q - 1 q-grams.
TEST_P(QGramLengthTest, PaddedGramCount) {
  const size_t q = GetParam();
  QGramOptions opts;
  opts.q = q;
  const std::string input = "abcdefghij";
  EXPECT_EQ(QGrams(input, opts).size(), input.size() + q - 1);
}

INSTANTIATE_TEST_SUITE_P(Qs, QGramLengthTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace pprl
