#include "similarity/similarity.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pprl {
namespace {

BitVector FromBits(const std::string& bits) { return BitVector::FromString(bits); }

TEST(DiceTest, KnownValues) {
  // |a|=3, |b|=3, common=2 -> 2*2/6.
  EXPECT_NEAR(DiceSimilarity(FromBits("111000"), FromBits("011100")), 4.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(DiceSimilarity(FromBits("1010"), FromBits("1010")), 1.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(FromBits("1100"), FromBits("0011")), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity(FromBits("0000"), FromBits("0000")), 1.0);
}

TEST(DiceTest, MultiPartyGeneralizesTwoParty) {
  const BitVector a = FromBits("111000");
  const BitVector b = FromBits("011100");
  EXPECT_NEAR(DiceSimilarity({&a, &b}), DiceSimilarity(a, b), 1e-12);
}

TEST(DiceTest, MultiPartyThreeFilters) {
  const BitVector a = FromBits("1110");
  const BitVector b = FromBits("0111");
  const BitVector c = FromBits("0110");
  // common = positions 1,2 -> c=2; total ones = 3+3+2 = 8; 3*2/8.
  EXPECT_NEAR(DiceSimilarity({&a, &b, &c}), 0.75, 1e-12);
}

TEST(DiceTest, MultiPartyEdgeCases) {
  const BitVector a = FromBits("10");
  EXPECT_DOUBLE_EQ(DiceSimilarity(std::vector<const BitVector*>{}), 0.0);
  EXPECT_DOUBLE_EQ(DiceSimilarity({&a}), 1.0);
}

TEST(JaccardTest, KnownValues) {
  EXPECT_NEAR(JaccardSimilarity(FromBits("111000"), FromBits("011100")), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(FromBits("0000"), FromBits("0000")), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity(FromBits("1111"), FromBits("1111")), 1.0);
}

TEST(JaccardDiceRelation, HoldsForRandomFilters) {
  Rng rng(3);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector a(64), b(64);
    for (size_t i = 0; i < 64; ++i) {
      if (rng.NextBool(0.4)) a.Set(i);
      if (rng.NextBool(0.4)) b.Set(i);
    }
    const double j = JaccardSimilarity(a, b);
    const double d = DiceSimilarity(a, b);
    EXPECT_NEAR(d, 2 * j / (1 + j), 1e-9);
  }
}

TEST(HammingTest, KnownValues) {
  EXPECT_DOUBLE_EQ(HammingSimilarity(FromBits("1010"), FromBits("1010")), 1.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity(FromBits("1111"), FromBits("0000")), 0.0);
  EXPECT_DOUBLE_EQ(HammingSimilarity(FromBits("1100"), FromBits("1000")), 0.75);
}

TEST(OverlapTest, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapSimilarity(FromBits("1100"), FromBits("1110")), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(FromBits("0000"), FromBits("0000")), 1.0);
  EXPECT_DOUBLE_EQ(OverlapSimilarity(FromBits("0000"), FromBits("1000")), 0.0);
}

TEST(CosineTest, KnownValues) {
  // common=2, |a|=3, |b|=3 -> 2/3.
  EXPECT_NEAR(CosineSimilarity(FromBits("111000"), FromBits("011100")), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CosineSimilarity(FromBits("00"), FromBits("00")), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(FromBits("10"), FromBits("00")), 0.0);
}

TEST(EditSimilarityTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EditSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(EditSimilarity("kitten", "sitting"), 1.0 - 3.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(EditSimilarity("abc", ""), 0.0);
}

TEST(JaroTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.944444, 1e-5);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.766667, 1e-5);
}

TEST(JaroWinklerTest, KnownValues) {
  EXPECT_NEAR(JaroWinklerSimilarity("martha", "marhta"), 0.961111, 1e-5);
  EXPECT_NEAR(JaroWinklerSimilarity("dixon", "dicksonx"), 0.813333, 1e-5);
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("same", "same"), 1.0);
}

TEST(JaroWinklerTest, PrefixBoostCapped) {
  // Identical 4+ char prefix boosts, but never beyond 1.
  const double jw = JaroWinklerSimilarity("michelle", "michaela");
  EXPECT_GT(jw, JaroSimilarity("michelle", "michaela"));
  EXPECT_LE(jw, 1.0);
}

TEST(QGramDiceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(QGramDiceSimilarity("abc", "abc"), 1.0);
  EXPECT_DOUBLE_EQ(QGramDiceSimilarity("", ""), 1.0);
  EXPECT_GT(QGramDiceSimilarity("smith", "smyth"), 0.4);
  EXPECT_LT(QGramDiceSimilarity("smith", "jones"), 0.2);
}

TEST(SmithWatermanTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", ""), 0.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("abc", "abc"), 1.0);
  // Full containment scores 1 regardless of the longer string.
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("anna", "anna-maria garcia"), 1.0);
  EXPECT_DOUBLE_EQ(SmithWatermanSimilarity("maria", "anna-maria"), 1.0);
  // Unrelated strings score low.
  EXPECT_LT(SmithWatermanSimilarity("qqqq", "zzzz"), 0.3);
}

TEST(SmithWatermanTest, LocalAlignmentBeatsGlobalOnEmbeddedNames) {
  // The property it exists for: an embedded name scores much higher under
  // local alignment than under normalised edit distance.
  const double sw = SmithWatermanSimilarity("smith", "dr john smith jr");
  const double edit = EditSimilarity("smith", "dr john smith jr");
  EXPECT_GT(sw, 0.95);
  EXPECT_LT(edit, 0.45);
}

TEST(SmithWatermanTest, SymmetricAndBounded) {
  const std::vector<std::pair<std::string, std::string>> pairs = {
      {"katherine", "catherine"}, {"ab", "ba"}, {"smith", "smyth"}};
  for (const auto& [a, b] : pairs) {
    const double ab = SmithWatermanSimilarity(a, b);
    EXPECT_DOUBLE_EQ(ab, SmithWatermanSimilarity(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

TEST(NumericSimilarityTest, LinearDecay) {
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 10, 5), 1.0);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 12.5, 5), 0.5);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 15, 5), 0.0);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 100, 5), 0.0);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 10, 0), 1.0);
  EXPECT_DOUBLE_EQ(NumericAbsoluteSimilarity(10, 11, 0), 0.0);
}

/// Property: all bit-vector similarities are symmetric and bounded.
TEST(SimilarityProperty, SymmetricAndBounded) {
  Rng rng(9);
  for (int trial = 0; trial < 30; ++trial) {
    BitVector a(128), b(128);
    for (size_t i = 0; i < 128; ++i) {
      if (rng.NextBool(0.3)) a.Set(i);
      if (rng.NextBool(0.3)) b.Set(i);
    }
    using BinarySim = double (*)(const BitVector&, const BitVector&);
    for (BinarySim fn : {static_cast<BinarySim>(&DiceSimilarity), &JaccardSimilarity,
                         &HammingSimilarity, &OverlapSimilarity, &CosineSimilarity}) {
      const double xy = fn(a, b);
      const double yx = fn(b, a);
      EXPECT_DOUBLE_EQ(xy, yx);
      EXPECT_GE(xy, 0.0);
      EXPECT_LE(xy, 1.0);
    }
  }
}

}  // namespace
}  // namespace pprl
