#include "common/logging.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(previous_); }
  LogLevel previous_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
}

TEST_F(LoggingTest, SuppressedBelowThresholdAndEmittedAbove) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  LogMessage(LogLevel::kInfo, "should not appear");
  LogMessage(LogLevel::kError, "should appear");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("should not appear"), std::string::npos);
  EXPECT_NE(err.find("should appear"), std::string::npos);
  EXPECT_NE(err.find("ERROR"), std::string::npos);
}

TEST_F(LoggingTest, StreamMacroFormats) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  PPRL_LOG(kInfo) << "compared " << 42 << " pairs";
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[pprl INFO] compared 42 pairs"), std::string::npos);
}

}  // namespace
}  // namespace pprl
