// Determinism of the parallel linkage path: the same datasets linked at
// 1, 2 and 8 worker threads must produce byte-identical matches, edges
// and clusters. Shard boundaries, steal order and merge timing may vary
// freely underneath — none of it may reach the output.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/blocking.h"
#include "common/bit_matrix.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "datagen/generator.h"
#include "linkage/classifier.h"
#include "linkage/clustering.h"
#include "linkage/parallel_linkage.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

std::pair<Database, Database> OverlappingDatabases(size_t records_each) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = records_each;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  EXPECT_TRUE(dbs.ok());
  return {std::move((*dbs)[0]), std::move((*dbs)[1])};
}

void ExpectSameOutput(const LinkageOutput& expected, const LinkageOutput& actual,
                      size_t threads) {
  ASSERT_EQ(expected.matches.size(), actual.matches.size()) << threads << " threads";
  for (size_t i = 0; i < expected.matches.size(); ++i) {
    EXPECT_EQ(expected.matches[i], actual.matches[i])
        << threads << " threads, match " << i;
  }
  EXPECT_EQ(expected.candidate_pairs, actual.candidate_pairs) << threads;
  EXPECT_EQ(expected.comparisons, actual.comparisons) << threads;
  EXPECT_EQ(expected.pruned_comparisons, actual.pruned_comparisons) << threads;
}

TEST(ParallelPipelineTest, MatchesIdenticalAtEveryThreadCount) {
  const auto [a, b] = OverlappingDatabases(200);
  PipelineConfig config;
  config.bloom.num_bits = 500;
  config.match_threshold = 0.8;
  const auto serial = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  EXPECT_FALSE(serial->matches.empty());
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    PipelineConfig parallel_config = config;
    parallel_config.num_threads = threads;
    const auto parallel = PprlPipeline(parallel_config).Link(a, b);
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    ExpectSameOutput(*serial, *parallel, threads);
  }
}

TEST(ParallelPipelineTest, FullPairsBlockingAlsoDeterministic) {
  const auto [a, b] = OverlappingDatabases(80);
  PipelineConfig config;
  config.bloom.num_bits = 500;
  config.blocking = BlockingScheme::kNone;
  config.match_threshold = 0.8;
  const auto serial = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    PipelineConfig parallel_config = config;
    parallel_config.num_threads = threads;
    const auto parallel = PprlPipeline(parallel_config).Link(a, b);
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    ExpectSameOutput(*serial, *parallel, threads);
  }
}

/// The multi-party service path: serial Link() versus worker counts and a
/// borrowed shared scheduler must agree on edges, clusters and counters.
TEST(ParallelPipelineTest, MultiPartyLinkIdenticalAcrossWorkerCounts) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 120;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());

  PipelineConfig encoder_config;
  const ClkEncoder encoder(encoder_config.bloom, PprlPipeline::DefaultFieldConfigs());
  Channel channel;
  LinkageUnitService unit("lu");
  for (size_t d = 0; d < dbs->size(); ++d) {
    DatabaseOwner owner("owner-" + std::to_string(d), std::move((*dbs)[d]));
    ASSERT_TRUE(owner.Encode(encoder).ok());
    auto shipment = owner.ShipEncodings(channel, unit.name());
    ASSERT_TRUE(shipment.ok());
    ASSERT_TRUE(unit.Receive(owner.name(), std::move(shipment).value()).ok());
  }

  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.8;
  options.use_star_clustering = false;  // exercise parallel union-find
  const auto serial = unit.Link(options);
  ASSERT_TRUE(serial.ok()) << serial.status().message();
  EXPECT_FALSE(serial->edges.empty());

  auto expect_same = [&](const MultiPartyLinkageResult& actual, const std::string& label) {
    ASSERT_EQ(serial->edges.size(), actual.edges.size()) << label;
    for (size_t i = 0; i < serial->edges.size(); ++i) {
      EXPECT_EQ(serial->edges[i].x, actual.edges[i].x) << label << ", edge " << i;
      EXPECT_EQ(serial->edges[i].y, actual.edges[i].y) << label << ", edge " << i;
      EXPECT_EQ(serial->edges[i].score, actual.edges[i].score) << label << ", edge " << i;
    }
    ASSERT_EQ(serial->clusters.size(), actual.clusters.size()) << label;
    for (size_t i = 0; i < serial->clusters.size(); ++i) {
      EXPECT_EQ(serial->clusters[i], actual.clusters[i]) << label << ", cluster " << i;
    }
    EXPECT_EQ(serial->comparisons, actual.comparisons) << label;
    EXPECT_EQ(serial->pruned_comparisons, actual.pruned_comparisons) << label;
  };

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    MultiPartyLinkageOptions parallel_options = options;
    parallel_options.num_threads = threads;
    const auto parallel = unit.Link(parallel_options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().message();
    expect_same(*parallel, std::to_string(threads) + " threads");
  }

  WorkStealingScheduler shared(4);
  MultiPartyLinkageOptions shared_options = options;
  shared_options.scheduler = &shared;
  const auto borrowed = unit.Link(shared_options);
  ASSERT_TRUE(borrowed.ok()) << borrowed.status().message();
  expect_same(*borrowed, "borrowed scheduler");
}

/// The tiled compare path re-orders kernel execution by (a-tile, b-tile)
/// and optionally scores against worker-local B-row copies. None of that
/// may reach the output: hits (values, order, scores — bitwise), counters
/// and the clusters derived from the hits must be identical for every
/// thread count and every tile geometry, including degenerate ones.
TEST(ParallelPipelineTest, TiledExecutionDeterministicAcrossThreadsAndTiles) {
  Rng rng(97);
  const size_t kBits = 600;
  auto random_filters = [&](size_t n) {
    std::vector<BitVector> rows;
    rows.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      BitVector v(kBits);
      for (size_t bit = 0; bit < kBits; ++bit) {
        if (rng.NextDouble() < 0.3) v.Set(bit);
      }
      rows.push_back(std::move(v));
    }
    return rows;
  };
  const BitMatrix ma = BitMatrix::FromVectors(random_filters(300));
  const BitMatrix mb = BitMatrix::FromVectors(random_filters(300));

  // Skewed blocks: key k holds every record with i % 13 == k plus, for
  // k == 0, a giant block of half of each side — the shape stealing and
  // tiling have to keep balanced without reordering output.
  BlockIndex index_a;
  BlockIndex index_b;
  for (uint32_t i = 0; i < ma.num_rows(); ++i) {
    index_a["k" + std::to_string(i % 13)].push_back(i);
    if (i < ma.num_rows() / 2) index_a["k0"].push_back(i);
  }
  for (uint32_t i = 0; i < mb.num_rows(); ++i) {
    index_b["k" + std::to_string(i % 13)].push_back(i);
    if (i >= mb.num_rows() / 2) index_b["k0"].push_back(i);
  }

  ParallelLinkageOptions reference_options;
  reference_options.num_threads = 1;
  // 0.40 sits ~2.6 sigma above the mean Dice of independent 0.3-density
  // filters: enough hits to make the equality assertions meaningful,
  // rare enough that the prune and threshold paths stay exercised.
  const StreamCompareResult reference = StreamCompareBlocked(
      SimilarityMeasure::kDice, ma, mb, index_a, index_b, 0.40, reference_options);
  ASSERT_FALSE(reference.hits.empty());
  const auto reference_clusters = ConnectedComponents([&] {
    std::vector<MatchEdge> edges;
    for (const ScoredPair& hit : reference.hits) {
      edges.push_back({{0, hit.a}, {1, hit.b}, hit.score});
    }
    return edges;
  }());

  struct TileGeometry {
    const char* label;
    size_t tile_a_rows;
    size_t tile_b_rows;
    size_t shard_size;
  };
  const TileGeometry geometries[] = {
      {"tiny", 1, 8, 1024},          // every bucket a handful of pairs
      {"default", 0, 0, 0},          // auto-sized from the cache hierarchy
      {"huge", 1 << 20, 1 << 20, 1 << 22},  // one bucket per shard
  };
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    for (const TileGeometry& geometry : geometries) {
      ParallelLinkageOptions options;
      options.num_threads = threads;
      options.tile_a_rows = geometry.tile_a_rows;
      options.tile_b_rows = geometry.tile_b_rows;
      options.shard_size = geometry.shard_size;
      options.b_copy_min_reuse = 1;  // force the copy path wherever legal
      const StreamCompareResult actual = StreamCompareBlocked(
          SimilarityMeasure::kDice, ma, mb, index_a, index_b, 0.40, options);
      const std::string label =
          std::string(geometry.label) + " tiles, " + std::to_string(threads) + " threads";
      ASSERT_EQ(reference.hits.size(), actual.hits.size()) << label;
      for (size_t i = 0; i < reference.hits.size(); ++i) {
        EXPECT_EQ(reference.hits[i], actual.hits[i]) << label << ", hit " << i;
      }
      EXPECT_EQ(reference.comparisons, actual.comparisons) << label;
      EXPECT_EQ(reference.pruned, actual.pruned) << label;
      std::vector<MatchEdge> edges;
      for (const ScoredPair& hit : actual.hits) {
        edges.push_back({{0, hit.a}, {1, hit.b}, hit.score});
      }
      const auto clusters = ConnectedComponents(edges);
      ASSERT_EQ(reference_clusters.size(), clusters.size()) << label;
      for (size_t i = 0; i < reference_clusters.size(); ++i) {
        EXPECT_EQ(reference_clusters[i], clusters[i]) << label << ", cluster " << i;
      }
    }
  }
}

/// Out-of-range tuning must clamp, not crash or silently misbehave — and
/// auto (0) knobs must resolve to something sane for the filter width.
TEST(ParallelPipelineTest, TuningValidationClampsAbsurdValues) {
  ParallelLinkageOptions absurd;
  absurd.num_threads = 0;
  absurd.shard_size = 3;
  absurd.max_pending_shards = 1000000000;
  absurd.tile_b_rows = 2;
  const ResolvedParallelTuning clamped = ResolveParallelTuning(absurd, 500);
  EXPECT_EQ(clamped.num_threads, 1u);
  EXPECT_EQ(clamped.shard_size, 1024u);
  EXPECT_EQ(clamped.max_pending_shards, 1024u);
  EXPECT_EQ(clamped.tile_b_rows, 8u);

  const ResolvedParallelTuning automatic =
      ResolveParallelTuning(ParallelLinkageOptions{}, 500);
  EXPECT_GE(automatic.shard_size, 16384u);
  EXPECT_LE(automatic.shard_size, 524288u);
  EXPECT_GE(automatic.tile_b_rows, 64u);
  EXPECT_GE(automatic.tile_a_rows, 16u);
  EXPECT_GE(automatic.max_pending_shards, 8u);
  EXPECT_EQ(automatic.row_bytes, 64u);  // 500 bits -> 8 words -> one line
}

TEST(ParallelClusteringTest, ConnectedComponentsParity) {
  Rng rng(41);
  std::vector<MatchEdge> edges;
  for (int i = 0; i < 5000; ++i) {
    MatchEdge e;
    e.x = {static_cast<uint32_t>(rng.NextUint64(3)),
           static_cast<uint32_t>(rng.NextUint64(800))};
    e.y = {static_cast<uint32_t>(rng.NextUint64(3)),
           static_cast<uint32_t>(rng.NextUint64(800))};
    e.score = 0.8 + 0.2 * rng.NextDouble();
    edges.push_back(e);
  }
  const auto serial = ConnectedComponents(edges);
  ASSERT_FALSE(serial.empty());
  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    WorkStealingScheduler scheduler(threads);
    const auto parallel = ParallelConnectedComponents(edges, scheduler);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << threads << " threads, cluster " << i;
    }
  }
}

TEST(ParallelClassifierTest, SelectMatchesParity) {
  Rng rng(43);
  std::vector<ScoredPair> scored;
  scored.reserve(300000);
  for (uint32_t i = 0; i < 300000; ++i) {
    scored.push_back({i % 997, i % 991, rng.NextDouble()});
  }
  const ThresholdClassifier classifier(0.8, 0.8);
  const auto serial = classifier.SelectMatches(scored);
  ASSERT_FALSE(serial.empty());
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    WorkStealingScheduler scheduler(threads);
    const auto parallel = classifier.ParallelSelectMatches(scored, scheduler);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i]) << threads << " threads, pair " << i;
    }
  }
}

}  // namespace
}  // namespace pprl
