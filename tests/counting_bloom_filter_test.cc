#include "encoding/counting_bloom_filter.h"

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

TEST(CountingBloomFilterTest, FromBitVector) {
  BitVector bv(10);
  bv.Set(2);
  bv.Set(7);
  const auto cbf = CountingBloomFilter::FromBitVector(bv);
  EXPECT_EQ(cbf.size(), 10u);
  EXPECT_EQ(cbf.Count(2), 1u);
  EXPECT_EQ(cbf.Count(7), 1u);
  EXPECT_EQ(cbf.Count(0), 0u);
}

TEST(CountingBloomFilterTest, AddAccumulates) {
  BitVector a(5), b(5);
  a.Set(1);
  a.Set(3);
  b.Set(3);
  CountingBloomFilter cbf(5);
  ASSERT_TRUE(cbf.Add(a).ok());
  ASSERT_TRUE(cbf.Add(b).ok());
  EXPECT_EQ(cbf.Count(1), 1u);
  EXPECT_EQ(cbf.Count(3), 2u);
  EXPECT_EQ(cbf.PositionsWithCount(2), 1u);
  EXPECT_EQ(cbf.PositionsWithCount(0), 3u);
  EXPECT_EQ(cbf.PositionsWithCountAtLeast(1), 2u);
}

TEST(CountingBloomFilterTest, AddCbf) {
  CountingBloomFilter x(4), y(4);
  BitVector bv(4);
  bv.Set(0);
  ASSERT_TRUE(x.Add(bv).ok());
  ASSERT_TRUE(y.Add(bv).ok());
  ASSERT_TRUE(x.Add(y).ok());
  EXPECT_EQ(x.Count(0), 2u);
}

TEST(CountingBloomFilterTest, SizeMismatchRejected) {
  CountingBloomFilter cbf(5);
  EXPECT_FALSE(cbf.Add(BitVector(6)).ok());
  EXPECT_FALSE(cbf.Add(CountingBloomFilter(4)).ok());
}

TEST(CountingBloomFilterTest, MultiPartyDiceMatchesDirectDice) {
  // For p parties, the CBF-derived Dice must equal DiceSimilarity over the
  // same filters (this equality is what lets the protocol avoid sharing
  // individual filters).
  const BloomFilterEncoder encoder({200, 8, BloomHashScheme::kDoubleHashing, ""});
  const std::vector<std::string> names = {"smith", "smyth", "smithe"};
  std::vector<BitVector> filters;
  std::vector<const BitVector*> pointers;
  for (const auto& name : names) filters.push_back(encoder.EncodeString(name));
  for (const auto& f : filters) pointers.push_back(&f);

  CountingBloomFilter cbf(200);
  for (const auto& f : filters) ASSERT_TRUE(cbf.Add(f).ok());
  EXPECT_NEAR(cbf.MultiPartyDice(3), DiceSimilarity(pointers), 1e-12);
}

TEST(CountingBloomFilterTest, MultiPartyDiceEdgeCases) {
  CountingBloomFilter empty(10);
  EXPECT_DOUBLE_EQ(empty.MultiPartyDice(3), 0.0);  // all-zero counts
  EXPECT_DOUBLE_EQ(empty.MultiPartyDice(0), 0.0);
}

TEST(CountingBloomFilterTest, IdenticalFiltersGiveDiceOne) {
  BitVector bv(50);
  for (size_t i = 0; i < 50; i += 5) bv.Set(i);
  CountingBloomFilter cbf(50);
  for (int p = 0; p < 4; ++p) ASSERT_TRUE(cbf.Add(bv).ok());
  EXPECT_DOUBLE_EQ(cbf.MultiPartyDice(4), 1.0);
}

}  // namespace
}  // namespace pprl
