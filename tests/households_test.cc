#include <map>
#include <set>

#include <gtest/gtest.h>

#include "blocking/blocking.h"
#include "datagen/generator.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

TEST(HouseholdsTest, MembersShareFamilyFields) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(100, 3.0);
  EXPECT_GE(db.size(), 100u);
  // Group by the shared phone (unique per household by construction).
  std::map<std::string, std::vector<const Record*>> by_phone;
  for (const Record& r : db.records) by_phone[r.values[7]].push_back(&r);
  size_t multi = 0;
  for (const auto& [phone, members] : by_phone) {
    if (members.size() < 2) continue;
    ++multi;
    for (const Record* m : members) {
      EXPECT_EQ(m->values[1], members[0]->values[1]);  // last name
      EXPECT_EQ(m->values[4], members[0]->values[4]);  // city
      EXPECT_EQ(m->values[5], members[0]->values[5]);  // street
      EXPECT_EQ(m->values[6], members[0]->values[6]);  // postcode
    }
  }
  EXPECT_GT(multi, 20u);  // mean size 3 -> plenty of multi-member households
}

TEST(HouseholdsTest, MembersAreDistinctEntities) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(50, 2.5);
  std::set<uint64_t> entities;
  for (const Record& r : db.records) EXPECT_TRUE(entities.insert(r.entity_id).second);
}

TEST(HouseholdsTest, MeanSizeRoughlyHonoured) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(500, 2.6);
  const double mean = static_cast<double>(db.size()) / 500.0;
  EXPECT_GT(mean, 1.8);
  EXPECT_LT(mean, 3.6);
}

TEST(HouseholdsTest, SizeOneHouseholds) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(30, 1.0);
  EXPECT_EQ(db.size(), 30u);  // p_extra = 0 -> singletons only
}

/// The realism this exists for: family members are hard non-matches (agree
/// on most QIDs), so one-to-one matching and tight thresholds must hold up.
TEST(HouseholdsTest, FamilyMembersAreHardNonMatches) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(200, 3.0);
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  auto filters = encoder.EncodeDatabase(db);
  ASSERT_TRUE(filters.ok());
  // Find a multi-member household and compare siblings vs strangers.
  std::map<std::string, std::vector<size_t>> by_phone;
  for (size_t i = 0; i < db.records.size(); ++i) {
    by_phone[db.records[i].values[7]].push_back(i);
  }
  double sibling_sim = -1;
  for (const auto& [phone, members] : by_phone) {
    if (members.size() >= 2) {
      sibling_sim = DiceSimilarity((*filters)[members[0]], (*filters)[members[1]]);
      break;
    }
  }
  ASSERT_GE(sibling_sim, 0.0) << "no multi-member household generated";
  // Siblings agree on surname+city (part of the CLK) but differ on first
  // name and DOB: similarity should land in the dangerous middle band,
  // clearly above strangers but below a same-person threshold of ~0.9.
  EXPECT_GT(sibling_sim, 0.35);
  EXPECT_LT(sibling_sim, 0.9);
}

TEST(HouseholdsTest, HouseholdBlockingSkew) {
  // Address blocking over household data yields many same-block pairs per
  // block — the skew meta-blocking (E5) exists to handle.
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateHouseholds(150, 3.0);
  const StandardBlocker blocker(ExactAttributeKey("street", "k"));
  const BlockIndex index = blocker.BuildIndex(db);
  size_t max_block = 0;
  for (const auto& [key, records] : index) max_block = std::max(max_block, records.size());
  EXPECT_GE(max_block, 3u);
}

}  // namespace
}  // namespace pprl
