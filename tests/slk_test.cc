#include "encoding/slk.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

SlkInput Mary() {
  SlkInput input;
  input.first_name = "Mary";
  input.last_name = "Poppins";
  input.dob = "1964-08-27";
  input.sex = "f";
  return input;
}

TEST(Slk581Test, AihwLayout) {
  // last name letters 2,3,5 = O,P,I; first name letters 2,3 = A,R;
  // DOB DDMMYYYY = 27081964; female = 2.
  auto key = Slk581(Mary());
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key.value(), "OPIAR270819642");
}

TEST(Slk581Test, ShortNamesUseTwoPlaceholder) {
  SlkInput input = Mary();
  input.first_name = "J";       // no 2nd/3rd letter
  input.last_name = "Ng";       // no 3rd/5th letter
  auto key = Slk581(input);
  ASSERT_TRUE(key.ok());
  EXPECT_EQ(key->substr(0, 5), "G22" "22");
}

TEST(Slk581Test, SexCoding) {
  SlkInput input = Mary();
  input.sex = "M";
  EXPECT_EQ(Slk581(input)->back(), '1');
  input.sex = "female";
  EXPECT_EQ(Slk581(input)->back(), '2');
  input.sex = "";
  EXPECT_EQ(Slk581(input)->back(), '9');
  input.sex = "x";
  EXPECT_EQ(Slk581(input)->back(), '9');
}

TEST(Slk581Test, IgnoresCaseAndPunctuation) {
  SlkInput a = Mary();
  SlkInput b = Mary();
  b.first_name = "MARY";
  b.last_name = "  pop-pins ";
  EXPECT_EQ(Slk581(a).value(), Slk581(b).value());
}

TEST(Slk581Test, RejectsBadDate) {
  SlkInput input = Mary();
  input.dob = "27/08/1964";
  EXPECT_FALSE(Slk581(input).ok());
  input.dob = "";
  EXPECT_FALSE(Slk581(input).ok());
}

TEST(Slk581Test, SensitivityToTypos) {
  // The known SLK weakness [31]: a typo in a sampled letter changes the key
  // entirely, so near-matches are lost.
  SlkInput clean = Mary();
  SlkInput typo = Mary();
  typo.last_name = "Pappins";  // letter 2 changes O -> A
  EXPECT_NE(Slk581(clean).value(), Slk581(typo).value());
}

TEST(Slk581Test, CollisionsForDifferentPeople) {
  // The privacy/utility flaw in the other direction: names agreeing on the
  // sampled letters collide even though the people differ.
  SlkInput a = Mary();
  SlkInput b = Mary();
  b.last_name = "Topkins";  // letters 2,3,5 = O,P,I too
  b.first_name = "Gary";    // letters 2,3 = A,R too
  EXPECT_EQ(Slk581(a).value(), Slk581(b).value());
}

TEST(HashedSlk581Test, KeyedAndStable) {
  auto h1 = HashedSlk581(Mary(), "secret");
  auto h2 = HashedSlk581(Mary(), "secret");
  auto h3 = HashedSlk581(Mary(), "other");
  ASSERT_TRUE(h1.ok() && h2.ok() && h3.ok());
  EXPECT_EQ(h1.value(), h2.value());
  EXPECT_NE(h1.value(), h3.value());
  EXPECT_EQ(h1->size(), 64u);  // hex SHA-256
}

TEST(HashedSlk581Test, PropagatesValidationErrors) {
  SlkInput bad = Mary();
  bad.dob = "junk";
  EXPECT_FALSE(HashedSlk581(bad, "secret").ok());
}

}  // namespace
}  // namespace pprl
