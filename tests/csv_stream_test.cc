#include "io/csv_stream.h"

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"

namespace pprl {
namespace {

using io::CsvCursor;
using io::CsvCursorOptions;
using io::CsvScanMode;

using Rows = std::vector<std::vector<std::string>>;

/// Drains a cursor into materialized rows; fails the test on a non-OK
/// terminal status unless `expect_error`.
Rows Drain(CsvCursor& cursor, bool expect_error = false) {
  Rows rows;
  while (cursor.Next()) {
    std::vector<std::string> row;
    row.reserve(cursor.field_count());
    for (size_t i = 0; i < cursor.field_count(); ++i) {
      row.emplace_back(cursor.field(i));
    }
    rows.push_back(std::move(row));
  }
  EXPECT_EQ(cursor.status().ok(), !expect_error) << cursor.status().ToString();
  return rows;
}

Rows ParseWith(std::string_view text, CsvScanMode mode,
               bool expect_error = false) {
  CsvCursorOptions options;
  options.scan = mode;
  CsvCursor cursor = CsvCursor::FromMemory(text, options);
  return Drain(cursor, expect_error);
}

/// Asserts the scalar and auto (SIMD when available) scanners parse `text`
/// into identical records, and returns that parse.
Rows ParseBothModes(std::string_view text, bool expect_error = false) {
  Rows scalar = ParseWith(text, CsvScanMode::kScalar, expect_error);
  Rows simd = ParseWith(text, CsvScanMode::kAuto, expect_error);
  EXPECT_EQ(scalar, simd) << "scalar and SIMD parses disagree on: " << text;
  return scalar;
}

TEST(CsvStreamTest, SimpleRecords) {
  Rows rows = ParseBothModes("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(rows[2], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvStreamTest, FinalRecordWithoutNewline) {
  Rows rows = ParseBothModes("a,b\n1,2");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvStreamTest, CrLfTerminators) {
  Rows rows = ParseBothModes("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvStreamTest, LoneCarriageReturnIsData) {
  Rows rows = ParseBothModes("a\rb,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a\rb", "c"}));
}

TEST(CsvStreamTest, QuotedFieldWithDelimiterAndNewline) {
  Rows rows = ParseBothModes("\"smith, john\",\"line1\nline2\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "smith, john");
  EXPECT_EQ(rows[0][1], "line1\nline2");
}

TEST(CsvStreamTest, EscapedQuotes) {
  Rows rows = ParseBothModes("\"said \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "said \"hi\"");
}

TEST(CsvStreamTest, BytesAfterClosingQuoteAreVerbatim) {
  // The legacy dialect appends anything between the closing quote and the
  // next delimiter as-is.
  Rows rows = ParseBothModes("\"ab\"cd,e\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "abcd");
}

TEST(CsvStreamTest, QuoteInsideUnquotedFieldIsLiteral) {
  Rows rows = ParseBothModes("ab\"cd,e\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "ab\"cd");
}

TEST(CsvStreamTest, TrailingDelimiterYieldsEmptyField) {
  Rows rows = ParseBothModes("a,b,\n1,,3");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "", "3"}));
}

TEST(CsvStreamTest, EmptyLineIsSingleEmptyField) {
  Rows rows = ParseBothModes("a\n\nb\n");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{""}));
}

TEST(CsvStreamTest, EmptyInputHasNoRecords) {
  EXPECT_TRUE(ParseBothModes("").empty());
}

TEST(CsvStreamTest, UnterminatedQuoteIsError) {
  Rows rows = ParseBothModes("a,b\n\"oops,2\n", /*expect_error=*/true);
  EXPECT_EQ(rows.size(), 1u);  // the first record still parses
}

TEST(CsvStreamTest, CustomDelimiter) {
  CsvCursorOptions options;
  options.delimiter = '\t';
  CsvCursor cursor = CsvCursor::FromMemory("a\tb\n1,5\t2\n", options);
  Rows rows = Drain(cursor);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1,5", "2"}));
}

TEST(CsvStreamTest, RecordIndexAndBytesConsumed) {
  const std::string text = "a,b\n1,2\n3,4\n";
  CsvCursor cursor = CsvCursor::FromMemory(text, {});
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.record_index(), 0u);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.record_index(), 1u);
  ASSERT_TRUE(cursor.Next());
  EXPECT_EQ(cursor.record_index(), 2u);
  EXPECT_FALSE(cursor.Next());
  EXPECT_TRUE(cursor.status().ok());
  EXPECT_EQ(cursor.bytes_consumed(), text.size());
}

TEST(CsvStreamTest, FieldViewsAreZeroCopyForUnquotedMemoryInput) {
  const std::string text = "hello,world\n";
  CsvCursor cursor = CsvCursor::FromMemory(text, {});
  ASSERT_TRUE(cursor.Next());
  // Unquoted fields of a memory-backed cursor must alias the input buffer.
  EXPECT_EQ(cursor.field(0).data(), text.data());
  EXPECT_EQ(cursor.field(1).data(), text.data() + 6);
}

/// Builds a CSV from explicit field values with RFC-4180 quoting, so the
/// expected parse is known by construction.
std::string BuildCsv(const Rows& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      const std::string& value = row[i];
      const bool needs_quotes =
          value.find_first_of(",\"\n\r") != std::string::npos;
      if (!needs_quotes) {
        out += value;
        continue;
      }
      out.push_back('"');
      for (char c : value) {
        if (c == '"') out.push_back('"');
        out.push_back(c);
      }
      out.push_back('"');
    }
    out.push_back('\n');
  }
  return out;
}

TEST(CsvStreamTest, RandomizedFieldsRoundTrip) {
  std::mt19937 rng(20260808);
  const std::string alphabet = "ab,\"\n\r x";
  for (int iteration = 0; iteration < 200; ++iteration) {
    Rows expected;
    const size_t num_rows = 1 + rng() % 5;
    const size_t num_cols = 1 + rng() % 4;
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string value;
        const size_t len = rng() % 8;
        for (size_t k = 0; k < len; ++k) {
          value.push_back(alphabet[rng() % alphabet.size()]);
        }
        row.push_back(std::move(value));
      }
      expected.push_back(std::move(row));
    }
    const std::string text = BuildCsv(expected);
    EXPECT_EQ(ParseBothModes(text), expected) << "input: " << text;
  }
}

TEST(CsvStreamTest, RandomizedBytesParseIdenticallyInBothModes) {
  // Arbitrary byte soup: the two scanners must agree on records AND
  // terminal status, even for malformed inputs.
  std::mt19937 rng(4180);
  const std::string alphabet = "a,\"\n\r";
  for (int iteration = 0; iteration < 500; ++iteration) {
    std::string text;
    const size_t len = rng() % 64;
    for (size_t k = 0; k < len; ++k) {
      text.push_back(alphabet[rng() % alphabet.size()]);
    }
    CsvCursorOptions scalar_options, simd_options;
    scalar_options.scan = CsvScanMode::kScalar;
    simd_options.scan = CsvScanMode::kAuto;
    CsvCursor scalar = CsvCursor::FromMemory(text, scalar_options);
    CsvCursor simd = CsvCursor::FromMemory(text, simd_options);
    Rows scalar_rows, simd_rows;
    while (scalar.Next()) {
      std::vector<std::string> row;
      for (size_t i = 0; i < scalar.field_count(); ++i) {
        row.emplace_back(scalar.field(i));
      }
      scalar_rows.push_back(std::move(row));
    }
    while (simd.Next()) {
      std::vector<std::string> row;
      for (size_t i = 0; i < simd.field_count(); ++i) {
        row.emplace_back(simd.field(i));
      }
      simd_rows.push_back(std::move(row));
    }
    EXPECT_EQ(scalar_rows, simd_rows) << "input: " << text;
    EXPECT_EQ(scalar.status().ok(), simd.status().ok()) << "input: " << text;
  }
}

/// Conformance against the legacy parser: for any rectangular table the
/// streaming cursor and ParseCsv must produce the same header and rows.
TEST(CsvStreamTest, MatchesLegacyParserOnRectangularTables) {
  const std::vector<std::string> inputs = {
      "a,b,c\n1,2,3\n4,5,6\n",
      "a,b\r\n1,2\r\n3,4",
      "name,notes\n\"smith, john\",\"said \"\"hi\"\"\"\n",
      "a,b\n\"line1\nline2\",x\n",
      "h\nplain\n\"\"\n\"\"tail\n",
      "x,y\n\"a\"b,\"c\"\"d\"\n",
      "k\na\rb\n",
      "a,b\n,\n",
  };
  for (const std::string& text : inputs) {
    auto table = ParseCsv(text);
    ASSERT_TRUE(table.ok()) << text;
    Rows rows = ParseBothModes(text);
    ASSERT_FALSE(rows.empty());
    EXPECT_EQ(rows[0], table->header) << "input: " << text;
    EXPECT_EQ(Rows(rows.begin() + 1, rows.end()), table->rows)
        << "input: " << text;
  }
}

TEST(CsvStreamTest, LegacyParserAgreesOnRandomizedTables) {
  std::mt19937 rng(7);
  const std::string alphabet = "ab,\"\n x";
  for (int iteration = 0; iteration < 100; ++iteration) {
    Rows expected;
    const size_t num_rows = 2 + rng() % 4;
    const size_t num_cols = 1 + rng() % 3;
    for (size_t r = 0; r < num_rows; ++r) {
      std::vector<std::string> row;
      for (size_t c = 0; c < num_cols; ++c) {
        std::string value;
        const size_t len = rng() % 6;
        for (size_t k = 0; k < len; ++k) {
          value.push_back(alphabet[rng() % alphabet.size()]);
        }
        row.push_back(std::move(value));
      }
      expected.push_back(std::move(row));
    }
    const std::string text = BuildCsv(expected);
    auto table = ParseCsv(text);
    ASSERT_TRUE(table.ok()) << text;
    EXPECT_EQ(table->header, expected[0]) << text;
    Rows streamed = ParseBothModes(text);
    ASSERT_EQ(streamed.size(), expected.size());
    EXPECT_EQ(streamed[0], table->header);
    EXPECT_EQ(Rows(streamed.begin() + 1, streamed.end()), table->rows);
  }
}

/// File-backed streaming with the smallest allowed buffer, so records and
/// quoted fields straddle refill boundaries many times.
TEST(CsvStreamTest, FileStreamingAcrossChunkBoundaries) {
  Rows expected;
  std::mt19937 rng(99);
  for (int r = 0; r < 500; ++r) {
    std::vector<std::string> row;
    for (int c = 0; c < 3; ++c) {
      // ~60-byte values, some with quotes/commas/newlines to force the
      // quoted path across boundaries.
      std::string value;
      const size_t len = 40 + rng() % 40;
      const std::string alphabet = "abcdefgh,\"\n";
      for (size_t k = 0; k < len; ++k) {
        value.push_back(alphabet[rng() % alphabet.size()]);
      }
      row.push_back(std::move(value));
    }
    expected.push_back(std::move(row));
  }
  const std::string text = BuildCsv(expected);
  ASSERT_GT(text.size(), 16u * 4096u);  // many refills at a 4 KiB window

  const std::string path = ::testing::TempDir() + "/pprl_csv_stream_test.csv";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(text.data(), 1, text.size(), f), text.size());
  std::fclose(f);

  for (CsvScanMode mode : {CsvScanMode::kScalar, CsvScanMode::kAuto}) {
    CsvCursorOptions options;
    options.scan = mode;
    options.buffer_bytes = 1;  // clamped up to the 4 KiB minimum
    auto cursor = CsvCursor::OpenFile(path, options);
    ASSERT_TRUE(cursor.ok());
    Rows rows = Drain(*cursor);
    EXPECT_EQ(rows, expected);
    EXPECT_EQ(cursor->bytes_consumed(), text.size());
  }
  std::remove(path.c_str());
}

TEST(CsvStreamTest, OpenMissingFileFails) {
  auto cursor = CsvCursor::OpenFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pprl
