#include "linkage/two_party_iterative.h"

#include <set>
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "encoding/bloom_filter.h"
#include "eval/metrics.h"
#include "linkage/matching.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

std::vector<BitVector> Encode(const std::vector<std::string>& names) {
  const BloomFilterEncoder encoder({600, 15, BloomHashScheme::kDoubleHashing, ""});
  std::vector<BitVector> out;
  for (const auto& n : names) out.push_back(encoder.EncodeString(n));
  return out;
}

TEST(IterativeProtocolTest, AgreesWithDirectThresholding) {
  const auto fa = Encode({"katherine", "smith", "garcia", "wilson"});
  const auto fb = Encode({"catherine", "smyth", "nguyen", "wilson"});
  IterativeProtocolParams params;
  params.dice_threshold = 0.7;
  auto result = IterativeTwoPartyLink(fa, fb, FullPairs(4, 4), params);
  ASSERT_TRUE(result.ok());
  std::set<std::pair<uint32_t, uint32_t>> iterative;
  for (const auto& m : result->matches) iterative.insert({m.a, m.b});
  std::set<std::pair<uint32_t, uint32_t>> direct;
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      if (DiceSimilarity(fa[i], fb[j]) + 1e-12 >= 0.7) direct.insert({i, j});
    }
  }
  EXPECT_EQ(iterative, direct);
}

TEST(IterativeProtocolTest, MatchScoresAreExactDice) {
  const auto fa = Encode({"smith"});
  const auto fb = Encode({"smith"});
  IterativeProtocolParams params;
  params.dice_threshold = 0.5;
  auto result = IterativeTwoPartyLink(fa, fb, {{0, 0}}, params);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->matches.size(), 1u);
  EXPECT_DOUBLE_EQ(result->matches[0].score, 1.0);
}

TEST(IterativeProtocolTest, RevealsLessThanEverything) {
  // Clearly matching and clearly non-matching pairs must be decided early,
  // keeping the mean revealed fraction well below 1.
  std::vector<std::string> a_names, b_names;
  for (int i = 0; i < 20; ++i) {
    a_names.push_back("name" + std::to_string(i * 31));
    b_names.push_back(i % 2 == 0 ? a_names.back() : "other" + std::to_string(i * 17));
  }
  const auto fa = Encode(a_names);
  const auto fb = Encode(b_names);
  std::vector<CandidatePair> candidates;
  for (uint32_t i = 0; i < 20; ++i) candidates.push_back({i, i});
  IterativeProtocolParams params;
  params.dice_threshold = 0.8;
  params.num_rounds = 10;
  auto result = IterativeTwoPartyLink(fa, fb, candidates, params);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->matches.size(), 10u);
  EXPECT_LT(result->mean_revealed_fraction, 0.7);
  EXPECT_GT(result->mean_revealed_fraction, 0.0);
  // Early rounds must decide something.
  size_t early = 0;
  for (size_t r = 0; r < 3 && r < result->decided_per_round.size(); ++r) {
    early += result->decided_per_round[r];
  }
  EXPECT_GT(early, 0u);
}

TEST(IterativeProtocolTest, MetersCommunication) {
  const auto fa = Encode({"smith", "jones"});
  const auto fb = Encode({"smith", "jones"});
  IterativeProtocolParams params;
  auto result = IterativeTwoPartyLink(fa, fb, FullPairs(2, 2), params);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->messages, 0u);
  EXPECT_GT(result->bytes, 0u);
}

TEST(IterativeProtocolTest, ValidatesArguments) {
  const auto fa = Encode({"a"});
  IterativeProtocolParams zero_rounds;
  zero_rounds.num_rounds = 0;
  EXPECT_FALSE(IterativeTwoPartyLink(fa, fa, {{0, 0}}, zero_rounds).ok());
  IterativeProtocolParams too_many;
  too_many.num_rounds = 100000;
  EXPECT_FALSE(IterativeTwoPartyLink(fa, fa, {{0, 0}}, too_many).ok());
  // Mismatched lengths.
  std::vector<BitVector> bad = {BitVector(10)};
  EXPECT_FALSE(IterativeTwoPartyLink(fa, bad, {{0, 0}}, IterativeProtocolParams{}).ok());
}

TEST(IterativeProtocolTest, EndToEndQualityMatchesPipeline) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 150;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  const auto fa = encoder.EncodeDatabase((*dbs)[0]).value();
  const auto fb = encoder.EncodeDatabase((*dbs)[1]).value();
  IterativeProtocolParams params;
  params.dice_threshold = 0.8;
  auto result =
      IterativeTwoPartyLink(fa, fb, FullPairs(fa.size(), fb.size()), params);
  ASSERT_TRUE(result.ok());
  const GroundTruth truth((*dbs)[0], (*dbs)[1]);
  const auto matches = GreedyOneToOne(result->matches);
  EXPECT_GT(EvaluateMatches(matches, truth).F1(), 0.75);
  // The privacy payoff: on average, far less than the whole filter leaked.
  EXPECT_LT(result->mean_revealed_fraction, 0.5);
}

}  // namespace
}  // namespace pprl
