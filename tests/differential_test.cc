/// Differential (model-based) property tests: the optimised library
/// implementations are cross-checked against trivially correct reference
/// models on thousands of random instances.

#include <bitset>
#include <random>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/random.h"
#include "crypto/bigint.h"
#include "crypto/secure_edit_distance.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

/// BitVector vs a plain std::vector<bool> model.
TEST(DifferentialTest, BitVectorAgainstBoolVector) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.NextUint64(300);
    BitVector real(n);
    std::vector<bool> model(n, false);
    // Random operation sequence.
    for (int op = 0; op < 64; ++op) {
      const size_t pos = rng.NextUint64(n);
      switch (rng.NextUint64(3)) {
        case 0:
          real.Set(pos);
          model[pos] = true;
          break;
        case 1:
          real.Set(pos, false);
          model[pos] = false;
          break;
        default:
          real.Flip(pos);
          model[pos] = !model[pos];
          break;
      }
    }
    size_t expected_count = 0;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(real.Get(i), model[i]);
      expected_count += model[i] ? 1 : 0;
    }
    EXPECT_EQ(real.Count(), expected_count);
  }
}

TEST(DifferentialTest, BitVectorPairOpsAgainstModel) {
  Rng rng(102);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextUint64(256);
    BitVector a(n), b(n);
    std::vector<bool> ma(n), mb(n);
    for (size_t i = 0; i < n; ++i) {
      if (rng.NextBool(0.5)) {
        a.Set(i);
        ma[i] = true;
      }
      if (rng.NextBool(0.5)) {
        b.Set(i);
        mb[i] = true;
      }
    }
    size_t and_count = 0, or_count = 0, xor_count = 0;
    for (size_t i = 0; i < n; ++i) {
      and_count += (ma[i] && mb[i]) ? 1 : 0;
      or_count += (ma[i] || mb[i]) ? 1 : 0;
      xor_count += (ma[i] != mb[i]) ? 1 : 0;
    }
    EXPECT_EQ(a.AndCount(b), and_count);
    EXPECT_EQ(a.OrCount(b), or_count);
    EXPECT_EQ(a.XorCount(b), xor_count);
  }
}

/// BigInt arithmetic vs native __int128.
TEST(DifferentialTest, BigIntAgainstInt128) {
  Rng rng(103);
  auto to_int128 = [](const BigInt& v) {
    // Via decimal; values in these tests fit comfortably.
    __int128 out = 0;
    const std::string dec = v.ToDecimal();
    size_t i = 0;
    bool negative = false;
    if (!dec.empty() && dec[0] == '-') {
      negative = true;
      i = 1;
    }
    for (; i < dec.size(); ++i) out = out * 10 + (dec[i] - '0');
    return negative ? -out : out;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const int64_t x = rng.NextInt(-1000000000LL, 1000000000LL);
    const int64_t y = rng.NextInt(-1000000000LL, 1000000000LL);
    const BigInt bx(x), by(y);
    EXPECT_EQ(to_int128(bx + by), static_cast<__int128>(x) + y);
    EXPECT_EQ(to_int128(bx - by), static_cast<__int128>(x) - y);
    EXPECT_EQ(to_int128(bx * by), static_cast<__int128>(x) * y);
    if (y != 0) {
      EXPECT_EQ(to_int128(bx / by), static_cast<__int128>(x) / y);
      EXPECT_EQ(to_int128(bx % by), static_cast<__int128>(x) % y);
    }
    EXPECT_EQ(bx < by, x < y);
    EXPECT_EQ(bx == by, x == y);
  }
}

/// Edit distance vs a simple exponential-free recursive model (memoised
/// naive implementation) on short strings.
TEST(DifferentialTest, EditDistanceAgainstNaiveModel) {
  Rng rng(104);
  auto naive = [](const std::string& a, const std::string& b) {
    std::vector<std::vector<size_t>> dp(a.size() + 1,
                                        std::vector<size_t>(b.size() + 1, 0));
    for (size_t i = 0; i <= a.size(); ++i) dp[i][0] = i;
    for (size_t j = 0; j <= b.size(); ++j) dp[0][j] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      for (size_t j = 1; j <= b.size(); ++j) {
        dp[i][j] = std::min({dp[i - 1][j] + 1, dp[i][j - 1] + 1,
                             dp[i - 1][j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1)});
      }
    }
    return dp[a.size()][b.size()];
  };
  for (int trial = 0; trial < 300; ++trial) {
    auto random_string = [&rng]() {
      std::string s;
      const size_t len = rng.NextUint64(12);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextUint64(4));  // small alphabet: collisions
      }
      return s;
    };
    const std::string a = random_string();
    const std::string b = random_string();
    EXPECT_EQ(PlainEditDistance(a, b), naive(a, b)) << a << " vs " << b;
  }
}

/// Jaro similarity sanity model: symmetric, bounded, identity.
TEST(DifferentialTest, JaroProperties) {
  Rng rng(105);
  for (int trial = 0; trial < 300; ++trial) {
    auto random_string = [&rng]() {
      std::string s;
      const size_t len = rng.NextUint64(10);
      for (size_t i = 0; i < len; ++i) {
        s += static_cast<char>('a' + rng.NextUint64(6));
      }
      return s;
    };
    const std::string a = random_string();
    const std::string b = random_string();
    const double ab = JaroSimilarity(a, b);
    EXPECT_DOUBLE_EQ(ab, JaroSimilarity(b, a));
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
    EXPECT_DOUBLE_EQ(JaroSimilarity(a, a), 1.0);
    const double jw = JaroWinklerSimilarity(a, b);
    EXPECT_GE(jw + 1e-12, ab);  // prefix boost never hurts
    EXPECT_LE(jw, 1.0);
  }
}

}  // namespace
}  // namespace pprl
