#include "common/csv.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(CsvTest, ParsesSimpleTable) {
  auto table = ParseCsv("a,b,c\n1,2,3\n4,5,6\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b", "c"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1], (std::vector<std::string>{"4", "5", "6"}));
}

TEST(CsvTest, HandlesQuotedFields) {
  auto table = ParseCsv("name,notes\n\"smith, john\",\"said \"\"hi\"\"\"\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "smith, john");
  EXPECT_EQ(table->rows[0][1], "said \"hi\"");
}

TEST(CsvTest, HandlesNewlineInQuotes) {
  auto table = ParseCsv("a,b\n\"line1\nline2\",x\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0][0], "line1\nline2");
}

TEST(CsvTest, HandlesCrLf) {
  auto table = ParseCsv("a,b\r\n1,2\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, LoneCarriageReturnIsData) {
  // A CR not followed by LF is field data, not a record terminator (and
  // must round-trip identically through the streaming reader's dialect).
  auto table = ParseCsv("a,b\n1\r5,2\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1\r5", "2"}));
}

TEST(CsvTest, CrLfWithoutFinalNewline) {
  auto table = ParseCsv("a,b\r\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, QuotedFieldThenCrLf) {
  auto table = ParseCsv("a,b\r\n\"x,y\",\"z\"\r\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->rows[0], (std::vector<std::string>{"x,y", "z"}));
}

TEST(CsvTest, MissingFinalNewlineOk) {
  auto table = ParseCsv("a,b\n1,2");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->rows.size(), 1u);
  EXPECT_EQ(table->rows[0][1], "2");
}

TEST(CsvTest, RejectsRaggedRows) {
  auto table = ParseCsv("a,b\n1,2,3\n");
  EXPECT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a,b\n\"oops,2\n").ok());
}

TEST(CsvTest, RejectsEmptyInput) { EXPECT_FALSE(ParseCsv("").ok()); }

TEST(CsvTest, ColumnIndex) {
  auto table = ParseCsv("x,y,z\n1,2,3\n");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->ColumnIndex("y"), 1);
  EXPECT_EQ(table->ColumnIndex("missing"), -1);
}

TEST(CsvTest, WriteRoundTrip) {
  CsvTable table;
  table.header = {"name", "note"};
  table.rows = {{"smith, john", "said \"hi\""}, {"plain", "multi\nline"}};
  auto parsed = ParseCsv(WriteCsv(table));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->header, table.header);
  EXPECT_EQ(parsed->rows, table.rows);
}

TEST(CsvTest, FileRoundTrip) {
  CsvTable table;
  table.header = {"a"};
  table.rows = {{"1"}, {"2"}};
  const std::string path = ::testing::TempDir() + "/pprl_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(path, table).ok());
  auto read = ReadCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->rows, table.rows);
  std::remove(path.c_str());
}

TEST(CsvTest, ReadMissingFileFails) {
  auto result = ReadCsvFile("/nonexistent/definitely/not/here.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace pprl
