#include "blocking/metablocking.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

BlockIndex MakeIndex(std::initializer_list<std::pair<std::string, std::vector<uint32_t>>> items) {
  BlockIndex index;
  for (const auto& [key, records] : items) index[key] = records;
  return index;
}

TEST(PurgeBlocksTest, RemovesOversizedBlocks) {
  BlockIndex a = MakeIndex({{"big", {0, 1, 2, 3}}, {"small", {4}}});
  BlockIndex b = MakeIndex({{"big", {0, 1, 2, 3}}, {"small", {5}}});
  PurgeBlocks(a, b, /*max_comparisons_per_block=*/8);  // big = 16 comparisons
  EXPECT_EQ(a.count("big"), 0u);
  EXPECT_EQ(b.count("big"), 0u);
  EXPECT_EQ(a.count("small"), 1u);
}

TEST(PurgeBlocksTest, KeepsBlocksMissingFromOneSide) {
  BlockIndex a = MakeIndex({{"solo", {0, 1, 2, 3, 4, 5}}});
  BlockIndex b = MakeIndex({{"other", {0}}});
  PurgeBlocks(a, b, 4);
  EXPECT_EQ(a.count("solo"), 1u);  // costs nothing; no partner block
}

TEST(FilterBlocksTest, KeepsSmallestBlocksPerRecord) {
  // Record 0 occurs in a size-3 block and a size-1 block; keep_fraction 0.5
  // keeps only the size-1 block.
  BlockIndex index = MakeIndex({{"large", {0, 1, 2}}, {"tiny", {0}}, {"mid", {1, 2}}});
  FilterBlocks(index, 0.5);
  ASSERT_EQ(index.count("tiny"), 1u);
  EXPECT_EQ(index["tiny"], (std::vector<uint32_t>{0}));
  // Record 0 must no longer be in "large".
  if (index.count("large")) {
    for (uint32_t r : index["large"]) EXPECT_NE(r, 0u);
  }
}

TEST(FilterBlocksTest, KeepFractionOneIsIdentityUpToOrder) {
  BlockIndex index = MakeIndex({{"x", {0, 1}}, {"y", {1, 2}}});
  FilterBlocks(index, 1.0);
  EXPECT_EQ(index["x"], (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(index["y"], (std::vector<uint32_t>{1, 2}));
}

TEST(FilterBlocksTest, AlwaysKeepsAtLeastOneBlock) {
  BlockIndex index = MakeIndex({{"only", {0, 1, 2, 3, 4}}});
  FilterBlocks(index, 0.01);
  EXPECT_EQ(index.count("only"), 1u);
  EXPECT_EQ(index["only"].size(), 5u);
}

TEST(PruneByCommonBlocksTest, CountsCoOccurrence) {
  // Pair (0,0) shares two blocks, (1,1) shares one.
  BlockIndex a = MakeIndex({{"k1", {0}}, {"k2", {0}}, {"k3", {1}}});
  BlockIndex b = MakeIndex({{"k1", {0}}, {"k2", {0}}, {"k3", {1}}});
  const auto strict = PruneByCommonBlocks(a, b, 2);
  ASSERT_EQ(strict.size(), 1u);
  EXPECT_EQ(strict[0], (CandidatePair{0, 0}));
  const auto loose = PruneByCommonBlocks(a, b, 1);
  EXPECT_EQ(loose.size(), 2u);
}

TEST(PruneByCommonBlocksTest, EmptyIndexes) {
  BlockIndex a, b;
  EXPECT_TRUE(PruneByCommonBlocks(a, b, 1).empty());
}

TEST(ScheduleBlocksTest, AscendingComparisonLoad) {
  BlockIndex a = MakeIndex({{"big", {0, 1, 2}}, {"small", {3}}, {"mid", {4, 5}}});
  BlockIndex b = MakeIndex({{"big", {0, 1, 2}}, {"small", {3}}, {"mid", {4}}});
  const auto schedule = ScheduleBlocks(a, b);
  ASSERT_EQ(schedule.size(), 3u);
  EXPECT_EQ(schedule[0].key, "small");
  EXPECT_EQ(schedule[0].comparisons, 1u);
  EXPECT_EQ(schedule[1].key, "mid");
  EXPECT_EQ(schedule[2].key, "big");
  EXPECT_EQ(schedule[2].comparisons, 9u);
}

TEST(ScheduleBlocksTest, SkipsUnmatchedKeys) {
  BlockIndex a = MakeIndex({{"only-a", {0}}, {"shared", {1}}});
  BlockIndex b = MakeIndex({{"only-b", {0}}, {"shared", {1}}});
  const auto schedule = ScheduleBlocks(a, b);
  ASSERT_EQ(schedule.size(), 1u);
  EXPECT_EQ(schedule[0].key, "shared");
}

}  // namespace
}  // namespace pprl
