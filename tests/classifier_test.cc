#include "linkage/classifier.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace pprl {
namespace {

TEST(ThresholdClassifierTest, ThreeBands) {
  const ThresholdClassifier classifier(0.6, 0.8);
  EXPECT_EQ(classifier.Classify(0.9), MatchDecision::kMatch);
  EXPECT_EQ(classifier.Classify(0.8), MatchDecision::kMatch);
  EXPECT_EQ(classifier.Classify(0.7), MatchDecision::kPossibleMatch);
  EXPECT_EQ(classifier.Classify(0.5), MatchDecision::kNonMatch);
}

TEST(ThresholdClassifierTest, DegenerateBand) {
  const ThresholdClassifier classifier(0.8, 0.8);
  EXPECT_EQ(classifier.Classify(0.79), MatchDecision::kNonMatch);
  EXPECT_EQ(classifier.Classify(0.8), MatchDecision::kMatch);
}

TEST(ThresholdClassifierTest, SwappedBoundsAreReordered) {
  const ThresholdClassifier classifier(0.9, 0.6);
  EXPECT_EQ(classifier.Classify(0.7), MatchDecision::kPossibleMatch);
}

TEST(ThresholdClassifierTest, SelectMatches) {
  const ThresholdClassifier classifier(0.8, 0.8);
  const std::vector<ScoredPair> scored = {{0, 0, 0.9}, {1, 1, 0.7}, {2, 2, 0.85}};
  const auto matches = classifier.SelectMatches(scored);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].a, 0u);
  EXPECT_EQ(matches[1].a, 2u);
}

TEST(RuleBasedClassifierTest, DisjunctionOfConjunctions) {
  // Rule 1: field0 >= 0.9 AND field1 >= 0.8. Rule 2: field2 >= 0.95.
  const RuleBasedClassifier classifier({
      MatchRule{{{0, 0.9}, {1, 0.8}}},
      MatchRule{{{2, 0.95}}},
  });
  EXPECT_TRUE(classifier.Matches({0.95, 0.85, 0.0}));
  EXPECT_TRUE(classifier.Matches({0.0, 0.0, 0.99}));
  EXPECT_FALSE(classifier.Matches({0.95, 0.7, 0.9}));
}

TEST(RuleBasedClassifierTest, MissingFieldFailsRule) {
  const RuleBasedClassifier classifier({MatchRule{{{5, 0.5}}}});
  EXPECT_FALSE(classifier.Matches({0.9}));  // field 5 absent
}

TEST(RuleBasedClassifierTest, EmptyRuleNeverFires) {
  const RuleBasedClassifier classifier({MatchRule{}});
  EXPECT_FALSE(classifier.Matches({1.0, 1.0}));
}

/// Generates a labelled mixture: matches agree on most fields, non-matches
/// rarely agree.
std::vector<FieldwiseScoredPair> SyntheticPairs(size_t num_matches, size_t num_non,
                                                uint64_t seed) {
  Rng rng(seed);
  std::vector<FieldwiseScoredPair> pairs;
  uint32_t id = 0;
  for (size_t i = 0; i < num_matches; ++i) {
    FieldwiseScoredPair p;
    p.a = id;
    p.b = id;
    ++id;
    for (int f = 0; f < 3; ++f) {
      p.field_scores.push_back(rng.NextBool(0.9) ? 0.95 : 0.3);
    }
    pairs.push_back(std::move(p));
  }
  for (size_t i = 0; i < num_non; ++i) {
    FieldwiseScoredPair p;
    p.a = id;
    p.b = id + 100000;
    ++id;
    for (int f = 0; f < 3; ++f) {
      p.field_scores.push_back(rng.NextBool(0.08) ? 0.95 : 0.2);
    }
    pairs.push_back(std::move(p));
  }
  return pairs;
}

TEST(FellegiSunterTest, EmRecoversMAndU) {
  const auto pairs = SyntheticPairs(300, 2700, 42);
  FellegiSunterClassifier classifier;
  ASSERT_TRUE(classifier.Fit(pairs).ok());
  // True m ~ 0.9, true u ~ 0.08, prevalence ~ 0.1.
  for (int f = 0; f < 3; ++f) {
    EXPECT_GT(classifier.m()[f], 0.7) << "field " << f;
    EXPECT_LT(classifier.u()[f], 0.2) << "field " << f;
  }
  EXPECT_NEAR(classifier.prevalence(), 0.1, 0.05);
}

TEST(FellegiSunterTest, WeightsSeparateClasses) {
  const auto pairs = SyntheticPairs(300, 2700, 43);
  FellegiSunterClassifier classifier;
  ASSERT_TRUE(classifier.Fit(pairs).ok());
  const double agree_weight = classifier.Weight({0.95, 0.95, 0.95});
  const double disagree_weight = classifier.Weight({0.1, 0.1, 0.1});
  EXPECT_GT(agree_weight, 0);
  EXPECT_LT(disagree_weight, 0);
  EXPECT_GT(classifier.MatchProbability({0.95, 0.95, 0.95}), 0.9);
  EXPECT_LT(classifier.MatchProbability({0.1, 0.1, 0.1}), 0.1);
}

TEST(FellegiSunterTest, SelectMatchesByWeight) {
  const auto pairs = SyntheticPairs(100, 900, 44);
  FellegiSunterClassifier classifier;
  ASSERT_TRUE(classifier.Fit(pairs).ok());
  const auto matches = classifier.SelectMatches(pairs, 0.0);
  // Roughly the planted 10% should survive a zero-weight cut.
  EXPECT_GT(matches.size(), 50u);
  EXPECT_LT(matches.size(), 250u);
}

TEST(FellegiSunterTest, FitValidatesInput) {
  FellegiSunterClassifier classifier;
  EXPECT_FALSE(classifier.Fit({}).ok());
  FieldwiseScoredPair empty_fields;
  EXPECT_FALSE(classifier.Fit({empty_fields}).ok());
  FieldwiseScoredPair two;
  two.field_scores = {0.5, 0.5};
  FieldwiseScoredPair three;
  three.field_scores = {0.5, 0.5, 0.5};
  EXPECT_FALSE(classifier.Fit({two, three}).ok());  // inconsistent widths
}

TEST(LogisticClassifierTest, LearnsLinearSeparation) {
  Rng rng(7);
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  for (int i = 0; i < 400; ++i) {
    const bool match = rng.NextBool(0.5);
    std::vector<double> f(2);
    f[0] = match ? 0.8 + 0.2 * rng.NextDouble() : 0.2 * rng.NextDouble();
    f[1] = match ? 0.7 + 0.3 * rng.NextDouble() : 0.3 * rng.NextDouble();
    features.push_back(std::move(f));
    labels.push_back(match ? 1 : 0);
  }
  LogisticClassifier classifier;
  ASSERT_TRUE(classifier.Fit(features, labels).ok());
  EXPECT_GT(classifier.Predict({0.9, 0.9}), 0.9);
  EXPECT_LT(classifier.Predict({0.05, 0.05}), 0.1);
}

TEST(LogisticClassifierTest, FitValidatesInput) {
  LogisticClassifier classifier;
  EXPECT_FALSE(classifier.Fit({}, {}).ok());
  EXPECT_FALSE(classifier.Fit({{1.0}}, {1, 0}).ok());
  EXPECT_FALSE(classifier.Fit({{1.0}, {1.0, 2.0}}, {1, 0}).ok());
}

TEST(LogisticClassifierTest, UntrainedPredictsHalf) {
  const LogisticClassifier classifier;
  EXPECT_DOUBLE_EQ(classifier.Predict({0.5, 0.5}), 0.5);
}

}  // namespace
}  // namespace pprl
