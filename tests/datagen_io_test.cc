#include "datagen/io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "datagen/generator.h"

namespace pprl {
namespace {

TEST(DatabaseCsvTest, RoundTripPreservesEverything) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(25, 100);
  const CsvTable table = DatabaseToCsv(db);
  auto restored = DatabaseFromCsv(table);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->records.size(), db.records.size());
  EXPECT_EQ(restored->schema.size(), db.schema.size());
  for (size_t i = 0; i < db.records.size(); ++i) {
    EXPECT_EQ(restored->records[i].id, db.records[i].id);
    EXPECT_EQ(restored->records[i].entity_id, db.records[i].entity_id);
    EXPECT_EQ(restored->records[i].values, db.records[i].values);
  }
}

TEST(DatabaseCsvTest, OmittingEntityIdsZeroesThem) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(5, 100);
  auto restored = DatabaseFromCsv(DatabaseToCsv(db, /*include_entity_ids=*/false));
  ASSERT_TRUE(restored.ok());
  for (const Record& r : restored->records) EXPECT_EQ(r.entity_id, 0u);
}

TEST(DatabaseCsvTest, TypeGuessing) {
  CsvTable table;
  table.header = {"first_name", "dob", "sex", "age"};
  table.rows = {{"mary", "1980-01-01", "f", "44"}};
  auto db = DatabaseFromCsv(table);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->schema.fields[0].type, FieldType::kString);
  EXPECT_EQ(db->schema.fields[1].type, FieldType::kDate);
  EXPECT_EQ(db->schema.fields[2].type, FieldType::kCategorical);
  EXPECT_EQ(db->schema.fields[3].type, FieldType::kNumeric);
}

TEST(DatabaseCsvTest, MissingBookkeepingColumnsGenerated) {
  CsvTable table;
  table.header = {"first_name"};
  table.rows = {{"a"}, {"b"}};
  auto db = DatabaseFromCsv(table);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->records[0].id, 0u);
  EXPECT_EQ(db->records[1].id, 1u);
  EXPECT_EQ(db->records[0].entity_id, 0u);
}

TEST(DatabaseCsvTest, RejectsIdOnlyTables) {
  CsvTable table;
  table.header = {"id", "entity_id"};
  table.rows = {{"1", "2"}};
  EXPECT_FALSE(DatabaseFromCsv(table).ok());
}

TEST(DatabaseCsvTest, FileRoundTrip) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(10);
  const std::string path = ::testing::TempDir() + "/pprl_db_io_test.csv";
  ASSERT_TRUE(WriteDatabaseCsv(path, db).ok());
  auto restored = ReadDatabaseCsv(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->records.size(), 10u);
  std::remove(path.c_str());
}

TEST(DatabaseCsvTest, ValuesWithCommasAndQuotesSurvive) {
  Database db;
  db.schema.fields = {{"street", FieldType::kString}};
  Record r;
  r.id = 0;
  r.values = {"12 \"main\" st, apt 4\nrear"};
  db.records.push_back(r);
  auto restored = DatabaseFromCsv(DatabaseToCsv(db));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->records[0].values[0], "12 \"main\" st, apt 4\nrear");
}

}  // namespace
}  // namespace pprl
