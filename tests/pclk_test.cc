#include "io/pclk.h"

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "encoding/clk_io.h"

namespace pprl {
namespace {

using io::DecodePclk;
using io::DecodePclkHeader;
using io::EncodePclk;
using io::Fnv1a64;
using io::kPclkHeaderBytes;

/// A deterministic shard with varied rows (including an all-zero one).
EncodedShard MakeShard(size_t rows, size_t bits, uint64_t seed = 1) {
  std::mt19937_64 rng(seed);
  std::vector<BitVector> filters;
  EncodedShard shard;
  for (size_t r = 0; r < rows; ++r) {
    BitVector bv(bits);
    if (r != 0) {  // row 0 stays all-zero
      const size_t set = rng() % (bits + 1);
      for (size_t k = 0; k < set; ++k) bv.Set(rng() % bits, true);
    }
    filters.push_back(std::move(bv));
    shard.ids.push_back(1000 + r * 7);
  }
  shard.bits = BitMatrix::FromVectors(filters);
  return shard;
}

void ExpectShardsEqual(const EncodedShard& a, const EncodedShard& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.ids, b.ids);
  ASSERT_EQ(a.bits.num_bits(), b.bits.num_bits());
  for (size_t r = 0; r < a.size(); ++r) {
    EXPECT_EQ(std::memcmp(a.bits.row(r), b.bits.row(r),
                          a.bits.words_per_row() * 8),
              0)
        << "row " << r;
    EXPECT_EQ(a.bits.row_count(r), b.bits.row_count(r)) << "row " << r;
  }
}

TEST(PclkTest, Fnv1a64MatchesKnownVectors) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64("", 0), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ull);
}

TEST(PclkTest, MemoryRoundTrip) {
  const EncodedShard shard = MakeShard(17, 1024);
  const std::vector<uint8_t> bytes = EncodePclk(shard);
  auto decoded = DecodePclk(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectShardsEqual(shard, *decoded);
}

TEST(PclkTest, RoundTripWithoutPopcounts) {
  const EncodedShard shard = MakeShard(5, 100);
  const std::vector<uint8_t> bytes =
      EncodePclk(shard, /*include_popcounts=*/false);
  auto header = DecodePclkHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(header.ok());
  EXPECT_FALSE(header->has_popcounts());
  auto decoded = DecodePclk(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectShardsEqual(shard, *decoded);
}

TEST(PclkTest, EmptyShardRoundTrip) {
  EncodedShard shard;
  const std::vector<uint8_t> bytes = EncodePclk(shard);
  EXPECT_EQ(bytes.size(), kPclkHeaderBytes);
  auto decoded = DecodePclk(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->size(), 0u);
}

TEST(PclkTest, OddBitWidthsRoundTrip) {
  for (size_t bits : {1u, 7u, 63u, 64u, 65u, 500u, 511u, 513u}) {
    const EncodedShard shard = MakeShard(9, bits, /*seed=*/bits);
    const std::vector<uint8_t> bytes = EncodePclk(shard);
    auto decoded = DecodePclk(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok())
        << bits << " bits: " << decoded.status().ToString();
    ExpectShardsEqual(shard, *decoded);
  }
}

TEST(PclkTest, HeaderGeometry) {
  const EncodedShard shard = MakeShard(10, 1000);
  const std::vector<uint8_t> bytes = EncodePclk(shard);
  auto info = DecodePclkHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->version, io::kPclkVersion);
  EXPECT_EQ(info->filter_bits, 1000u);
  EXPECT_EQ(info->row_count, 10u);
  EXPECT_TRUE(info->has_popcounts());
  EXPECT_EQ(info->row_stride_bytes % 64, 0u);
  EXPECT_GE(info->row_stride_bytes, (1000u + 7) / 8);
  EXPECT_EQ(info->total_bytes(), bytes.size());
  EXPECT_EQ(info->rows_offset() % 64, 0u);
}

TEST(PclkTest, FileRoundTrip) {
  const EncodedShard shard = MakeShard(64, 1024);
  const std::string path = ::testing::TempDir() + "/pprl_pclk_test.pclk";
  ASSERT_TRUE(io::WritePclkFile(path, shard).ok());
  EXPECT_TRUE(io::LooksLikePclkFile(path));

  auto info = io::ReadPclkInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->row_count, 64u);

  auto decoded = io::ReadPclkFile(path);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectShardsEqual(shard, *decoded);
  std::remove(path.c_str());
}

TEST(PclkTest, SliceAddressing) {
  const EncodedShard shard = MakeShard(100, 512);
  const std::string path = ::testing::TempDir() + "/pprl_pclk_slice.pclk";
  ASSERT_TRUE(io::WritePclkFile(path, shard).ok());

  struct Range {
    uint64_t begin, count;
  };
  for (Range range : {Range{0, 10}, Range{90, 10}, Range{37, 21},
                      Range{0, 100}, Range{50, 0}}) {
    auto slice = io::ReadPclkSlice(path, range.begin, range.count);
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    ASSERT_EQ(slice->size(), range.count);
    for (uint64_t i = 0; i < range.count; ++i) {
      EXPECT_EQ(slice->ids[i], shard.ids[range.begin + i]);
      EXPECT_EQ(std::memcmp(slice->bits.row(i),
                            shard.bits.row(range.begin + i),
                            shard.bits.words_per_row() * 8),
                0);
    }
  }

  // Past-the-end slices are OutOfRange, not garbage.
  EXPECT_EQ(io::ReadPclkSlice(path, 95, 10).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(io::ReadPclkSlice(path, 101, 0).status().code(),
            StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

// ---- typed decoder errors -------------------------------------------------

std::vector<uint8_t> Encoded(size_t rows = 4, size_t bits = 128) {
  return EncodePclk(MakeShard(rows, bits));
}

/// Recomputes the header checksum after a deliberate header edit, so the
/// edit itself (not the checksum) is what the decoder sees.
void FixHeaderChecksum(std::vector<uint8_t>& bytes) {
  const uint64_t sum = Fnv1a64(bytes.data(), 56);
  std::memcpy(bytes.data() + 56, &sum, 8);
}

TEST(PclkTest, TruncatedHeaderIsOutOfRange) {
  const std::vector<uint8_t> bytes = Encoded();
  for (size_t len : {0u, 1u, 63u}) {
    EXPECT_EQ(DecodePclk(bytes.data(), len).status().code(),
              StatusCode::kOutOfRange)
        << len;
  }
}

TEST(PclkTest, TruncatedSectionsAreOutOfRange) {
  const std::vector<uint8_t> bytes = Encoded();
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size() - 1).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(DecodePclk(bytes.data(), kPclkHeaderBytes + 3).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PclkTest, BadMagicIsInvalidArgument) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[0] ^= 0xFF;
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PclkTest, UnsupportedVersionIsInvalidArgument) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[4] = 99;
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PclkTest, UnknownFlagIsProtocolViolation) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[8] |= 0x80;
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kProtocolViolation);
}

TEST(PclkTest, ReservedBytesMustBeZero) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[29] = 1;
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kProtocolViolation);
}

TEST(PclkTest, BadStrideIsInvalidArgument) {
  std::vector<uint8_t> bytes = Encoded();
  const uint32_t bad_stride = 63;  // not a 64-byte multiple
  std::memcpy(bytes.data() + 24, &bad_stride, 4);
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PclkTest, HugeGeometryIsRejectedNotOverflowed) {
  std::vector<uint8_t> bytes = Encoded();
  const uint64_t huge_rows = ~0ull;
  std::memcpy(bytes.data() + 16, &huge_rows, 8);
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PclkTest, CorruptHeaderChecksumIsIoError) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[12] ^= 1;  // change filter_bits without fixing the checksum
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kIoError);
}

TEST(PclkTest, CorruptRowDataIsDetected) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[bytes.size() - 1] ^= 0x40;  // flip a bit in the last row
  // Caught either by the rows checksum or the popcount cross-check.
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kIoError);
}

TEST(PclkTest, CorruptIdSectionIsIoError) {
  std::vector<uint8_t> bytes = Encoded();
  bytes[kPclkHeaderBytes] ^= 1;
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kIoError);
}

TEST(PclkTest, TrailingBytesAreProtocolViolation) {
  std::vector<uint8_t> bytes = Encoded();
  bytes.push_back(0);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kProtocolViolation);
}

TEST(PclkTest, StrayBitsPastFilterBitsAreProtocolViolation) {
  // 100-bit rows leave tail bits in the 13th byte; set one of them and
  // repair every checksum so only the stray bit itself is wrong.
  const EncodedShard shard = MakeShard(3, 100);
  std::vector<uint8_t> bytes = EncodePclk(shard, /*include_popcounts=*/false);
  auto info = DecodePclkHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(info.ok());
  uint8_t* row0 = bytes.data() + info->rows_offset();
  row0[12] |= 0x80;  // bit 103 of a 100-bit row
  const uint64_t rows_sum = Fnv1a64(bytes.data() + info->rows_offset(),
                                    bytes.size() - info->rows_offset());
  std::memcpy(bytes.data() + 48, &rows_sum, 8);
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kProtocolViolation);
}

TEST(PclkTest, PopcountDisagreementIsIoError) {
  const EncodedShard shard = MakeShard(3, 128);
  std::vector<uint8_t> bytes = EncodePclk(shard);
  auto info = DecodePclkHeader(bytes.data(), bytes.size());
  ASSERT_TRUE(info.ok());
  // Bump popcount[1] and repair the section + header checksums.
  uint8_t* pop = bytes.data() + info->popcounts_offset();
  pop[4] ^= 1;
  const uint64_t pop_sum =
      Fnv1a64(bytes.data() + info->popcounts_offset(), 4 * info->row_count);
  std::memcpy(bytes.data() + 40, &pop_sum, 8);
  FixHeaderChecksum(bytes);
  EXPECT_EQ(DecodePclk(bytes.data(), bytes.size()).status().code(),
            StatusCode::kIoError);
}

TEST(PclkTest, FuzzedDecodingNeverCrashesAndErrorsAreTyped) {
  // Random single-byte mutations of a valid image: the decoder must either
  // return the original shard (mutation hit a dead byte — there are none,
  // but the property is what matters) or fail with one of the documented
  // codes. Never aborts, never returns garbage silently.
  const EncodedShard shard = MakeShard(6, 96);
  const std::vector<uint8_t> pristine = EncodePclk(shard);
  std::mt19937_64 rng(0xC0FFEE);
  for (int iteration = 0; iteration < 2000; ++iteration) {
    std::vector<uint8_t> bytes = pristine;
    const size_t mutations = 1 + rng() % 3;
    for (size_t m = 0; m < mutations; ++m) {
      bytes[rng() % bytes.size()] ^= static_cast<uint8_t>(1 + rng() % 255);
    }
    // Occasionally also truncate or extend.
    if (rng() % 4 == 0) bytes.resize(rng() % (bytes.size() + 16));
    auto decoded = DecodePclk(bytes.data(), bytes.size());
    if (decoded.ok()) {
      ExpectShardsEqual(shard, *decoded);
      continue;
    }
    const StatusCode code = decoded.status().code();
    EXPECT_TRUE(code == StatusCode::kInvalidArgument ||
                code == StatusCode::kOutOfRange ||
                code == StatusCode::kProtocolViolation ||
                code == StatusCode::kIoError)
        << StatusCodeToString(code) << ": " << decoded.status().message();
  }
}

TEST(PclkTest, ReadMissingFileFails) {
  auto result = io::ReadPclkFile("/nonexistent/definitely/not/here.pclk");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_FALSE(io::LooksLikePclkFile("/nonexistent/not/here.pclk"));
}

}  // namespace
}  // namespace pprl
