#include "linkage/matching.h"

#include <set>
#include <gtest/gtest.h>

#include "common/random.h"

namespace pprl {
namespace {

TEST(GreedyOneToOneTest, TakesHighestScoresFirst) {
  const std::vector<ScoredPair> scored = {
      {0, 0, 0.9}, {0, 1, 0.95}, {1, 0, 0.99}, {1, 1, 0.5}};
  const auto matched = GreedyOneToOne(scored);
  // (1,0) at 0.99 first, then (0,1) at 0.95.
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0], (ScoredPair{1, 0, 0.99}));
  EXPECT_EQ(matched[1], (ScoredPair{0, 1, 0.95}));
}

TEST(GreedyOneToOneTest, EachRecordUsedOnce) {
  Rng rng(3);
  std::vector<ScoredPair> scored;
  for (uint32_t i = 0; i < 20; ++i) {
    for (uint32_t j = 0; j < 20; ++j) scored.push_back({i, j, rng.NextDouble()});
  }
  const auto matched = GreedyOneToOne(scored);
  EXPECT_EQ(matched.size(), 20u);
  std::set<uint32_t> used_a, used_b;
  for (const auto& m : matched) {
    EXPECT_TRUE(used_a.insert(m.a).second);
    EXPECT_TRUE(used_b.insert(m.b).second);
  }
}

TEST(GreedyOneToOneTest, EmptyInput) { EXPECT_TRUE(GreedyOneToOne({}).empty()); }

TEST(HungarianTest, OptimalBeatsGreedyOnClassicTrap) {
  // Greedy takes (0,0)=0.9 then must pair (1,1)=0.1: total 1.0.
  // Optimal takes (0,1)=0.8 and (1,0)=0.8: total 1.6.
  const std::vector<ScoredPair> scored = {
      {0, 0, 0.9}, {0, 1, 0.8}, {1, 0, 0.8}, {1, 1, 0.1}};
  const auto greedy = GreedyOneToOne(scored);
  const auto optimal = HungarianOneToOne(scored);
  auto total = [](const std::vector<ScoredPair>& pairs) {
    double sum = 0;
    for (const auto& p : pairs) sum += p.score;
    return sum;
  };
  EXPECT_DOUBLE_EQ(total(greedy), 1.0);
  EXPECT_DOUBLE_EQ(total(optimal), 1.6);
}

TEST(HungarianTest, OneToOneConstraint) {
  Rng rng(5);
  std::vector<ScoredPair> scored;
  for (uint32_t i = 0; i < 12; ++i) {
    for (uint32_t j = 0; j < 15; ++j) {
      if (rng.NextBool(0.6)) scored.push_back({i, j, rng.NextDouble()});
    }
  }
  const auto matched = HungarianOneToOne(scored);
  std::set<uint32_t> used_a, used_b;
  for (const auto& m : matched) {
    EXPECT_TRUE(used_a.insert(m.a).second);
    EXPECT_TRUE(used_b.insert(m.b).second);
    EXPECT_GE(m.score, 0.0);
  }
}

TEST(HungarianTest, NeverWorseThanGreedy) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ScoredPair> scored;
    const uint32_t n = 2 + static_cast<uint32_t>(rng.NextUint64(8));
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        if (rng.NextBool(0.7)) scored.push_back({i, j, rng.NextDouble()});
      }
    }
    auto total = [](const std::vector<ScoredPair>& pairs) {
      double sum = 0;
      for (const auto& p : pairs) sum += p.score;
      return sum;
    };
    const double greedy_total = total(GreedyOneToOne(scored));
    const double optimal_total = total(HungarianOneToOne(scored));
    EXPECT_GE(optimal_total + 1e-9, greedy_total) << "trial " << trial;
  }
}

TEST(HungarianTest, EmptyAndSingle) {
  EXPECT_TRUE(HungarianOneToOne({}).empty());
  const auto single = HungarianOneToOne({{3, 4, 0.7}});
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0], (ScoredPair{3, 4, 0.7}));
}

TEST(HungarianTest, DuplicateEdgesKeepBest) {
  const auto matched = HungarianOneToOne({{0, 0, 0.3}, {0, 0, 0.8}});
  ASSERT_EQ(matched.size(), 1u);
  EXPECT_DOUBLE_EQ(matched[0].score, 0.8);
}

TEST(ManyToManyTest, KeepsAllSorted) {
  const auto out = ManyToMany({{0, 0, 0.2}, {1, 1, 0.9}, {2, 2, 0.5}});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[0].score, 0.9);
  EXPECT_DOUBLE_EQ(out[2].score, 0.2);
}

}  // namespace
}  // namespace pprl
