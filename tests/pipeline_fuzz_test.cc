/// Robustness fuzzing: random but type-valid pipeline configurations and
/// degenerate databases must never crash, and every reported metric must be
/// internally consistent. This is the failure-injection layer of the test
/// suite.

#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/corruptor.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

PipelineConfig RandomConfig(Rng& rng) {
  PipelineConfig config;
  config.bloom.num_bits = 64 + rng.NextUint64(2000);
  config.bloom.num_hashes = 1 + rng.NextUint64(40);
  if (rng.NextBool(0.3)) {
    config.bloom.scheme = BloomHashScheme::kKeyedHmac;
    config.bloom.secret_key = "fuzz-key";
  }
  switch (rng.NextUint64(3)) {
    case 0:
      config.hardening = HardeningScheme::kNone;
      break;
    case 1:
      config.hardening = HardeningScheme::kRule90;
      break;
    default:
      config.hardening = HardeningScheme::kBlip;
      config.blip_flip_prob = rng.NextDouble() * 0.3;
      break;
  }
  switch (rng.NextUint64(3)) {
    case 0:
      config.blocking = BlockingScheme::kNone;
      break;
    case 1:
      config.blocking = BlockingScheme::kSoundex;
      break;
    default:
      config.blocking = BlockingScheme::kHammingLsh;
      config.lsh_tables = 1 + rng.NextUint64(30);
      config.lsh_bits_per_key = 1 + rng.NextUint64(40);
      break;
  }
  config.match_threshold = 0.3 + rng.NextDouble() * 0.69;
  config.one_to_one = rng.NextBool();
  config.model = static_cast<LinkageModel>(rng.NextUint64(3));
  config.seed = rng.NextUint64();
  return config;
}

class PipelineFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PipelineFuzzTest, RandomConfigsNeverCrashAndStayConsistent) {
  Rng rng(GetParam());
  DataGenerator gen(GeneratorConfig{rng.NextUint64(), 1.0, 1950, 2000});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 20 + rng.NextUint64(60);
  scenario.overlap = rng.NextDouble();
  scenario.corruption.mean_corruptions = rng.NextDouble() * 4;
  scenario.corruption.missing_value_prob = rng.NextDouble() * 0.5;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());

  const PipelineConfig config = RandomConfig(rng);
  auto output = PprlPipeline(config).Link((*dbs)[0], (*dbs)[1]);
  ASSERT_TRUE(output.ok()) << output.status().ToString();

  // Internal consistency of every reported number.
  const size_t n = scenario.records_per_database;
  EXPECT_LE(output->candidate_pairs, n * n);
  EXPECT_EQ(output->comparisons, output->candidate_pairs);
  EXPECT_LE(output->matches.size(), output->candidate_pairs);
  for (const ScoredPair& m : output->matches) {
    EXPECT_LT(m.a, n);
    EXPECT_LT(m.b, n);
    EXPECT_GE(m.score, config.match_threshold - 1e-9);
    EXPECT_LE(m.score, 1.0 + 1e-9);
  }
  if (config.one_to_one) {
    std::set<uint32_t> used_a, used_b;
    for (const ScoredPair& m : output->matches) {
      EXPECT_TRUE(used_a.insert(m.a).second);
      EXPECT_TRUE(used_b.insert(m.b).second);
    }
  }
  EXPECT_GT(output->messages, 0u);
  EXPECT_GT(output->bytes, 0u);

  // Metrics must be computable and bounded.
  const GroundTruth truth((*dbs)[0], (*dbs)[1]);
  const ConfusionCounts counts = EvaluateMatches(output->matches, truth);
  EXPECT_LE(counts.Precision(), 1.0);
  EXPECT_LE(counts.Recall(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzzTest, ::testing::Range<uint64_t>(0, 24));

TEST(PipelineDegenerateTest, EmptyDatabases) {
  Database empty;
  empty.schema = DataGenerator::StandardSchema();
  PipelineConfig config;
  auto output = PprlPipeline(config).Link(empty, empty);
  ASSERT_TRUE(output.ok());
  EXPECT_TRUE(output->matches.empty());
  EXPECT_EQ(output->candidate_pairs, 0u);
}

TEST(PipelineDegenerateTest, SingleRecordEachSide) {
  DataGenerator gen(GeneratorConfig{});
  Database a = gen.GenerateClean(1);
  Database b = a;
  PipelineConfig config;
  config.blocking = BlockingScheme::kNone;
  auto output = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(output.ok());
  EXPECT_EQ(output->matches.size(), 1u);
}

TEST(PipelineDegenerateTest, AllValuesMissing) {
  Database a;
  a.schema = DataGenerator::StandardSchema();
  for (int i = 0; i < 5; ++i) {
    Record r;
    r.id = static_cast<uint64_t>(i);
    r.entity_id = static_cast<uint64_t>(i);
    r.values.assign(a.schema.size(), "");
    a.records.push_back(std::move(r));
  }
  PipelineConfig config;
  config.blocking = BlockingScheme::kNone;
  auto output = PprlPipeline(config).Link(a, a);
  // Must not crash; empty filters compare as all-zero (Dice 1 by our
  // convention), so matches may or may not appear — only stability matters.
  ASSERT_TRUE(output.ok());
}

TEST(PipelineDegenerateTest, HeavilyCorruptedStillRuns) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 40;
  scenario.corruption.mean_corruptions = 5.0;
  scenario.corruption.max_corruptions_per_record = 10;
  scenario.corruption.missing_value_prob = 0.6;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  PipelineConfig config;
  auto output = PprlPipeline(config).Link((*dbs)[0], (*dbs)[1]);
  ASSERT_TRUE(output.ok());
}

}  // namespace
}  // namespace pprl
