#include "common/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValueHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(StatsTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(Mean({}), 0.0); }

TEST(StatsTest, StdDevMatchesRunningStats) {
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6};
  RunningStats stats;
  for (double x : xs) stats.Add(x);
  EXPECT_NEAR(StdDev(xs), stats.stddev(), 1e-12);
}

TEST(StatsTest, Percentiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, PearsonCorrelationPerfect) {
  const std::vector<double> xs = {1, 2, 3, 4};
  const std::vector<double> ys = {2, 4, 6, 8};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateCases) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1}), 0.0);      // size mismatch
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 1}, {2, 3}), 0.0);   // zero variance
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1}, {2}), 0.0);         // too short
}

TEST(StatsTest, EntropyOfUniformDistribution) {
  EXPECT_NEAR(EntropyBits({10, 10, 10, 10}), 2.0, 1e-12);
  EXPECT_NEAR(EntropyBits({7, 7}), 1.0, 1e-12);
}

TEST(StatsTest, EntropyOfPointMassIsZero) {
  EXPECT_DOUBLE_EQ(EntropyBits({42}), 0.0);
  EXPECT_DOUBLE_EQ(EntropyBits({42, 0, 0}), 0.0);
}

TEST(StatsTest, EntropyEmptyIsZero) { EXPECT_DOUBLE_EQ(EntropyBits({}), 0.0); }

}  // namespace
}  // namespace pprl
