#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/channel.h"

namespace pprl {
namespace {

TEST(ChannelTest, MetersMessagesAndBytes) {
  Channel channel;
  channel.Send("a", "b", 100, "filters");
  channel.Send("a", "b", 50, "filters");
  channel.Send("b", "a", 10, "ids");
  EXPECT_EQ(channel.total_messages(), 3u);
  EXPECT_EQ(channel.total_bytes(), 160u);
  EXPECT_EQ(channel.BytesBetween("a", "b"), 150u);
  EXPECT_EQ(channel.BytesBetween("b", "a"), 10u);
  EXPECT_EQ(channel.BytesBetween("a", "c"), 0u);
  EXPECT_EQ(channel.bytes_by_tag().at("filters"), 150u);
  channel.Reset();
  EXPECT_EQ(channel.total_messages(), 0u);
  EXPECT_EQ(channel.total_bytes(), 0u);
}

class PipelineTest : public ::testing::Test {
 protected:
  static std::pair<Database, Database> MakeScenario(double mean_corruptions) {
    DataGenerator gen(GeneratorConfig{});
    LinkageScenarioConfig config;
    config.records_per_database = 200;
    config.overlap = 0.5;
    config.corruption.mean_corruptions = mean_corruptions;
    auto dbs = gen.GenerateScenario(config);
    EXPECT_TRUE(dbs.ok());
    return {std::move((*dbs)[0]), std::move((*dbs)[1])};
  }
};

TEST_F(PipelineTest, LinksCleanDataPerfectly) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 200;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 0.0;
  scenario.corruption.name_swap_prob = 0.0;  // truly clean duplicates
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];
  PipelineConfig config;
  config.bloom.num_bits = 1000;
  config.match_threshold = 0.95;
  const PprlPipeline pipeline(config);
  auto output = pipeline.Link(a, b);
  ASSERT_TRUE(output.ok());
  const GroundTruth truth(a, b);
  const ConfusionCounts counts = EvaluateMatches(output->matches, truth);
  EXPECT_DOUBLE_EQ(counts.Precision(), 1.0);
  EXPECT_GT(counts.Recall(), 0.98);
}

TEST_F(PipelineTest, LinksDirtyDataWell) {
  const auto [a, b] = MakeScenario(1.5);
  PipelineConfig config;
  config.bloom.num_bits = 1000;
  config.match_threshold = 0.75;
  const PprlPipeline pipeline(config);
  auto output = pipeline.Link(a, b);
  ASSERT_TRUE(output.ok());
  const GroundTruth truth(a, b);
  const ConfusionCounts counts = EvaluateMatches(output->matches, truth);
  EXPECT_GT(counts.F1(), 0.75);
}

TEST_F(PipelineTest, BlockingReducesComparisons) {
  const auto [a, b] = MakeScenario(0.5);
  PipelineConfig lsh;
  lsh.blocking = BlockingScheme::kHammingLsh;
  PipelineConfig none;
  none.blocking = BlockingScheme::kNone;
  auto lsh_out = PprlPipeline(lsh).Link(a, b);
  auto none_out = PprlPipeline(none).Link(a, b);
  ASSERT_TRUE(lsh_out.ok() && none_out.ok());
  EXPECT_EQ(none_out->comparisons, 200u * 200u);
  EXPECT_LT(lsh_out->comparisons, none_out->comparisons / 2);
}

TEST_F(PipelineTest, AllLinkageModelsAgreeOnMatches) {
  const auto [a, b] = MakeScenario(1.0);
  std::vector<size_t> match_counts;
  for (LinkageModel model :
       {LinkageModel::kTwoPartyLinkageUnit, LinkageModel::kTwoPartyDirect,
        LinkageModel::kDualLinkageUnit}) {
    PipelineConfig config;
    config.model = model;
    auto output = PprlPipeline(config).Link(a, b);
    ASSERT_TRUE(output.ok());
    match_counts.push_back(output->matches.size());
    EXPECT_GT(output->messages, 0u);
    EXPECT_GT(output->bytes, 0u);
  }
  EXPECT_EQ(match_counts[0], match_counts[1]);
  EXPECT_EQ(match_counts[0], match_counts[2]);
}

TEST_F(PipelineTest, DualLuSendsMoreMessages) {
  const auto [a, b] = MakeScenario(1.0);
  PipelineConfig single;
  single.model = LinkageModel::kTwoPartyLinkageUnit;
  PipelineConfig dual;
  dual.model = LinkageModel::kDualLinkageUnit;
  auto single_out = PprlPipeline(single).Link(a, b);
  auto dual_out = PprlPipeline(dual).Link(a, b);
  ASSERT_TRUE(single_out.ok() && dual_out.ok());
  EXPECT_GT(dual_out->messages, single_out->messages);
}

TEST_F(PipelineTest, HardeningSchemesStillLink) {
  const auto [a, b] = MakeScenario(0.5);
  const GroundTruth truth(a, b);
  for (HardeningScheme scheme :
       {HardeningScheme::kBalance, HardeningScheme::kXorFold, HardeningScheme::kBlip}) {
    PipelineConfig config;
    config.hardening = scheme;
    config.match_threshold = 0.7;
    // XOR-fold halves the filter; keep the LSH within bounds.
    config.lsh_bits_per_key = 12;
    auto output = PprlPipeline(config).Link(a, b);
    ASSERT_TRUE(output.ok());
    const ConfusionCounts counts = EvaluateMatches(output->matches, truth);
    EXPECT_GT(counts.F1(), 0.5) << "scheme " << static_cast<int>(scheme);
  }
}

TEST_F(PipelineTest, SoundexBlockingWorks) {
  const auto [a, b] = MakeScenario(0.5);
  PipelineConfig config;
  config.blocking = BlockingScheme::kSoundex;
  config.match_threshold = 0.8;
  auto output = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(output.ok());
  const GroundTruth truth(a, b);
  EXPECT_GT(EvaluateMatches(output->matches, truth).F1(), 0.6);
}

TEST_F(PipelineTest, InvalidConfigRejected) {
  PipelineConfig config;
  config.bloom.num_bits = 0;
  const auto [a, b] = MakeScenario(0.0);
  EXPECT_FALSE(PprlPipeline(config).Link(a, b).ok());
}

TEST_F(PipelineTest, ReportsTimingAndCandidates) {
  const auto [a, b] = MakeScenario(0.5);
  PipelineConfig config;
  auto output = PprlPipeline(config).Link(a, b);
  ASSERT_TRUE(output.ok());
  EXPECT_GT(output->candidate_pairs, 0u);
  EXPECT_GE(output->encode_seconds, 0.0);
  EXPECT_GE(output->compare_seconds, 0.0);
}

TEST(PipelineConfigTest, DefaultFieldConfigsMatchStandardSchema) {
  const Schema schema = DataGenerator::StandardSchema();
  for (const auto& field : PprlPipeline::DefaultFieldConfigs()) {
    EXPECT_GE(schema.FieldIndex(field.field_name), 0) << field.field_name;
  }
}

}  // namespace
}  // namespace pprl
