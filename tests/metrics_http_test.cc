#include "net/metrics_http.h"

#include <chrono>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "net/transport.h"

namespace pprl {
namespace {

using std::chrono::steady_clock;

/// Issues one HTTP/1.0 GET against the server and returns the raw reply.
std::string Get(uint16_t port, const std::string& path) {
  ConnectOptions options;
  options.io_timeout_ms = 2000;
  auto conn = TcpConnection::Connect("127.0.0.1", port, options);
  if (!conn.ok()) return "";
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!(*conn)->Write(reinterpret_cast<const uint8_t*>(request.data()),
                      request.size())
           .ok()) {
    return "";
  }
  std::string reply;
  uint8_t buf[512];
  for (;;) {
    auto n = (*conn)->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    reply.append(reinterpret_cast<const char*>(buf), *n);
  }
  return reply;
}

TEST(MetricsHttpTest, ServesScrapesUntilStopped) {
  MetricsHttpServerConfig config;
  config.port = 0;
  config.accept_poll_ms = 50;
  MetricsHttpServer server(config, [] { return std::string("pprl_up 1\n"); });
  ASSERT_TRUE(server.Start().ok());

  const std::string reply = Get(server.port(), "/metrics");
  EXPECT_NE(reply.find("200"), std::string::npos) << reply;
  EXPECT_NE(reply.find("pprl_up 1"), std::string::npos) << reply;
  EXPECT_NE(Get(server.port(), "/nope").find("404"), std::string::npos);

  const uint16_t port = server.port();
  server.Stop();
  // After Stop() the port no longer answers (connect may succeed briefly
  // in the kernel backlog, but no response ever arrives).
  ConnectOptions options;
  options.io_timeout_ms = 200;
  options.max_retries = 0;
  options.connect_timeout_ms = 200;
  auto conn = TcpConnection::Connect("127.0.0.1", port, options);
  if (conn.ok()) {
    uint8_t buf[8];
    auto n = (*conn)->Read(buf, sizeof(buf));
    EXPECT_TRUE(!n.ok() || *n == 0);
  }
}

TEST(MetricsHttpTest, StopReturnsPromptlyWithStalledScrapeInFlight) {
  MetricsHttpServerConfig config;
  config.port = 0;
  config.accept_poll_ms = 50;
  config.io_timeout_ms = 200;  // bound the stalled read below
  MetricsHttpServer server(config, [] { return std::string("pprl_up 1\n"); });
  ASSERT_TRUE(server.Start().ok());

  // Open a connection but never send the request line: the serve loop is
  // now parked in ReadRequest on this socket.
  ConnectOptions options;
  options.io_timeout_ms = 2000;
  auto stalled = TcpConnection::Connect("127.0.0.1", server.port(), options);
  ASSERT_TRUE(stalled.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Stop() must come back once the per-connection io timeout expires — the
  // regression here was the serve loop treating its own teardown (or a poll
  // timeout) as a fatal accept error, or worse, never distinguishing the
  // two and spinning/hanging.
  const auto start = steady_clock::now();
  server.Stop();
  const auto elapsed = steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::seconds(3)) << "Stop() hung on a stalled scrape";
  (*stalled)->Close();

  // Idempotent: a second Stop() is a no-op.
  server.Stop();
}

}  // namespace
}  // namespace pprl
