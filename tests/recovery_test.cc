#include "service/durability.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/clk_io.h"
#include "io/checkpoint.h"
#include "io/wal.h"
#include "linkage/online_linkage.h"
#include "service/client.h"
#include "service/server.h"

namespace pprl {
namespace {

constexpr size_t kFilterBits = 256;

BitVector RandomFilter(Rng& rng) {
  BitVector bv(kFilterBits);
  for (size_t i = 0; i < kFilterBits; ++i) {
    if (rng.NextBool(0.3)) bv.Set(i);
  }
  return bv;
}

BitVector Perturb(const BitVector& filter, size_t flips, Rng& rng) {
  BitVector out = filter;
  for (size_t i = 0; i < flips; ++i) out.Flip(rng.NextUint64(kFilterBits));
  return out;
}

/// Two overlapping databases: shared entities cluster across them, unique
/// records stay singletons — enough structure that a wrong partition
/// cannot pass by accident.
std::vector<EncodedDatabase> MakeDatabases(size_t entities, uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> base;
  for (size_t e = 0; e < entities; ++e) base.push_back(RandomFilter(rng));
  std::vector<EncodedDatabase> dbs(2);
  for (size_t d = 0; d < 2; ++d) {
    for (size_t e = 0; e < entities * 7 / 10; ++e) {
      const size_t entity = (e + d * entities / 3) % entities;
      dbs[d].ids.push_back(1000 * (d + 1) + e);
      dbs[d].filters.push_back(Perturb(base[entity], 2, rng));
    }
    for (size_t e = 0; e < entities / 4; ++e) {
      dbs[d].ids.push_back(800000 + 1000 * (d + 1) + e);
      dbs[d].filters.push_back(RandomFilter(rng));
    }
  }
  return dbs;
}

std::unique_ptr<OnlineLinkageEngine> BuildReference(
    const std::vector<EncodedDatabase>& dbs) {
  auto engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
  for (size_t d = 0; d < dbs.size(); ++d) {
    const uint32_t db = engine->RegisterDatabase("db-" + std::to_string(d));
    for (size_t i = 0; i < dbs[d].size(); ++i) {
      EXPECT_TRUE(engine->Append(db, dbs[d].ids[i], dbs[d].filters[i]).ok());
    }
  }
  return engine;
}

/// The recovered engine must be indistinguishable from the reference:
/// same registry, same cursors, same partition, same accounting.
void ExpectEngineParity(OnlineLinkageEngine& recovered,
                        OnlineLinkageEngine& reference) {
  ASSERT_EQ(recovered.database_count(), reference.database_count());
  for (uint32_t d = 0; d < recovered.database_count(); ++d) {
    EXPECT_EQ(recovered.database_name(d), reference.database_name(d));
    EXPECT_EQ(recovered.record_count(d), reference.record_count(d));
  }
  EXPECT_EQ(recovered.size(), reference.size());
  EXPECT_EQ(recovered.edges(), reference.edges());
  EXPECT_EQ(recovered.comparisons(), reference.comparisons());
  EXPECT_EQ(recovered.Clusters(), reference.Clusters());
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  ::mkdir(dir.c_str(), 0755);
  // Start every test from an empty directory: durable state from an
  // earlier (failed) run must not leak in.
  auto segments = io::ListWalSegments(dir);
  if (segments.ok()) {
    for (const auto& [seq, path] : *segments) std::remove(path.c_str());
  }
  auto checkpoints = io::ListCheckpoints(dir);
  if (checkpoints.ok()) {
    for (const auto& [seq, path] : *checkpoints) std::remove(path.c_str());
  }
  return dir;
}

DurabilityConfig Config(const std::string& dir) {
  DurabilityConfig config;
  config.wal_dir = dir;
  config.wal_sync_ms = 0;
  config.checkpoint_every_n = 0;  // checkpoints only when the test asks
  config.wal_batch_records = 16;
  return config;
}

std::vector<uint8_t> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

TEST(CheckpointTest, SnapshotRoundtripRestoresTheExactEngine) {
  const auto dbs = MakeDatabases(40, /*seed=*/3);
  auto reference = BuildReference(dbs);

  const std::string dir = FreshDir("ckpt_roundtrip");
  const io::OnlineSnapshot snapshot = reference->ExportSnapshot(/*wal_sequence=*/42);
  std::string path;
  ASSERT_TRUE(io::WriteCheckpointFile(dir, snapshot, &path).ok());

  auto read = io::ReadCheckpointFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->wal_sequence, 42u);
  auto restored = OnlineLinkageEngine::FromSnapshot(*read, {});
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectEngineParity(**restored, *reference);

  // Queries answer identically too (same candidates, same scores).
  Rng rng(9);
  for (int q = 0; q < 20; ++q) {
    const BitVector probe = Perturb(dbs[0].filters[q], 2, rng);
    auto a = (*restored)->Query(probe, 0, /*want_clusters=*/true, /*top_k=*/0);
    auto b = reference->Query(probe, 0, /*want_clusters=*/true, /*top_k=*/0);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->matches.size(), b->matches.size());
    for (size_t m = 0; m < a->matches.size(); ++m) {
      EXPECT_EQ(a->matches[m].database, b->matches[m].database);
      EXPECT_EQ(a->matches[m].record, b->matches[m].record);
      EXPECT_EQ(a->matches[m].score, b->matches[m].score);
    }
    EXPECT_EQ(a->cluster_id, b->cluster_id);
    EXPECT_EQ(a->cluster_size, b->cluster_size);
  }
}

TEST(CheckpointTest, BandChecksumCatchesGeometryDrift) {
  const auto dbs = MakeDatabases(20, /*seed=*/5);
  auto reference = BuildReference(dbs);
  io::OnlineSnapshot snapshot = reference->ExportSnapshot(1);
  snapshot.band_checksum ^= 1;  // what seed/geometry drift looks like
  auto restored = OnlineLinkageEngine::FromSnapshot(snapshot, {});
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().ToString().find("band checksum"),
            std::string::npos);
}

/// Every single-bit flip in a checkpoint file must fail the read with a
/// typed error naming the file — a daemon must refuse corrupt state, not
/// serve from it.
TEST(CheckpointTest, BitFlipAndTruncationFuzz) {
  const auto dbs = MakeDatabases(12, /*seed=*/8);
  auto reference = BuildReference(dbs);
  const std::string dir = FreshDir("ckpt_fuzz");
  std::string path;
  ASSERT_TRUE(io::WriteCheckpointFile(dir, reference->ExportSnapshot(7), &path).ok());
  const std::vector<uint8_t> bytes = Slurp(path);
  ASSERT_GT(bytes.size(), io::kCheckpointHeaderBytes);

  const std::string mut_path = dir + "/mutated.pckp";
  Rng rng(31);
  // Flipping every byte of a multi-KiB file is slow under sanitizers;
  // cover every header/section-header byte and sample the payloads.
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < 4 * io::kCheckpointHeaderBytes ? 1 : 37)) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.NextUint64(8));
    Dump(mut_path, mutated);
    auto read = io::ReadCheckpointFile(mut_path);
    EXPECT_FALSE(read.ok()) << "flip at byte " << pos << " went unnoticed";
    if (!read.ok()) {
      EXPECT_NE(read.status().ToString().find("mutated.pckp"), std::string::npos);
    }
  }
  for (size_t cut = 0; cut < bytes.size(); cut += 191) {
    Dump(mut_path, std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(io::ReadCheckpointFile(mut_path).ok()) << "cut at " << cut;
  }
}

/// Drives a full durable ingest and returns the directory, so crash-matrix
/// tests can mutate the files and recover. `stop_after` bounds how many
/// records of each database are absorbed (SIZE_MAX = all).
void DurableIngest(const std::vector<EncodedDatabase>& dbs,
                   OnlineDurability& durability, OnlineLinkageEngine& engine,
                   size_t stop_after = SIZE_MAX) {
  for (size_t d = 0; d < dbs.size(); ++d) {
    const size_t end = std::min(stop_after, dbs[d].size());
    uint32_t db = 0;
    auto cursor = durability.DurableAppend(engine, "db-" + std::to_string(d),
                                           dbs[d], 0, end, &db);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    EXPECT_EQ(*cursor, end);
  }
}

/// Crash matrix k1: process died mid-WAL-append — the segment ends in a
/// ragged partial record. Recovery drops the torn tail and rebuilds the
/// exact pre-crash state.
TEST(CrashMatrixTest, K1_TornWalAppend) {
  const auto dbs = MakeDatabases(30, /*seed=*/13);
  const std::string dir = FreshDir("crash_k1");
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    ASSERT_EQ(engine, nullptr);
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    DurableIngest(dbs, durability, *engine);
  }  // destructors stand in for the kill: nothing flushes beyond the OS

  auto segments = io::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 1u);
  {  // a ragged 11-byte tail, as a crash mid-write() would leave
    std::ofstream out((*segments)[0].second,
                      std::ios::binary | std::ios::app);
    out.write("torn-bytes!", 11);
  }

  OnlineDurability durability(Config(dir));
  std::unique_ptr<OnlineLinkageEngine> engine;
  RecoveryReport report;
  ASSERT_TRUE(durability.Recover(&engine, &report).ok());
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(report.torn_bytes_dropped, 11u);
  EXPECT_GT(report.replayed_records, 0u);
  auto reference = BuildReference(dbs);
  ExpectEngineParity(*engine, *reference);
}

/// Crash matrix k2: process died mid-checkpoint-write — a partial
/// checkpoint-*.tmp exists, never renamed. Recovery ignores it and
/// replays the WAL.
TEST(CrashMatrixTest, K2_PartialCheckpointTemp) {
  const auto dbs = MakeDatabases(30, /*seed=*/17);
  const std::string dir = FreshDir("crash_k2");
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    DurableIngest(dbs, durability, *engine);
  }
  Dump(dir + "/checkpoint-00000000000000000099.pckp.tmp",
       {'h', 'a', 'l', 'f'});

  OnlineDurability durability(Config(dir));
  std::unique_ptr<OnlineLinkageEngine> engine;
  RecoveryReport report;
  ASSERT_TRUE(durability.Recover(&engine, &report).ok());
  ASSERT_NE(engine, nullptr);
  EXPECT_FALSE(report.checkpoint_loaded);
  auto reference = BuildReference(dbs);
  ExpectEngineParity(*engine, *reference);
}

/// Crash matrix k3: process died after the checkpoint rename but before
/// the covered WAL segments were deleted. Recovery loads the checkpoint
/// and must SKIP every already-covered WAL record instead of replaying it
/// twice.
TEST(CrashMatrixTest, K3_CheckpointRenamedWalNotYetDeleted) {
  const auto dbs = MakeDatabases(30, /*seed=*/19);
  const std::string dir = FreshDir("crash_k3");
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    DurableIngest(dbs, durability, *engine);

    // Freeze the pre-checkpoint WAL, checkpoint (which deletes it), then
    // resurrect it — the exact k3 on-disk state.
    auto segments = io::ListWalSegments(dir);
    ASSERT_TRUE(segments.ok());
    ASSERT_EQ(segments->size(), 1u);
    const std::vector<uint8_t> frozen = Slurp((*segments)[0].second);
    const std::string frozen_path = (*segments)[0].second;
    ASSERT_TRUE(durability.Checkpoint(*engine).ok());
    ASSERT_TRUE(io::ListWalSegments(dir)->empty());
    Dump(frozen_path, frozen);
  }

  OnlineDurability durability(Config(dir));
  std::unique_ptr<OnlineLinkageEngine> engine;
  RecoveryReport report;
  ASSERT_TRUE(durability.Recover(&engine, &report).ok());
  ASSERT_NE(engine, nullptr);
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_EQ(report.replayed_records, 0u) << "covered records were replayed";
  auto reference = BuildReference(dbs);
  ExpectEngineParity(*engine, *reference);
}

/// Crash matrix k4: process died mid-shipment — only a prefix of the
/// second database was journaled. Recovery restores the prefix state and
/// an idempotent re-drive (skip the server-side cursor, append the tail)
/// converges to the full state.
TEST(CrashMatrixTest, K4_MidShipmentAbsorb) {
  const auto dbs = MakeDatabases(30, /*seed=*/23);
  const std::string dir = FreshDir("crash_k4");
  const size_t prefix = dbs[1].size() / 2;
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    uint32_t db = 0;
    ASSERT_TRUE(
        durability.DurableAppend(*engine, "db-0", dbs[0], 0, dbs[0].size(), &db)
            .ok());
    ASSERT_TRUE(
        durability.DurableAppend(*engine, "db-1", dbs[1], 0, prefix, &db).ok());
  }

  OnlineDurability durability(Config(dir));
  std::unique_ptr<OnlineLinkageEngine> engine;
  RecoveryReport report;
  ASSERT_TRUE(durability.Recover(&engine, &report).ok());
  ASSERT_NE(engine, nullptr);
  ASSERT_EQ(engine->record_count(1), prefix);

  // The re-driven owner ships the whole database again; the server-side
  // cursor rule turns it into an append of the missing tail.
  const size_t skip = std::min<size_t>(engine->record_count(1), dbs[1].size());
  EXPECT_EQ(skip, prefix);
  uint32_t db = 0;
  ASSERT_TRUE(
      durability.DurableAppend(*engine, "db-1", dbs[1], skip, dbs[1].size(), &db)
          .ok());
  auto reference = BuildReference(dbs);
  ExpectEngineParity(*engine, *reference);
}

TEST(RecoveryTest, CrashDuringRecoveryIsIdempotent) {
  // Recovery is read-only: running it twice (a re-crash mid-recovery)
  // yields the identical engine and leaves the files byte-identical.
  const auto dbs = MakeDatabases(20, /*seed=*/29);
  const std::string dir = FreshDir("recover_twice");
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    DurableIngest(dbs, durability, *engine);
  }
  auto segments = io::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  const std::vector<uint8_t> before = Slurp((*segments)[0].second);

  std::unique_ptr<OnlineLinkageEngine> first, second;
  RecoveryReport report;
  {
    OnlineDurability durability(Config(dir));
    ASSERT_TRUE(durability.Recover(&first, &report).ok());
  }
  {
    OnlineDurability durability(Config(dir));
    ASSERT_TRUE(durability.Recover(&second, &report).ok());
  }
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  ExpectEngineParity(*second, *first);
  EXPECT_EQ(Slurp((*segments)[0].second), before);
}

TEST(RecoveryTest, CorruptWalRefusesStartup) {
  const auto dbs = MakeDatabases(15, /*seed=*/37);
  const std::string dir = FreshDir("corrupt_wal");
  {
    OnlineDurability durability(Config(dir));
    std::unique_ptr<OnlineLinkageEngine> engine;
    RecoveryReport report;
    ASSERT_TRUE(durability.Recover(&engine, &report).ok());
    engine = std::make_unique<OnlineLinkageEngine>(kFilterBits);
    DurableIngest(dbs, durability, *engine);
  }
  auto segments = io::ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  std::vector<uint8_t> bytes = Slurp((*segments)[0].second);
  bytes[io::kWalHeaderBytes + io::kWalRecordHeaderBytes + 2] ^= 0x10;
  Dump((*segments)[0].second, bytes);

  OnlineDurability durability(Config(dir));
  std::unique_ptr<OnlineLinkageEngine> engine;
  RecoveryReport report;
  const Status recovered = durability.Recover(&engine, &report);
  ASSERT_FALSE(recovered.ok());
  EXPECT_NE(recovered.ToString().find("wal-"), std::string::npos)
      << "error must name the corrupt file: " << recovered.ToString();
}

/// Socket-level restart: a durable online daemon is stopped gracefully
/// (final checkpoint), a second daemon recovers from the same directories,
/// and a client's cursor probe + queries prove the served state survived.
TEST(RecoveryTest, ServerRestartServesIdenticalState) {
  const auto dbs = MakeDatabases(25, /*seed=*/41);
  const std::string dir = FreshDir("server_restart");

  LinkageUnitServerConfig config;
  config.port = 0;
  config.online_mode = true;
  config.expected_owners = 2;
  config.wal_dir = dir;
  config.wal_sync_ms = 0;
  config.name = "restart-a";

  EncodedShard shard0 = ShardFromEncodedDatabase(dbs[0]);
  EncodedShard shard1 = ShardFromEncodedDatabase(dbs[1]);

  std::vector<QueryResultMessage> before;
  uint16_t port = 0;
  {
    LinkageUnitServer server(config);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(server.durable());
    port = server.port();

    OnlineLinkClientConfig client_config;
    client_config.host = "127.0.0.1";
    client_config.port = port;
    OnlineLinkClient owner0(client_config);
    ASSERT_TRUE(owner0.Connect("db-0", kFilterBits).ok());
    ASSERT_TRUE(owner0.AppendRows(shard0, 0, shard0.size()).ok());
    OnlineLinkClient owner1(client_config);
    ASSERT_TRUE(owner1.Connect("db-1", kFilterBits).ok());
    ASSERT_TRUE(owner1.AppendRows(shard1, 0, shard1.size()).ok());

    auto result = owner0.QueryRows(shard0, 0, 10, /*want_clusters=*/true, 0);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    before.push_back(*result);
    owner0.Close();
    owner1.Close();
    server.Stop();  // graceful: writes the final checkpoint
  }
  ASSERT_FALSE(io::ListCheckpoints(dir)->empty());
  ASSERT_TRUE(io::ListWalSegments(dir)->empty()) << "WAL not truncated";

  config.name = "restart-b";
  LinkageUnitServer server(config);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(server.recovery_report().checkpoint_loaded);
  EXPECT_EQ(server.recovery_report().checkpoint_records,
            dbs[0].size() + dbs[1].size());

  OnlineLinkClientConfig client_config;
  client_config.host = "127.0.0.1";
  client_config.port = server.port();
  OnlineLinkClient owner0(client_config);
  ASSERT_TRUE(owner0.Connect("db-0", kFilterBits).ok());
  // A crashed owner re-drives its whole shipment (it has no ack to trust);
  // the fresh session's base index 0 makes the server skip every
  // already-indexed record — the append is idempotent.
  ASSERT_TRUE(owner0.AppendRows(shard0, 0, shard0.size()).ok());
  // Cursor re-derivation: the server remembers exactly what was acked.
  auto cursor = owner0.ServerCursor();
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  EXPECT_EQ(*cursor, shard0.size());

  // ... and queries answer exactly as before the restart.
  auto result = owner0.QueryRows(shard0, 0, 10, /*want_clusters=*/true, 0);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->records.size(), before[0].records.size());
  for (size_t r = 0; r < result->records.size(); ++r) {
    const auto& now = result->records[r];
    const auto& then = before[0].records[r];
    EXPECT_EQ(now.matches, then.matches);
    EXPECT_EQ(now.cluster_id, then.cluster_id);
    EXPECT_EQ(now.cluster_size, then.cluster_size);
  }
  owner0.Close();
  server.Stop();
}

}  // namespace
}  // namespace pprl
