#include "linkage/online_linkage.h"

#include <algorithm>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "blocking/lsh_blocking.h"
#include "blocking/lsh_index.h"
#include "common/random.h"
#include "encoding/clk_io.h"
#include "linkage/clustering.h"
#include "pipeline/party.h"
#include "service/client.h"
#include "service/server.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

constexpr size_t kFilterBits = 512;

/// A random ~30%-density filter, the ballpark a CLK encoder produces.
BitVector RandomFilter(Rng& rng) {
  BitVector bv(kFilterBits);
  for (size_t i = 0; i < kFilterBits; ++i) {
    if (rng.NextBool(0.3)) bv.Set(i);
  }
  return bv;
}

/// `filter` with `flips` random bits toggled — a corrupted re-observation
/// of the same entity, still well above the 0.8 Dice threshold.
BitVector Perturb(const BitVector& filter, size_t flips, Rng& rng) {
  BitVector out = filter;
  for (size_t i = 0; i < flips; ++i) out.Flip(rng.NextUint64(kFilterBits));
  return out;
}

/// Synthetic multi-database scenario: `entities` base filters; each
/// database holds a perturbed copy of a sliding window of them plus some
/// records of its own, so databases overlap pairwise without being equal.
std::vector<EncodedDatabase> MakeDatabases(size_t num_databases, size_t entities,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<BitVector> base;
  base.reserve(entities);
  for (size_t e = 0; e < entities; ++e) base.push_back(RandomFilter(rng));
  std::vector<EncodedDatabase> dbs(num_databases);
  for (size_t d = 0; d < num_databases; ++d) {
    // Window of 60% of the entities, shifted per database.
    const size_t window = entities * 6 / 10;
    for (size_t i = 0; i < window; ++i) {
      const size_t e = (d * entities / 4 + i) % entities;
      dbs[d].ids.push_back(1000 * (d + 1) + i);
      dbs[d].filters.push_back(Perturb(base[e], 4, rng));
    }
    // Plus unique records that should stay singletons.
    for (size_t i = 0; i < entities / 5; ++i) {
      dbs[d].ids.push_back(9000000 + 1000 * (d + 1) + i);
      dbs[d].filters.push_back(RandomFilter(rng));
    }
  }
  return dbs;
}

MultiPartyLinkageOptions BatchOptions() {
  MultiPartyLinkageOptions options;
  options.use_star_clustering = false;  // connected components, like the engine
  return options;
}

Result<MultiPartyLinkageResult> BatchLink(const std::vector<EncodedDatabase>& dbs) {
  LinkageUnitService unit("batch");
  for (size_t d = 0; d < dbs.size(); ++d) {
    Status received = unit.Receive("db-" + std::to_string(d), dbs[d]);
    if (!received.ok()) return received;
  }
  return unit.Link(BatchOptions());
}

/// Appends every database's records to `engine` in an arrival order that
/// interleaves databases by `shuffle_seed` while preserving each
/// database's internal record order (which is what defines record ids).
void AppendShuffled(OnlineLinkageEngine& engine,
                    const std::vector<EncodedDatabase>& dbs,
                    uint64_t shuffle_seed) {
  std::vector<uint32_t> arrivals;  // one entry per record: its database
  std::vector<uint32_t> db_index;
  for (size_t d = 0; d < dbs.size(); ++d) {
    db_index.push_back(engine.RegisterDatabase("db-" + std::to_string(d)));
    arrivals.insert(arrivals.end(), dbs[d].size(), static_cast<uint32_t>(d));
  }
  std::mt19937 shuffle(static_cast<uint32_t>(shuffle_seed));
  std::shuffle(arrivals.begin(), arrivals.end(), shuffle);
  std::vector<size_t> cursor(dbs.size(), 0);
  for (const uint32_t d : arrivals) {
    const size_t r = cursor[d]++;
    auto appended = engine.Append(db_index[d], dbs[d].ids[r], dbs[d].filters[r]);
    ASSERT_TRUE(appended.ok()) << appended.status().ToString();
    EXPECT_EQ(*appended, r);
  }
}

/// The tentpole guarantee: any interleaved stream order produces the exact
/// batch partition (connected components, sorted materialization).
TEST(OnlineLinkageEngineTest, ShuffledStreamMatchesBatchPartition) {
  const auto dbs = MakeDatabases(3, 60, /*seed=*/7);
  auto batch = BatchLink(dbs);
  ASSERT_TRUE(batch.ok());
  ASSERT_GT(batch->clusters.size(), 10u);

  for (const uint64_t shuffle_seed : {1u, 2u, 3u}) {
    OnlineLinkageEngine engine(kFilterBits);
    AppendShuffled(engine, dbs, shuffle_seed);
    EXPECT_EQ(engine.Clusters(), batch->clusters)
        << "stream order (seed " << shuffle_seed
        << ") changed the served partition";
    EXPECT_EQ(engine.edges(), batch->edges.size());
  }
}

/// Queries must reproduce the batch edge set for a record's content: every
/// match is an accepted batch edge and the best match resolves the
/// record's own cluster.
TEST(OnlineLinkageEngineTest, QueryResolvesTheBatchCluster) {
  const auto dbs = MakeDatabases(2, 50, /*seed=*/11);
  auto batch = BatchLink(dbs);
  ASSERT_TRUE(batch.ok());

  OnlineLinkageEngine engine(kFilterBits);
  AppendShuffled(engine, dbs, /*shuffle_seed=*/5);
  const auto clusters = engine.Clusters();
  ASSERT_EQ(clusters, batch->clusters);

  // Cluster id of each database-0 record under the canonical partition.
  std::vector<uint32_t> expected(dbs[0].size(), OnlineLinkageEngine::kNoCluster);
  for (size_t c = 0; c < clusters.size(); ++c) {
    for (const RecordRef& ref : clusters[c]) {
      if (ref.database == 0) expected[ref.record] = static_cast<uint32_t>(c);
    }
  }

  size_t clustered = 0;
  for (size_t r = 0; r < dbs[0].size(); ++r) {
    auto result = engine.Query(dbs[0].filters[r], /*exclude_database=*/0,
                               /*want_clusters=*/true, /*top_k=*/0);
    ASSERT_TRUE(result.ok());
    if (expected[r] == OnlineLinkageEngine::kNoCluster) {
      EXPECT_TRUE(result->matches.empty())
          << "singleton record " << r << " matched something";
      EXPECT_EQ(result->cluster_size, 0u);
    } else {
      ++clustered;
      ASSERT_FALSE(result->matches.empty());
      EXPECT_EQ(result->cluster_id, expected[r]);
      EXPECT_EQ(result->cluster_size, clusters[expected[r]].size());
      // Every match is cross-database and in this record's own cluster.
      for (const OnlineMatch& m : result->matches) {
        EXPECT_NE(m.database, 0u);
        const RecordRef ref{m.database, m.record};
        EXPECT_TRUE(std::find(clusters[expected[r]].begin(),
                              clusters[expected[r]].end(),
                              ref) != clusters[expected[r]].end());
      }
    }
  }
  EXPECT_GT(clustered, 10u);
}

/// The incremental index must collide exactly like the batch blocker's
/// string-keyed index at equal geometry and seed.
TEST(LshBandIndexTest, ProbeMatchesBlockerCollisions) {
  const size_t tables = 8, bits_per_key = 12;
  const uint64_t seed = 99;
  Rng data_rng(3);
  std::vector<BitVector> rows;
  for (size_t i = 0; i < 200; ++i) rows.push_back(RandomFilter(data_rng));
  // Add near-duplicates so collisions actually happen.
  for (size_t i = 0; i < 50; ++i) rows.push_back(Perturb(rows[i], 3, data_rng));

  LshBandIndex index(kFilterBits, tables, bits_per_key, seed);
  for (const BitVector& row : rows) index.Append(row);

  Rng blocker_rng(seed);
  HammingLshBlocker blocker(kFilterBits, tables, bits_per_key, blocker_rng);
  const BlockIndex blocks = blocker.BuildIndex(rows);

  std::vector<uint32_t> probed;
  for (size_t i = 0; i < rows.size(); ++i) {
    // Reference collision set: union over this row's block keys.
    std::vector<uint32_t> expected;
    for (const std::string& key : blocker.Keys(rows[i])) {
      const auto it = blocks.find(key);
      if (it != blocks.end()) {
        expected.insert(expected.end(), it->second.begin(), it->second.end());
      }
    }
    std::sort(expected.begin(), expected.end());
    expected.erase(std::unique(expected.begin(), expected.end()), expected.end());

    index.Probe(rows[i], &probed);
    EXPECT_EQ(probed, expected) << "row " << i;
  }
  EXPECT_GT(index.probed_entries(), 0u);
}

/// Appending incrementally must index identically to building fresh.
TEST(LshBandIndexTest, AppendMatchesRebuild) {
  Rng rng(17);
  std::vector<BitVector> rows;
  for (size_t i = 0; i < 300; ++i) rows.push_back(RandomFilter(rng));

  LshBandIndex incremental(kFilterBits, 6, 10, 5);
  for (size_t i = 0; i < 150; ++i) incremental.Append(rows[i]);
  // Interleave probes with appends: probing must not disturb the index.
  std::vector<uint32_t> scratch;
  for (size_t i = 0; i < 150; ++i) incremental.Probe(rows[i], &scratch);
  for (size_t i = 150; i < rows.size(); ++i) incremental.Append(rows[i]);

  LshBandIndex fresh(kFilterBits, 6, 10, 5);
  for (const BitVector& row : rows) fresh.Append(row);

  ASSERT_EQ(incremental.size(), fresh.size());
  std::vector<uint32_t> a, b;
  for (const BitVector& row : rows) {
    incremental.Probe(row, &a);
    fresh.Probe(row, &b);
    EXPECT_EQ(a, b);
  }
}

/// The candidate-restricted insert must agree with the full scan whenever
/// the candidate set contains the winner, at a fraction of the
/// comparisons.
TEST(IncrementalClustererTest, RestrictedInsertMatchesFullScan) {
  Rng rng(23);
  std::vector<BitVector> encodings;
  for (size_t i = 0; i < 40; ++i) encodings.push_back(RandomFilter(rng));
  for (size_t i = 0; i < 40; ++i) encodings.push_back(Perturb(encodings[i], 4, rng));

  const auto similarity = [](const BitVector& a, const BitVector& b) {
    return DiceSimilarity(a, b);
  };

  IncrementalClusterer full(0.8, similarity);
  std::vector<size_t> assigned;
  for (size_t i = 0; i < encodings.size(); ++i) {
    assigned.push_back(
        full.Insert(RecordRef{0, static_cast<uint32_t>(i)}, encodings[i]));
  }

  // All clusters as candidates: trivially contains the winner.
  IncrementalClusterer superset(0.8, similarity);
  for (size_t i = 0; i < encodings.size(); ++i) {
    std::vector<size_t> all(superset.clusters().size());
    std::iota(all.begin(), all.end(), 0);
    EXPECT_EQ(superset.Insert(RecordRef{0, static_cast<uint32_t>(i)},
                              encodings[i], all),
              assigned[i]);
  }
  EXPECT_EQ(superset.comparisons(), full.comparisons());

  // Only the known winner as candidate: same assignments, fewer
  // comparisons (this is the O(candidates) path the online engine uses).
  IncrementalClusterer restricted(0.8, similarity);
  for (size_t i = 0; i < encodings.size(); ++i) {
    std::vector<size_t> candidates;
    if (assigned[i] < restricted.clusters().size()) {
      candidates.push_back(assigned[i]);  // joined an existing cluster
    }
    EXPECT_EQ(restricted.Insert(RecordRef{0, static_cast<uint32_t>(i)},
                                encodings[i], candidates),
              assigned[i]);
  }
  EXPECT_EQ(restricted.clusters(), full.clusters());
  EXPECT_LT(restricted.comparisons(), full.comparisons());

  // Out-of-range and duplicate candidates are tolerated.
  IncrementalClusterer messy(0.8, similarity);
  EXPECT_EQ(messy.Insert(RecordRef{0, 0}, encodings[0],
                         std::vector<size_t>{7, 7, 123456}),
            0u);
}

/// TSan-scoped: concurrent appends (different databases) and queries
/// (shared-lock reads and cluster-resolving exclusive reads) must be
/// race-free, and the final partition must equal a batch re-link of
/// whatever arrived.
TEST(OnlineLinkageEngineTest, ConcurrentAppendsAndQueriesAreSafe) {
  const auto dbs = MakeDatabases(2, 40, /*seed=*/31);
  OnlineLinkageEngine engine(kFilterBits);
  const uint32_t a = engine.RegisterDatabase("db-0");
  const uint32_t b = engine.RegisterDatabase("db-1");

  std::thread append_a([&] {
    for (size_t r = 0; r < dbs[0].size(); ++r) {
      ASSERT_TRUE(engine.Append(a, dbs[0].ids[r], dbs[0].filters[r]).ok());
    }
  });
  std::thread append_b([&] {
    for (size_t r = 0; r < dbs[1].size(); ++r) {
      ASSERT_TRUE(engine.Append(b, dbs[1].ids[r], dbs[1].filters[r]).ok());
    }
  });
  std::thread query_fast([&] {
    for (size_t r = 0; r < dbs[0].size(); ++r) {
      ASSERT_TRUE(engine
                      .Query(dbs[0].filters[r], a, /*want_clusters=*/false,
                             /*top_k=*/4)
                      .ok());
    }
  });
  std::thread query_clustered([&] {
    for (size_t r = 0; r < dbs[1].size(); ++r) {
      ASSERT_TRUE(engine
                      .Query(dbs[1].filters[r], b, /*want_clusters=*/true,
                             /*top_k=*/0)
                      .ok());
    }
  });
  append_a.join();
  append_b.join();
  query_fast.join();
  query_clustered.join();

  auto batch = BatchLink(dbs);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(engine.Clusters(), batch->clusters);
}

/// End-to-end protocol v4: an online daemon absorbs one bulk shipment,
/// accepts cursored appends idempotently, and answers link queries that
/// agree record-for-record with a local engine over the same data.
TEST(OnlineServiceTest, AppendAndQueryRoundtrip) {
  const auto dbs = MakeDatabases(2, 40, /*seed=*/43);

  LinkageUnitServerConfig config;
  config.name = "online-lu";
  config.online_mode = true;
  config.expected_owners = 2;
  config.io_timeout_ms = 10000;
  LinkageUnitServer server(config);
  ASSERT_TRUE(server.Start().ok());

  // Owner A bulk-ships through the ordinary shipment path (no results
  // frame in online mode: return at the completion ack).
  {
    RemoteOwnerClientConfig owner_config;
    owner_config.port = server.port();
    owner_config.wait_for_results = false;
    RemoteOwnerClient owner(owner_config);
    auto shipped = owner.ShipAndAwait("db-0", dbs[0]);
    ASSERT_TRUE(shipped.ok()) << shipped.status().ToString();

    // Re-running the whole bulk append (a fresh hello session, so chunk
    // idempotency cannot apply) is a retransmit of the party's prefix:
    // the index must not grow. Verified below via index_size.
    RemoteOwnerClient again(owner_config);
    auto reshipped = again.ShipAndAwait("db-0", dbs[0]);
    ASSERT_TRUE(reshipped.ok()) << reshipped.status().ToString();
  }

  // Owner B appends over the v4 session, in two cursored batches.
  const EncodedShard b_shard = ShardFromEncodedDatabase(dbs[1]);
  OnlineLinkClientConfig client_config;
  client_config.port = server.port();
  OnlineLinkClient client(client_config);
  ASSERT_TRUE(client.Connect("db-1", kFilterBits).ok());
  const size_t half = b_shard.size() / 2;
  auto first = client.AppendRows(b_shard, 0, half);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(*first, half);
  auto second = client.AppendRows(b_shard, half, b_shard.size());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, b_shard.size());

  // A retransmit of an already-applied batch is skipped idempotently: the
  // cursor comes back unchanged and no records are duplicated.
  OnlineLinkClient replayer(client_config);
  ASSERT_TRUE(replayer.Connect("db-1", kFilterBits).ok());
  auto replay = replayer.AppendRows(b_shard, 0, half);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(*replay, b_shard.size());

  // Local reference engine over the same data, same defaults.
  OnlineLinkageEngine reference(kFilterBits);
  const uint32_t ra = reference.RegisterDatabase("db-0");
  const uint32_t rb = reference.RegisterDatabase("db-1");
  for (size_t r = 0; r < dbs[0].size(); ++r) {
    ASSERT_TRUE(reference.Append(ra, dbs[0].ids[r], dbs[0].filters[r]).ok());
  }
  for (size_t r = 0; r < dbs[1].size(); ++r) {
    ASSERT_TRUE(reference.Append(rb, dbs[1].ids[r], dbs[1].filters[r]).ok());
  }

  // Queries as db-1 (own matches suppressed) agree with the reference.
  auto result = client.QueryRows(b_shard, 0, b_shard.size(),
                                 /*want_clusters=*/true, /*top_k=*/0);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->records.size(), b_shard.size());
  EXPECT_EQ(result->index_size, reference.size());
  size_t matched = 0;
  for (size_t r = 0; r < b_shard.size(); ++r) {
    auto expected = reference.Query(dbs[1].filters[r], rb,
                                    /*want_clusters=*/true, /*top_k=*/0);
    ASSERT_TRUE(expected.ok());
    const QueryRecordResult& got = result->records[r];
    EXPECT_EQ(got.id, dbs[1].ids[r]);
    EXPECT_EQ(got.cluster_id, expected->cluster_id);
    EXPECT_EQ(got.cluster_size, expected->cluster_size);
    EXPECT_EQ(got.candidates, expected->candidates);
    ASSERT_EQ(got.matches.size(), expected->matches.size());
    for (size_t m = 0; m < got.matches.size(); ++m) {
      EXPECT_EQ(got.matches[m].database, expected->matches[m].database);
      EXPECT_EQ(got.matches[m].record, expected->matches[m].record);
      EXPECT_EQ(got.matches[m].id, expected->matches[m].id);
      EXPECT_DOUBLE_EQ(got.matches[m].score, expected->matches[m].score);
    }
    if (!got.matches.empty()) ++matched;
  }
  EXPECT_GT(matched, 10u);

  // Hang up before stopping so the serve loops see EOF instead of sitting
  // out their read timeout.
  client.Close();
  replayer.Close();
  server.Stop();
}

/// A batch daemon must keep refusing zero-record hellos (the query-only
/// handshake is an online-mode feature).
TEST(OnlineServiceTest, BatchDaemonRejectsQueryOnlyHello) {
  LinkageUnitServerConfig config;
  config.name = "batch-lu";
  config.expected_owners = 2;
  LinkageUnitServer server(config);
  ASSERT_TRUE(server.Start().ok());

  OnlineLinkClientConfig client_config;
  client_config.port = server.port();
  client_config.retry.max_attempts = 1;
  OnlineLinkClient client(client_config);
  const Status connected = client.Connect("probe", kFilterBits);
  EXPECT_FALSE(connected.ok());
  server.Stop();
}

}  // namespace
}  // namespace pprl
