#include "filtering/ppjoin.h"

#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "common/random.h"
#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

TEST(DiceJaccardThresholdTest, Conversion) {
  EXPECT_NEAR(DiceToJaccardThreshold(0.8), 0.8 / 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(DiceToJaccardThreshold(1.0), 1.0);
  EXPECT_DOUBLE_EQ(DiceToJaccardThreshold(2.0), 1.0);
}

TEST(LengthBoundsTest, Formula) {
  const auto bounds = JaccardLengthBounds(100, 0.5);
  EXPECT_EQ(bounds.min_count, 50u);
  EXPECT_EQ(bounds.max_count, 200u);
  const auto all = JaccardLengthBounds(100, 0.0);
  EXPECT_EQ(all.min_count, 0u);
}

/// Oracle check: PPJoin returns exactly the pairs a brute-force Dice scan
/// finds at the same threshold — the filters must be lossless.
TEST(PpjoinTest, MatchesBruteForce) {
  Rng rng(3);
  const size_t l = 300;
  const size_t n = 80;
  auto random_filters = [&](size_t count) {
    std::vector<BitVector> filters;
    for (size_t i = 0; i < count; ++i) {
      BitVector f(l);
      const double density = 0.05 + rng.NextDouble() * 0.2;
      for (size_t j = 0; j < l; ++j) {
        if (rng.NextBool(density)) f.Set(j);
      }
      filters.push_back(std::move(f));
    }
    return filters;
  };
  // Include some near-duplicates so matches exist.
  std::vector<BitVector> b_filters = random_filters(n);
  std::vector<BitVector> a_filters = random_filters(n / 2);
  for (size_t i = 0; i < 20; ++i) {
    BitVector copy = b_filters[i];
    if (i % 2 == 0) copy.Flip(i);  // near-duplicate
    a_filters.push_back(std::move(copy));
  }

  for (double threshold : {0.6, 0.8, 0.95}) {
    const PpjoinIndex index(b_filters, threshold);
    const auto joined = index.Join(a_filters);
    std::set<std::pair<uint32_t, uint32_t>> ppjoin_pairs;
    for (const auto& m : joined) ppjoin_pairs.insert({m.a, m.b});

    std::set<std::pair<uint32_t, uint32_t>> brute_pairs;
    for (uint32_t i = 0; i < a_filters.size(); ++i) {
      for (uint32_t j = 0; j < b_filters.size(); ++j) {
        if (a_filters[i].Count() == 0 && b_filters[j].Count() == 0) continue;
        if (DiceSimilarity(a_filters[i], b_filters[j]) + 1e-12 >= threshold) {
          brute_pairs.insert({i, j});
        }
      }
    }
    EXPECT_EQ(ppjoin_pairs, brute_pairs) << "threshold " << threshold;
  }
}

TEST(PpjoinTest, ReportsDiceScores) {
  const BloomFilterEncoder encoder({400, 15, BloomHashScheme::kDoubleHashing, ""});
  const std::vector<BitVector> b = {encoder.EncodeString("smith"),
                                    encoder.EncodeString("jones")};
  const std::vector<BitVector> a = {encoder.EncodeString("smith")};
  const PpjoinIndex index(b, 0.9);
  const auto matches = index.Join(a);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].b, 0u);
  EXPECT_DOUBLE_EQ(matches[0].dice, 1.0);
}

TEST(PpjoinTest, FiltersActuallyPrune) {
  Rng rng(7);
  const size_t l = 500;
  std::vector<BitVector> filters;
  for (size_t i = 0; i < 200; ++i) {
    BitVector f(l);
    for (size_t j = 0; j < l; ++j) {
      if (rng.NextBool(0.1)) f.Set(j);
    }
    filters.push_back(std::move(f));
  }
  const PpjoinIndex index(filters, 0.9);
  index.Join(filters);
  const auto& stats = index.last_stats();
  // Verified candidates must be far fewer than the 200*200 cross product.
  EXPECT_LT(stats.verified, 10000u);
  EXPECT_GE(stats.matches, 200u);  // every filter matches itself
}

TEST(PpjoinTest, EmptyInputs) {
  const PpjoinIndex index({}, 0.8);
  EXPECT_TRUE(index.Join({}).empty());
  const std::vector<BitVector> probe = {BitVector(100)};
  EXPECT_TRUE(index.Join(probe).empty());
}

class PpjoinThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(PpjoinThresholdSweep, NoFalseDismissals) {
  const double threshold = GetParam();
  const BloomFilterEncoder encoder({300, 10, BloomHashScheme::kDoubleHashing, ""});
  const std::vector<std::string> names = {"smith", "smyth", "smithe", "jones",
                                          "johnson", "jonson"};
  std::vector<BitVector> filters;
  for (const auto& n : names) filters.push_back(encoder.EncodeString(n));
  const PpjoinIndex index(filters, threshold);
  const auto matches = index.Join(filters);
  std::set<std::pair<uint32_t, uint32_t>> found;
  for (const auto& m : matches) found.insert({m.a, m.b});
  for (uint32_t i = 0; i < filters.size(); ++i) {
    for (uint32_t j = 0; j < filters.size(); ++j) {
      if (DiceSimilarity(filters[i], filters[j]) + 1e-12 >= threshold) {
        EXPECT_TRUE(found.count({i, j})) << names[i] << " vs " << names[j];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PpjoinThresholdSweep,
                         ::testing::Values(0.5, 0.7, 0.8, 0.9, 1.0));

}  // namespace
}  // namespace pprl
