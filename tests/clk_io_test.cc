#include "encoding/clk_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "encoding/bloom_filter.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

TEST(BitVectorBytesTest, RoundTrip) {
  Rng rng(1);
  for (size_t bits : {1, 7, 8, 9, 63, 64, 65, 1000}) {
    BitVector bv(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBool(0.4)) bv.Set(i);
    }
    auto restored = BitVectorFromBytes(BitVectorToBytes(bv), bits);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored.value(), bv) << bits << " bits";
  }
}

TEST(BitVectorBytesTest, LayoutIsLittleEndianPerByte) {
  BitVector bv(16);
  bv.Set(0);
  bv.Set(9);
  const auto bytes = BitVectorToBytes(bv);
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[1], 0x02);
}

TEST(BitVectorBytesTest, RejectsShortBuffer) {
  EXPECT_FALSE(BitVectorFromBytes({0xff}, 9).ok());
}

TEST(EncodedDatabaseIoTest, FileRoundTrip) {
  DataGenerator gen(GeneratorConfig{});
  const Database db = gen.GenerateClean(20);
  PipelineConfig config;
  const ClkEncoder encoder(config.bloom, PprlPipeline::DefaultFieldConfigs());
  EncodedDatabase encoded;
  encoded.filters = encoder.EncodeDatabase(db).value();
  for (const Record& r : db.records) encoded.ids.push_back(r.id);

  const std::string path = ::testing::TempDir() + "/pprl_clk_io_test.csv";
  ASSERT_TRUE(WriteEncodedDatabase(path, encoded).ok());
  auto restored = ReadEncodedDatabase(path);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), encoded.size());
  for (size_t i = 0; i < encoded.size(); ++i) {
    EXPECT_EQ(restored->ids[i], encoded.ids[i]);
    EXPECT_EQ(restored->filters[i], encoded.filters[i]);
  }
  std::remove(path.c_str());
}

TEST(EncodedDatabaseIoTest, ValidatesShape) {
  EncodedDatabase bad;
  bad.ids = {1, 2};
  bad.filters = {BitVector(8)};
  EXPECT_FALSE(WriteEncodedDatabase("/tmp/never-written.csv", bad).ok());
  EncodedDatabase mixed;
  mixed.ids = {1, 2};
  mixed.filters = {BitVector(8), BitVector(16)};
  EXPECT_FALSE(WriteEncodedDatabase("/tmp/never-written.csv", mixed).ok());
}

TEST(EncodedDatabaseIoTest, RejectsBadFiles) {
  const std::string path = ::testing::TempDir() + "/pprl_clk_io_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("id,bits,clk\n1,16,@@@@\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadEncodedDatabase(path).ok());
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("id,clk\n1,Zg==\n", f);  // missing bits column
    std::fclose(f);
  }
  EXPECT_FALSE(ReadEncodedDatabase(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pprl
