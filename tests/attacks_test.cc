#include "privacy/attacks.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/hash.h"
#include "datagen/lookup_data.h"
#include "encoding/hardening.h"
#include "encoding/slk.h"

namespace pprl {
namespace {

/// Builds a skewed population of encoded last names plus the attacker's
/// public frequency table over the same dictionary.
struct AttackScenario {
  std::vector<std::string> plaintexts;         // per record
  std::vector<int> true_indices;               // per record, index in dictionary
  std::vector<std::pair<std::string, double>> dictionary;
};

AttackScenario MakeScenario(size_t num_records, uint64_t seed) {
  AttackScenario scenario;
  const size_t dict_size = 50;
  const ZipfDistribution zipf(dict_size, 1.2);
  Rng rng(seed);
  for (size_t i = 0; i < dict_size; ++i) {
    scenario.dictionary.push_back(
        {std::string(datagen::kLastNames[i]), zipf.Pmf(i)});
  }
  for (size_t r = 0; r < num_records; ++r) {
    const size_t rank = zipf.Sample(rng);
    scenario.plaintexts.push_back(scenario.dictionary[rank].first);
    scenario.true_indices.push_back(static_cast<int>(rank));
  }
  return scenario;
}

TEST(FrequencyAlignmentAttackTest, BreaksDeterministicEncodings) {
  const AttackScenario scenario = MakeScenario(3000, 1);
  // Deterministic keyed hash (as a hashed SLK would be): equality-preserving.
  std::vector<std::string> encoded;
  for (const auto& name : scenario.plaintexts) {
    encoded.push_back(DigestToHex(HmacSha256("secret", name)));
  }
  AttackResult result = FrequencyAlignmentAttack(encoded, scenario.dictionary);
  const double success = ScoreAttack(result, scenario.true_indices);
  // The top-ranked codes align with the top dictionary entries, so a large
  // fraction of records is re-identified despite the secret key.
  EXPECT_GT(success, 0.3);
}

TEST(FrequencyAlignmentAttackTest, UniformFrequenciesResist) {
  // When every value is equally frequent there is no signal to align.
  Rng rng(2);
  std::vector<std::string> encoded;
  std::vector<int> truth;
  std::vector<std::pair<std::string, double>> dictionary;
  for (int i = 0; i < 20; ++i) {
    dictionary.push_back({"name" + std::to_string(i), 0.05});
  }
  for (int r = 0; r < 2000; ++r) {
    const int v = static_cast<int>(rng.NextUint64(20));
    encoded.push_back(DigestToHex(HmacSha256("k", dictionary[v].first)));
    truth.push_back(v);
  }
  AttackResult result = FrequencyAlignmentAttack(encoded, dictionary);
  EXPECT_LT(ScoreAttack(result, truth), 0.2);
}

TEST(BloomDictionaryAttackTest, BreaksUnkeyedEncodings) {
  const AttackScenario scenario = MakeScenario(300, 3);
  BloomFilterParams params;
  params.num_bits = 500;
  params.num_hashes = 15;
  const BloomFilterEncoder encoder(params);  // public double hashing
  std::vector<BitVector> filters;
  for (const auto& name : scenario.plaintexts) {
    filters.push_back(encoder.EncodeString(name));
  }
  std::vector<std::string> dict_values;
  for (const auto& [value, freq] : scenario.dictionary) dict_values.push_back(value);
  AttackResult result = BloomDictionaryAttack(filters, dict_values, encoder);
  // With the very encoder the victims used, re-identification is near total.
  EXPECT_GT(ScoreAttack(result, scenario.true_indices), 0.95);
}

TEST(BloomDictionaryAttackTest, KeyedEncodingDefeatsAttack) {
  const AttackScenario scenario = MakeScenario(300, 4);
  BloomFilterParams victim_params;
  victim_params.num_bits = 500;
  victim_params.num_hashes = 15;
  victim_params.scheme = BloomHashScheme::kKeyedHmac;
  victim_params.secret_key = "the-shared-secret";
  const BloomFilterEncoder victim(victim_params);
  std::vector<BitVector> filters;
  for (const auto& name : scenario.plaintexts) {
    filters.push_back(victim.EncodeString(name));
  }
  // Attacker lacks the key and must fall back to the public scheme.
  BloomFilterParams attacker_params = victim_params;
  attacker_params.scheme = BloomHashScheme::kDoubleHashing;
  attacker_params.secret_key.clear();
  const BloomFilterEncoder attacker(attacker_params);
  std::vector<std::string> dict_values;
  for (const auto& [value, freq] : scenario.dictionary) dict_values.push_back(value);
  AttackResult result = BloomDictionaryAttack(filters, dict_values, attacker);
  EXPECT_LT(ScoreAttack(result, scenario.true_indices), 0.05);
}

TEST(BloomDictionaryAttackTest, BalancingDefeatsAttack) {
  const AttackScenario scenario = MakeScenario(300, 5);
  BloomFilterParams params;
  params.num_bits = 500;
  params.num_hashes = 15;
  const BloomFilterEncoder encoder(params);
  std::vector<BitVector> filters;
  for (const auto& name : scenario.plaintexts) {
    filters.push_back(Balance(encoder.EncodeString(name), /*permutation_key=*/99));
  }
  std::vector<std::string> dict_values;
  for (const auto& [value, freq] : scenario.dictionary) dict_values.push_back(value);
  // Attacker encodes without the balancing permutation (sizes differ -> no
  // usable similarity signal).
  AttackResult result = BloomDictionaryAttack(filters, dict_values, encoder);
  EXPECT_LT(ScoreAttack(result, scenario.true_indices), 0.05);
}

TEST(BloomPatternMiningAttackTest, BeatsChanceOnPlainFilters) {
  const AttackScenario scenario = MakeScenario(2000, 6);
  BloomFilterParams params;
  params.num_bits = 1000;
  params.num_hashes = 10;
  const BloomFilterEncoder encoder(params);
  std::vector<BitVector> filters;
  for (const auto& name : scenario.plaintexts) {
    filters.push_back(encoder.EncodeString(name));
  }
  AttackResult result = BloomPatternMiningAttack(filters, scenario.dictionary);
  const double success = ScoreAttack(result, scenario.true_indices);
  // Chance would be ~ the top value's frequency (~0.2 under this Zipf);
  // pattern mining must do clearly better without ever hashing anything.
  EXPECT_GT(success, 0.3);
}

TEST(BloomPatternMiningAttackTest, BlipNoiseDegradesAttack) {
  const AttackScenario scenario = MakeScenario(2000, 7);
  BloomFilterParams params;
  params.num_bits = 1000;
  params.num_hashes = 10;
  const BloomFilterEncoder encoder(params);
  Rng noise_rng(8);
  std::vector<BitVector> plain, hardened;
  for (const auto& name : scenario.plaintexts) {
    const BitVector bf = encoder.EncodeString(name);
    plain.push_back(bf);
    hardened.push_back(Blip(bf, 0.15, noise_rng));
  }
  AttackResult on_plain = BloomPatternMiningAttack(plain, scenario.dictionary);
  AttackResult on_hard = BloomPatternMiningAttack(hardened, scenario.dictionary);
  const double plain_success = ScoreAttack(on_plain, scenario.true_indices);
  const double hard_success = ScoreAttack(on_hard, scenario.true_indices);
  EXPECT_LT(hard_success, plain_success);
}

TEST(ScoreAttackTest, HandlesEdgeCases) {
  AttackResult empty;
  EXPECT_DOUBLE_EQ(ScoreAttack(empty, {}), 0.0);
  AttackResult mismatched;
  mismatched.guesses = {1, 2};
  EXPECT_DOUBLE_EQ(ScoreAttack(mismatched, {1}), 0.0);
  AttackResult no_guess;
  no_guess.guesses = {-1, -1};
  EXPECT_DOUBLE_EQ(ScoreAttack(no_guess, {-1, -1}), 0.0);  // -1 never "correct"
}

}  // namespace
}  // namespace pprl
