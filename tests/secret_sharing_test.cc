#include "crypto/secret_sharing.h"

#include <gtest/gtest.h>

namespace pprl {
namespace {

TEST(SecretSharingTest, ReconstructionIsExact) {
  Rng rng(1);
  for (uint64_t secret : {0ull, 1ull, 123456789ull, ~0ull}) {
    const auto shares = ShareAdditive(secret, 5, rng);
    EXPECT_EQ(shares.size(), 5u);
    EXPECT_EQ(ReconstructAdditive(shares), secret);
  }
}

TEST(SecretSharingTest, SingleShareIsSecret) {
  Rng rng(2);
  const auto shares = ShareAdditive(42, 1, rng);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0], 42u);
}

TEST(SecretSharingTest, SharesLookRandom) {
  Rng rng(3);
  // The first n-1 shares are uniform; check they differ across runs.
  const auto s1 = ShareAdditive(100, 3, rng);
  const auto s2 = ShareAdditive(100, 3, rng);
  EXPECT_NE(s1[0], s2[0]);
  EXPECT_EQ(ReconstructAdditive(s1), ReconstructAdditive(s2));
}

TEST(SecureSumTest, MaskedRingComputesSum) {
  Rng rng(5);
  auto result = SecureSum({10, 20, 30, 40, 50}, SecureSumProtocol::kMaskedRing, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sum, 150u);
  EXPECT_GT(result->messages, 0u);
}

TEST(SecureSumTest, FullSharingComputesSum) {
  Rng rng(7);
  auto result = SecureSum({1, 2, 3, 4}, SecureSumProtocol::kFullSharing, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sum, 10u);
  EXPECT_EQ(result->rounds, 2u);
}

TEST(SecureSumTest, WraparoundIsModular) {
  Rng rng(9);
  auto result = SecureSum({~0ull, 2}, SecureSumProtocol::kFullSharing, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sum, 1u);  // 2^64 - 1 + 2 mod 2^64
}

TEST(SecureSumTest, NeedsTwoParties) {
  Rng rng(11);
  EXPECT_FALSE(SecureSum({5}, SecureSumProtocol::kMaskedRing, rng).ok());
  EXPECT_FALSE(SecureSum({}, SecureSumProtocol::kFullSharing, rng).ok());
}

TEST(SecureSumTest, FullSharingCostsMoreMessages) {
  Rng rng(13);
  auto ring = SecureSum({1, 2, 3, 4, 5, 6}, SecureSumProtocol::kMaskedRing, rng);
  auto full = SecureSum({1, 2, 3, 4, 5, 6}, SecureSumProtocol::kFullSharing, rng);
  ASSERT_TRUE(ring.ok() && full.ok());
  // The collusion-resistant protocol pays O(p^2) messages vs O(p).
  EXPECT_GT(full->messages, ring->messages);
  EXPECT_LT(full->rounds, ring->rounds);
}

TEST(CollusionAnalysisTest, RingBreaksWithTwoColluders) {
  EXPECT_EQ(MinColludersToBreak(SecureSumProtocol::kMaskedRing, 5), 2u);
  EXPECT_EQ(MinColludersToBreak(SecureSumProtocol::kMaskedRing, 10), 2u);
}

TEST(CollusionAnalysisTest, FullSharingNeedsAllOthers) {
  EXPECT_EQ(MinColludersToBreak(SecureSumProtocol::kFullSharing, 5), 4u);
  EXPECT_EQ(MinColludersToBreak(SecureSumProtocol::kFullSharing, 10), 9u);
}

class SecureSumPartyCountTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SecureSumPartyCountTest, BothProtocolsAgreeOnSum) {
  const size_t p = GetParam();
  Rng rng(p);
  std::vector<uint64_t> inputs(p);
  uint64_t expected = 0;
  for (size_t i = 0; i < p; ++i) {
    inputs[i] = rng.NextUint64(1000);
    expected += inputs[i];
  }
  auto ring = SecureSum(inputs, SecureSumProtocol::kMaskedRing, rng);
  auto full = SecureSum(inputs, SecureSumProtocol::kFullSharing, rng);
  ASSERT_TRUE(ring.ok() && full.ok());
  EXPECT_EQ(ring->sum, expected);
  EXPECT_EQ(full->sum, expected);
}

INSTANTIATE_TEST_SUITE_P(Parties, SecureSumPartyCountTest,
                         ::testing::Values(2, 3, 5, 8, 16));

}  // namespace
}  // namespace pprl
