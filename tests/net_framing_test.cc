#include "net/frame.h"

#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/fault_injection.h"
#include "net/transport.h"
#include "net/wire.h"
#include "service/protocol.h"

namespace pprl {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) { return bytes; }

TEST(WireTest, IntegerRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("linkage-unit");
  WireReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadString().value(), "linkage-unit");
  EXPECT_TRUE(r.exhausted());
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.PutU16(7);
  WireReader r(w.buffer());
  EXPECT_FALSE(r.ReadU32().ok());
  WireReader r2(w.buffer());
  EXPECT_TRUE(r2.ReadU16().ok());
  EXPECT_FALSE(r2.ReadU8().ok());
}

TEST(WireTest, HostileStringLengthIsBounded) {
  WireWriter w;
  w.PutU32(0xffffffffu);  // declares a 4 GiB string with no body
  WireReader r(w.buffer());
  auto s = r.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, RoundTripThroughBuffer) {
  BufferSink sink;
  FrameWriter writer(sink);
  ASSERT_TRUE(writer.WriteFrame(3, Payload({1, 2, 3, 4, 5})).ok());
  ASSERT_TRUE(writer.WriteFrame(5, {}).ok());  // zero-length payload is legal

  BufferSource source(sink.Take());
  FrameReader reader(source);
  auto first = reader.ReadFrame();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, 3);
  EXPECT_EQ(first->payload, Payload({1, 2, 3, 4, 5}));
  auto second = reader.ReadFrame();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, 5);
  EXPECT_TRUE(second->payload.empty());

  // Clean end-of-stream between frames is kNotFound, not corruption.
  auto eof = reader.ReadFrame();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
}

TEST(FrameTest, TruncatedHeaderIsError) {
  Frame frame;
  frame.type = 1;
  frame.payload = {9, 9, 9};
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  for (size_t cut = 1; cut < kFrameHeaderSize; ++cut) {
    BufferSource source(std::vector<uint8_t>(bytes.begin(),
                                             bytes.begin() + static_cast<long>(cut)));
    FrameReader reader(source);
    auto result = reader.ReadFrame();
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange) << "cut at " << cut;
  }
}

TEST(FrameTest, TruncatedPayloadIsError) {
  Frame frame;
  frame.type = 2;
  frame.payload.assign(100, 0x5a);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes.resize(bytes.size() - 40);  // lose part of the payload
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, BadMagicRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[0] = 'X';
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, WrongVersionRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[4] = kWireProtocolVersion + 1;
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  EXPECT_EQ(reader.ReadFrame().status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, NonZeroReservedRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[6] = 1;
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  EXPECT_EQ(reader.ReadFrame().status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // A 12-byte header declaring a 4 GiB payload. The reader's cap is tiny,
  // so this must fail fast without trying to resize a buffer to 4 GiB.
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  BufferSource source(std::move(bytes));
  FrameReader reader(source, /*max_payload=*/1024);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, WriterEnforcesTheCapTheReaderWould) {
  BufferSink sink;
  FrameWriter writer(sink, /*max_payload=*/16);
  std::vector<uint8_t> too_big(17, 0);
  EXPECT_EQ(writer.WriteFrame(1, too_big).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(sink.bytes().empty());  // nothing partial went out
}

/// Fuzz-style sweep: random byte strings and randomly corrupted valid
/// frames must never crash the decoder or make it allocate beyond its cap
/// — every outcome is a frame or a Status error.
TEST(FrameFuzzTest, RandomInputNeverCrashes) {
  Rng rng(1234);
  constexpr size_t kMaxPayload = 4096;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes;
    if (rng.NextBool(0.5)) {
      // Start from a valid frame, then corrupt a few bytes.
      Frame frame;
      frame.type = static_cast<uint8_t>(rng.NextUint64(8));
      frame.payload.resize(rng.NextUint64(256));
      for (auto& b : frame.payload) b = static_cast<uint8_t>(rng.NextUint64(256));
      bytes = EncodeFrame(frame);
      const size_t flips = rng.NextUint64(4);
      for (size_t f = 0; f < flips; ++f) {
        bytes[rng.NextUint64(bytes.size())] ^=
            static_cast<uint8_t>(1u << rng.NextUint64(8));
      }
      // Sometimes also truncate.
      if (rng.NextBool(0.3)) bytes.resize(rng.NextUint64(bytes.size() + 1));
    } else {
      // Pure noise.
      bytes.resize(rng.NextUint64(64));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    BufferSource source(std::move(bytes));
    FrameReader reader(source, kMaxPayload);
    // Drain the stream; each step either yields a frame (within cap) or an
    // error, and the loop always terminates.
    for (int step = 0; step < 16; ++step) {
      auto result = reader.ReadFrame();
      if (!result.ok()) break;
      EXPECT_LE(result->payload.size(), kMaxPayload);
    }
  }
}

// ---------------------------------------------------------------------------
// Real-socket robustness: timeouts and dead peers must surface as decodable
// Status errors, never as hangs.

/// A connected loopback socket pair for transport tests.
struct SocketPair {
  TcpListener listener;
  std::unique_ptr<TcpConnection> client;
  std::unique_ptr<TcpConnection> server;

  explicit SocketPair(int client_io_timeout_ms) {
    EXPECT_TRUE(listener.Listen(0, /*loopback_only=*/true).ok());
    ConnectOptions options;
    options.io_timeout_ms = client_io_timeout_ms;
    auto dialled = TcpConnection::Connect("127.0.0.1", listener.port(), options);
    EXPECT_TRUE(dialled.ok());
    client = std::move(*dialled);
    auto accepted = listener.Accept(2000);
    EXPECT_TRUE(accepted.ok());
    server = std::move(*accepted);
  }
};

TEST(TcpTransportTest, ReadTimesOutWithDecodableError) {
  SocketPair pair(/*client_io_timeout_ms=*/200);
  uint8_t buf[16];
  const auto start = std::chrono::steady_clock::now();
  auto n = pair.client->Read(buf, sizeof(buf));  // nobody ever writes
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kIoError);
  EXPECT_NE(n.status().message().find("timed out"), std::string::npos)
      << n.status().ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(5)) << "SO_RCVTIMEO did not fire";
}

TEST(TcpTransportTest, WriteTimesOutWhenPeerStopsReading) {
  SocketPair pair(/*client_io_timeout_ms=*/200);
  // The peer never reads: once both socket buffers fill, the next write
  // must expire via SO_SNDTIMEO instead of blocking forever.
  std::vector<uint8_t> block(8u << 20, 0x7f);
  Status status = Status::OK();
  for (int i = 0; i < 64 && status.ok(); ++i) {
    status = pair.client->Write(block.data(), block.size());
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("timed out"), std::string::npos)
      << status.ToString();
}

TEST(TcpTransportTest, PeerClosingMidFrameYieldsDecodableError) {
  SocketPair pair(/*client_io_timeout_ms=*/2000);
  // The peer sends a frame header promising 100 payload bytes, delivers
  // 10, and dies. The reader must report truncation, not hang or crash.
  Frame frame;
  frame.type = 3;
  frame.payload.assign(100, 0xab);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes.resize(kFrameHeaderSize + 10);
  ASSERT_TRUE(pair.server->Write(bytes.data(), bytes.size()).ok());
  pair.server->Close();

  FrameReader reader(*pair.client);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(TcpTransportTest, AcceptDistinguishesTimeoutFromTeardown) {
  TcpListener listener;
  ASSERT_TRUE(listener.Listen(0, /*loopback_only=*/true).ok());
  // A quiet listener is a timeout (keep polling)...
  auto timeout = listener.Accept(50);
  ASSERT_FALSE(timeout.ok());
  EXPECT_EQ(timeout.status().code(), StatusCode::kNotFound);
  // ...but a concurrent Close() is a teardown (stop polling), even while
  // a thread is parked inside Accept.
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    listener.Close();
  });
  auto torn = listener.Accept(5000);
  closer.join();
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.status().code(), StatusCode::kFailedPrecondition)
      << torn.status().ToString();
  // And a closed listener refuses immediately with the same code.
  EXPECT_EQ(listener.Accept(10).status().code(), StatusCode::kFailedPrecondition);
}

TEST(FaultInjectionTest, WriteBytePointCutsExactlyThere) {
  SocketPair pair(/*client_io_timeout_ms=*/2000);
  FaultSpec spec;
  spec.seed = 1;
  spec.close_after_bytes_sent = 30;
  FaultInjectingConnection faulty(*pair.client, spec);

  std::vector<uint8_t> data(100, 0x5a);
  const Status status = faulty.Write(data.data(), data.size());
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  EXPECT_NE(status.message().find("injected"), std::string::npos);
  EXPECT_EQ(faulty.faults_injected(), 1u);

  // The peer sees exactly the 30-byte prefix, then a clean end-of-stream —
  // the cut lands mid-frame at a reproducible offset.
  std::vector<uint8_t> got;
  uint8_t buf[64];
  for (;;) {
    auto n = pair.server->Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    got.insert(got.end(), buf, buf + *n);
  }
  EXPECT_EQ(got.size(), 30u);
}

// ---------------------------------------------------------------------------
// Protocol-message fuzzing: mutated and truncated v2 handshake/resume/busy
// payloads must never crash a decoder, and the shipment assembler must stay
// idempotent under duplicated, re-ordered and corrupted chunks.

TEST(ProtocolFuzzTest, HandshakeAndResumeDecodersNeverCrash) {
  Rng rng(4242);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<uint8_t> bytes;
    switch (rng.NextUint64(7)) {
      case 0: {
        HelloMessage m;
        m.protocol_version = static_cast<uint32_t>(rng.NextUint64(4));
        m.party = "owner-" + std::to_string(rng.NextUint64(10));
        m.filter_bits = static_cast<uint32_t>(rng.NextUint64(1024));
        m.record_count = static_cast<uint32_t>(rng.NextUint64(100));
        bytes = EncodeHello(m);
        break;
      }
      case 1: {
        HelloAckMessage m;
        m.protocol_version = kWireProtocolVersion;
        m.server = "lu";
        m.expected_owners = 3;
        m.session_id = rng.NextUint64(1u << 20);
        m.max_chunk_bytes = static_cast<uint32_t>(rng.NextUint64(1u << 20));
        bytes = EncodeHelloAck(m);
        break;
      }
      case 2: {
        ResumeMessage m;
        m.protocol_version = kWireProtocolVersion;
        m.party = "owner";
        m.session_id = rng.NextUint64(1u << 20);
        bytes = EncodeResume(m);
        break;
      }
      case 3: {
        ResumeAckMessage m;
        m.session_id = rng.NextUint64(1u << 20);
        m.acked_bytes = rng.NextUint64(1u << 20);
        m.shipment_complete = rng.NextBool(0.5);
        bytes = EncodeResumeAck(m);
        break;
      }
      case 4: {
        BusyMessage m;
        m.retry_after_ms = static_cast<uint32_t>(rng.NextUint64(1000));
        m.reason = "sessions";
        bytes = EncodeBusy(m);
        break;
      }
      case 5: {
        ShipmentAckMessage m;
        m.session_id = rng.NextUint64(1u << 20);
        m.acked_bytes = rng.NextUint64(1u << 20);
        m.complete = rng.NextBool(0.5);
        m.owners_shipped = 1;
        m.expected_owners = 3;
        bytes = EncodeShipmentAck(m);
        break;
      }
      default: {
        ShipmentChunkMessage m;
        m.session_id = rng.NextUint64(1u << 20);
        m.offset = rng.NextUint64(1u << 20);
        m.last = rng.NextBool(0.5);
        m.data.resize(rng.NextUint64(64));
        for (auto& b : m.data) b = static_cast<uint8_t>(rng.NextUint64(256));
        bytes = EncodeShipmentChunk(m);
        break;
      }
    }
    // Mutate: bit flips, truncation, or random extension.
    const size_t flips = rng.NextUint64(4);
    for (size_t f = 0; f < flips && !bytes.empty(); ++f) {
      bytes[rng.NextUint64(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.NextUint64(8));
    }
    if (rng.NextBool(0.3)) bytes.resize(rng.NextUint64(bytes.size() + 1));
    if (rng.NextBool(0.2)) bytes.push_back(static_cast<uint8_t>(rng.NextUint64(256)));

    // Every decoder must return a message or a Status — never crash,
    // never allocate absurdly.
    (void)DecodeHello(bytes);
    (void)DecodeHelloAck(bytes);
    (void)DecodeResume(bytes);
    (void)DecodeResumeAck(bytes);
    (void)DecodeBusy(bytes);
    (void)DecodeShipmentAck(bytes);
    (void)DecodeError(bytes);
    (void)DecodeResults(bytes);
    auto chunk = DecodeShipmentChunk(bytes);
    if (chunk.ok()) {
      EXPECT_LE(chunk->data.size(), bytes.size());
    }
  }
}

TEST(ProtocolFuzzTest, AssemblerIsIdempotentUnderDuplicatesGapsAndCorruption) {
  Rng rng(777);
  constexpr uint32_t kBits = 64;
  for (int iter = 0; iter < 100; ++iter) {
    const uint32_t records = 1 + static_cast<uint32_t>(rng.NextUint64(16));
    EncodedDatabase original;
    for (uint32_t i = 0; i < records; ++i) {
      original.ids.push_back(1000 + i);
      BitVector filter(kBits);
      for (size_t b = 0; b < kBits; ++b) {
        if (rng.NextBool(0.3)) filter.Set(b);
      }
      original.filters.push_back(std::move(filter));
    }
    auto shipment = EncodeShipment(original);
    ASSERT_TRUE(shipment.ok());
    const uint64_t total = shipment->size();

    ShipmentAssembler assembler(kBits, records);
    ASSERT_EQ(assembler.expected_bytes(), total);

    const auto make_chunk = [&](uint64_t offset, size_t len) {
      ShipmentChunkMessage chunk;
      chunk.session_id = 1;
      chunk.offset = offset;
      chunk.last = offset + len == total;
      chunk.data.assign(shipment->begin() + static_cast<ptrdiff_t>(offset),
                        shipment->begin() + static_cast<ptrdiff_t>(offset + len));
      chunk.checksum = ShipmentChunkChecksum(chunk.data.data(), chunk.data.size());
      return chunk;
    };

    int guard = 0;
    while (!assembler.complete()) {
      ASSERT_LT(++guard, 10000) << "assembler failed to converge";
      const uint64_t acked = assembler.acked_bytes();
      const uint64_t action = rng.NextUint64(5);
      if (action == 0 && acked > 0) {
        // Exact re-delivery of an already-applied span: must be a no-op.
        const uint64_t off = rng.NextUint64(acked);
        const size_t len = 1 + static_cast<size_t>(rng.NextUint64(acked - off));
        auto applied = assembler.Apply(make_chunk(off, len));
        ASSERT_TRUE(applied.ok()) << applied.status().ToString();
        EXPECT_FALSE(*applied) << "duplicate was applied";
        EXPECT_EQ(assembler.acked_bytes(), acked) << "duplicate moved the cursor";
      } else if (action == 1 && acked + 2 <= total) {
        // A gap must be rejected and leave the cursor alone.
        auto gap = make_chunk(acked + 1, static_cast<size_t>(total - acked - 1));
        auto applied = assembler.Apply(gap);
        ASSERT_FALSE(applied.ok());
        EXPECT_EQ(applied.status().code(), StatusCode::kProtocolViolation);
        EXPECT_EQ(assembler.acked_bytes(), acked);
      } else if (action == 2 && acked < total) {
        // A corrupted chunk must be rejected by its checksum.
        auto bad = make_chunk(acked, 1 + static_cast<size_t>(rng.NextUint64(
                                          std::min<uint64_t>(total - acked, 32))));
        bad.data[rng.NextUint64(bad.data.size())] ^= 0x10;  // checksum now stale
        auto applied = assembler.Apply(bad);
        ASSERT_FALSE(applied.ok());
        EXPECT_EQ(applied.status().code(), StatusCode::kIoError);
        EXPECT_EQ(assembler.acked_bytes(), acked);
      } else {
        // The correct next chunk advances the cursor by exactly its size.
        const size_t len = 1 + static_cast<size_t>(rng.NextUint64(
                                   std::min<uint64_t>(total - acked, 32)));
        auto applied = assembler.Apply(make_chunk(acked, len));
        ASSERT_TRUE(applied.ok()) << applied.status().ToString();
        EXPECT_TRUE(*applied);
        EXPECT_EQ(assembler.acked_bytes(), acked + len);
      }
    }
    // In-order completion reproduces the original shipment bit-for-bit.
    auto finished = assembler.Finish();
    ASSERT_TRUE(finished.ok()) << finished.status().ToString();
    auto reencoded = EncodeShipment(*finished);
    ASSERT_TRUE(reencoded.ok());
    EXPECT_EQ(*reencoded, *shipment);

    // Discard() frees the buffer but keeps the resume cursor answerable.
    assembler.Discard();
    EXPECT_EQ(assembler.buffered_bytes(), 0u);
    EXPECT_TRUE(assembler.complete());
    EXPECT_EQ(assembler.acked_bytes(), total);
  }
}

}  // namespace
}  // namespace pprl
