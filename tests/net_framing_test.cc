#include "net/frame.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "net/wire.h"

namespace pprl {
namespace {

std::vector<uint8_t> Payload(std::initializer_list<uint8_t> bytes) { return bytes; }

TEST(WireTest, IntegerRoundTrip) {
  WireWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutString("linkage-unit");
  WireReader r(w.buffer());
  EXPECT_EQ(r.ReadU8().value(), 0xab);
  EXPECT_EQ(r.ReadU16().value(), 0x1234);
  EXPECT_EQ(r.ReadU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.ReadString().value(), "linkage-unit");
  EXPECT_TRUE(r.exhausted());
}

TEST(WireTest, TruncatedReadsFail) {
  WireWriter w;
  w.PutU16(7);
  WireReader r(w.buffer());
  EXPECT_FALSE(r.ReadU32().ok());
  WireReader r2(w.buffer());
  EXPECT_TRUE(r2.ReadU16().ok());
  EXPECT_FALSE(r2.ReadU8().ok());
}

TEST(WireTest, HostileStringLengthIsBounded) {
  WireWriter w;
  w.PutU32(0xffffffffu);  // declares a 4 GiB string with no body
  WireReader r(w.buffer());
  auto s = r.ReadString();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, RoundTripThroughBuffer) {
  BufferSink sink;
  FrameWriter writer(sink);
  ASSERT_TRUE(writer.WriteFrame(3, Payload({1, 2, 3, 4, 5})).ok());
  ASSERT_TRUE(writer.WriteFrame(5, {}).ok());  // zero-length payload is legal

  BufferSource source(sink.Take());
  FrameReader reader(source);
  auto first = reader.ReadFrame();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, 3);
  EXPECT_EQ(first->payload, Payload({1, 2, 3, 4, 5}));
  auto second = reader.ReadFrame();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->type, 5);
  EXPECT_TRUE(second->payload.empty());

  // Clean end-of-stream between frames is kNotFound, not corruption.
  auto eof = reader.ReadFrame();
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kNotFound);
}

TEST(FrameTest, TruncatedHeaderIsError) {
  Frame frame;
  frame.type = 1;
  frame.payload = {9, 9, 9};
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  for (size_t cut = 1; cut < kFrameHeaderSize; ++cut) {
    BufferSource source(std::vector<uint8_t>(bytes.begin(),
                                             bytes.begin() + static_cast<long>(cut)));
    FrameReader reader(source);
    auto result = reader.ReadFrame();
    ASSERT_FALSE(result.ok()) << "cut at " << cut;
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange) << "cut at " << cut;
  }
}

TEST(FrameTest, TruncatedPayloadIsError) {
  Frame frame;
  frame.type = 2;
  frame.payload.assign(100, 0x5a);
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes.resize(bytes.size() - 40);  // lose part of the payload
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, BadMagicRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[0] = 'X';
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, WrongVersionRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[4] = kWireProtocolVersion + 1;
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  EXPECT_EQ(reader.ReadFrame().status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, NonZeroReservedRejected) {
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[6] = 1;
  BufferSource source(std::move(bytes));
  FrameReader reader(source);
  EXPECT_EQ(reader.ReadFrame().status().code(), StatusCode::kProtocolViolation);
}

TEST(FrameTest, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // A 12-byte header declaring a 4 GiB payload. The reader's cap is tiny,
  // so this must fail fast without trying to resize a buffer to 4 GiB.
  Frame frame;
  frame.type = 1;
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes[8] = 0xff;
  bytes[9] = 0xff;
  bytes[10] = 0xff;
  bytes[11] = 0xff;
  BufferSource source(std::move(bytes));
  FrameReader reader(source, /*max_payload=*/1024);
  auto result = reader.ReadFrame();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, WriterEnforcesTheCapTheReaderWould) {
  BufferSink sink;
  FrameWriter writer(sink, /*max_payload=*/16);
  std::vector<uint8_t> too_big(17, 0);
  EXPECT_EQ(writer.WriteFrame(1, too_big).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(sink.bytes().empty());  // nothing partial went out
}

/// Fuzz-style sweep: random byte strings and randomly corrupted valid
/// frames must never crash the decoder or make it allocate beyond its cap
/// — every outcome is a frame or a Status error.
TEST(FrameFuzzTest, RandomInputNeverCrashes) {
  Rng rng(1234);
  constexpr size_t kMaxPayload = 4096;
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<uint8_t> bytes;
    if (rng.NextBool(0.5)) {
      // Start from a valid frame, then corrupt a few bytes.
      Frame frame;
      frame.type = static_cast<uint8_t>(rng.NextUint64(8));
      frame.payload.resize(rng.NextUint64(256));
      for (auto& b : frame.payload) b = static_cast<uint8_t>(rng.NextUint64(256));
      bytes = EncodeFrame(frame);
      const size_t flips = rng.NextUint64(4);
      for (size_t f = 0; f < flips; ++f) {
        bytes[rng.NextUint64(bytes.size())] ^=
            static_cast<uint8_t>(1u << rng.NextUint64(8));
      }
      // Sometimes also truncate.
      if (rng.NextBool(0.3)) bytes.resize(rng.NextUint64(bytes.size() + 1));
    } else {
      // Pure noise.
      bytes.resize(rng.NextUint64(64));
      for (auto& b : bytes) b = static_cast<uint8_t>(rng.NextUint64(256));
    }
    BufferSource source(std::move(bytes));
    FrameReader reader(source, kMaxPayload);
    // Drain the stream; each step either yields a frame (within cap) or an
    // error, and the loop always terminates.
    for (int step = 0; step < 16; ++step) {
      auto result = reader.ReadFrame();
      if (!result.ok()) break;
      EXPECT_LE(result->payload.size(), kMaxPayload);
    }
  }
}

}  // namespace
}  // namespace pprl
