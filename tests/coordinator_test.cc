#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "service/client.h"
#include "service/coordinator.h"
#include "service/server.h"

namespace pprl {
namespace {

struct Scenario {
  std::vector<DatabaseOwner> owners;
  std::vector<std::string> names;
};

Scenario MakeScenario(size_t num_owners, size_t records) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = records;
  scenario.num_databases = num_owners;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  EXPECT_TRUE(dbs.ok());

  PipelineConfig pipeline_config;
  const ClkEncoder encoder(pipeline_config.bloom,
                           PprlPipeline::DefaultFieldConfigs());
  Scenario out;
  for (size_t d = 0; d < num_owners; ++d) {
    out.names.push_back("owner-" + std::to_string(d));
    out.owners.emplace_back(out.names.back(), (*dbs)[d]);
    EXPECT_TRUE(out.owners.back().Encode(encoder).ok());
  }
  return out;
}

/// The reference run: the same encodings linked by an in-process
/// LinkageUnitService, the path every other test in this suite trusts.
Result<MultiPartyLinkageResult> Baseline(Scenario& scenario,
                                         const MultiPartyLinkageOptions& options) {
  Channel channel;
  LinkageUnitService unit("lu");
  LocalLinkageUnitSink sink(channel, unit);
  for (DatabaseOwner& owner : scenario.owners) {
    EXPECT_TRUE(owner.ShipEncodings(sink).ok());
  }
  return unit.Link(options);
}

/// Ships every owner to `port` from staggered background threads (so
/// registration order is deterministic) and returns the summaries. With
/// `statuses_out` set, session outcomes are returned instead of asserted
/// OK — for tests where the linkage is expected to fail.
std::vector<OwnerLinkageSummary> ShipAll(Scenario& scenario, uint16_t port,
                                         const LinkageUnitServer& server,
                                         Channel* channel,
                                         std::vector<Status>* statuses_out = nullptr,
                                         RetryPolicy client_retry = RetryPolicy{}) {
  const size_t n = scenario.owners.size();
  std::vector<std::thread> sessions;
  std::vector<Status> status(n, Status::OK());
  std::vector<OwnerLinkageSummary> summaries(n);
  for (size_t d = 0; d < n; ++d) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (server.owner_order().size() < d &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(server.owner_order().size(), d) << "previous owner never registered";
    sessions.emplace_back([&scenario, &status, &summaries, channel, port, d,
                           client_retry] {
      RemoteOwnerClientConfig config;
      config.port = port;
      config.connect.io_timeout_ms = 60000;
      config.retry = client_retry;
      RemoteOwnerClient client(config, channel);
      status[d] = scenario.owners[d].ShipEncodings(client);
      if (client.summary().has_value()) summaries[d] = *client.summary();
    });
  }
  for (auto& t : sessions) t.join();
  if (statuses_out != nullptr) {
    *statuses_out = status;
    return summaries;
  }
  for (size_t d = 0; d < n; ++d) {
    EXPECT_TRUE(status[d].ok()) << scenario.names[d] << ": " << status[d].ToString();
  }
  return summaries;
}

/// Bitwise identity, not set equality: same clusters in the same order,
/// same edges in the same order with the same scores, same counters.
void ExpectBitwiseIdentical(const MultiPartyLinkageResult& got,
                            const MultiPartyLinkageResult& want) {
  EXPECT_EQ(got.clusters, want.clusters);
  ASSERT_EQ(got.edges.size(), want.edges.size());
  for (size_t i = 0; i < got.edges.size(); ++i) {
    EXPECT_EQ(got.edges[i].x, want.edges[i].x) << "edge " << i;
    EXPECT_EQ(got.edges[i].y, want.edges[i].y) << "edge " << i;
    EXPECT_EQ(got.edges[i].score, want.edges[i].score) << "edge " << i;
  }
  EXPECT_EQ(got.comparisons, want.comparisons);
  EXPECT_EQ(got.candidate_pairs, want.candidate_pairs);
  EXPECT_EQ(got.pruned_comparisons, want.pruned_comparisons);
}

std::vector<std::unique_ptr<LinkageUnitServer>> StartWorkers(size_t n,
                                                             size_t num_owners) {
  std::vector<std::unique_ptr<LinkageUnitServer>> workers;
  for (size_t w = 0; w < n; ++w) {
    LinkageUnitServerConfig config;
    config.name = "worker-" + std::to_string(w);
    config.expected_owners = num_owners;
    config.worker_mode = true;
    config.io_timeout_ms = 60000;
    workers.push_back(std::make_unique<LinkageUnitServer>(config));
    EXPECT_TRUE(workers.back()->Start().ok());
  }
  return workers;
}

CoordinatorConfig RingOf(const std::vector<std::unique_ptr<LinkageUnitServer>>& workers) {
  CoordinatorConfig config;
  for (const auto& worker : workers) {
    config.workers.push_back(WorkerEndpoint{"127.0.0.1", worker->port()});
  }
  return config;
}

/// The acceptance test of the sharded linkage unit: scattered across 1, 2
/// or 4 workers, the merged result must be bitwise-identical to the
/// in-process single-machine run — same clusters, edges, scores, and the
/// same comparison/candidate/pruned counters (the canonical-key partition
/// rule neither drops nor double-counts any pair).
TEST(CoordinatorTest, ScatterGatherIsBitwiseIdenticalAtAnyWorkerCount) {
  Scenario scenario = MakeScenario(3, 100);
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;
  auto baseline = Baseline(scenario, options);
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline->edges.size(), 20u);

  for (const size_t num_workers : {1u, 2u, 4u}) {
    auto workers = StartWorkers(num_workers, scenario.owners.size());

    LinkageUnitServerConfig server_config;
    server_config.name = "coord";
    server_config.expected_owners = scenario.owners.size();
    server_config.link_options = options;
    server_config.io_timeout_ms = 60000;
    CoordinatorServer coordinator(server_config, RingOf(workers));
    ASSERT_TRUE(coordinator.Start().ok());

    Channel owner_channel;
    const auto summaries = ShipAll(scenario, coordinator.port(),
                                   coordinator.server(), &owner_channel);
    ASSERT_TRUE(coordinator.WaitUntilDone(60000).ok());

    auto result = coordinator.server().result();
    ASSERT_TRUE(result.ok()) << num_workers << " workers";
    ExpectBitwiseIdentical(*result, *baseline);

    // Not degraded: every worker partition arrived.
    EXPECT_FALSE(coordinator.server().linkage_degraded());
    for (const auto& summary : summaries) {
      EXPECT_FALSE(summary.degraded());
      EXPECT_EQ(summary.workers_linked, num_workers);
      EXPECT_EQ(summary.workers_expected, num_workers);
      EXPECT_EQ(summary.comparisons, baseline->comparisons);
    }

    // Owner-facing byte metering stays identical to a single daemon's —
    // the scatter traffic lives on the coordinator's own worker channel.
    EXPECT_EQ(owner_channel.bytes_by_tag().at("encoded-filters"),
              coordinator.server().channel().bytes_by_tag().at("encoded-filters"));
    // Scatter re-ships every database to every worker.
    EXPECT_EQ(coordinator.worker_channel().messages_by_tag().at("encoded-filters"),
              num_workers * scenario.owners.size());
    EXPECT_GT(coordinator.worker_wire_bytes_sent(), 0u);
    EXPECT_GT(coordinator.worker_wire_bytes_received(), 0u);

    coordinator.Stop();
    for (auto& worker : workers) worker->Stop();
  }
}

/// Chaos on every link — owner connections and worker links alike — must
/// change nothing about the answer: retries and resumed sessions land the
/// exact bytes, and the merged result stays bitwise-identical.
TEST(CoordinatorTest, ChaosOnWorkerLinksPreservesParity) {
  Scenario scenario = MakeScenario(2, 80);
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;
  auto baseline = Baseline(scenario, options);
  ASSERT_TRUE(baseline.ok());

  auto workers = StartWorkers(2, scenario.owners.size());

  LinkageUnitServerConfig server_config;
  server_config.name = "coord";
  server_config.expected_owners = scenario.owners.size();
  server_config.link_options = options;
  server_config.io_timeout_ms = 60000;

  CoordinatorConfig coordinator_config = RingOf(workers);
  coordinator_config.chaos.seed = 1234;
  coordinator_config.chaos.close_rate = 0.01;
  coordinator_config.chaos.delay_rate = 0.02;
  coordinator_config.chaos.truncate_rate = 0.005;
  coordinator_config.chaos.corrupt_rate = 0.005;
  coordinator_config.retry.deadline_ms = 120000;

  CoordinatorServer coordinator(server_config, coordinator_config);
  ASSERT_TRUE(coordinator.Start().ok());

  Channel owner_channel;
  ShipAll(scenario, coordinator.port(), coordinator.server(), &owner_channel);
  ASSERT_TRUE(coordinator.WaitUntilDone(120000).ok());

  auto result = coordinator.server().result();
  ASSERT_TRUE(result.ok());
  ExpectBitwiseIdentical(*result, *baseline);
  EXPECT_FALSE(coordinator.server().linkage_degraded());

  // Metered payload parity survives chaos: the worker channel counts each
  // database's bytes once per worker, retries notwithstanding.
  EXPECT_EQ(coordinator.worker_channel().messages_by_tag().at("encoded-filters"),
            workers.size() * scenario.owners.size());

  coordinator.Stop();
  for (auto& worker : workers) worker->Stop();
}

/// A worker that dies stays dead: with the quorum armed the coordinator
/// merges the partitions it has and flags every summary as degraded; below
/// quorum the run fails outright.
TEST(CoordinatorTest, DeadWorkerDegradesWithinQuorum) {
  Scenario scenario = MakeScenario(2, 60);
  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;
  auto baseline = Baseline(scenario, options);
  ASSERT_TRUE(baseline.ok());

  auto workers = StartWorkers(2, scenario.owners.size());
  CoordinatorConfig coordinator_config = RingOf(workers);
  // Kill worker 1 before the coordinator ever dials it; its port stays in
  // the ring (the geometry must not shift or worker 0's partition would
  // be wrong).
  workers[1]->Stop();
  coordinator_config.min_worker_partitions = 1;
  coordinator_config.retry.max_attempts = 2;
  coordinator_config.retry.deadline_ms = 3000;
  coordinator_config.retry.backoff_initial_ms = 10;

  LinkageUnitServerConfig server_config;
  server_config.name = "coord";
  server_config.expected_owners = scenario.owners.size();
  server_config.link_options = options;
  server_config.io_timeout_ms = 60000;
  CoordinatorServer coordinator(server_config, coordinator_config);
  ASSERT_TRUE(coordinator.Start().ok());

  Channel owner_channel;
  const auto summaries = ShipAll(scenario, coordinator.port(),
                                 coordinator.server(), &owner_channel);
  ASSERT_TRUE(coordinator.WaitUntilDone(60000).ok());

  auto result = coordinator.server().result();
  ASSERT_TRUE(result.ok());
  // Partition 1's edges are missing — strictly fewer comparisons than the
  // full run, and at most as many edges/clusters merged.
  EXPECT_LT(result->comparisons, baseline->comparisons);
  EXPECT_LE(result->edges.size(), baseline->edges.size());

  EXPECT_TRUE(coordinator.server().linkage_degraded());
  EXPECT_EQ(coordinator.server().workers_linked(), 1u);
  EXPECT_EQ(coordinator.server().workers_expected(), 2u);
  for (const auto& summary : summaries) {
    EXPECT_TRUE(summary.degraded());
    EXPECT_EQ(summary.workers_linked, 1u);
    EXPECT_EQ(summary.workers_expected, 2u);
    // Owner quorum itself was met — degradation is the workers' doing.
    EXPECT_EQ(summary.owners_linked, summary.owners_expected);
  }

  coordinator.Stop();
  workers[0]->Stop();
}

/// Below the worker quorum the linkage fails loudly instead of returning
/// a silently incomplete result.
TEST(CoordinatorTest, BelowQuorumFailsTheRun) {
  Scenario scenario = MakeScenario(2, 40);
  auto workers = StartWorkers(1, scenario.owners.size());
  CoordinatorConfig coordinator_config = RingOf(workers);
  workers[0]->Stop();  // the only worker is gone; quorum (all) unreachable
  coordinator_config.retry.max_attempts = 2;
  coordinator_config.retry.deadline_ms = 2000;
  coordinator_config.retry.backoff_initial_ms = 10;

  LinkageUnitServerConfig server_config;
  server_config.expected_owners = scenario.owners.size();
  server_config.io_timeout_ms = 30000;
  CoordinatorServer coordinator(server_config, coordinator_config);
  ASSERT_TRUE(coordinator.Start().ok());

  Channel owner_channel;
  std::vector<Status> session_status;
  RetryPolicy client_retry;
  client_retry.max_attempts = 1;
  client_retry.deadline_ms = 10000;
  ShipAll(scenario, coordinator.port(), coordinator.server(), &owner_channel,
          &session_status, client_retry);

  const Status done = coordinator.WaitUntilDone(60000);
  EXPECT_FALSE(done.ok());
  EXPECT_FALSE(coordinator.server().result().ok());

  coordinator.Stop();
}

}  // namespace
}  // namespace pprl
