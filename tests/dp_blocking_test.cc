#include "privacy/dp_blocking.h"

#include <set>
#include <gtest/gtest.h>

namespace pprl {
namespace {

BlockIndex MakeIndex() {
  BlockIndex index;
  index["a"] = {0, 1, 2};
  index["b"] = {3};
  index["c"] = {4, 5, 6, 7, 8};
  return index;
}

TEST(DpBlockingTest, NeverRemovesRealRecords) {
  Rng rng(1);
  BlockIndex index = MakeIndex();
  const DpBlockingStats stats = PadBlocksWithDummies(index, 1.0, 1000, rng);
  EXPECT_EQ(stats.real_records, 9u);
  EXPECT_EQ(stats.blocks, 3u);
  // Every original record still present, in its block.
  EXPECT_EQ(index["a"][0], 0u);
  EXPECT_EQ(index["b"][0], 3u);
  for (uint32_t r = 0; r < 9; ++r) {
    bool found = false;
    for (const auto& [key, records] : index) {
      for (uint32_t rec : records) {
        if (rec == r) found = true;
      }
    }
    EXPECT_TRUE(found) << "record " << r;
  }
}

TEST(DpBlockingTest, DummiesComeFromReservedRange) {
  Rng rng(2);
  BlockIndex index = MakeIndex();
  const DpBlockingStats stats = PadBlocksWithDummies(index, 1.0, 1000, rng);
  size_t dummies_seen = 0;
  for (const auto& [key, records] : index) {
    for (uint32_t r : records) {
      if (r >= 1000) ++dummies_seen;
    }
  }
  EXPECT_EQ(dummies_seen, stats.dummies_added);
  EXPECT_GT(stats.dummies_added, 0u);  // offset 3 per block makes this near-sure
}

TEST(DpBlockingTest, EpsilonAccounting) {
  Rng rng(3);
  BlockIndex index = MakeIndex();
  const DpBlockingStats stats = PadBlocksWithDummies(index, 0.5, 1000, rng);
  EXPECT_DOUBLE_EQ(stats.epsilon_spent, 1.5);  // 3 blocks x 0.5
}

TEST(DpBlockingTest, SizesAreNoisy) {
  // Across many runs, observed block sizes for the same true size vary.
  std::set<size_t> observed;
  for (uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    BlockIndex index;
    index["x"] = {0, 1, 2, 3};
    PadBlocksWithDummies(index, 0.8, 100, rng);
    observed.insert(index["x"].size());
  }
  EXPECT_GT(observed.size(), 2u);
  for (size_t size : observed) EXPECT_GE(size, 4u);  // truncation never drops reals
}

TEST(MakeDummyFiltersTest, ShapeAndWeight) {
  Rng rng(5);
  const auto dummies = MakeDummyFilters(20, 500, 0.2, rng);
  ASSERT_EQ(dummies.size(), 20u);
  for (const auto& f : dummies) {
    EXPECT_EQ(f.size(), 500u);
    EXPECT_GT(f.Count(), 50u);
    EXPECT_LT(f.Count(), 160u);
  }
  // Dummies are mutually dissimilar (uniform random bits).
  EXPECT_LT(static_cast<double>(dummies[0].AndCount(dummies[1])) /
                static_cast<double>(dummies[0].OrCount(dummies[1])),
            0.3);
}

}  // namespace
}  // namespace pprl
