#include "io/wal.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitvector.h"
#include "common/random.h"
#include "encoding/clk_io.h"

namespace pprl {
namespace io {
namespace {

constexpr size_t kFilterBits = 128;

std::vector<uint8_t> Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void Dump(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

EncodedDatabase MakeRecords(size_t n, uint64_t seed) {
  Rng rng(seed);
  EncodedDatabase db;
  for (size_t i = 0; i < n; ++i) {
    BitVector bv(kFilterBits);
    for (size_t b = 0; b < kFilterBits; ++b) {
      if (rng.NextBool(0.3)) bv.Set(b);
    }
    db.ids.push_back(100 + i);
    db.filters.push_back(std::move(bv));
  }
  return db;
}

/// Writes a small segment (one hello + two append batches) and returns its
/// path. Sequences start at `start_sequence`.
std::string WriteSampleSegment(const std::string& name,
                               uint64_t start_sequence = 1) {
  const std::string path = ::testing::TempDir() + "/" + name;
  WalWriter::Options options;
  options.sync_every_ms = 0;  // sync every append: deterministic contents
  auto writer = WalWriter::Create(path, kFilterBits, start_sequence, options);
  EXPECT_TRUE(writer.ok()) << writer.status().ToString();
  const auto hello = EncodeWalHello("hospital-a");
  EXPECT_TRUE(
      (*writer)->Append(WalRecordType::kHello, hello.data(), hello.size()).ok());
  const EncodedDatabase records = MakeRecords(5, /*seed=*/7);
  for (const auto& [begin, end] : {std::pair<size_t, size_t>{0, 3}, {3, 5}}) {
    const auto batch = EncodeWalAppendBatch(0, records, begin, end);
    EXPECT_TRUE(
        (*writer)
            ->Append(WalRecordType::kAppendBatch, batch.data(), batch.size())
            .ok());
  }
  return path;
}

TEST(WalTest, RoundtripRecords) {
  const std::string path = WriteSampleSegment("wal_roundtrip.pwal");
  auto segment = ReadWalFile(path);
  ASSERT_TRUE(segment.ok()) << segment.status().ToString();
  EXPECT_EQ(segment->filter_bits, kFilterBits);
  EXPECT_EQ(segment->start_sequence, 1u);
  EXPECT_EQ(segment->torn_bytes, 0u);
  ASSERT_EQ(segment->records.size(), 3u);

  EXPECT_EQ(segment->records[0].type,
            static_cast<uint32_t>(WalRecordType::kHello));
  EXPECT_EQ(segment->records[0].sequence, 1u);
  auto party = DecodeWalHello(segment->records[0].payload);
  ASSERT_TRUE(party.ok());
  EXPECT_EQ(*party, "hospital-a");

  const EncodedDatabase records = MakeRecords(5, /*seed=*/7);
  size_t cursor = 0;
  for (size_t r = 1; r < 3; ++r) {
    EXPECT_EQ(segment->records[r].type,
              static_cast<uint32_t>(WalRecordType::kAppendBatch));
    EXPECT_EQ(segment->records[r].sequence, r + 1);
    auto batch = DecodeWalAppendBatch(segment->records[r].payload);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch->database, 0u);
    for (size_t i = 0; i < batch->rows.size(); ++i, ++cursor) {
      EXPECT_EQ(batch->rows.ids[i], records.ids[cursor]);
      EXPECT_EQ(batch->rows.filters[i], records.filters[cursor]);
    }
  }
  EXPECT_EQ(cursor, 5u);
}

/// Cutting the file anywhere past the segment header must read as a CLEAN
/// torn tail: the fully contained prefix of records, the ragged remainder
/// reported as dropped bytes — never an error, never a partial record.
TEST(WalTest, TornTailTruncationSweep) {
  const std::string path = WriteSampleSegment("wal_torn.pwal");
  const std::vector<uint8_t> bytes = Slurp(path);
  ASSERT_GT(bytes.size(), kWalHeaderBytes);

  auto full = ReadWalFile(path);
  ASSERT_TRUE(full.ok());
  // Byte offset at which each record ends.
  std::vector<size_t> record_ends;
  for (const WalRecord& record : full->records) {
    record_ends.push_back(record.offset + kWalRecordHeaderBytes +
                          record.payload.size());
  }

  const std::string cut_path = ::testing::TempDir() + "/wal_torn_cut.pwal";
  for (size_t cut = kWalHeaderBytes; cut <= bytes.size(); ++cut) {
    Dump(cut_path, std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    auto segment = ReadWalFile(cut_path);
    ASSERT_TRUE(segment.ok())
        << "cut at " << cut << ": " << segment.status().ToString();
    size_t contained = 0;
    while (contained < record_ends.size() && record_ends[contained] <= cut) {
      ++contained;
    }
    EXPECT_EQ(segment->records.size(), contained) << "cut at " << cut;
    const size_t tail_start =
        contained == 0 ? kWalHeaderBytes : record_ends[contained - 1];
    EXPECT_EQ(segment->torn_bytes, cut - tail_start) << "cut at " << cut;
  }

  // Cutting INTO the segment header is not a torn tail: the file cannot
  // even declare its geometry.
  for (const size_t cut : {size_t{0}, size_t{4}, kWalHeaderBytes - 1}) {
    Dump(cut_path, std::vector<uint8_t>(bytes.begin(), bytes.begin() + cut));
    EXPECT_FALSE(ReadWalFile(cut_path).ok()) << "header cut at " << cut;
  }
}

/// Every single-bit flip anywhere in the file must surface as a typed
/// error (checksums catch it), never as silently different records and
/// never as a crash. The record-header checksum is what turns a flipped
/// payload length into corruption instead of a bogus "torn tail".
TEST(WalTest, BitFlipFuzzAlwaysTypedError) {
  const std::string path = WriteSampleSegment("wal_flip.pwal");
  const std::vector<uint8_t> bytes = Slurp(path);
  const std::string flip_path = ::testing::TempDir() + "/wal_flip_mut.pwal";
  Rng rng(23);
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::vector<uint8_t> mutated = bytes;
    mutated[pos] ^= static_cast<uint8_t>(1u << rng.NextUint64(8));
    Dump(flip_path, mutated);
    auto segment = ReadWalFile(flip_path);
    EXPECT_FALSE(segment.ok()) << "flip at byte " << pos << " went unnoticed";
    if (!segment.ok()) {
      // The error must name the file so an operator can act on it.
      EXPECT_NE(segment.status().ToString().find("wal_flip_mut"),
                std::string::npos)
          << segment.status().ToString();
    }
  }
}

TEST(WalTest, SequenceGapIsCorruption) {
  // Two records written through separate writers into one file cannot
  // happen through the API, so splice manually: duplicate the last record
  // of a valid file (sequence repeats = gap backwards).
  const std::string path = WriteSampleSegment("wal_gap.pwal");
  auto full = ReadWalFile(path);
  ASSERT_TRUE(full.ok());
  const WalRecord& last = full->records.back();
  std::vector<uint8_t> bytes = Slurp(path);
  bytes.insert(bytes.end(), bytes.begin() + last.offset, bytes.end());
  const std::string gap_path = ::testing::TempDir() + "/wal_gap_mut.pwal";
  Dump(gap_path, bytes);
  auto segment = ReadWalFile(gap_path);
  ASSERT_FALSE(segment.ok());
  EXPECT_EQ(segment.status().code(), StatusCode::kProtocolViolation);
}

TEST(WalTest, GroupCommitSyncCadence) {
  // sync_every_ms <= 0: every append fsyncs.
  {
    const std::string path = ::testing::TempDir() + "/wal_sync_each.pwal";
    WalWriter::Options options;
    options.sync_every_ms = 0;
    auto writer = WalWriter::Create(path, kFilterBits, 1, options);
    ASSERT_TRUE(writer.ok());
    const auto hello = EncodeWalHello("p");
    const uint64_t before = (*writer)->syncs();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)
                      ->Append(WalRecordType::kHello, hello.data(), hello.size())
                      .ok());
    }
    EXPECT_EQ((*writer)->syncs() - before, 10u);
  }
  // A wide group-commit window: the 10 appends land well inside it, so at
  // most the first can trigger a sync.
  {
    const std::string path = ::testing::TempDir() + "/wal_sync_grouped.pwal";
    WalWriter::Options options;
    options.sync_every_ms = 60000;
    auto writer = WalWriter::Create(path, kFilterBits, 1, options);
    ASSERT_TRUE(writer.ok());
    const auto hello = EncodeWalHello("p");
    const uint64_t before = (*writer)->syncs();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)
                      ->Append(WalRecordType::kHello, hello.data(), hello.size())
                      .ok());
    }
    EXPECT_LE((*writer)->syncs() - before, 1u);
    // Sync() on demand still works and counts.
    ASSERT_TRUE((*writer)->Sync().ok());
  }
}

TEST(WalTest, HostilePayloadCodecs) {
  // Hello: empty and oversized names.
  EXPECT_FALSE(DecodeWalHello({}).ok());
  auto hello = EncodeWalHello("party");
  hello.resize(hello.size() - 1);  // length prefix now lies
  EXPECT_FALSE(DecodeWalHello(hello).ok());

  const EncodedDatabase records = MakeRecords(3, /*seed=*/5);
  const auto batch = EncodeWalAppendBatch(1, records, 0, 3);
  ASSERT_TRUE(DecodeWalAppendBatch(batch).ok());

  // Truncations at every length must fail cleanly, never read past end.
  for (size_t cut = 0; cut < batch.size(); ++cut) {
    const std::vector<uint8_t> prefix(batch.begin(), batch.begin() + cut);
    EXPECT_FALSE(DecodeWalAppendBatch(prefix).ok()) << "cut " << cut;
  }
  // Trailing garbage is a length mismatch, not ignorable padding.
  auto padded = batch;
  padded.push_back(0);
  EXPECT_FALSE(DecodeWalAppendBatch(padded).ok());
}

TEST(WalTest, ListSegmentsSortsAndIgnoresForeignFiles) {
  const std::string dir = ::testing::TempDir() + "/wal_list_dir";
  std::remove((dir + "/" + "x").c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0755) == 0 || errno == EEXIST, true);
  // Three real segments out of order, plus files the listing must skip.
  for (const uint64_t seq : {uint64_t{900}, uint64_t{7}, uint64_t{30}}) {
    WalWriter::Options options;
    auto writer =
        WalWriter::Create(WalSegmentPath(dir, seq), kFilterBits, seq, options);
    ASSERT_TRUE(writer.ok());
  }
  Dump(dir + "/notes.txt", {1, 2, 3});
  Dump(dir + "/wal-junk.pwal", {1, 2, 3});
  auto segments = ListWalSegments(dir);
  ASSERT_TRUE(segments.ok());
  ASSERT_EQ(segments->size(), 3u);
  EXPECT_EQ((*segments)[0].first, 7u);
  EXPECT_EQ((*segments)[1].first, 30u);
  EXPECT_EQ((*segments)[2].first, 900u);

  auto missing = ListWalSegments(dir + "/does-not-exist");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->empty());
}

}  // namespace
}  // namespace io
}  // namespace pprl
