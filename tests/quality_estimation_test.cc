#include "eval/quality_estimation.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

namespace pprl {
namespace {

/// Synthetic score sample from a known mixture.
std::vector<double> MixtureSample(size_t n, double match_weight, double match_mean,
                                  double non_mean, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> scores;
  scores.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(match_weight)) {
      scores.push_back(std::clamp(rng.NextGaussian(match_mean, 0.04), 0.0, 1.0));
    } else {
      scores.push_back(std::clamp(rng.NextGaussian(non_mean, 0.08), 0.0, 1.0));
    }
  }
  return scores;
}

TEST(FitScoreMixtureTest, RecoversPlantedComponents) {
  const auto scores = MixtureSample(5000, 0.1, 0.9, 0.3, 1);
  auto model = FitScoreMixture(scores);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->match_weight, 0.1, 0.04);
  EXPECT_NEAR(model->match_mean, 0.9, 0.05);
  EXPECT_NEAR(model->non_match_mean, 0.3, 0.05);
}

TEST(FitScoreMixtureTest, PosteriorSeparates) {
  const auto scores = MixtureSample(5000, 0.1, 0.9, 0.3, 2);
  auto model = FitScoreMixture(scores);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(model->MatchPosterior(0.92), 0.9);
  EXPECT_LT(model->MatchPosterior(0.3), 0.1);
}

TEST(FitScoreMixtureTest, PrecisionRecallMonotone) {
  const auto scores = MixtureSample(4000, 0.15, 0.85, 0.25, 3);
  auto model = FitScoreMixture(scores);
  ASSERT_TRUE(model.ok());
  // Recall falls and precision (weakly) rises with the threshold.
  EXPECT_GT(model->EstimatedRecall(0.5), model->EstimatedRecall(0.9));
  EXPECT_LE(model->EstimatedPrecision(0.5), model->EstimatedPrecision(0.9) + 1e-9);
  EXPECT_GE(model->EstimatedRecall(0.0), 0.99);
}

TEST(FitScoreMixtureTest, SuggestedThresholdBetweenComponents) {
  const auto scores = MixtureSample(4000, 0.1, 0.9, 0.3, 4);
  auto model = FitScoreMixture(scores);
  ASSERT_TRUE(model.ok());
  const double t = model->SuggestThreshold();
  EXPECT_GT(t, model->non_match_mean);
  EXPECT_LT(t, model->match_mean + 0.05);
}

TEST(FitScoreMixtureTest, ValidatesInput) {
  EXPECT_FALSE(FitScoreMixture(std::vector<double>{0.5}).ok());
  EXPECT_FALSE(FitScoreMixture(std::vector<double>(100, 0.7)).ok());  // zero spread
}

/// The headline use case: estimate quality of a real pipeline run without
/// ground truth, then check the estimate against the (hidden) truth.
TEST(QualityEstimationIntegrationTest, EstimatesTrackTruth) {
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 300;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.0;
  auto dbs = gen.GenerateScenario(scenario);
  ASSERT_TRUE(dbs.ok());
  PipelineConfig config;
  // Fit over the plausible-candidate region: LSH candidates scored >= 0.5.
  // Against the full quadratic pair set the one-in-600 match bump would be
  // invisible to a two-component fit (see the estimator's documentation).
  config.blocking = BlockingScheme::kHammingLsh;
  config.match_threshold = 0.5;
  config.one_to_one = false;
  auto output = PprlPipeline(config).Link((*dbs)[0], (*dbs)[1]);
  ASSERT_TRUE(output.ok());

  auto model = FitScoreMixture(output->matches);
  ASSERT_TRUE(model.ok());

  // Truth (not available to the estimator).
  const GroundTruth truth((*dbs)[0], (*dbs)[1]);
  size_t true_in_sample = 0;
  for (const auto& p : output->matches) {
    if (truth.IsMatch(p.a, p.b)) ++true_in_sample;
  }
  const double true_prevalence = static_cast<double>(true_in_sample) /
                                 static_cast<double>(output->matches.size());
  EXPECT_NEAR(model->match_weight, true_prevalence, true_prevalence * 0.7 + 0.05);

  // The estimated precision at a sensible threshold should be in the same
  // ballpark as the measured precision.
  const double threshold = 0.8;
  std::vector<ScoredPair> accepted;
  for (const auto& p : output->matches) {
    if (p.score >= threshold) accepted.push_back(p);
  }
  const double true_precision = EvaluateMatches(accepted, truth).Precision();
  EXPECT_NEAR(model->EstimatedPrecision(threshold), true_precision, 0.25);
}

}  // namespace
}  // namespace pprl
