#include "privacy/accountability.h"

#include <gtest/gtest.h>

#include "encoding/bloom_filter.h"
#include "similarity/similarity.h"

namespace pprl {
namespace {

PairSimilarityFunction Dice() {
  return [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); };
}

struct AuditFixture {
  std::vector<BitVector> fa;
  std::vector<BitVector> fb;
  std::vector<CandidatePair> candidates;
  std::vector<ComparisonRecord> honest;
};

AuditFixture MakeSetup() {
  AuditFixture s;
  const BloomFilterEncoder encoder({300, 10, BloomHashScheme::kDoubleHashing, ""});
  const std::vector<std::string> names = {"smith", "jones", "garcia", "chen", "patel"};
  for (const auto& n : names) {
    s.fa.push_back(encoder.EncodeString(n));
    s.fb.push_back(encoder.EncodeString(n + "x"));
  }
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = 0; j < 5; ++j) {
      s.candidates.push_back({i, j});
      s.honest.push_back({i, j, DiceSimilarity(s.fa[i], s.fb[j])});
    }
  }
  return s;
}

TEST(CommitmentTest, DeterministicAndOrderSensitive) {
  const AuditFixture s = MakeSetup();
  const auto c1 = CommitToComparisons(s.honest);
  const auto c2 = CommitToComparisons(s.honest);
  EXPECT_EQ(c1.digest_hex, c2.digest_hex);
  EXPECT_EQ(c1.num_records, 25u);
  auto reordered = s.honest;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(CommitToComparisons(reordered).digest_hex, c1.digest_hex);
}

TEST(CommitmentTest, SensitiveToScores) {
  const AuditFixture s = MakeSetup();
  auto tampered = s.honest;
  tampered[3].score += 0.001;
  EXPECT_NE(CommitToComparisons(tampered).digest_hex,
            CommitToComparisons(s.honest).digest_hex);
}

TEST(AuditTest, HonestLuPasses) {
  const AuditFixture s = MakeSetup();
  const auto commitment = CommitToComparisons(s.honest);
  Rng rng(1);
  auto report = AuditComparisons(commitment, s.honest, s.candidates, s.fa, s.fb,
                                 Dice(), 20, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Passed());
  EXPECT_TRUE(report->commitment_valid);
  EXPECT_EQ(report->mismatches, 0u);
  EXPECT_EQ(report->missing_pairs, 0u);
}

TEST(AuditTest, TamperedScoresCaught) {
  const AuditFixture s = MakeSetup();
  auto lying = s.honest;
  for (size_t i = 0; i < lying.size(); i += 2) lying[i].score = 0.0;  // falsify half
  // The LU commits to the *lie*, so the chain verifies — the sampling must
  // catch the score deviations.
  const auto commitment = CommitToComparisons(lying);
  Rng rng(2);
  auto report =
      AuditComparisons(commitment, lying, s.candidates, s.fa, s.fb, Dice(), 25, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->commitment_valid);
  EXPECT_GT(report->mismatches, 0u);
  EXPECT_FALSE(report->Passed());
}

TEST(AuditTest, SkippedComparisonsCaught) {
  const AuditFixture s = MakeSetup();
  std::vector<ComparisonRecord> lazy(s.honest.begin(), s.honest.begin() + 10);
  const auto commitment = CommitToComparisons(lazy);
  Rng rng(3);
  auto report =
      AuditComparisons(commitment, lazy, s.candidates, s.fa, s.fb, Dice(), 25, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->missing_pairs, 0u);
  EXPECT_FALSE(report->Passed());
}

TEST(AuditTest, SwappedCommitmentDetected) {
  const AuditFixture s = MakeSetup();
  auto altered = s.honest;
  altered[0].score = 0.42;
  // LU publishes a commitment to the honest run but reports altered records.
  const auto commitment = CommitToComparisons(s.honest);
  Rng rng(4);
  auto report =
      AuditComparisons(commitment, altered, s.candidates, s.fa, s.fb, Dice(), 5, rng);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->commitment_valid);
  EXPECT_FALSE(report->Passed());
}

TEST(AuditTest, RejectsOutOfRangeCandidates) {
  const AuditFixture s = MakeSetup();
  const auto commitment = CommitToComparisons(s.honest);
  Rng rng(5);
  const std::vector<CandidatePair> bad = {{99, 0}};
  EXPECT_FALSE(
      AuditComparisons(commitment, s.honest, bad, s.fa, s.fb, Dice(), 5, rng).ok());
}

TEST(DetectionProbabilityTest, Formula) {
  EXPECT_DOUBLE_EQ(DetectionProbability(0.0, 100), 0.0);
  EXPECT_DOUBLE_EQ(DetectionProbability(1.0, 1), 1.0);
  EXPECT_NEAR(DetectionProbability(0.1, 22), 1 - std::pow(0.9, 22), 1e-12);
  // The deterrence headline: 5% cheating, 60 samples -> caught with ~95%.
  EXPECT_GT(DetectionProbability(0.05, 60), 0.95);
}

}  // namespace
}  // namespace pprl
