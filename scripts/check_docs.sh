#!/usr/bin/env bash
# Stale-docs linter: the operator documentation must match the code.
#
#  1. Metric parity — every pprl_* metric registered in src/ is documented
#     in docs/OBSERVABILITY.md, and every pprl_* metric the doc mentions
#     exists in src/ (so the doc can't rot in either direction).
#  2. Flag parity — every --flag documented inside the marker-delimited
#     sections of docs/OPERATIONS.md appears in the binary's --help
#     output (binaries from $BUILD_DIR, default ./build).
#
# Run from the repo root: scripts/check_docs.sh [build_dir]
# Wired into scripts/check.sh; CI fails on any drift.
set -u
cd "$(dirname "$0")/.."
BUILD_DIR="${1:-${BUILD_DIR:-build}}"

python3 - "$BUILD_DIR" <<'EOF'
import pathlib, re, subprocess, sys

build_dir = sys.argv[1]
root = pathlib.Path(".")
fail = []

# ---- 1. Metric parity: src/ <-> docs/OBSERVABILITY.md ----------------
src_metrics = set()
for path in root.glob("src/**/*"):
    if path.suffix not in (".cc", ".h"):
        continue
    src_metrics.update(re.findall(r'"(pprl_[a-z0-9_]+)"', path.read_text()))

obs = (root / "docs/OBSERVABILITY.md").read_text()
doc_tokens = set(re.findall(r"\bpprl_[a-z0-9_]+\b", obs))

# Binary names and the "Adding a metric" how-to example are not metrics;
# Prometheus exposition suffixes map back to their base instrument.
ALLOW = {"pprl_linkd", "pprl_cli", "pprl_clk", "pprl_mymodule_pairs_total",
         "pprl_metrics_json"}  # the last: a section anchor, not a metric
def base(token):
    return re.sub(r"_(bucket|count|sum)$", "", token)

doc_metrics = {base(t) for t in doc_tokens if t not in ALLOW}

for name in sorted(src_metrics - doc_metrics):
    fail.append(f"metric registered in src/ but undocumented in "
                f"docs/OBSERVABILITY.md: {name}")
for name in sorted(doc_metrics - src_metrics):
    fail.append(f"metric documented in docs/OBSERVABILITY.md but not "
                f"registered anywhere in src/: {name}")

# ---- 2. Flag parity: docs/OPERATIONS.md <-> binary --help ------------
ops = (root / "docs/OPERATIONS.md").read_text()
sections = re.findall(
    r"<!-- flags:([a-z_]+):start -->(.*?)<!-- flags:\1:end -->", ops, re.S)
if not sections:
    fail.append("docs/OPERATIONS.md: no <!-- flags:NAME:start/end --> "
                "sections found — markers renamed or deleted?")

for binary, body in sections:
    exe = pathlib.Path(build_dir) / "examples" / binary
    if not exe.exists():
        fail.append(f"{binary}: {exe} not built — build first or pass the "
                    f"build dir (scripts/check_docs.sh <build_dir>)")
        continue
    try:
        proc = subprocess.run([str(exe), "--help"], capture_output=True,
                              text=True, timeout=30)
    except Exception as e:  # noqa: BLE001 — report, don't crash the lint
        fail.append(f"{binary} --help failed to run: {e}")
        continue
    help_text = proc.stdout + proc.stderr
    if proc.returncode != 0:
        fail.append(f"{binary} --help exited {proc.returncode} (expected 0)")
    documented = set(re.findall(r"(?<!-)--[a-z][a-z-]*", body))
    for flag in sorted(documented):
        if flag not in help_text:
            fail.append(f"{binary}: flag {flag} documented in "
                        f"docs/OPERATIONS.md but absent from --help")
    # And the reverse: --help must not grow flags the doc doesn't cover.
    advertised = set(re.findall(r"(?<!-)--[a-z][a-z-]*", help_text))
    for flag in sorted(advertised - documented):
        fail.append(f"{binary}: flag {flag} in --help but undocumented in "
                    f"docs/OPERATIONS.md flag reference")

if fail:
    print("check_docs: FAIL")
    for line in fail:
        print(f"  - {line}")
    sys.exit(1)
print(f"check_docs: OK ({len(src_metrics)} metrics, "
      f"{len(sections)} flag sections in sync)")
EOF
