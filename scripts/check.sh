#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree as Debug with ASan+UBSan
# (PPRL_SANITIZE=ON) into build-asan/ and runs the full test suite.
# The networking/service code in particular must stay sanitizer-clean.
#
# usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPPRL_SANITIZE=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes ctest fail loudly on the first sanitizer report.
export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
echo "check.sh: all tests passed under ASan+UBSan"

# ThreadSanitizer gate for the concurrent paths: the parallel comparison
# engine, the batch kernels it chunks across the pool, the pool itself,
# and the lock-free metrics registry they all report into. Scoped to
# those tests — TSan slows everything ~10x and the rest of the suite is
# single-threaded.
TSAN_BUILD_DIR=build-tsan
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPPRL_SANITIZE=thread
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
  --target comparison_test compare_kernels_test thread_pool_test metrics_test

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "$(nproc)" \
  -R '^(comparison_test|compare_kernels_test|thread_pool_test|metrics_test)$'
echo "check.sh: concurrency tests passed under TSan"
