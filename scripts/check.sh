#!/usr/bin/env bash
# Sanitizer gate: builds the whole tree as Debug with ASan+UBSan
# (PPRL_SANITIZE=ON) into build-asan/ and runs the full test suite.
# The networking/service code in particular must stay sanitizer-clean.
#
# usage: scripts/check.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-asan
cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPPRL_SANITIZE=ON
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes ctest fail loudly on the first sanitizer report.
export ASAN_OPTIONS=${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}
export UBSAN_OPTIONS=${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
echo "check.sh: all tests passed under ASan+UBSan"

# ThreadSanitizer gate for the concurrent paths: the parallel comparison
# engine, the batch kernels it chunks across the scheduler, the
# work-stealing scheduler itself, the streaming parallel pipeline, and
# the lock-free metrics registry they all report into. Scoped to those
# tests — TSan slows everything ~10x and the rest of the suite is
# single-threaded.
TSAN_BUILD_DIR=build-tsan
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=Debug \
  -DPPRL_SANITIZE=thread
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" \
  --target comparison_test compare_kernels_test thread_pool_test \
           parallel_pipeline_test metrics_test online_linkage_test \
           wal_test recovery_test

export TSAN_OPTIONS=${TSAN_OPTIONS:-halt_on_error=1}
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "$(nproc)" \
  -R '^(comparison_test|compare_kernels_test|thread_pool_test|parallel_pipeline_test|metrics_test|online_linkage_test|wal_test|recovery_test)$'
echo "check.sh: concurrency tests passed under TSan"

# Chaos gate: the fault-tolerant linkage service under TSan. Seeded fault
# injection forces connection loss, resumes and shedding across the
# daemon's accept/session/sweeper threads — exactly the interleavings
# TSan exists to check. Budgeted at 60 s so a deadlock in the resume or
# quorum path fails the gate instead of hanging it.
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" --target service_chaos_test
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure --timeout 60 \
  -R '^service_chaos_test$'
echo "check.sh: chaos suite passed under TSan"

# Scaling gate: the streaming parallel path must actually scale, and the
# gate prints the measured numbers so a failure is diagnosable from the
# log. Run the committed benchmark's parallel sweep from an optimized
# build and check, at 500 bits:
#   * >= 4 cores: stream-t4 >= 2.5x stream-t1 (the cache-blocked path's
#     floor; the old shard scheme plateaued near 1.1x), and on >= 8 cores
#     additionally stream-t8 >= stream-t4 (no inversion — more workers
#     must never make the run slower).
#   * fewer cores (including this repo's 1-core reference box, where
#     extra workers cannot speed anything up): t4 merely must not
#     collapse below 0.8x t1.
PERF_BUILD_DIR=build
cmake -B "${PERF_BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PERF_BUILD_DIR}" -j "$(nproc)" --target bench_compare_kernels
SCALING_JSON=$(mktemp /tmp/pprl-parallel-XXXX.json)
"${PERF_BUILD_DIR}"/bench/bench_compare_kernels /dev/null "${SCALING_JSON}" >/dev/null
python3 - "${SCALING_JSON}" "$(nproc)" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
cores = int(sys.argv[2])
rates = {m["threads"]: m["pairs_per_sec"] for m in data["measurements"] if m["bits"] == 500}
for t in sorted(rates):
    print(f"check.sh: stream-t{t} = {rates[t] / 1e6:.1f} Mpairs/s at 500 bits "
          f"({rates[t] / (rates[1] * t):.2f} scaling efficiency)")
ok = True
if cores >= 4:
    ratio = rates[4] / rates[1]
    print(f"check.sh: stream-t4/t1 = {ratio:.2f}x ({cores} cores, need >= 2.5x)")
    ok &= ratio >= 2.5
    if cores >= 8:
        ratio8 = rates[8] / rates[4]
        print(f"check.sh: stream-t8/t4 = {ratio8:.2f}x (need >= 1.0x, no inversion)")
        ok &= ratio8 >= 1.0
else:
    ratio = rates[4] / rates[1]
    print(f"check.sh: stream-t4/t1 = {ratio:.2f}x ({cores} cores, need >= 0.8x)")
    ok &= ratio >= 0.8
sys.exit(0 if ok else 1)
EOF
rm -f "${SCALING_JSON}"
echo "check.sh: parallel scaling gate passed"

# Ingest smoke: the I/O subsystem's two promises, on a small corpus from an
# optimized build. (1) Dialect parity — csv_stream_test runs the SIMD and
# scalar scanners against each other and the legacy parser; here it runs
# from the Release build, where the AVX2 path is actually dispatched.
# (2) Format speedup — PCLK must load encoded CLKs at >= 5x the records/s
# of the legacy text CSV reader (the committed BENCH_ingest.json holds the
# 1M-row figure; 100k keeps the gate fast). bench_ingest exits non-zero
# below 5x, and the JSON is re-checked here so the gate survives exit-code
# refactors.
cmake --build "${PERF_BUILD_DIR}" -j "$(nproc)" --target bench_ingest csv_stream_test
ctest --test-dir "${PERF_BUILD_DIR}" --output-on-failure -R '^csv_stream_test$'
INGEST_JSON=$(mktemp /tmp/pprl-ingest-XXXX.json)
"${PERF_BUILD_DIR}"/bench/bench_ingest 100000 1024 "${INGEST_JSON}" >/dev/null
python3 - "${INGEST_JSON}" <<'EOF'
import json, sys
data = json.load(open(sys.argv[1]))
rates = {m["config"]: m["records_per_sec"] for m in data["measurements"]}
ratio = rates["load-clks-pclk"] / rates["load-clks-csv-legacy"]
print(f"check.sh: PCLK/legacy-CSV load = {ratio:.1f}x records/s (need >= 5x)")
sys.exit(0 if ratio >= 5.0 else 1)
EOF
rm -f "${INGEST_JSON}"
echo "check.sh: ingest smoke passed"

# Docs freshness gate: scripts/check_docs.sh proves docs/OBSERVABILITY.md
# lists exactly the metrics the code registers (both directions) and that
# every flag documented in docs/OPERATIONS.md exists in the binaries'
# --help (and vice versa). Docs that drift from the code fail CI.
cmake --build "${PERF_BUILD_DIR}" -j "$(nproc)" --target pprl_linkd pprl_cli pprl_clk
scripts/check_docs.sh "${PERF_BUILD_DIR}"
echo "check.sh: docs lint passed"

# README smoke + sharded parity gate: the two quickstart paths from the
# README run end to end with real processes, and the sharded one — a
# coordinator scattering over two --worker daemons, with chaos injection
# on — must hand every owner byte-identical match files and print the
# same cluster/edge/comparison counts as the single daemon. This is the
# operator-visible form of the bitwise-determinism contract that
# tests/coordinator_test.cc checks in-process.
SMOKE=$(mktemp -d /tmp/pprl-smoke-XXXXXX)
LINKD="${PERF_BUILD_DIR}/examples/pprl_linkd"
CLI="${PERF_BUILD_DIR}/examples/pprl_cli"
"${CLI}" generate "${SMOKE}/a.csv" "${SMOKE}/b.csv" 400 >/dev/null
"${CLI}" encode "${SMOKE}/a.csv" "${SMOKE}/a.pclk" shared-secret >/dev/null
"${CLI}" encode "${SMOKE}/b.csv" "${SMOKE}/b.pclk" shared-secret >/dev/null

# Owner registration order IS the database-index order that the
# canonical cluster ids depend on: every daemon in these gates must see
# clinic-a register first, or the byte-parity cmps below would compare
# different (isomorphic, but differently numbered) cluster labelings.
# The daemons log each registration on stderr; ship the second owner
# only once the first one is in.
wait_registered() { # <stderr log> <party>
  for _ in $(seq 200); do
    grep -q "registered shipment of owner '$2'" "$1" && return 0
    sleep 0.05
  done
  echo "check.sh: owner '$2' never registered (see $1)" >&2
  return 1
}

# Path 1: single daemon (README "networked quickstart").
"${LINKD}" 18901 2 0.8 > "${SMOKE}/single.log" 2> "${SMOKE}/single.err" &
SINGLE_PID=$!
sleep 0.5
"${CLI}" ship "${SMOKE}/a.pclk" clinic-a 127.0.0.1:18901 "${SMOKE}/a_single.csv" >/dev/null &
SHIP_A=$!
wait_registered "${SMOKE}/single.err" clinic-a
"${CLI}" ship "${SMOKE}/b.pclk" clinic-b 127.0.0.1:18901 "${SMOKE}/b_single.csv" >/dev/null
wait "${SHIP_A}" "${SINGLE_PID}"

# Path 2: coordinator + two workers (docs/OPERATIONS.md walkthrough),
# with deterministic chaos on every link.
"${LINKD}" 18911 2 --worker > "${SMOKE}/worker1.log" &
WORKER1_PID=$!
"${LINKD}" 18912 2 --worker > "${SMOKE}/worker2.log" &
WORKER2_PID=$!
sleep 0.5
"${LINKD}" 18902 2 0.8 --workers 18911,18912 --chaos 99 > "${SMOKE}/coord.log" 2> "${SMOKE}/coord.err" &
COORD_PID=$!
sleep 0.5
"${CLI}" ship "${SMOKE}/a.pclk" clinic-a 127.0.0.1:18902 "${SMOKE}/a_coord.csv" >/dev/null &
SHIP_A=$!
wait_registered "${SMOKE}/coord.err" clinic-a
"${CLI}" ship "${SMOKE}/b.pclk" clinic-b 127.0.0.1:18902 "${SMOKE}/b_coord.csv" >/dev/null
wait "${SHIP_A}" "${COORD_PID}"
kill "${WORKER1_PID}" "${WORKER2_PID}" 2>/dev/null || true
wait "${WORKER1_PID}" "${WORKER2_PID}" 2>/dev/null || true

cmp "${SMOKE}/a_single.csv" "${SMOKE}/a_coord.csv"
cmp "${SMOKE}/b_single.csv" "${SMOKE}/b_coord.csv"
SINGLE_COUNTS=$(grep '^linked ' "${SMOKE}/single.log")
COORD_COUNTS=$(grep '^linked ' "${SMOKE}/coord.log")
echo "check.sh: single daemon : ${SINGLE_COUNTS}"
echo "check.sh: sharded+chaos : ${COORD_COUNTS}"
[ "${SINGLE_COUNTS}" = "${COORD_COUNTS}" ]
echo "check.sh: sharded linkage parity gate passed (chaos seed 99)"

# Online serving parity gate: a 5k+5k corpus (10k appended records)
# through the protocol-v4 serving path. A batch daemon with
# connected-components clustering ships both parties and writes each
# owner's match file; an online daemon absorbs the same shards via
# `pprl_cli append` and answers `pprl_cli query` for each party. The
# query CSVs must be BYTE-IDENTICAL to the batch match files (the
# stream/batch equivalence contract of linkage/online_linkage.h,
# operator-visible), and the query loop must clear a conservative
# single-core throughput floor.
"${CLI}" generate "${SMOKE}/c.csv" "${SMOKE}/d.csv" 5000 >/dev/null
"${CLI}" encode "${SMOKE}/c.csv" "${SMOKE}/c.pclk" shared-secret >/dev/null
"${CLI}" encode "${SMOKE}/d.csv" "${SMOKE}/d.pclk" shared-secret >/dev/null
"${LINKD}" 18921 2 0.8 --clustering cc > "${SMOKE}/batchcc.log" 2> "${SMOKE}/batchcc.err" &
BATCH_PID=$!
sleep 0.5
"${CLI}" ship "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18921 "${SMOKE}/c_batchcc.csv" >/dev/null &
SHIP_A=$!
wait_registered "${SMOKE}/batchcc.err" clinic-a
"${CLI}" ship "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18921 "${SMOKE}/d_batchcc.csv" >/dev/null
wait "${SHIP_A}" "${BATCH_PID}"

"${LINKD}" 18922 2 0.8 --online > "${SMOKE}/online.log" &
ONLINE_PID=$!
sleep 0.5
"${CLI}" append "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18922 >/dev/null
"${CLI}" append "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18922 >/dev/null
"${CLI}" query "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18922 "${SMOKE}/c_online.csv" \
  | tee "${SMOKE}/query_c.out"
"${CLI}" query "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18922 "${SMOKE}/d_online.csv" >/dev/null
kill "${ONLINE_PID}" 2>/dev/null || true
wait "${ONLINE_PID}" 2>/dev/null || true

cmp "${SMOKE}/c_batchcc.csv" "${SMOKE}/c_online.csv"
cmp "${SMOKE}/d_batchcc.csv" "${SMOKE}/d_online.csv"
QPS=$(sed -n 's/.*(\([0-9]*\) link-queries\/s).*/\1/p' "${SMOKE}/query_c.out")
echo "check.sh: online query throughput = ${QPS} link-queries/s (need >= 2000)"
[ "${QPS}" -ge 2000 ]
echo "check.sh: online serving parity gate passed"

# Crash-recovery parity gate: the same 10k-record corpus through a
# DURABLE online daemon that is crash-injected mid-ingest
# (--chaos-crash-after fires _Exit after a seeded journaled-op count — no
# destructors, no final checkpoint, exactly a SIGKILL). A second daemon
# recovers from the WAL, the owners re-drive their appends from base 0
# (the cursored v4 protocol makes the re-drive idempotent), and the
# recovered daemon's query CSVs must be BYTE-IDENTICAL to the batch
# reference files from the gate above. The recovery line doubles as the
# restart-latency printout.
SEED=$(( $(date +%s) % 1000 ))
CRASH_N=$(( SEED % 30 + 5 ))
DUR_DIR="${SMOKE}/durable"
CLK="${PERF_BUILD_DIR}/examples/pprl_clk"
"${LINKD}" 18933 2 0.8 --online --wal-dir "${DUR_DIR}" --wal-sync-ms 0 \
  --chaos-crash-after "${CRASH_N}" > "${SMOKE}/crash.log" 2> "${SMOKE}/crash.err" &
CRASH_PID=$!
sleep 0.5
"${CLI}" append "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18933 >/dev/null 2>&1 || true
"${CLI}" append "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18933 >/dev/null 2>&1 || true
if kill -0 "${CRASH_PID}" 2>/dev/null; then
  # Seeded crash point landed beyond the ingest's op count: hard-kill
  # instead, which exercises the crash-after-full-absorb recovery path.
  kill -9 "${CRASH_PID}" 2>/dev/null || true
fi
wait "${CRASH_PID}" 2>/dev/null || true

"${LINKD}" 18934 2 0.8 --online --wal-dir "${DUR_DIR}" --wal-sync-ms 0 \
  > "${SMOKE}/recovered.log" 2> "${SMOKE}/recovered.err" &
RECOVERED_PID=$!
for _ in $(seq 200); do
  grep -q 'pprl_linkd: recovery:' "${SMOKE}/recovered.log" && break
  sleep 0.05
done
RESTART_LINE=$(grep 'pprl_linkd: recovery:' "${SMOKE}/recovered.log" || true)
[ -n "${RESTART_LINE}" ]
echo "check.sh: ${RESTART_LINE} [crash after op ${CRASH_N}, seed ${SEED}]"
"${CLI}" append "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18934 >/dev/null
"${CLI}" append "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18934 >/dev/null
"${CLI}" query "${SMOKE}/c.pclk" clinic-a 127.0.0.1:18934 "${SMOKE}/c_recovered.csv" >/dev/null
"${CLI}" query "${SMOKE}/d.pclk" clinic-b 127.0.0.1:18934 "${SMOKE}/d_recovered.csv" >/dev/null
cmp "${SMOKE}/c_batchcc.csv" "${SMOKE}/c_recovered.csv"
cmp "${SMOKE}/d_batchcc.csv" "${SMOKE}/d_recovered.csv"
echo "check.sh: crash-recovery parity gate passed (byte-identical query CSVs)"

# Graceful-shutdown smoke: SIGTERM drains sessions, writes the final
# checkpoint and exits 0 (the bare `wait` propagates a non-zero status
# into set -e).
kill -TERM "${RECOVERED_PID}"
wait "${RECOVERED_PID}"
grep -q 'final checkpoint written' "${SMOKE}/recovered.err" "${SMOKE}/recovered.log"
echo "check.sh: graceful shutdown smoke passed (exit 0, final checkpoint)"

# Offline artifact audit: `pprl_clk verify` vouches for the checkpoint the
# shutdown left behind and for a PCLK shard, and rejects a corrupted copy
# with a typed error.
CKPT=$(ls "${DUR_DIR}"/checkpoint-*.pckp | head -1)
"${CLK}" verify "${CKPT}"
"${CLK}" verify "${SMOKE}/c.pclk" >/dev/null
cp "${CKPT}" "${SMOKE}/corrupt.pckp"
python3 - "${SMOKE}/corrupt.pckp" <<'EOF'
import sys
with open(sys.argv[1], "r+b") as f:
    f.seek(200)
    byte = f.read(1)[0]
    f.seek(200)
    f.write(bytes([byte ^ 0x40]))
EOF
if "${CLK}" verify "${SMOKE}/corrupt.pckp" > "${SMOKE}/verify.out" 2>&1; then
  echo "check.sh: verify accepted a corrupt checkpoint" >&2
  exit 1
fi
grep -qi 'corrupt' "${SMOKE}/verify.out"
rm -rf "${SMOKE}"
echo "check.sh: durable artifact verify smoke passed"
