#!/usr/bin/env bash
# Regenerates every experiment table into results/<experiment>.md plus the
# combined bench_output.txt. Run from the repository root after building:
#
#   cmake -B build -G Ninja && cmake --build build
#   ./scripts/run_experiments.sh
#
# Each bench binary is deterministic (fixed seeds), so reruns reproduce the
# tables recorded in EXPERIMENTS.md up to wall-clock timing columns.
set -euo pipefail

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-results}"
mkdir -p "$OUT_DIR"

combined="bench_output.txt"
: > "$combined"

for bench in "$BUILD_DIR"/bench/*; do
  name="$(basename "$bench")"
  echo "== $name"
  "$bench" | tee "$OUT_DIR/$name.md" >> "$combined"
  echo >> "$combined"
done

echo "wrote $OUT_DIR/*.md and $combined"
