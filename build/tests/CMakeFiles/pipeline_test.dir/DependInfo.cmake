
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/pipeline_test.dir/pipeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/pprl_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/pprl_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/pprl_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/pprl_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/pprl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/filtering/CMakeFiles/pprl_filtering.dir/DependInfo.cmake"
  "/root/repo/build/src/linkage/CMakeFiles/pprl_linkage.dir/DependInfo.cmake"
  "/root/repo/build/src/blocking/CMakeFiles/pprl_blocking.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/pprl_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
