# Empty dependencies file for pprl_linkage.
# This may be replaced when dependencies are built.
