file(REMOVE_RECURSE
  "CMakeFiles/pprl_linkage.dir/classifier.cc.o"
  "CMakeFiles/pprl_linkage.dir/classifier.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/clustering.cc.o"
  "CMakeFiles/pprl_linkage.dir/clustering.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/compare_kernels.cc.o"
  "CMakeFiles/pprl_linkage.dir/compare_kernels.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/comparison.cc.o"
  "CMakeFiles/pprl_linkage.dir/comparison.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/interactive_review.cc.o"
  "CMakeFiles/pprl_linkage.dir/interactive_review.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/matching.cc.o"
  "CMakeFiles/pprl_linkage.dir/matching.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/multiparty.cc.o"
  "CMakeFiles/pprl_linkage.dir/multiparty.cc.o.d"
  "CMakeFiles/pprl_linkage.dir/two_party_iterative.cc.o"
  "CMakeFiles/pprl_linkage.dir/two_party_iterative.cc.o.d"
  "libpprl_linkage.a"
  "libpprl_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
