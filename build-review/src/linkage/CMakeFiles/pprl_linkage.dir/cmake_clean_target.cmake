file(REMOVE_RECURSE
  "libpprl_linkage.a"
)
