
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linkage/classifier.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/classifier.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/classifier.cc.o.d"
  "/root/repo/src/linkage/clustering.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/clustering.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/clustering.cc.o.d"
  "/root/repo/src/linkage/compare_kernels.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/compare_kernels.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/compare_kernels.cc.o.d"
  "/root/repo/src/linkage/comparison.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/comparison.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/comparison.cc.o.d"
  "/root/repo/src/linkage/interactive_review.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/interactive_review.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/interactive_review.cc.o.d"
  "/root/repo/src/linkage/matching.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/matching.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/matching.cc.o.d"
  "/root/repo/src/linkage/multiparty.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/multiparty.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/multiparty.cc.o.d"
  "/root/repo/src/linkage/two_party_iterative.cc" "src/linkage/CMakeFiles/pprl_linkage.dir/two_party_iterative.cc.o" "gcc" "src/linkage/CMakeFiles/pprl_linkage.dir/two_party_iterative.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/blocking/CMakeFiles/pprl_blocking.dir/DependInfo.cmake"
  "/root/repo/build-review/src/similarity/CMakeFiles/pprl_similarity.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
