# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-review/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("crypto")
subdirs("encoding")
subdirs("similarity")
subdirs("datagen")
subdirs("blocking")
subdirs("filtering")
subdirs("linkage")
subdirs("privacy")
subdirs("eval")
subdirs("tuning")
subdirs("pipeline")
subdirs("net")
subdirs("service")
