file(REMOVE_RECURSE
  "libpprl_net.a"
)
