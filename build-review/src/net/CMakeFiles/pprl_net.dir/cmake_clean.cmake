file(REMOVE_RECURSE
  "CMakeFiles/pprl_net.dir/frame.cc.o"
  "CMakeFiles/pprl_net.dir/frame.cc.o.d"
  "CMakeFiles/pprl_net.dir/transport.cc.o"
  "CMakeFiles/pprl_net.dir/transport.cc.o.d"
  "CMakeFiles/pprl_net.dir/wire.cc.o"
  "CMakeFiles/pprl_net.dir/wire.cc.o.d"
  "libpprl_net.a"
  "libpprl_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
