# Empty dependencies file for pprl_net.
# This may be replaced when dependencies are built.
