# Empty dependencies file for pprl_datagen.
# This may be replaced when dependencies are built.
