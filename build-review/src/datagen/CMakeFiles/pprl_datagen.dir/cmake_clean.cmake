file(REMOVE_RECURSE
  "CMakeFiles/pprl_datagen.dir/corruptor.cc.o"
  "CMakeFiles/pprl_datagen.dir/corruptor.cc.o.d"
  "CMakeFiles/pprl_datagen.dir/generator.cc.o"
  "CMakeFiles/pprl_datagen.dir/generator.cc.o.d"
  "CMakeFiles/pprl_datagen.dir/io.cc.o"
  "CMakeFiles/pprl_datagen.dir/io.cc.o.d"
  "CMakeFiles/pprl_datagen.dir/lookup_data.cc.o"
  "CMakeFiles/pprl_datagen.dir/lookup_data.cc.o.d"
  "libpprl_datagen.a"
  "libpprl_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
