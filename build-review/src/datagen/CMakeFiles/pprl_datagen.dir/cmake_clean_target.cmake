file(REMOVE_RECURSE
  "libpprl_datagen.a"
)
