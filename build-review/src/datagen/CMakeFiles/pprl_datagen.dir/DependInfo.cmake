
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/corruptor.cc" "src/datagen/CMakeFiles/pprl_datagen.dir/corruptor.cc.o" "gcc" "src/datagen/CMakeFiles/pprl_datagen.dir/corruptor.cc.o.d"
  "/root/repo/src/datagen/generator.cc" "src/datagen/CMakeFiles/pprl_datagen.dir/generator.cc.o" "gcc" "src/datagen/CMakeFiles/pprl_datagen.dir/generator.cc.o.d"
  "/root/repo/src/datagen/io.cc" "src/datagen/CMakeFiles/pprl_datagen.dir/io.cc.o" "gcc" "src/datagen/CMakeFiles/pprl_datagen.dir/io.cc.o.d"
  "/root/repo/src/datagen/lookup_data.cc" "src/datagen/CMakeFiles/pprl_datagen.dir/lookup_data.cc.o" "gcc" "src/datagen/CMakeFiles/pprl_datagen.dir/lookup_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
