file(REMOVE_RECURSE
  "CMakeFiles/pprl_similarity.dir/similarity.cc.o"
  "CMakeFiles/pprl_similarity.dir/similarity.cc.o.d"
  "libpprl_similarity.a"
  "libpprl_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
