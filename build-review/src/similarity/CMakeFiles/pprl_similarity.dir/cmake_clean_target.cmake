file(REMOVE_RECURSE
  "libpprl_similarity.a"
)
