# Empty dependencies file for pprl_similarity.
# This may be replaced when dependencies are built.
