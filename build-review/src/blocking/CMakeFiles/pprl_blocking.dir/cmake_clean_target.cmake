file(REMOVE_RECURSE
  "libpprl_blocking.a"
)
