# Empty dependencies file for pprl_blocking.
# This may be replaced when dependencies are built.
