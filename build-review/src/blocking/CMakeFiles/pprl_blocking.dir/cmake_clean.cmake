file(REMOVE_RECURSE
  "CMakeFiles/pprl_blocking.dir/blocking.cc.o"
  "CMakeFiles/pprl_blocking.dir/blocking.cc.o.d"
  "CMakeFiles/pprl_blocking.dir/canopy.cc.o"
  "CMakeFiles/pprl_blocking.dir/canopy.cc.o.d"
  "CMakeFiles/pprl_blocking.dir/lsh_blocking.cc.o"
  "CMakeFiles/pprl_blocking.dir/lsh_blocking.cc.o.d"
  "CMakeFiles/pprl_blocking.dir/metablocking.cc.o"
  "CMakeFiles/pprl_blocking.dir/metablocking.cc.o.d"
  "libpprl_blocking.a"
  "libpprl_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
