
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocking/blocking.cc" "src/blocking/CMakeFiles/pprl_blocking.dir/blocking.cc.o" "gcc" "src/blocking/CMakeFiles/pprl_blocking.dir/blocking.cc.o.d"
  "/root/repo/src/blocking/canopy.cc" "src/blocking/CMakeFiles/pprl_blocking.dir/canopy.cc.o" "gcc" "src/blocking/CMakeFiles/pprl_blocking.dir/canopy.cc.o.d"
  "/root/repo/src/blocking/lsh_blocking.cc" "src/blocking/CMakeFiles/pprl_blocking.dir/lsh_blocking.cc.o" "gcc" "src/blocking/CMakeFiles/pprl_blocking.dir/lsh_blocking.cc.o.d"
  "/root/repo/src/blocking/metablocking.cc" "src/blocking/CMakeFiles/pprl_blocking.dir/metablocking.cc.o" "gcc" "src/blocking/CMakeFiles/pprl_blocking.dir/metablocking.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
