file(REMOVE_RECURSE
  "libpprl_crypto.a"
)
