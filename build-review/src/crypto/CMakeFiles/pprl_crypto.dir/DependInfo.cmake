
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bigint.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/bigint.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/bigint.cc.o.d"
  "/root/repo/src/crypto/hash.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/hash.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/hash.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/secret_sharing.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/secret_sharing.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/secret_sharing.cc.o.d"
  "/root/repo/src/crypto/secure_edit_distance.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/secure_edit_distance.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/secure_edit_distance.cc.o.d"
  "/root/repo/src/crypto/secure_vector.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/secure_vector.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/secure_vector.cc.o.d"
  "/root/repo/src/crypto/sra.cc" "src/crypto/CMakeFiles/pprl_crypto.dir/sra.cc.o" "gcc" "src/crypto/CMakeFiles/pprl_crypto.dir/sra.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
