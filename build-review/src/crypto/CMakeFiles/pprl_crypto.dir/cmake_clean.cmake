file(REMOVE_RECURSE
  "CMakeFiles/pprl_crypto.dir/bigint.cc.o"
  "CMakeFiles/pprl_crypto.dir/bigint.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/hash.cc.o"
  "CMakeFiles/pprl_crypto.dir/hash.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/paillier.cc.o"
  "CMakeFiles/pprl_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/secret_sharing.cc.o"
  "CMakeFiles/pprl_crypto.dir/secret_sharing.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/secure_edit_distance.cc.o"
  "CMakeFiles/pprl_crypto.dir/secure_edit_distance.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/secure_vector.cc.o"
  "CMakeFiles/pprl_crypto.dir/secure_vector.cc.o.d"
  "CMakeFiles/pprl_crypto.dir/sra.cc.o"
  "CMakeFiles/pprl_crypto.dir/sra.cc.o.d"
  "libpprl_crypto.a"
  "libpprl_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
