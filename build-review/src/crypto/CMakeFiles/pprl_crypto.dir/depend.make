# Empty dependencies file for pprl_crypto.
# This may be replaced when dependencies are built.
