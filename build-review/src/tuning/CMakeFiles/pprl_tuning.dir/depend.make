# Empty dependencies file for pprl_tuning.
# This may be replaced when dependencies are built.
