file(REMOVE_RECURSE
  "libpprl_tuning.a"
)
