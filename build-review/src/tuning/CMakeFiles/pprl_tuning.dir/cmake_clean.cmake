file(REMOVE_RECURSE
  "CMakeFiles/pprl_tuning.dir/tuner.cc.o"
  "CMakeFiles/pprl_tuning.dir/tuner.cc.o.d"
  "libpprl_tuning.a"
  "libpprl_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
