file(REMOVE_RECURSE
  "CMakeFiles/pprl_privacy.dir/accountability.cc.o"
  "CMakeFiles/pprl_privacy.dir/accountability.cc.o.d"
  "CMakeFiles/pprl_privacy.dir/attacks.cc.o"
  "CMakeFiles/pprl_privacy.dir/attacks.cc.o.d"
  "CMakeFiles/pprl_privacy.dir/dp.cc.o"
  "CMakeFiles/pprl_privacy.dir/dp.cc.o.d"
  "CMakeFiles/pprl_privacy.dir/dp_blocking.cc.o"
  "CMakeFiles/pprl_privacy.dir/dp_blocking.cc.o.d"
  "CMakeFiles/pprl_privacy.dir/privacy_metrics.cc.o"
  "CMakeFiles/pprl_privacy.dir/privacy_metrics.cc.o.d"
  "libpprl_privacy.a"
  "libpprl_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
