# Empty dependencies file for pprl_privacy.
# This may be replaced when dependencies are built.
