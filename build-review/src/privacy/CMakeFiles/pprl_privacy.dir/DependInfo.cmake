
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/accountability.cc" "src/privacy/CMakeFiles/pprl_privacy.dir/accountability.cc.o" "gcc" "src/privacy/CMakeFiles/pprl_privacy.dir/accountability.cc.o.d"
  "/root/repo/src/privacy/attacks.cc" "src/privacy/CMakeFiles/pprl_privacy.dir/attacks.cc.o" "gcc" "src/privacy/CMakeFiles/pprl_privacy.dir/attacks.cc.o.d"
  "/root/repo/src/privacy/dp.cc" "src/privacy/CMakeFiles/pprl_privacy.dir/dp.cc.o" "gcc" "src/privacy/CMakeFiles/pprl_privacy.dir/dp.cc.o.d"
  "/root/repo/src/privacy/dp_blocking.cc" "src/privacy/CMakeFiles/pprl_privacy.dir/dp_blocking.cc.o" "gcc" "src/privacy/CMakeFiles/pprl_privacy.dir/dp_blocking.cc.o.d"
  "/root/repo/src/privacy/privacy_metrics.cc" "src/privacy/CMakeFiles/pprl_privacy.dir/privacy_metrics.cc.o" "gcc" "src/privacy/CMakeFiles/pprl_privacy.dir/privacy_metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linkage/CMakeFiles/pprl_linkage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/blocking/CMakeFiles/pprl_blocking.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/similarity/CMakeFiles/pprl_similarity.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
