file(REMOVE_RECURSE
  "libpprl_privacy.a"
)
