file(REMOVE_RECURSE
  "CMakeFiles/pprl_encoding.dir/bloom_filter.cc.o"
  "CMakeFiles/pprl_encoding.dir/bloom_filter.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/clk_io.cc.o"
  "CMakeFiles/pprl_encoding.dir/clk_io.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/counting_bloom_filter.cc.o"
  "CMakeFiles/pprl_encoding.dir/counting_bloom_filter.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/embedding.cc.o"
  "CMakeFiles/pprl_encoding.dir/embedding.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/hardening.cc.o"
  "CMakeFiles/pprl_encoding.dir/hardening.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/minhash.cc.o"
  "CMakeFiles/pprl_encoding.dir/minhash.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/numeric_encoding.cc.o"
  "CMakeFiles/pprl_encoding.dir/numeric_encoding.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/phonetic.cc.o"
  "CMakeFiles/pprl_encoding.dir/phonetic.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/rbf.cc.o"
  "CMakeFiles/pprl_encoding.dir/rbf.cc.o.d"
  "CMakeFiles/pprl_encoding.dir/slk.cc.o"
  "CMakeFiles/pprl_encoding.dir/slk.cc.o.d"
  "libpprl_encoding.a"
  "libpprl_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
