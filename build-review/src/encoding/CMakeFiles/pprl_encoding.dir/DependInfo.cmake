
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/encoding/bloom_filter.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/bloom_filter.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/bloom_filter.cc.o.d"
  "/root/repo/src/encoding/clk_io.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/clk_io.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/clk_io.cc.o.d"
  "/root/repo/src/encoding/counting_bloom_filter.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/counting_bloom_filter.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/counting_bloom_filter.cc.o.d"
  "/root/repo/src/encoding/embedding.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/embedding.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/embedding.cc.o.d"
  "/root/repo/src/encoding/hardening.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/hardening.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/hardening.cc.o.d"
  "/root/repo/src/encoding/minhash.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/minhash.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/minhash.cc.o.d"
  "/root/repo/src/encoding/numeric_encoding.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/numeric_encoding.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/numeric_encoding.cc.o.d"
  "/root/repo/src/encoding/phonetic.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/phonetic.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/phonetic.cc.o.d"
  "/root/repo/src/encoding/rbf.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/rbf.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/rbf.cc.o.d"
  "/root/repo/src/encoding/slk.cc" "src/encoding/CMakeFiles/pprl_encoding.dir/slk.cc.o" "gcc" "src/encoding/CMakeFiles/pprl_encoding.dir/slk.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
