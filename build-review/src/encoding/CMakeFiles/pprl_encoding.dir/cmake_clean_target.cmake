file(REMOVE_RECURSE
  "libpprl_encoding.a"
)
