# Empty dependencies file for pprl_encoding.
# This may be replaced when dependencies are built.
