# Empty dependencies file for pprl_pipeline.
# This may be replaced when dependencies are built.
