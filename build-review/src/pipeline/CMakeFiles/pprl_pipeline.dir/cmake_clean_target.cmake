file(REMOVE_RECURSE
  "libpprl_pipeline.a"
)
