file(REMOVE_RECURSE
  "CMakeFiles/pprl_pipeline.dir/channel.cc.o"
  "CMakeFiles/pprl_pipeline.dir/channel.cc.o.d"
  "CMakeFiles/pprl_pipeline.dir/party.cc.o"
  "CMakeFiles/pprl_pipeline.dir/party.cc.o.d"
  "CMakeFiles/pprl_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/pprl_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/pprl_pipeline.dir/schema_matching.cc.o"
  "CMakeFiles/pprl_pipeline.dir/schema_matching.cc.o.d"
  "libpprl_pipeline.a"
  "libpprl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
