file(REMOVE_RECURSE
  "CMakeFiles/pprl_eval.dir/fairness.cc.o"
  "CMakeFiles/pprl_eval.dir/fairness.cc.o.d"
  "CMakeFiles/pprl_eval.dir/metrics.cc.o"
  "CMakeFiles/pprl_eval.dir/metrics.cc.o.d"
  "CMakeFiles/pprl_eval.dir/quality_estimation.cc.o"
  "CMakeFiles/pprl_eval.dir/quality_estimation.cc.o.d"
  "libpprl_eval.a"
  "libpprl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
