# Empty dependencies file for pprl_eval.
# This may be replaced when dependencies are built.
