file(REMOVE_RECURSE
  "libpprl_eval.a"
)
