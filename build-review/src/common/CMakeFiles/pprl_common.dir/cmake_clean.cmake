file(REMOVE_RECURSE
  "CMakeFiles/pprl_common.dir/base64.cc.o"
  "CMakeFiles/pprl_common.dir/base64.cc.o.d"
  "CMakeFiles/pprl_common.dir/bit_matrix.cc.o"
  "CMakeFiles/pprl_common.dir/bit_matrix.cc.o.d"
  "CMakeFiles/pprl_common.dir/bitvector.cc.o"
  "CMakeFiles/pprl_common.dir/bitvector.cc.o.d"
  "CMakeFiles/pprl_common.dir/csv.cc.o"
  "CMakeFiles/pprl_common.dir/csv.cc.o.d"
  "CMakeFiles/pprl_common.dir/logging.cc.o"
  "CMakeFiles/pprl_common.dir/logging.cc.o.d"
  "CMakeFiles/pprl_common.dir/random.cc.o"
  "CMakeFiles/pprl_common.dir/random.cc.o.d"
  "CMakeFiles/pprl_common.dir/stats.cc.o"
  "CMakeFiles/pprl_common.dir/stats.cc.o.d"
  "CMakeFiles/pprl_common.dir/status.cc.o"
  "CMakeFiles/pprl_common.dir/status.cc.o.d"
  "CMakeFiles/pprl_common.dir/strings.cc.o"
  "CMakeFiles/pprl_common.dir/strings.cc.o.d"
  "CMakeFiles/pprl_common.dir/thread_pool.cc.o"
  "CMakeFiles/pprl_common.dir/thread_pool.cc.o.d"
  "libpprl_common.a"
  "libpprl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
