# Empty dependencies file for pprl_common.
# This may be replaced when dependencies are built.
