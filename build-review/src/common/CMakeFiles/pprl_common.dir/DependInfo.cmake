
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/base64.cc" "src/common/CMakeFiles/pprl_common.dir/base64.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/base64.cc.o.d"
  "/root/repo/src/common/bit_matrix.cc" "src/common/CMakeFiles/pprl_common.dir/bit_matrix.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/bit_matrix.cc.o.d"
  "/root/repo/src/common/bitvector.cc" "src/common/CMakeFiles/pprl_common.dir/bitvector.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/bitvector.cc.o.d"
  "/root/repo/src/common/csv.cc" "src/common/CMakeFiles/pprl_common.dir/csv.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/csv.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/pprl_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/logging.cc.o.d"
  "/root/repo/src/common/random.cc" "src/common/CMakeFiles/pprl_common.dir/random.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/pprl_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/pprl_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/common/CMakeFiles/pprl_common.dir/strings.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/strings.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/common/CMakeFiles/pprl_common.dir/thread_pool.cc.o" "gcc" "src/common/CMakeFiles/pprl_common.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
