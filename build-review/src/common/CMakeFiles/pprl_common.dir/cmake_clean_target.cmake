file(REMOVE_RECURSE
  "libpprl_common.a"
)
