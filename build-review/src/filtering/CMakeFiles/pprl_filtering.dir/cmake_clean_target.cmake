file(REMOVE_RECURSE
  "libpprl_filtering.a"
)
