file(REMOVE_RECURSE
  "CMakeFiles/pprl_filtering.dir/ppjoin.cc.o"
  "CMakeFiles/pprl_filtering.dir/ppjoin.cc.o.d"
  "libpprl_filtering.a"
  "libpprl_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
