# Empty dependencies file for pprl_filtering.
# This may be replaced when dependencies are built.
