
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/client.cc" "src/service/CMakeFiles/pprl_service.dir/client.cc.o" "gcc" "src/service/CMakeFiles/pprl_service.dir/client.cc.o.d"
  "/root/repo/src/service/protocol.cc" "src/service/CMakeFiles/pprl_service.dir/protocol.cc.o" "gcc" "src/service/CMakeFiles/pprl_service.dir/protocol.cc.o.d"
  "/root/repo/src/service/server.cc" "src/service/CMakeFiles/pprl_service.dir/server.cc.o" "gcc" "src/service/CMakeFiles/pprl_service.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pipeline/CMakeFiles/pprl_pipeline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/pprl_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/filtering/CMakeFiles/pprl_filtering.dir/DependInfo.cmake"
  "/root/repo/build-review/src/eval/CMakeFiles/pprl_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linkage/CMakeFiles/pprl_linkage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/similarity/CMakeFiles/pprl_similarity.dir/DependInfo.cmake"
  "/root/repo/build-review/src/blocking/CMakeFiles/pprl_blocking.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
