# Empty dependencies file for pprl_service.
# This may be replaced when dependencies are built.
