file(REMOVE_RECURSE
  "CMakeFiles/pprl_service.dir/client.cc.o"
  "CMakeFiles/pprl_service.dir/client.cc.o.d"
  "CMakeFiles/pprl_service.dir/protocol.cc.o"
  "CMakeFiles/pprl_service.dir/protocol.cc.o.d"
  "CMakeFiles/pprl_service.dir/server.cc.o"
  "CMakeFiles/pprl_service.dir/server.cc.o.d"
  "libpprl_service.a"
  "libpprl_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
