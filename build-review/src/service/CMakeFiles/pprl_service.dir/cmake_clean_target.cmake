file(REMOVE_RECURSE
  "libpprl_service.a"
)
