file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_crypto_vs_probabilistic.dir/bench_fig1_crypto_vs_probabilistic.cc.o"
  "CMakeFiles/bench_fig1_crypto_vs_probabilistic.dir/bench_fig1_crypto_vs_probabilistic.cc.o.d"
  "bench_fig1_crypto_vs_probabilistic"
  "bench_fig1_crypto_vs_probabilistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_crypto_vs_probabilistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
