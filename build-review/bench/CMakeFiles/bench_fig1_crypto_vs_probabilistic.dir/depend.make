# Empty dependencies file for bench_fig1_crypto_vs_probabilistic.
# This may be replaced when dependencies are built.
