# Empty dependencies file for bench_fig3_privacy_attacks.
# This may be replaced when dependencies are built.
