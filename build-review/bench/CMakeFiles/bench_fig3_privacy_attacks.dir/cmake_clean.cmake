file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_privacy_attacks.dir/bench_fig3_privacy_attacks.cc.o"
  "CMakeFiles/bench_fig3_privacy_attacks.dir/bench_fig3_privacy_attacks.cc.o.d"
  "bench_fig3_privacy_attacks"
  "bench_fig3_privacy_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_privacy_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
