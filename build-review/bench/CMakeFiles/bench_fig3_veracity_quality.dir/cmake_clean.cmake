file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_veracity_quality.dir/bench_fig3_veracity_quality.cc.o"
  "CMakeFiles/bench_fig3_veracity_quality.dir/bench_fig3_veracity_quality.cc.o.d"
  "bench_fig3_veracity_quality"
  "bench_fig3_veracity_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_veracity_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
