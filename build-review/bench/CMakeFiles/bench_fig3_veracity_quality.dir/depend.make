# Empty dependencies file for bench_fig3_veracity_quality.
# This may be replaced when dependencies are built.
