# Empty dependencies file for bench_fig1_param_tuning.
# This may be replaced when dependencies are built.
