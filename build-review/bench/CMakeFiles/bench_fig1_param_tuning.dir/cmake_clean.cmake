file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_param_tuning.dir/bench_fig1_param_tuning.cc.o"
  "CMakeFiles/bench_fig1_param_tuning.dir/bench_fig1_param_tuning.cc.o.d"
  "bench_fig1_param_tuning"
  "bench_fig1_param_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_param_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
