# Empty compiler generated dependencies file for bench_fig1_multiparty_patterns.
# This may be replaced when dependencies are built.
