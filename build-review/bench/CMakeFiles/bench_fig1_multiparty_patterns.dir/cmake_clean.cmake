file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_multiparty_patterns.dir/bench_fig1_multiparty_patterns.cc.o"
  "CMakeFiles/bench_fig1_multiparty_patterns.dir/bench_fig1_multiparty_patterns.cc.o.d"
  "bench_fig1_multiparty_patterns"
  "bench_fig1_multiparty_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_multiparty_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
