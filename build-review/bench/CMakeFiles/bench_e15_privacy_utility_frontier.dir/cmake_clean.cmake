file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_privacy_utility_frontier.dir/bench_e15_privacy_utility_frontier.cc.o"
  "CMakeFiles/bench_e15_privacy_utility_frontier.dir/bench_e15_privacy_utility_frontier.cc.o.d"
  "bench_e15_privacy_utility_frontier"
  "bench_e15_privacy_utility_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_privacy_utility_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
