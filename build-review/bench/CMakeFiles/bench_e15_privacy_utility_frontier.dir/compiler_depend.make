# Empty compiler generated dependencies file for bench_e15_privacy_utility_frontier.
# This may be replaced when dependencies are built.
