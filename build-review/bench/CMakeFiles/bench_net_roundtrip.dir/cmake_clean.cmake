file(REMOVE_RECURSE
  "CMakeFiles/bench_net_roundtrip.dir/bench_net_roundtrip.cc.o"
  "CMakeFiles/bench_net_roundtrip.dir/bench_net_roundtrip.cc.o.d"
  "bench_net_roundtrip"
  "bench_net_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_net_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
