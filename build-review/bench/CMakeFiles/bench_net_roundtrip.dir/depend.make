# Empty dependencies file for bench_net_roundtrip.
# This may be replaced when dependencies are built.
