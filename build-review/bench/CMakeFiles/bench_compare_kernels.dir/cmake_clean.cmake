file(REMOVE_RECURSE
  "CMakeFiles/bench_compare_kernels.dir/bench_compare_kernels.cc.o"
  "CMakeFiles/bench_compare_kernels.dir/bench_compare_kernels.cc.o.d"
  "bench_compare_kernels"
  "bench_compare_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
