# Empty compiler generated dependencies file for bench_compare_kernels.
# This may be replaced when dependencies are built.
