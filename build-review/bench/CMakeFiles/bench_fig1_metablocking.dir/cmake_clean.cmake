file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_metablocking.dir/bench_fig1_metablocking.cc.o"
  "CMakeFiles/bench_fig1_metablocking.dir/bench_fig1_metablocking.cc.o.d"
  "bench_fig1_metablocking"
  "bench_fig1_metablocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_metablocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
