# Empty dependencies file for bench_fig1_metablocking.
# This may be replaced when dependencies are built.
