# Empty compiler generated dependencies file for bench_fig3_velocity_incremental.
# This may be replaced when dependencies are built.
