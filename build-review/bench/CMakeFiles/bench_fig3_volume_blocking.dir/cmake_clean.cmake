file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_volume_blocking.dir/bench_fig3_volume_blocking.cc.o"
  "CMakeFiles/bench_fig3_volume_blocking.dir/bench_fig3_volume_blocking.cc.o.d"
  "bench_fig3_volume_blocking"
  "bench_fig3_volume_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_volume_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
