# Empty dependencies file for bench_fig3_volume_blocking.
# This may be replaced when dependencies are built.
