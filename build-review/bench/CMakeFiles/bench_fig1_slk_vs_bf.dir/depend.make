# Empty dependencies file for bench_fig1_slk_vs_bf.
# This may be replaced when dependencies are built.
