file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_slk_vs_bf.dir/bench_fig1_slk_vs_bf.cc.o"
  "CMakeFiles/bench_fig1_slk_vs_bf.dir/bench_fig1_slk_vs_bf.cc.o.d"
  "bench_fig1_slk_vs_bf"
  "bench_fig1_slk_vs_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_slk_vs_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
