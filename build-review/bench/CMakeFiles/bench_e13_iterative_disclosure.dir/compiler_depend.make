# Empty compiler generated dependencies file for bench_e13_iterative_disclosure.
# This may be replaced when dependencies are built.
