file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_iterative_disclosure.dir/bench_e13_iterative_disclosure.cc.o"
  "CMakeFiles/bench_e13_iterative_disclosure.dir/bench_e13_iterative_disclosure.cc.o.d"
  "bench_e13_iterative_disclosure"
  "bench_e13_iterative_disclosure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_iterative_disclosure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
