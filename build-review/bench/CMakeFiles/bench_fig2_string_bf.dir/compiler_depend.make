# Empty compiler generated dependencies file for bench_fig2_string_bf.
# This may be replaced when dependencies are built.
