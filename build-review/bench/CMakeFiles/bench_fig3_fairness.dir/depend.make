# Empty dependencies file for bench_fig3_fairness.
# This may be replaced when dependencies are built.
