file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_fairness.dir/bench_fig3_fairness.cc.o"
  "CMakeFiles/bench_fig3_fairness.dir/bench_fig3_fairness.cc.o.d"
  "bench_fig3_fairness"
  "bench_fig3_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
