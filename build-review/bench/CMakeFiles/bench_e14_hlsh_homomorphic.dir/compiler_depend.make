# Empty compiler generated dependencies file for bench_e14_hlsh_homomorphic.
# This may be replaced when dependencies are built.
