file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_hlsh_homomorphic.dir/bench_e14_hlsh_homomorphic.cc.o"
  "CMakeFiles/bench_e14_hlsh_homomorphic.dir/bench_e14_hlsh_homomorphic.cc.o.d"
  "bench_e14_hlsh_homomorphic"
  "bench_e14_hlsh_homomorphic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_hlsh_homomorphic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
