file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_numeric_bf.dir/bench_fig2_numeric_bf.cc.o"
  "CMakeFiles/bench_fig2_numeric_bf.dir/bench_fig2_numeric_bf.cc.o.d"
  "bench_fig2_numeric_bf"
  "bench_fig2_numeric_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_numeric_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
