# Empty dependencies file for bench_fig2_numeric_bf.
# This may be replaced when dependencies are built.
