# Empty compiler generated dependencies file for slk_test.
# This may be replaced when dependencies are built.
