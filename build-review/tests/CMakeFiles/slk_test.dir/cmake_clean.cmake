file(REMOVE_RECURSE
  "CMakeFiles/slk_test.dir/slk_test.cc.o"
  "CMakeFiles/slk_test.dir/slk_test.cc.o.d"
  "slk_test"
  "slk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
