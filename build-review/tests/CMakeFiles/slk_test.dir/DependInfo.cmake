
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/slk_test.cc" "tests/CMakeFiles/slk_test.dir/slk_test.cc.o" "gcc" "tests/CMakeFiles/slk_test.dir/slk_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/service/CMakeFiles/pprl_service.dir/DependInfo.cmake"
  "/root/repo/build-review/src/net/CMakeFiles/pprl_net.dir/DependInfo.cmake"
  "/root/repo/build-review/src/pipeline/CMakeFiles/pprl_pipeline.dir/DependInfo.cmake"
  "/root/repo/build-review/src/eval/CMakeFiles/pprl_eval.dir/DependInfo.cmake"
  "/root/repo/build-review/src/privacy/CMakeFiles/pprl_privacy.dir/DependInfo.cmake"
  "/root/repo/build-review/src/tuning/CMakeFiles/pprl_tuning.dir/DependInfo.cmake"
  "/root/repo/build-review/src/datagen/CMakeFiles/pprl_datagen.dir/DependInfo.cmake"
  "/root/repo/build-review/src/filtering/CMakeFiles/pprl_filtering.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linkage/CMakeFiles/pprl_linkage.dir/DependInfo.cmake"
  "/root/repo/build-review/src/blocking/CMakeFiles/pprl_blocking.dir/DependInfo.cmake"
  "/root/repo/build-review/src/similarity/CMakeFiles/pprl_similarity.dir/DependInfo.cmake"
  "/root/repo/build-review/src/encoding/CMakeFiles/pprl_encoding.dir/DependInfo.cmake"
  "/root/repo/build-review/src/crypto/CMakeFiles/pprl_crypto.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/pprl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
