file(REMOVE_RECURSE
  "CMakeFiles/net_framing_test.dir/net_framing_test.cc.o"
  "CMakeFiles/net_framing_test.dir/net_framing_test.cc.o.d"
  "net_framing_test"
  "net_framing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_framing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
