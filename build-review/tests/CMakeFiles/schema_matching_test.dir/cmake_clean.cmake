file(REMOVE_RECURSE
  "CMakeFiles/schema_matching_test.dir/schema_matching_test.cc.o"
  "CMakeFiles/schema_matching_test.dir/schema_matching_test.cc.o.d"
  "schema_matching_test"
  "schema_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
