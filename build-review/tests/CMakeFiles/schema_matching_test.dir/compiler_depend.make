# Empty compiler generated dependencies file for schema_matching_test.
# This may be replaced when dependencies are built.
