file(REMOVE_RECURSE
  "CMakeFiles/secret_sharing_test.dir/secret_sharing_test.cc.o"
  "CMakeFiles/secret_sharing_test.dir/secret_sharing_test.cc.o.d"
  "secret_sharing_test"
  "secret_sharing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secret_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
