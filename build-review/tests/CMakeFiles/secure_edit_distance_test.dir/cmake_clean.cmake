file(REMOVE_RECURSE
  "CMakeFiles/secure_edit_distance_test.dir/secure_edit_distance_test.cc.o"
  "CMakeFiles/secure_edit_distance_test.dir/secure_edit_distance_test.cc.o.d"
  "secure_edit_distance_test"
  "secure_edit_distance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_edit_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
