file(REMOVE_RECURSE
  "CMakeFiles/dp_blocking_test.dir/dp_blocking_test.cc.o"
  "CMakeFiles/dp_blocking_test.dir/dp_blocking_test.cc.o.d"
  "dp_blocking_test"
  "dp_blocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dp_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
