# Empty compiler generated dependencies file for dp_blocking_test.
# This may be replaced when dependencies are built.
