# Empty dependencies file for ppjoin_test.
# This may be replaced when dependencies are built.
