file(REMOVE_RECURSE
  "CMakeFiles/ppjoin_test.dir/ppjoin_test.cc.o"
  "CMakeFiles/ppjoin_test.dir/ppjoin_test.cc.o.d"
  "ppjoin_test"
  "ppjoin_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppjoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
