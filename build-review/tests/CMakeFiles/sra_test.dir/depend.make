# Empty dependencies file for sra_test.
# This may be replaced when dependencies are built.
