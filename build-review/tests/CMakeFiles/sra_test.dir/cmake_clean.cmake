file(REMOVE_RECURSE
  "CMakeFiles/sra_test.dir/sra_test.cc.o"
  "CMakeFiles/sra_test.dir/sra_test.cc.o.d"
  "sra_test"
  "sra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
