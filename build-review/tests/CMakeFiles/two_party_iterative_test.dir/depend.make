# Empty dependencies file for two_party_iterative_test.
# This may be replaced when dependencies are built.
