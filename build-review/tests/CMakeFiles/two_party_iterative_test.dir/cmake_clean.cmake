file(REMOVE_RECURSE
  "CMakeFiles/two_party_iterative_test.dir/two_party_iterative_test.cc.o"
  "CMakeFiles/two_party_iterative_test.dir/two_party_iterative_test.cc.o.d"
  "two_party_iterative_test"
  "two_party_iterative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/two_party_iterative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
