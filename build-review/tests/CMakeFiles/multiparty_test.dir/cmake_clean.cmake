file(REMOVE_RECURSE
  "CMakeFiles/multiparty_test.dir/multiparty_test.cc.o"
  "CMakeFiles/multiparty_test.dir/multiparty_test.cc.o.d"
  "multiparty_test"
  "multiparty_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiparty_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
