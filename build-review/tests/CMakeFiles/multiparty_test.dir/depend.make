# Empty dependencies file for multiparty_test.
# This may be replaced when dependencies are built.
