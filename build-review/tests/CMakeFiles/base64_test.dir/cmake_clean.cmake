file(REMOVE_RECURSE
  "CMakeFiles/base64_test.dir/base64_test.cc.o"
  "CMakeFiles/base64_test.dir/base64_test.cc.o.d"
  "base64_test"
  "base64_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base64_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
