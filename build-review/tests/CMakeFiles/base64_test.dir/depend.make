# Empty dependencies file for base64_test.
# This may be replaced when dependencies are built.
