# Empty compiler generated dependencies file for privacy_metrics_test.
# This may be replaced when dependencies are built.
