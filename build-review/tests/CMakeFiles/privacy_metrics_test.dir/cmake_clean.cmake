file(REMOVE_RECURSE
  "CMakeFiles/privacy_metrics_test.dir/privacy_metrics_test.cc.o"
  "CMakeFiles/privacy_metrics_test.dir/privacy_metrics_test.cc.o.d"
  "privacy_metrics_test"
  "privacy_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
