# Empty dependencies file for compare_kernels_test.
# This may be replaced when dependencies are built.
