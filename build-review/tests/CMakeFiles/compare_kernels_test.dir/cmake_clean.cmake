file(REMOVE_RECURSE
  "CMakeFiles/compare_kernels_test.dir/compare_kernels_test.cc.o"
  "CMakeFiles/compare_kernels_test.dir/compare_kernels_test.cc.o.d"
  "compare_kernels_test"
  "compare_kernels_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_kernels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
