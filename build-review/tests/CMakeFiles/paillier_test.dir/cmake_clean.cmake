file(REMOVE_RECURSE
  "CMakeFiles/paillier_test.dir/paillier_test.cc.o"
  "CMakeFiles/paillier_test.dir/paillier_test.cc.o.d"
  "paillier_test"
  "paillier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paillier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
