file(REMOVE_RECURSE
  "CMakeFiles/datagen_io_test.dir/datagen_io_test.cc.o"
  "CMakeFiles/datagen_io_test.dir/datagen_io_test.cc.o.d"
  "datagen_io_test"
  "datagen_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datagen_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
