file(REMOVE_RECURSE
  "CMakeFiles/pipeline_fuzz_test.dir/pipeline_fuzz_test.cc.o"
  "CMakeFiles/pipeline_fuzz_test.dir/pipeline_fuzz_test.cc.o.d"
  "pipeline_fuzz_test"
  "pipeline_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
