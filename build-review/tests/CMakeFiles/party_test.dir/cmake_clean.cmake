file(REMOVE_RECURSE
  "CMakeFiles/party_test.dir/party_test.cc.o"
  "CMakeFiles/party_test.dir/party_test.cc.o.d"
  "party_test"
  "party_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/party_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
