# Empty dependencies file for party_test.
# This may be replaced when dependencies are built.
