file(REMOVE_RECURSE
  "CMakeFiles/metablocking_test.dir/metablocking_test.cc.o"
  "CMakeFiles/metablocking_test.dir/metablocking_test.cc.o.d"
  "metablocking_test"
  "metablocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metablocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
