# Empty compiler generated dependencies file for metablocking_test.
# This may be replaced when dependencies are built.
