# Empty dependencies file for numeric_encoding_test.
# This may be replaced when dependencies are built.
