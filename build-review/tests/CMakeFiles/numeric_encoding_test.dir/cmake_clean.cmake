file(REMOVE_RECURSE
  "CMakeFiles/numeric_encoding_test.dir/numeric_encoding_test.cc.o"
  "CMakeFiles/numeric_encoding_test.dir/numeric_encoding_test.cc.o.d"
  "numeric_encoding_test"
  "numeric_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numeric_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
