file(REMOVE_RECURSE
  "CMakeFiles/accountability_test.dir/accountability_test.cc.o"
  "CMakeFiles/accountability_test.dir/accountability_test.cc.o.d"
  "accountability_test"
  "accountability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accountability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
