# Empty dependencies file for accountability_test.
# This may be replaced when dependencies are built.
