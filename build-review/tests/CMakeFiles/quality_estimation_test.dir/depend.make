# Empty dependencies file for quality_estimation_test.
# This may be replaced when dependencies are built.
