file(REMOVE_RECURSE
  "CMakeFiles/quality_estimation_test.dir/quality_estimation_test.cc.o"
  "CMakeFiles/quality_estimation_test.dir/quality_estimation_test.cc.o.d"
  "quality_estimation_test"
  "quality_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
