file(REMOVE_RECURSE
  "CMakeFiles/households_test.dir/households_test.cc.o"
  "CMakeFiles/households_test.dir/households_test.cc.o.d"
  "households_test"
  "households_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/households_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
