# Empty dependencies file for households_test.
# This may be replaced when dependencies are built.
