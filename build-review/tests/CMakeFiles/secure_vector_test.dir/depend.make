# Empty dependencies file for secure_vector_test.
# This may be replaced when dependencies are built.
