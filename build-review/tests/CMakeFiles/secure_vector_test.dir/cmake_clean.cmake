file(REMOVE_RECURSE
  "CMakeFiles/secure_vector_test.dir/secure_vector_test.cc.o"
  "CMakeFiles/secure_vector_test.dir/secure_vector_test.cc.o.d"
  "secure_vector_test"
  "secure_vector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
