# Empty compiler generated dependencies file for clk_io_test.
# This may be replaced when dependencies are built.
