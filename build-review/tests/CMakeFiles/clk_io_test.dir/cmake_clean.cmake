file(REMOVE_RECURSE
  "CMakeFiles/clk_io_test.dir/clk_io_test.cc.o"
  "CMakeFiles/clk_io_test.dir/clk_io_test.cc.o.d"
  "clk_io_test"
  "clk_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clk_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
