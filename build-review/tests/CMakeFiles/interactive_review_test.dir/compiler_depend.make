# Empty compiler generated dependencies file for interactive_review_test.
# This may be replaced when dependencies are built.
