file(REMOVE_RECURSE
  "CMakeFiles/interactive_review_test.dir/interactive_review_test.cc.o"
  "CMakeFiles/interactive_review_test.dir/interactive_review_test.cc.o.d"
  "interactive_review_test"
  "interactive_review_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_review_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
