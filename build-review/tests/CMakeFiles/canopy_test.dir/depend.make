# Empty dependencies file for canopy_test.
# This may be replaced when dependencies are built.
