file(REMOVE_RECURSE
  "CMakeFiles/canopy_test.dir/canopy_test.cc.o"
  "CMakeFiles/canopy_test.dir/canopy_test.cc.o.d"
  "canopy_test"
  "canopy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canopy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
