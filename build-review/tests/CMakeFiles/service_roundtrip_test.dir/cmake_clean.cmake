file(REMOVE_RECURSE
  "CMakeFiles/service_roundtrip_test.dir/service_roundtrip_test.cc.o"
  "CMakeFiles/service_roundtrip_test.dir/service_roundtrip_test.cc.o.d"
  "service_roundtrip_test"
  "service_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
