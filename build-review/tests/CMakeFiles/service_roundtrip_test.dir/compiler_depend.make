# Empty compiler generated dependencies file for service_roundtrip_test.
# This may be replaced when dependencies are built.
