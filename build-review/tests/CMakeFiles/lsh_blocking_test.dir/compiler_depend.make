# Empty compiler generated dependencies file for lsh_blocking_test.
# This may be replaced when dependencies are built.
