file(REMOVE_RECURSE
  "CMakeFiles/lsh_blocking_test.dir/lsh_blocking_test.cc.o"
  "CMakeFiles/lsh_blocking_test.dir/lsh_blocking_test.cc.o.d"
  "lsh_blocking_test"
  "lsh_blocking_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsh_blocking_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
