file(REMOVE_RECURSE
  "CMakeFiles/pprl_cli.dir/pprl_cli.cpp.o"
  "CMakeFiles/pprl_cli.dir/pprl_cli.cpp.o.d"
  "pprl_cli"
  "pprl_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
