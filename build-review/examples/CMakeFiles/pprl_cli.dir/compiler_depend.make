# Empty compiler generated dependencies file for pprl_cli.
# This may be replaced when dependencies are built.
