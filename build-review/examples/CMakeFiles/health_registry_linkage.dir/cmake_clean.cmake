file(REMOVE_RECURSE
  "CMakeFiles/health_registry_linkage.dir/health_registry_linkage.cpp.o"
  "CMakeFiles/health_registry_linkage.dir/health_registry_linkage.cpp.o.d"
  "health_registry_linkage"
  "health_registry_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/health_registry_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
