# Empty dependencies file for health_registry_linkage.
# This may be replaced when dependencies are built.
