file(REMOVE_RECURSE
  "CMakeFiles/pprl_linkd.dir/pprl_linkd.cpp.o"
  "CMakeFiles/pprl_linkd.dir/pprl_linkd.cpp.o.d"
  "pprl_linkd"
  "pprl_linkd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprl_linkd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
