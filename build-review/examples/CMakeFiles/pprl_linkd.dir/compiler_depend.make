# Empty compiler generated dependencies file for pprl_linkd.
# This may be replaced when dependencies are built.
