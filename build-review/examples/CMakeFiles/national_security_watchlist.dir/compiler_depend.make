# Empty compiler generated dependencies file for national_security_watchlist.
# This may be replaced when dependencies are built.
