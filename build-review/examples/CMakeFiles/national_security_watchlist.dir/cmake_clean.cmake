file(REMOVE_RECURSE
  "CMakeFiles/national_security_watchlist.dir/national_security_watchlist.cpp.o"
  "CMakeFiles/national_security_watchlist.dir/national_security_watchlist.cpp.o.d"
  "national_security_watchlist"
  "national_security_watchlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/national_security_watchlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
