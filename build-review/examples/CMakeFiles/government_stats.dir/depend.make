# Empty dependencies file for government_stats.
# This may be replaced when dependencies are built.
