file(REMOVE_RECURSE
  "CMakeFiles/government_stats.dir/government_stats.cpp.o"
  "CMakeFiles/government_stats.dir/government_stats.cpp.o.d"
  "government_stats"
  "government_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/government_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
