# Empty dependencies file for tune_parameters.
# This may be replaced when dependencies are built.
