file(REMOVE_RECURSE
  "CMakeFiles/tune_parameters.dir/tune_parameters.cpp.o"
  "CMakeFiles/tune_parameters.dir/tune_parameters.cpp.o.d"
  "tune_parameters"
  "tune_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
