# Empty dependencies file for attack_and_harden.
# This may be replaced when dependencies are built.
