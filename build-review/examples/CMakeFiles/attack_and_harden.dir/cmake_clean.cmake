file(REMOVE_RECURSE
  "CMakeFiles/attack_and_harden.dir/attack_and_harden.cpp.o"
  "CMakeFiles/attack_and_harden.dir/attack_and_harden.cpp.o.d"
  "attack_and_harden"
  "attack_and_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_and_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
