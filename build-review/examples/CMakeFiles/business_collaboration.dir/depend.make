# Empty dependencies file for business_collaboration.
# This may be replaced when dependencies are built.
