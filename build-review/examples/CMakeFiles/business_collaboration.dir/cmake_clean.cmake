file(REMOVE_RECURSE
  "CMakeFiles/business_collaboration.dir/business_collaboration.cpp.o"
  "CMakeFiles/business_collaboration.dir/business_collaboration.cpp.o.d"
  "business_collaboration"
  "business_collaboration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/business_collaboration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
