/// Attack & harden (survey §3.2 / §5.3): plays both sides of the Bloom-
/// filter privacy arms race.
///
/// A database owner publishes encoded last names; an attacker armed with a
/// public name-frequency table mounts (1) a dictionary attack re-encoding
/// candidate names and (2) a frequency-driven pattern-mining attack. The
/// example then applies each hardening technique and reports how far the
/// attack success drops — and what the hardening costs in linkage quality
/// on a matched pair.
///
/// Build & run:   ./build/examples/attack_and_harden

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/lookup_data.h"
#include "encoding/bloom_filter.h"
#include "encoding/hardening.h"
#include "privacy/attacks.h"
#include "similarity/similarity.h"

namespace {

using namespace pprl;

struct Population {
  std::vector<std::string> plaintexts;
  std::vector<int> truth;
  std::vector<std::pair<std::string, double>> dictionary;
};

Population SamplePopulation(size_t n, uint64_t seed) {
  Population pop;
  const size_t dict = 60;
  const ZipfDistribution zipf(dict, 1.2);
  Rng rng(seed);
  for (size_t i = 0; i < dict; ++i) {
    pop.dictionary.push_back({std::string(datagen::kLastNames[i]), zipf.Pmf(i)});
  }
  for (size_t r = 0; r < n; ++r) {
    const size_t rank = zipf.Sample(rng);
    pop.plaintexts.push_back(pop.dictionary[rank].first);
    pop.truth.push_back(static_cast<int>(rank));
  }
  return pop;
}

double QualityProbe(const std::vector<BitVector>& encode_smith_smyth) {
  return DiceSimilarity(encode_smith_smyth[0], encode_smith_smyth[1]);
}

}  // namespace

int main() {
  const Population pop = SamplePopulation(2000, 7);
  BloomFilterParams params;
  params.num_bits = 1000;
  params.num_hashes = 10;
  const BloomFilterEncoder encoder(params);

  std::vector<std::string> dict_values;
  for (const auto& [v, f] : pop.dictionary) dict_values.push_back(v);

  struct Variant {
    const char* name;
    std::vector<BitVector> filters;
    std::vector<BitVector> probe;  // {smith, smyth} under the same hardening
  };
  std::vector<Variant> variants;

  auto encode_all = [&](auto&& transform) {
    std::vector<BitVector> filters;
    filters.reserve(pop.plaintexts.size());
    for (const auto& name : pop.plaintexts) {
      filters.push_back(transform(encoder.EncodeString(name)));
    }
    std::vector<BitVector> probe = {transform(encoder.EncodeString("smith")),
                                    transform(encoder.EncodeString("smyth"))};
    return std::make_pair(std::move(filters), std::move(probe));
  };

  {
    auto [f, p] = encode_all([](BitVector bf) { return bf; });
    variants.push_back({"plain double-hashing", std::move(f), std::move(p)});
  }
  {
    auto [f, p] = encode_all([](BitVector bf) { return Balance(bf, 99); });
    variants.push_back({"balanced (+permute)", std::move(f), std::move(p)});
  }
  {
    auto [f, p] = encode_all([](BitVector bf) { return XorFold(bf); });
    variants.push_back({"xor-folded", std::move(f), std::move(p)});
  }
  {
    auto [f, p] = encode_all([](BitVector bf) { return Rule90(bf); });
    variants.push_back({"rule-90", std::move(f), std::move(p)});
  }
  {
    Rng noise(123);
    auto [f, p] = encode_all([&noise](BitVector bf) { return Blip(bf, 0.1, noise); });
    variants.push_back({"BLIP f=0.10", std::move(f), std::move(p)});
  }

  std::printf("%-22s %-18s %-18s %-14s\n", "encoding", "dictionary-attack",
              "pattern-attack", "smith~smyth");
  for (auto& variant : variants) {
    AttackResult dict_attack =
        BloomDictionaryAttack(variant.filters, dict_values, encoder);
    const double dict_success = ScoreAttack(dict_attack, pop.truth);
    AttackResult pattern_attack =
        BloomPatternMiningAttack(variant.filters, pop.dictionary);
    const double pattern_success = ScoreAttack(pattern_attack, pop.truth);
    std::printf("%-22s %-18.3f %-18.3f %-14.3f\n", variant.name, dict_success,
                pattern_success, QualityProbe(variant.probe));
  }
  std::printf(
      "\nReading: hardening should push both attack columns toward 0 while\n"
      "keeping the similarity column (matching utility) high — the\n"
      "privacy/quality trade-off of survey Figure 3.\n");
  return 0;
}
