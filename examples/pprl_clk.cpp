/// pprl_clk — inspect and convert encoded-CLK shard files.
///
/// The linkage workflow moves shards around as files: the interchange CSV
/// (id, bits, clk — encoding/clk_io.h) and the binary columnar PCLK format
/// (io/pclk.h). This tool is the operator's lens on both:
///
///   pprl_clk info   <shard>             header/geometry summary
///   pprl_clk head   <shard> [n]         first n rows (default 10)
///   pprl_clk tail   <shard> [n]         last n rows (default 10)
///   pprl_clk sample <shard> [n] [seed]  n uniformly sampled rows
///   pprl_clk tocsv  <shard> <out.csv>   convert to interchange CSV
///   pprl_clk fromcsv <in.csv> <out.pclk>  convert to PCLK
///
/// For PCLK inputs, info reads only the 64-byte header, and head/tail/
/// sample seek straight to the requested rows (row-slice addressing) — a
/// multi-gigabyte shard answers in milliseconds. CSV inputs are loaded in
/// full through the streaming reader first.
///
/// Row listings print: row index, record id, popcount, and the first bytes
/// of the filter as hex (little-endian byte order, bit 0 = LSB of byte 0).

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "encoding/clk_io.h"
#include "io/checkpoint.h"
#include "io/ingest.h"
#include "io/pclk.h"
#include "io/wal.h"

using namespace pprl;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: pprl_clk <command> ...\n"
               "  pprl_clk info    <shard>\n"
               "  pprl_clk head    <shard> [n]\n"
               "  pprl_clk tail    <shard> [n]\n"
               "  pprl_clk sample  <shard> [n] [seed]\n"
               "  pprl_clk tocsv   <shard> <out.csv>\n"
               "  pprl_clk fromcsv <in.csv> <out.pclk>\n"
               "  pprl_clk verify  <file>\n"
               "  pprl_clk --help\n"
               "shard files may be PCLK (io/pclk.h) or interchange CSV\n"
               "(id, bits, clk); the format is sniffed from the content.\n"
               "verify checks every checksum of a PCLK shard, PCKP\n"
               "checkpoint or PWAL write-ahead-log segment offline and\n"
               "reports the first corrupt offset; a torn WAL tail (the\n"
               "normal post-crash artifact) is reported but passes.\n"
               "verify exits 0 (valid), 1 (corrupt) or 2 (usage).\n");
  return 2;
}

/// Hex preview of the first bytes of a filter row ("a1b2c3... "), enough
/// to eyeball corruption or compare two rows, never the whole filter.
std::string RowPreview(const BitMatrix& bits, size_t row) {
  const size_t filter_bytes = (bits.num_bits() + 7) / 8;
  const size_t preview = filter_bytes < 16 ? filter_bytes : 16;
  const uint64_t* words = bits.row(row);
  std::string out;
  out.reserve(2 * preview + 3);
  static const char kHex[] = "0123456789abcdef";
  for (size_t b = 0; b < preview; ++b) {
    const uint8_t byte =
        static_cast<uint8_t>(words[b / 8] >> (8 * (b % 8)));
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  if (preview < filter_bytes) out += "...";
  return out;
}

void PrintRows(const EncodedShard& shard, uint64_t first_index) {
  std::printf("%10s %20s %9s  %s\n", "row", "id", "popcount", "clk (hex)");
  for (size_t i = 0; i < shard.size(); ++i) {
    std::printf("%10" PRIu64 " %20" PRIu64 " %9zu  %s\n",
                first_index + i, shard.ids[i], shard.bits.row_count(i),
                RowPreview(shard.bits, i).c_str());
  }
}

/// Loads rows [begin, begin + count) of `path`. PCLK files are sliced by
/// offset arithmetic; CSV files are loaded whole and trimmed.
Result<EncodedShard> LoadSlice(const std::string& path, uint64_t begin,
                               uint64_t count) {
  if (io::DetectShardFileFormat(path) == io::ShardFileFormat::kPclk) {
    return io::ReadPclkSlice(path, begin, count);
  }
  auto shard = io::ReadCsvShard(path);
  if (!shard.ok()) return shard.status();
  if (begin > shard->size() || count > shard->size() - begin) {
    return Status::OutOfRange("row range [" + std::to_string(begin) + ", " +
                              std::to_string(begin + count) +
                              ") exceeds shard of " +
                              std::to_string(shard->size()) + " rows");
  }
  EncodedShard slice;
  slice.ids.assign(shard->ids.begin() + begin,
                   shard->ids.begin() + begin + count);
  slice.bits = BitMatrix(count, shard->bits.num_bits());
  for (uint64_t i = 0; i < count; ++i) {
    std::memcpy(slice.bits.mutable_row(i), shard->bits.row(begin + i),
                shard->bits.words_per_row() * 8);
  }
  slice.bits.RecomputeCounts();
  return slice;
}

/// Total rows in `path` without loading a PCLK file's data sections.
Result<uint64_t> CountRows(const std::string& path) {
  if (io::DetectShardFileFormat(path) == io::ShardFileFormat::kPclk) {
    auto info = io::ReadPclkInfo(path);
    if (!info.ok()) return info.status();
    return info->row_count;
  }
  auto shard = io::ReadCsvShard(path);
  if (!shard.ok()) return shard.status();
  return static_cast<uint64_t>(shard->size());
}

int CmdInfo(const std::string& path) {
  const io::ShardFileFormat format = io::DetectShardFileFormat(path);
  if (format == io::ShardFileFormat::kPclk) {
    auto info = io::ReadPclkInfo(path);
    if (!info.ok()) {
      std::fprintf(stderr, "%s\n", info.status().ToString().c_str());
      return 1;
    }
    std::printf("format:       pclk (version %u)\n", info->version);
    std::printf("rows:         %" PRIu64 "\n", info->row_count);
    std::printf("filter bits:  %u\n", info->filter_bits);
    std::printf("row stride:   %u bytes\n", info->row_stride_bytes);
    std::printf("popcounts:    %s\n",
                info->has_popcounts() ? "present" : "absent");
    std::printf("file size:    %" PRIu64 " bytes\n", info->total_bytes());
    return 0;
  }
  auto shard = io::ReadCsvShard(path);
  if (!shard.ok()) {
    std::fprintf(stderr, "%s\n", shard.status().ToString().c_str());
    return 1;
  }
  std::printf("format:       csv (interchange: id, bits, clk)\n");
  std::printf("rows:         %zu\n", shard->size());
  std::printf("filter bits:  %zu\n", shard->bits.num_bits());
  return 0;
}

int CmdHeadTail(const std::string& path, uint64_t n, bool tail) {
  auto total = CountRows(path);
  if (!total.ok()) {
    std::fprintf(stderr, "%s\n", total.status().ToString().c_str());
    return 1;
  }
  if (n > *total) n = *total;
  const uint64_t begin = tail ? *total - n : 0;
  auto slice = LoadSlice(path, begin, n);
  if (!slice.ok()) {
    std::fprintf(stderr, "%s\n", slice.status().ToString().c_str());
    return 1;
  }
  PrintRows(*slice, begin);
  return 0;
}

int CmdSample(const std::string& path, uint64_t n, uint64_t seed) {
  auto total = CountRows(path);
  if (!total.ok()) {
    std::fprintf(stderr, "%s\n", total.status().ToString().c_str());
    return 1;
  }
  if (n > *total) n = *total;
  // Sample row indices without replacement, then fetch each row as a
  // one-row slice (PCLK answers each by a few seeks).
  std::mt19937_64 rng(seed);
  std::vector<uint64_t> indices(*total);
  for (uint64_t i = 0; i < *total; ++i) indices[i] = i;
  for (uint64_t i = 0; i < n; ++i) {
    std::uniform_int_distribution<uint64_t> pick(i, *total - 1);
    std::swap(indices[i], indices[pick(rng)]);
  }
  indices.resize(n);
  std::printf("%10s %20s %9s  %s\n", "row", "id", "popcount", "clk (hex)");
  for (uint64_t row : indices) {
    auto slice = LoadSlice(path, row, 1);
    if (!slice.ok()) {
      std::fprintf(stderr, "%s\n", slice.status().ToString().c_str());
      return 1;
    }
    std::printf("%10" PRIu64 " %20" PRIu64 " %9zu  %s\n", row,
                slice->ids[0], slice->bits.row_count(0),
                RowPreview(slice->bits, 0).c_str());
  }
  return 0;
}

int CmdConvert(const std::string& in, const std::string& out,
               io::ShardFileFormat out_format) {
  io::IngestStats stats;
  auto shard = io::ReadShardAuto(in, io::ShardFileFormat::kAuto, &stats);
  if (!shard.ok()) {
    std::fprintf(stderr, "%s\n", shard.status().ToString().c_str());
    return 1;
  }
  const Status written = io::WriteShardFile(out, *shard, out_format);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu rows (%zu bits each) to %s as %s\n", shard->size(),
              shard->bits.num_bits(), out.c_str(),
              io::ShardFileFormatName(out_format));
  return 0;
}

/// Offline checksum validation of the durable formats. Sniffs the magic,
/// runs the format's full decoder (the same typed-error paths the daemon
/// refuses startup with), and reports what it found. The decoders name
/// the first corrupt offset in their error text.
int CmdVerify(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  uint32_t magic = 0;
  const size_t got = std::fread(&magic, 1, sizeof(magic), file);
  std::fclose(file);
  if (got != sizeof(magic)) {
    std::fprintf(stderr, "%s: too short to hold any known magic\n",
                 path.c_str());
    return 1;
  }

  if (magic == io::kPclkMagic) {
    auto shard = io::ReadPclkFile(path);
    if (!shard.ok()) {
      std::fprintf(stderr, "CORRUPT pclk: %s\n",
                   shard.status().ToString().c_str());
      return 1;
    }
    std::printf("pclk OK: %zu rows x %zu bits, all checksums verified\n",
                shard->size(), shard->bits.num_bits());
    return 0;
  }
  if (magic == io::kCheckpointMagic) {
    auto snapshot = io::ReadCheckpointFile(path);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "CORRUPT checkpoint: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::printf("checkpoint OK: %zu records of %zu databases, covers WAL "
                "sequence %" PRIu64 ", all checksums verified\n",
                snapshot->rows.size(), snapshot->database_names.size(),
                snapshot->wal_sequence);
    return 0;
  }
  if (magic == io::kWalMagic) {
    auto segment = io::ReadWalFile(path);
    if (!segment.ok()) {
      std::fprintf(stderr, "CORRUPT wal: %s\n",
                   segment.status().ToString().c_str());
      return 1;
    }
    std::printf("wal OK: %zu records (sequences %" PRIu64 "..%" PRIu64
                "), all checksums verified\n",
                segment->records.size(), segment->start_sequence,
                segment->records.empty()
                    ? segment->start_sequence
                    : segment->records.back().sequence);
    if (segment->torn_bytes > 0) {
      // Normal after a crash mid-append: recovery drops the same bytes.
      std::printf("wal note: torn tail of %" PRIu64 " bytes at offset %" PRIu64
                  " (incomplete final append; dropped on recovery)\n",
                  segment->torn_bytes, segment->torn_offset);
    }
    return 0;
  }
  std::fprintf(stderr,
               "%s: magic 0x%08x is none of pclk/checkpoint/wal "
               "(csv files have no checksums to verify)\n",
               path.c_str(), magic);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && (std::strcmp(argv[1], "--help") == 0 ||
                   std::strcmp(argv[1], "-h") == 0)) {
    Usage();
    return 0;
  }
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];

  if (command == "info") return CmdInfo(path);
  if (command == "verify") return CmdVerify(path);
  if (command == "head" || command == "tail") {
    const uint64_t n =
        argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 10;
    return CmdHeadTail(path, n, command == "tail");
  }
  if (command == "sample") {
    const uint64_t n =
        argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3])) : 10;
    const uint64_t seed =
        argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 42;
    return CmdSample(path, n, seed);
  }
  if (command == "tocsv" && argc > 3) {
    return CmdConvert(path, argv[3], io::ShardFileFormat::kCsv);
  }
  if (command == "fromcsv" && argc > 3) {
    return CmdConvert(path, argv[3], io::ShardFileFormat::kPclk);
  }
  return Usage();
}
