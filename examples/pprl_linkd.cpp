/// pprl_linkd — the linkage unit as a standalone daemon.
///
/// Owners run `pprl_cli encode` locally, then `pprl_cli ship` their
/// interchange files to this process; once the expected number of owners
/// has shipped, the daemon links all databases and answers every owner
/// with its per-owner match summary. One linkage run per invocation.
///
/// usage:
///   pprl_linkd <port> <expected_owners> [dice_threshold] [--all-interfaces]
///              [--metrics <port>] [--threads <n>]
///              [--io-timeout-ms <ms>] [--max-sessions <n>]
///              [--session-ttl-ms <ms>] [--min-owners <n>] [--chaos <seed>]
///              [--spool <dir>] [--spool-format csv|pclk]
///
/// With --metrics, a Prometheus text endpoint (GET /metrics) is served on
/// the given port (0 picks an ephemeral one; the bound port is printed).
/// With --threads > 1, linkage runs stream candidate shards through a
/// shared work-stealing scheduler; results are identical to serial runs.
///
/// Robustness knobs: --io-timeout-ms bounds every socket read/write;
/// --max-sessions caps concurrent connections (excess is shed with a BUSY
/// frame); --session-ttl-ms sweeps idle partial shipments; --min-owners
/// arms the quorum option (link with fewer owners after a quiet period,
/// flagged as degraded in every summary). --chaos wraps every accepted
/// connection in the seeded fault injector — for drills, never production.
///
/// With --spool, every registered shipment is also persisted to the given
/// (existing) directory as "<party>.pclk" (or ".csv" with --spool-format
/// csv) — an audit/replay trail of exactly what each owner shipped.
///
/// example (three terminals):
///   ./build/examples/pprl_linkd 7001 2
///   ./build/examples/pprl_cli ship /tmp/a_clks.csv hospital-a 127.0.0.1:7001
///   ./build/examples/pprl_cli ship /tmp/b_clks.csv hospital-b 127.0.0.1:7001

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cache_info.h"
#include "common/logging.h"
#include "linkage/parallel_linkage.h"
#include "service/server.h"

using namespace pprl;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: pprl_linkd <port> <expected_owners> [dice_threshold]"
                 " [--all-interfaces] [--metrics <port>] [--threads <n>]"
                 " [--io-timeout-ms <ms>] [--max-sessions <n>]"
                 " [--session-ttl-ms <ms>] [--min-owners <n>] [--chaos <seed>]"
                 " [--spool <dir>] [--spool-format csv|pclk]\n");
    return 2;
  }
  LinkageUnitServerConfig config;
  config.name = "pprl-linkd";
  config.port = static_cast<uint16_t>(std::atoi(argv[1]));
  config.expected_owners = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3 && argv[3][0] != '-') {
    config.link_options.dice_threshold = std::atof(argv[3]);
  }
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all-interfaces") config.loopback_only = false;
    if (arg == "--metrics" && i + 1 < argc) {
      config.metrics_port = std::atoi(argv[++i]);
    }
    if (arg == "--threads" && i + 1 < argc) {
      config.link_threads = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--io-timeout-ms" && i + 1 < argc) {
      config.io_timeout_ms = std::atoi(argv[++i]);
    }
    if (arg == "--max-sessions" && i + 1 < argc) {
      config.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--session-ttl-ms" && i + 1 < argc) {
      config.session_ttl_ms = std::atoi(argv[++i]);
    }
    if (arg == "--min-owners" && i + 1 < argc) {
      config.min_owners = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--spool" && i + 1 < argc) {
      config.spool_dir = argv[++i];
    }
    if (arg == "--spool-format" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format == "csv") {
        config.spool_format = io::ShardFileFormat::kCsv;
      } else if (format == "pclk") {
        config.spool_format = io::ShardFileFormat::kPclk;
      } else {
        std::fprintf(stderr, "--spool-format must be csv or pclk, got %s\n",
                     format.c_str());
        return 2;
      }
    }
    if (arg == "--chaos" && i + 1 < argc) {
      config.chaos.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      config.chaos.close_rate = 0.01;
      config.chaos.delay_rate = 0.05;
      config.chaos.truncate_rate = 0.005;
      config.chaos.corrupt_rate = 0.005;
    }
  }

  LinkageUnitServer server(config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("pprl_linkd: waiting on port %u for %zu owners (dice >= %.2f, %s)\n",
              server.port(), config.expected_owners,
              config.link_options.dice_threshold,
              config.loopback_only ? "loopback only" : "all interfaces");
  // The effective robustness configuration, defaults resolved — what an
  // operator needs to predict the daemon's behaviour under faults.
  std::printf(
      "pprl_linkd: robustness: io timeout %d ms, max %zu sessions, "
      "session ttl %d ms, deadline %d ms, buffer cap %.1f MiB\n",
      config.io_timeout_ms, server.max_sessions(), config.session_ttl_ms,
      config.session_deadline_ms,
      static_cast<double>(config.max_buffered_bytes) / (1024.0 * 1024.0));
  // Ingest side of the effective config: which shard formats the daemon
  // accepts on the wire path, and where (and how) shipments are spooled.
  if (config.spool_dir.empty()) {
    std::printf("pprl_linkd: ingest formats: csv, pclk (spooling off)\n");
  } else {
    std::printf("pprl_linkd: ingest formats: csv, pclk; spooling shipments to "
                "%s as %s\n",
                config.spool_dir.c_str(),
                io::ShardFileFormatName(config.spool_format));
  }
  // Parallel-compare side of the effective config: worker count plus the
  // auto-resolved shard/tile sizes (printed for the common 500- and
  // 1000-bit filter widths — the actual run resolves against the width of
  // the filters that arrive) and the cache hierarchy they were derived
  // from. Zeroes in the config mean "auto"; this is what auto picked.
  {
    const CacheInfo& cache = DetectCacheInfo();
    ParallelLinkageOptions link_tuning_options;
    link_tuning_options.num_threads = config.link_threads;
    std::printf(
        "pprl_linkd: parallel compare: %zu thread%s; caches l1d %zu KiB, "
        "l2 %zu KiB, llc %zu MiB\n",
        config.link_threads, config.link_threads == 1 ? "" : "s",
        cache.l1d_bytes >> 10, cache.l2_bytes >> 10, cache.llc_bytes >> 20);
    for (const size_t bits : {size_t{500}, size_t{1000}}) {
      const ResolvedParallelTuning tuning =
          ResolveParallelTuning(link_tuning_options, bits);
      std::printf(
          "pprl_linkd:   @%zu bits: shard %zu pairs, tiles %zu x %zu rows, "
          "window %zu shards\n",
          bits, tuning.shard_size, tuning.tile_a_rows, tuning.tile_b_rows,
          tuning.max_pending_shards);
    }
  }
  if (config.min_owners >= 2 && config.min_owners < config.expected_owners) {
    std::printf("pprl_linkd: quorum armed: will link with >= %zu owners after "
                "%d ms without a new shipment (degraded result)\n",
                config.min_owners, config.quorum_wait_ms);
  }
  if (config.chaos.enabled()) {
    std::printf("pprl_linkd: CHAOS MODE: injecting faults with seed %llu\n",
                static_cast<unsigned long long>(config.chaos.seed));
  }
  if (server.metrics_port() != 0) {
    std::printf("pprl_linkd: metrics at http://127.0.0.1:%u/metrics\n",
                server.metrics_port());
  }

  const Status done = server.WaitUntilDone(/*timeout_ms=*/0);
  if (!done.ok()) {
    std::fprintf(stderr, "linkage failed: %s\n", done.ToString().c_str());
    server.Stop();
    return 1;
  }
  auto result = server.result();
  if (server.linkage_degraded()) {
    std::printf("\nWARNING: degraded run — linked %zu of %zu expected owners "
                "(quorum option)\n",
                server.owner_order().size(), config.expected_owners);
  }
  std::printf("\nlinked %zu databases: %zu clusters, %zu edges, %zu comparisons\n",
              server.owner_order().size(), result->clusters.size(),
              result->edges.size(), result->comparisons);
  std::printf("metered traffic: %zu messages, %.1f KiB payload; wire %.1f KiB\n",
              server.channel().total_messages(),
              static_cast<double>(server.channel().total_bytes()) / 1024.0,
              static_cast<double>(server.wire_bytes_received() +
                                  server.wire_bytes_sent()) /
                  1024.0);
  const auto messages = server.channel().messages_by_tag();
  for (const auto& [tag, bytes] : server.channel().bytes_by_tag()) {
    const auto it = messages.find(tag);
    std::printf("  %-16s %8zu msgs %10.1f KiB\n", tag.c_str(),
                it == messages.end() ? size_t{0} : it->second,
                static_cast<double>(bytes) / 1024.0);
  }
  server.Stop();
  return 0;
}
