/// pprl_linkd — the linkage unit as a standalone daemon.
///
/// Owners run `pprl_cli encode` locally, then `pprl_cli ship` their
/// interchange files to this process; once the expected number of owners
/// has shipped, the daemon links all databases and answers every owner
/// with its per-owner match summary. One linkage run per invocation.
///
/// Three roles (docs/OPERATIONS.md):
///   default       single daemon: blocks, compares and clusters locally.
///   --workers     coordinator: re-ships every owner database to the given
///                 worker daemons, assigns each its slice of the candidate
///                 space (consistent block-key partitioning), merges the
///                 gathered partitions and clusters globally. Results are
///                 bitwise-identical to a single daemon's at any worker
///                 count.
///   --worker      worker: holds shipments and answers a coordinator's
///                 partition assignments; never links on its own and never
///                 answers owners with results.
///   --online      serving: every shipment feeds an incrementally
///                 maintained LSH index + cluster partition, and sessions
///                 then serve record appends and link queries (protocol
///                 v4, `pprl_cli append` / `pprl_cli query`) until the
///                 daemon is stopped. No batch linkage run.
///
/// With --metrics, a Prometheus text endpoint (GET /metrics) is served on
/// the given port (0 picks an ephemeral one; the bound port is printed).
/// With --threads > 1, linkage runs stream candidate shards through a
/// shared work-stealing scheduler; results are identical to serial runs.
///
/// Robustness knobs: --io-timeout-ms bounds every socket read/write;
/// --max-sessions caps concurrent connections (excess is shed with a BUSY
/// frame); --session-ttl-ms sweeps idle partial shipments; --min-owners
/// arms the quorum option (link with fewer owners after a quiet period,
/// flagged as degraded in every summary); --min-worker-quorum is the
/// coordinator-side analogue over worker partitions. --chaos wraps every
/// accepted connection (and, on a coordinator, every worker link) in the
/// seeded fault injector — for drills, never production.
///
/// With --spool, every registered shipment is also persisted to the given
/// (existing) directory as "<party>.pclk" (or ".csv" with --spool-format
/// csv) — an audit/replay trail of exactly what each owner shipped.
///
/// example (three terminals):
///   ./build/examples/pprl_linkd 7001 2
///   ./build/examples/pprl_cli ship /tmp/a_clks.csv hospital-a 127.0.0.1:7001
///   ./build/examples/pprl_cli ship /tmp/b_clks.csv hospital-b 127.0.0.1:7001

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/cache_info.h"
#include "common/logging.h"
#include "linkage/parallel_linkage.h"
#include "service/coordinator.h"
#include "service/server.h"

using namespace pprl;

namespace {

/// Set by the SIGTERM/SIGINT handler; the serving roles poll it and shut
/// down gracefully (drain sessions, final checkpoint, exit 0).
volatile std::sig_atomic_t g_signal = 0;

void HandleShutdownSignal(int signum) { g_signal = signum; }

/// Blocks until the operator stops the daemon. WaitUntilDone never
/// completes for a serving role (there is no linkage-done state), so wait
/// in short slices and poll the signal flag between them — a handler
/// cannot wake a condition variable safely on its own.
void ServeUntilSignalled(LinkageUnitServer& server) {
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  // Operators (and the check.sh gates) watch the daemon's log file for the
  // startup and recovery lines; push them out before blocking.
  std::fflush(stdout);
  while (g_signal == 0) {
    server.WaitUntilDone(/*timeout_ms=*/200);
  }
  std::printf("pprl_linkd: received %s, draining sessions and stopping\n",
              g_signal == SIGTERM ? "SIGTERM" : "SIGINT");
}

int Usage(FILE* out) {
  std::fprintf(
      out,
      "usage: pprl_linkd <port> <expected_owners> [dice_threshold] [options]\n"
      "\n"
      "roles:\n"
      "  (default)                  single daemon: link locally once every\n"
      "                             expected owner has shipped\n"
      "  --workers <host:port,...>  coordinator: shard the compare across the\n"
      "                             listed worker daemons (order matters: it\n"
      "                             is the partition geometry)\n"
      "  --coordinator              explicit coordinator role (implied by\n"
      "                             --workers)\n"
      "  --worker                   worker: answer partition assignments from\n"
      "                             a coordinator; never link alone\n"
      "  --online                   serving: maintain a live LSH index and\n"
      "                             cluster partition; sessions append and\n"
      "                             link-query records until stopped\n"
      "\n"
      "coordinator options:\n"
      "  --partition-scheme <s>     block-key partitioning: auto | rendezvous\n"
      "                             | ring (auto: rendezvous up to 8 workers,\n"
      "                             consistent-hash ring beyond)\n"
      "  --min-worker-quorum <n>    proceed (degraded) once >= n worker\n"
      "                             partitions gathered; 0 = all required\n"
      "  --assign-timeout-ms <ms>   socket wait for one worker's partition\n"
      "                             result (default 120000)\n"
      "\n"
      "options:\n"
      "  --all-interfaces           bind 0.0.0.0 instead of loopback\n"
      "  --metrics <port>           serve Prometheus text at /metrics\n"
      "  --threads <n>              parallel compare/cluster workers\n"
      "  --io-timeout-ms <ms>       per-socket read/write timeout\n"
      "  --max-sessions <n>         concurrent connection cap (excess shed)\n"
      "  --session-ttl-ms <ms>      idle partial-shipment sweep age\n"
      "  --min-owners <n>           owner quorum: link with fewer owners\n"
      "                             after a quiet period (degraded)\n"
      "  --clustering star|cc       cluster materialization: star clustering\n"
      "                             (default) or connected components\n"
      "  --chaos <seed>             deterministic fault injection (drills)\n"
      "  --spool <dir>              persist registered shipments to <dir>\n"
      "  --spool-format csv|pclk    spool file format (default pclk)\n"
      "\n"
      "durability (online role, docs/OPERATIONS.md runbook):\n"
      "  --wal-dir <dir>            journal every absorbed record to a WAL\n"
      "                             in <dir> before acking, and recover\n"
      "                             checkpoint + WAL replay on startup\n"
      "  --checkpoint-dir <dir>     checkpoint directory (default: --wal-dir)\n"
      "  --wal-sync-ms <ms>         WAL fsync group-commit window; <= 0\n"
      "                             fsyncs every append (default 50)\n"
      "  --checkpoint-every-n <n>   checkpoint after n journaled operations;\n"
      "                             0 checkpoints only on shutdown\n"
      "                             (default 100000)\n"
      "  --chaos-crash-after <n>    crash drill: die (SIGKILL-equivalent)\n"
      "                             right after the n-th journaled operation\n"
      "  --help                     this text\n");
  return out == stdout ? 0 : 2;
}

/// The effective parallel-compare configuration, defaults resolved — what
/// an operator needs to predict memory/cache behaviour. Printed for every
/// role: workers compare partitions, coordinators cluster, single daemons
/// do both.
void PrintParallelTuning(const LinkageUnitServerConfig& config) {
  const CacheInfo& cache = DetectCacheInfo();
  ParallelLinkageOptions link_tuning_options;
  link_tuning_options.num_threads = config.link_threads;
  std::printf(
      "pprl_linkd: parallel compare: %zu thread%s; caches l1d %zu KiB, "
      "l2 %zu KiB, llc %zu MiB\n",
      config.link_threads, config.link_threads == 1 ? "" : "s",
      cache.l1d_bytes >> 10, cache.l2_bytes >> 10, cache.llc_bytes >> 20);
  // The auto-resolved shard/tile geometry at the common 500- and 1000-bit
  // filter widths — the actual run resolves against the width that
  // arrives. Zeroes in the config mean "auto"; this is what auto picked.
  for (const size_t bits : {size_t{500}, size_t{1000}}) {
    const ResolvedParallelTuning tuning =
        ResolveParallelTuning(link_tuning_options, bits);
    std::printf(
        "pprl_linkd:   @%zu bits: shard %zu pairs, tiles %zu x %zu rows, "
        "window %zu shards\n",
        bits, tuning.shard_size, tuning.tile_a_rows, tuning.tile_b_rows,
        tuning.max_pending_shards);
  }
}

void PrintCommonConfig(const LinkageUnitServerConfig& config,
                       size_t effective_max_sessions) {
  std::printf(
      "pprl_linkd: robustness: io timeout %d ms, max %zu sessions, "
      "session ttl %d ms, deadline %d ms, buffer cap %.1f MiB\n",
      config.io_timeout_ms, effective_max_sessions, config.session_ttl_ms,
      config.session_deadline_ms,
      static_cast<double>(config.max_buffered_bytes) / (1024.0 * 1024.0));
  if (config.spool_dir.empty()) {
    std::printf("pprl_linkd: ingest formats: csv, pclk (spooling off)\n");
  } else {
    std::printf("pprl_linkd: ingest formats: csv, pclk; spooling shipments to "
                "%s as %s\n",
                config.spool_dir.c_str(),
                io::ShardFileFormatName(config.spool_format));
  }
  PrintParallelTuning(config);
  if (config.chaos.enabled()) {
    std::printf("pprl_linkd: CHAOS MODE: injecting faults with seed %llu\n",
                static_cast<unsigned long long>(config.chaos.seed));
  }
}

void PrintTraffic(const LinkageUnitServer& server) {
  std::printf("metered traffic: %zu messages, %.1f KiB payload; wire %.1f KiB\n",
              server.channel().total_messages(),
              static_cast<double>(server.channel().total_bytes()) / 1024.0,
              static_cast<double>(server.wire_bytes_received() +
                                  server.wire_bytes_sent()) /
                  1024.0);
  const auto messages = server.channel().messages_by_tag();
  for (const auto& [tag, bytes] : server.channel().bytes_by_tag()) {
    const auto it = messages.find(tag);
    std::printf("  %-16s %8zu msgs %10.1f KiB\n", tag.c_str(),
                it == messages.end() ? size_t{0} : it->second,
                static_cast<double>(bytes) / 1024.0);
  }
}

void PrintResult(const LinkageUnitServer& server, size_t expected_owners) {
  auto result = server.result();
  if (server.linkage_degraded()) {
    std::printf("\nWARNING: degraded run — linked %zu of %zu expected owners, "
                "%u of %u worker partitions\n",
                server.owner_order().size(), expected_owners,
                server.workers_linked(), server.workers_expected());
  }
  std::printf("\nlinked %zu databases: %zu clusters, %zu edges, %zu comparisons\n",
              server.owner_order().size(), result->clusters.size(),
              result->edges.size(), result->comparisons);
  PrintTraffic(server);
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return Usage(stdout);
    }
  }
  if (argc < 3) return Usage(stderr);

  LinkageUnitServerConfig config;
  CoordinatorConfig coordinator_config;
  bool worker_role = false;
  bool coordinator_role = false;
  bool online_role = false;
  config.name = "pprl-linkd";
  config.port = static_cast<uint16_t>(std::atoi(argv[1]));
  config.expected_owners = static_cast<size_t>(std::atoll(argv[2]));
  if (argc > 3 && argv[3][0] != '-') {
    config.link_options.dice_threshold = std::atof(argv[3]);
  }
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all-interfaces") config.loopback_only = false;
    if (arg == "--worker") worker_role = true;
    if (arg == "--coordinator") coordinator_role = true;
    if (arg == "--online") online_role = true;
    if (arg == "--clustering" && i + 1 < argc) {
      const std::string clustering = argv[++i];
      if (clustering == "star") {
        config.link_options.use_star_clustering = true;
      } else if (clustering == "cc") {
        config.link_options.use_star_clustering = false;
      } else {
        std::fprintf(stderr, "--clustering must be star or cc, got %s\n",
                     clustering.c_str());
        return 2;
      }
    }
    if (arg == "--workers" && i + 1 < argc) {
      coordinator_role = true;
      auto workers = ParseWorkerList(argv[++i]);
      if (!workers.ok()) {
        std::fprintf(stderr, "%s\n", workers.status().ToString().c_str());
        return 2;
      }
      coordinator_config.workers = std::move(*workers);
    }
    if (arg == "--partition-scheme" && i + 1 < argc) {
      const std::string scheme = argv[++i];
      if (scheme == "auto") {
        coordinator_config.scheme = PartitionScheme::kAuto;
      } else if (scheme == "rendezvous") {
        coordinator_config.scheme = PartitionScheme::kRendezvous;
      } else if (scheme == "ring") {
        coordinator_config.scheme = PartitionScheme::kConsistentRing;
      } else {
        std::fprintf(stderr,
                     "--partition-scheme must be auto, rendezvous or ring, "
                     "got %s\n",
                     scheme.c_str());
        return 2;
      }
    }
    if (arg == "--min-worker-quorum" && i + 1 < argc) {
      coordinator_config.min_worker_partitions =
          static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--assign-timeout-ms" && i + 1 < argc) {
      coordinator_config.assign_timeout_ms = std::atoi(argv[++i]);
    }
    if (arg == "--metrics" && i + 1 < argc) {
      config.metrics_port = std::atoi(argv[++i]);
    }
    if (arg == "--threads" && i + 1 < argc) {
      config.link_threads = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--io-timeout-ms" && i + 1 < argc) {
      config.io_timeout_ms = std::atoi(argv[++i]);
    }
    if (arg == "--max-sessions" && i + 1 < argc) {
      config.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--session-ttl-ms" && i + 1 < argc) {
      config.session_ttl_ms = std::atoi(argv[++i]);
    }
    if (arg == "--min-owners" && i + 1 < argc) {
      config.min_owners = static_cast<size_t>(std::atoll(argv[++i]));
    }
    if (arg == "--spool" && i + 1 < argc) {
      config.spool_dir = argv[++i];
    }
    if (arg == "--spool-format" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format == "csv") {
        config.spool_format = io::ShardFileFormat::kCsv;
      } else if (format == "pclk") {
        config.spool_format = io::ShardFileFormat::kPclk;
      } else {
        std::fprintf(stderr, "--spool-format must be csv or pclk, got %s\n",
                     format.c_str());
        return 2;
      }
    }
    if (arg == "--wal-dir" && i + 1 < argc) {
      config.wal_dir = argv[++i];
    }
    if (arg == "--checkpoint-dir" && i + 1 < argc) {
      config.checkpoint_dir = argv[++i];
    }
    if (arg == "--wal-sync-ms" && i + 1 < argc) {
      config.wal_sync_ms = std::atoi(argv[++i]);
    }
    if (arg == "--checkpoint-every-n" && i + 1 < argc) {
      config.checkpoint_every_n = static_cast<uint64_t>(std::atoll(argv[++i]));
    }
    if (arg == "--chaos-crash-after" && i + 1 < argc) {
      config.chaos.crash_after_ops = static_cast<uint64_t>(std::atoll(argv[++i]));
    }
    if (arg == "--chaos" && i + 1 < argc) {
      config.chaos.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      config.chaos.close_rate = 0.01;
      config.chaos.delay_rate = 0.05;
      config.chaos.truncate_rate = 0.005;
      config.chaos.corrupt_rate = 0.005;
    }
  }
  if (worker_role && coordinator_role) {
    std::fprintf(stderr, "--worker and --coordinator are mutually exclusive\n");
    return 2;
  }
  if (online_role && (worker_role || coordinator_role)) {
    std::fprintf(stderr,
                 "--online is a serving role; it combines with neither "
                 "--worker nor --coordinator\n");
    return 2;
  }
  if (coordinator_role && coordinator_config.workers.empty()) {
    std::fprintf(stderr, "--coordinator needs --workers <host:port,...>\n");
    return 2;
  }

  if (online_role) {
    config.name = "pprl-linkd-online";
    config.online_mode = true;
    LinkageUnitServer server(config);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("pprl_linkd: ONLINE on port %u, serving appends and link "
                "queries (dice >= %.2f, %zu LSH tables x %zu bits, %s)\n",
                server.port(), config.link_options.dice_threshold,
                config.link_options.lsh_tables,
                config.link_options.lsh_bits_per_key,
                config.loopback_only ? "loopback only" : "all interfaces");
    if (server.durable()) {
      const RecoveryReport& rec = server.recovery_report();
      std::printf("pprl_linkd: durable: WAL in %s (fsync window %d ms), "
                  "checkpoint every %llu ops in %s\n",
                  config.wal_dir.c_str(), config.wal_sync_ms,
                  static_cast<unsigned long long>(config.checkpoint_every_n),
                  (config.checkpoint_dir.empty() ? config.wal_dir
                                                 : config.checkpoint_dir)
                      .c_str());
      std::printf("pprl_linkd: recovery: %llu checkpointed + %llu replayed "
                  "records (%llu torn bytes dropped) in %.3f s\n",
                  static_cast<unsigned long long>(rec.checkpoint_records),
                  static_cast<unsigned long long>(rec.replayed_records),
                  static_cast<unsigned long long>(rec.torn_bytes_dropped),
                  rec.seconds);
    }
    PrintCommonConfig(config, server.max_sessions());
    if (server.metrics_port() != 0) {
      std::printf("pprl_linkd: metrics at http://127.0.0.1:%u/metrics\n",
                  server.metrics_port());
    }
    // An online daemon serves until its operator stops it; there is no
    // "done" state of its own.
    ServeUntilSignalled(server);
    server.Stop();
    return 0;
  }

  if (worker_role) {
    config.name = "pprl-linkd-worker";
    config.worker_mode = true;
    LinkageUnitServer server(config);
    const Status started = server.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("pprl_linkd: WORKER on port %u, holding shipments of %zu owners "
                "for a coordinator (%s)\n",
                server.port(), config.expected_owners,
                config.loopback_only ? "loopback only" : "all interfaces");
    PrintCommonConfig(config, server.max_sessions());
    if (server.metrics_port() != 0) {
      std::printf("pprl_linkd: metrics at http://127.0.0.1:%u/metrics\n",
                  server.metrics_port());
    }
    // A worker serves assignments until its operator stops it; there is no
    // "done" state of its own.
    ServeUntilSignalled(server);
    server.Stop();
    return 0;
  }

  if (coordinator_role) {
    config.name = "pprl-linkd-coord";
    // Chaos on a coordinator drills both sides: accepted owner connections
    // (server config) and the outbound worker links.
    coordinator_config.chaos = config.chaos;
    CoordinatorServer coordinator(config, coordinator_config);
    const Status started = coordinator.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("pprl_linkd: COORDINATOR on port %u for %zu owners, sharding "
                "across %zu workers (dice >= %.2f, %s)\n",
                coordinator.port(), config.expected_owners,
                coordinator.num_workers(), config.link_options.dice_threshold,
                config.loopback_only ? "loopback only" : "all interfaces");
    for (const WorkerEndpoint& worker : coordinator_config.workers) {
      std::printf("pprl_linkd:   worker %s\n", worker.Label().c_str());
    }
    if (coordinator_config.min_worker_partitions > 0) {
      std::printf("pprl_linkd: worker quorum armed: will merge >= %zu of %zu "
                  "partitions (degraded result below %zu)\n",
                  coordinator_config.min_worker_partitions,
                  coordinator.num_workers(), coordinator.num_workers());
    }
    PrintCommonConfig(config, coordinator.server().max_sessions());
    if (coordinator.metrics_port() != 0) {
      std::printf("pprl_linkd: metrics at http://127.0.0.1:%u/metrics\n",
                  coordinator.metrics_port());
    }
    const Status done = coordinator.WaitUntilDone(/*timeout_ms=*/0);
    if (!done.ok()) {
      std::fprintf(stderr, "linkage failed: %s\n", done.ToString().c_str());
      coordinator.Stop();
      return 1;
    }
    PrintResult(coordinator.server(), config.expected_owners);
    std::printf("worker links: %.1f KiB payload, wire %.1f KiB, %zu retries\n",
                static_cast<double>(coordinator.worker_channel().total_bytes()) /
                    1024.0,
                static_cast<double>(coordinator.worker_wire_bytes_sent() +
                                    coordinator.worker_wire_bytes_received()) /
                    1024.0,
                coordinator.worker_retries());
    coordinator.Stop();
    return 0;
  }

  LinkageUnitServer server(config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("pprl_linkd: waiting on port %u for %zu owners (dice >= %.2f, %s)\n",
              server.port(), config.expected_owners,
              config.link_options.dice_threshold,
              config.loopback_only ? "loopback only" : "all interfaces");
  PrintCommonConfig(config, server.max_sessions());
  if (config.min_owners >= 2 && config.min_owners < config.expected_owners) {
    std::printf("pprl_linkd: quorum armed: will link with >= %zu owners after "
                "%d ms without a new shipment (degraded result)\n",
                config.min_owners, config.quorum_wait_ms);
  }
  if (server.metrics_port() != 0) {
    std::printf("pprl_linkd: metrics at http://127.0.0.1:%u/metrics\n",
                server.metrics_port());
  }

  const Status done = server.WaitUntilDone(/*timeout_ms=*/0);
  if (!done.ok()) {
    std::fprintf(stderr, "linkage failed: %s\n", done.ToString().c_str());
    server.Stop();
    return 1;
  }
  PrintResult(server, config.expected_owners);
  server.Stop();
  return 0;
}
