/// Business collaboration (survey §4.3): a retailer and an insurer want to
/// know (a) how many customers they share and (b) the combined annual spend
/// of the shared customers — without exchanging customer lists or letting
/// either side attach the other's spend values to identified people.
///
/// Protocol:
///   1. Both encode customers as keyed CLKs and a linkage unit matches them
///      (fuzzy matching so typo'd duplicates count).
///   2. The matched-pair *count* is released with output-constrained DP
///      noise [14], so the presence of any single non-shared customer is
///      hidden.
///   3. The shared-customer spend total is computed by secure summation
///      across the three parties (retailer share, insurer share, LU as the
///      third mask holder), so only the aggregate is revealed.
///
/// Build & run:   ./build/examples/business_collaboration

#include <cstdio>

#include "crypto/secret_sharing.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"
#include "privacy/dp.h"

int main() {
  using namespace pprl;

  // Customer bases with 30% true overlap; spends are synthetic per record.
  DataGenerator generator(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 1200;
  scenario.overlap = 0.3;
  scenario.corruption.mean_corruptions = 1.0;
  auto databases = generator.GenerateScenario(scenario);
  if (!databases.ok()) {
    std::fprintf(stderr, "%s\n", databases.status().ToString().c_str());
    return 1;
  }
  const Database& retailer = (*databases)[0];
  const Database& insurer = (*databases)[1];
  Rng rng(11);
  std::vector<uint64_t> retailer_spend(retailer.size()), insurer_spend(insurer.size());
  for (auto& s : retailer_spend) s = 100 + rng.NextUint64(4900);
  for (auto& s : insurer_spend) s = 200 + rng.NextUint64(1800);

  // 1. Keyed fuzzy linkage at the LU.
  PipelineConfig config;
  config.bloom.scheme = BloomHashScheme::kKeyedHmac;
  config.bloom.secret_key = "retailer<->insurer 2026 campaign";
  config.match_threshold = 0.8;
  auto output = PprlPipeline(config).Link(retailer, insurer);
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }
  const GroundTruth truth(retailer, insurer);
  const ConfusionCounts counts = EvaluateMatches(output->matches, truth);

  // 2. DP release of the shared-customer count.
  const double epsilon = 0.5;
  const size_t noisy_shared = NoisyCount(output->matches.size(), epsilon, rng);

  // 3. Secure summation of the shared spend: the retailer sums its side,
  //    the insurer its side, the LU contributes 0 but completes the ring.
  uint64_t retailer_total = 0, insurer_total = 0;
  for (const ScoredPair& m : output->matches) {
    retailer_total += retailer_spend[m.a];
    insurer_total += insurer_spend[m.b];
  }
  auto sum = SecureSum({retailer_total, insurer_total, 0},
                       SecureSumProtocol::kMaskedRing, rng);
  if (!sum.ok()) return 1;

  std::printf("customers per business       : %zu\n", retailer.size());
  std::printf("true shared customers        : %zu\n", truth.num_matches());
  std::printf("matched (found) pairs        : %zu  (precision %.3f, recall %.3f)\n",
              output->matches.size(), counts.Precision(), counts.Recall());
  std::printf("DP-released shared count     : %zu  (epsilon %.1f)\n", noisy_shared,
              epsilon);
  std::printf("secure joint spend           : %llu  (exact: %llu)\n",
              static_cast<unsigned long long>(sum->sum),
              static_cast<unsigned long long>(retailer_total + insurer_total));
  std::printf("summation cost               : %zu messages, %zu rounds\n",
              sum->messages, sum->rounds);
  std::printf(
      "\nReading: each business learns the aggregate overlap and joint\n"
      "spend — enough for the campaign decision — and nothing about which\n"
      "of the other's customers are shared.\n");
  return 0;
}
