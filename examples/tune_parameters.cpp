/// Parameter tuning (survey §3.1 "schema optimization"): finds a good
/// (filter length, match threshold) setting for a linkage workload using
/// grid search, random search, and Bayesian optimisation on the same
/// evaluation budget, reporting how quickly each reaches a strong F1.
///
/// Build & run:   ./build/examples/tune_parameters

#include <cstdio>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"
#include "tuning/tuner.h"

int main() {
  using namespace pprl;

  DataGenerator generator(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 400;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.5;
  auto dbs = generator.GenerateScenario(scenario);
  if (!dbs.ok()) {
    std::fprintf(stderr, "%s\n", dbs.status().ToString().c_str());
    return 1;
  }
  const Database& a = (*dbs)[0];
  const Database& b = (*dbs)[1];
  const GroundTruth truth(a, b);

  // Objective: F1 of a pipeline run at the proposed parameters.
  const std::vector<ParamSpec> space = {
      {"num_bits", 200, 2000, true},
      {"threshold", 0.6, 0.95, false},
  };
  size_t evaluations = 0;
  const Objective objective = [&](const ParamPoint& p) {
    ++evaluations;
    PipelineConfig config;
    config.bloom.num_bits = static_cast<size_t>(p[0]);
    config.match_threshold = p[1];
    config.blocking = BlockingScheme::kNone;  // keep the objective smooth
    auto output = PprlPipeline(config).Link(a, b);
    if (!output.ok()) return 0.0;
    return EvaluateMatches(output->matches, truth).F1();
  };

  const size_t budget = 25;
  Rng rng(11);

  std::printf("budget: %zu pipeline evaluations per strategy\n\n", budget);

  const TuningResult grid = GridSearch(space, objective, 5);  // 5x5 = 25
  std::printf("grid search      best F1 %.3f at l=%.0f t=%.2f\n", grid.best.value,
              grid.best.point[0], grid.best.point[1]);

  const TuningResult random = RandomSearch(space, objective, budget, rng);
  std::printf("random search    best F1 %.3f at l=%.0f t=%.2f\n", random.best.value,
              random.best.point[0], random.best.point[1]);

  const TuningResult bayes = BayesianOptimization(space, objective, budget, rng);
  std::printf("bayesian opt     best F1 %.3f at l=%.0f t=%.2f\n", bayes.best.value,
              bayes.best.point[0], bayes.best.point[1]);

  std::printf("\nconvergence (best F1 after k evaluations):\n");
  std::printf("%4s %8s %8s %8s\n", "k", "grid", "random", "bayes");
  for (size_t k : {5, 10, 15, 20, 25}) {
    std::printf("%4zu %8.3f %8.3f %8.3f\n", k, grid.BestAfter(k), random.BestAfter(k),
                bayes.BestAfter(k));
  }
  return 0;
}
