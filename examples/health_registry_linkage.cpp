/// Health-registry linkage (survey §4.1): a hospital and a cancer registry
/// link patient records across three institutions without revealing
/// identities, then select the patients present in at least two of the
/// three registries (subset matching, [43]).
///
/// This walks the composable API rather than the one-call pipeline:
/// per-field CLK encoding, incremental multi-party clustering, and subset
/// selection — the shape of the Swiss childhood-cancer study [20] scaled
/// down to a laptop.
///
/// Build & run:   ./build/examples/health_registry_linkage

#include <cstdio>
#include <map>
#include <set>

#include "datagen/generator.h"
#include "encoding/bloom_filter.h"
#include "linkage/clustering.h"
#include "pipeline/pipeline.h"
#include "similarity/similarity.h"

int main() {
  using namespace pprl;

  // Three registries share 40% of their patients.
  DataGenerator generator(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 600;
  scenario.num_databases = 3;
  scenario.overlap = 0.4;
  scenario.corruption.mean_corruptions = 1.0;
  auto registries = generator.GenerateScenario(scenario);
  if (!registries.ok()) {
    std::fprintf(stderr, "%s\n", registries.status().ToString().c_str());
    return 1;
  }

  // Every registry encodes locally with the shared CLK configuration.
  PipelineConfig shared_config;
  shared_config.bloom.num_bits = 1000;
  const ClkEncoder encoder(shared_config.bloom, PprlPipeline::DefaultFieldConfigs());

  // A linkage unit clusters the incoming encodings incrementally — records
  // can arrive registry by registry (or as a stream: §5.1 velocity).
  IncrementalClusterer clusterer(
      0.76, [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); });
  clusterer.set_one_per_database(true);

  std::map<std::pair<uint32_t, uint32_t>, uint64_t> entity_of;  // evaluation only
  for (uint32_t d = 0; d < registries->size(); ++d) {
    const Database& db = (*registries)[d];
    auto filters = encoder.EncodeDatabase(db);
    if (!filters.ok()) {
      std::fprintf(stderr, "%s\n", filters.status().ToString().c_str());
      return 1;
    }
    for (uint32_t r = 0; r < db.records.size(); ++r) {
      clusterer.Insert({d, r}, (*filters)[r]);
      entity_of[{d, r}] = db.records[r].entity_id;
    }
    std::printf("registry %u ingested (%zu records, %zu clusters so far)\n", d,
                db.records.size(), clusterer.clusters().size());
  }

  // Subset matching: patients appearing in >= 2 of the 3 registries.
  const auto multi = ClustersInAtLeast(clusterer.clusters(), 2);
  const auto all_three = ClustersInAtLeast(clusterer.clusters(), 3);

  // Evaluate cluster purity against ground truth.
  size_t pure = 0;
  for (const auto& cluster : all_three) {
    std::set<uint64_t> entities;
    for (const auto& ref : cluster) entities.insert(entity_of[{ref.database, ref.record}]);
    if (entities.size() == 1) ++pure;
  }

  std::printf("\nclusters total                 : %zu\n", clusterer.clusters().size());
  std::printf("patients in >= 2 registries    : %zu\n", multi.size());
  std::printf("patients in all 3 registries   : %zu (true shared: %zu)\n",
              all_three.size(),
              static_cast<size_t>(0.4 * scenario.records_per_database));
  std::printf("3-way cluster purity           : %.3f\n",
              all_three.empty() ? 0.0
                                : static_cast<double>(pure) /
                                      static_cast<double>(all_three.size()));
  std::printf("representative comparisons     : %zu\n", clusterer.comparisons());
  return 0;
}
