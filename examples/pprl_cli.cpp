/// pprl_cli — a small command-line front end for the library, operating on
/// CSV files so the toolkit can be driven without writing C++.
///
/// Subcommands:
///   generate <out_a.csv> <out_b.csv> [n] [corruptions]
///       Writes two overlapping synthetic databases (ground-truth
///       entity_id columns included, as a benchmark would need).
///   link <a.csv> <b.csv> <matches_out.csv> [threshold]
///       Links two CSV databases with the default CLK pipeline and writes
///       the matched (a_id, b_id, dice) triples. If both inputs carry
///       entity_id columns, linkage quality is printed as well.
///   schema <a.csv> <b.csv>
///       Prints the inferred schema correspondences between two files.
///   encode <in.csv> <out_clks.{csv|pclk}> [secret_key]
///       A database owner's local step: stream the CSV through the CLK
///       encoder (one pass, no in-memory Database) and write the encodings
///       — the interchange CSV (id, bits, base64 clk), or the binary
///       columnar PCLK shard when the output ends in ".pclk". With a key,
///       the encoding is HMAC-keyed — this file is what leaves the owner.
///   link-encoded <a_clks> <b_clks> <matches_out.csv> [threshold]
///       The linkage unit's step: match two encoded files (either format,
///       sniffed by content) without ever seeing quasi-identifiers.
///   ship <clks.{csv|pclk}> <party_name> <host:port> [matches_out.csv]
///       Ships an encoded file to a running pprl_linkd daemon, waits for
///       the multi-party linkage to finish, and prints (optionally
///       writes) this owner's matched records.
///   append <clks.{csv|pclk}> <party_name> <host:port>
///       Ships an encoded file to an online daemon (pprl_linkd --online)
///       and returns as soon as it is absorbed into the live index — no
///       batch linkage, no results frame.
///   query <clks.{csv|pclk}> <party_name> <host:port> [matches_out.csv]
///       Link-queries every record of an encoded file against an online
///       daemon's live index (matches of the caller's own party are
///       suppressed) and writes the records found in multi-record
///       clusters as (record_id, cluster_id, cluster_size) — the same
///       rows, in the same order, that `ship` against a batch daemon
///       run with --clustering cc would produce.
///
/// Examples:
///   ./build/examples/pprl_cli generate /tmp/a.csv /tmp/b.csv 1000 1.5
///   ./build/examples/pprl_cli link /tmp/a.csv /tmp/b.csv /tmp/matches.csv 0.8
///   ./build/examples/pprl_cli encode /tmp/a.csv /tmp/a_clks.csv sekrit
///   ./build/examples/pprl_cli encode /tmp/b.csv /tmp/b_clks.csv sekrit
///   ./build/examples/pprl_cli link-encoded /tmp/a_clks.csv /tmp/b_clks.csv
///       out: /tmp/matches.csv at threshold 0.8

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "datagen/io.h"
#include "encoding/clk_io.h"
#include "eval/metrics.h"
#include "filtering/ppjoin.h"
#include "io/ingest.h"
#include "linkage/matching.h"
#include "obs/export.h"
#include "pipeline/pipeline.h"
#include "pipeline/schema_matching.h"
#include "service/client.h"

using namespace pprl;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  pprl_cli generate <out_a.csv> <out_b.csv> [n] [corruptions]\n"
               "  pprl_cli link <a.csv> <b.csv> <matches_out.csv> [threshold]\n"
               "  pprl_cli schema <a.csv> <b.csv>\n"
               "  pprl_cli encode <in.csv> <out_clks.{csv|pclk}> [secret_key]\n"
               "  pprl_cli link-encoded <a_clks> <b_clks> <matches_out.csv>"
               " [threshold]\n"
               "  pprl_cli ship <clks.{csv|pclk}> <party_name> <host:port>"
               " [matches_out.csv]\n"
               "  pprl_cli append <clks.{csv|pclk}> <party_name> <host:port>\n"
               "  pprl_cli query <clks.{csv|pclk}> <party_name> <host:port>"
               " [matches_out.csv]\n"
               "  pprl_cli --help\n");
  return 2;
}

PipelineConfig ConfigForSchema(const Schema& schema, const std::string& secret_key) {
  PipelineConfig config;
  if (!secret_key.empty()) {
    config.bloom.scheme = BloomHashScheme::kKeyedHmac;
    config.bloom.secret_key = secret_key;
  }
  config.fields.clear();
  for (const auto& field : PprlPipeline::DefaultFieldConfigs()) {
    if (schema.FieldIndex(field.field_name) >= 0) config.fields.push_back(field);
  }
  return config;
}

int Encode(int argc, char** argv) {
  if (argc < 4) return Usage();
  // Header-only peek: the encoder's field set depends on the schema.
  auto schema = io::ReadCsvSchema(argv[2]);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }
  const std::string secret_key = argc > 4 ? argv[4] : "";
  const PipelineConfig config = ConfigForSchema(*schema, secret_key);
  if (config.fields.empty()) {
    std::fprintf(stderr, "no encodable fields in %s\n", argv[2]);
    return 1;
  }
  // One streaming pass: CSV bytes -> field views -> CLK matrix rows.
  const ClkEncoder encoder(config.bloom, config.fields);
  io::IngestStats stats;
  auto shard = io::EncodeCsvToShard(argv[2], encoder, {}, &stats);
  if (!shard.ok()) {
    std::fprintf(stderr, "%s\n", shard.status().ToString().c_str());
    return 1;
  }
  const Status status = io::WriteShardFile(argv[3], *shard);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("encoded %zu records (%s hashing, %s format) -> %s\n",
              shard->size(), secret_key.empty() ? "double" : "keyed HMAC",
              io::ShardFileFormatName(io::DetectShardFileFormat(argv[3])), argv[3]);
  std::printf("  ingest: %.1f MB/s, %.0f records/s\n", stats.mb_per_second(),
              stats.records_per_second());
  return 0;
}

int LinkEncoded(int argc, char** argv) {
  if (argc < 5) return Usage();
  // Either format loads (PCLK magic sniffed); the join below wants
  // per-record vectors, so unpack the batch layout.
  auto a_shard = io::ReadShardAuto(argv[2]);
  auto b_shard = io::ReadShardAuto(argv[3]);
  if (!a_shard.ok() || !b_shard.ok()) {
    std::fprintf(stderr, "failed to read encoded inputs: %s / %s\n",
                 a_shard.status().ToString().c_str(),
                 b_shard.status().ToString().c_str());
    return 1;
  }
  const EncodedDatabase a_db = EncodedDatabaseFromShard(*a_shard);
  const EncodedDatabase b_db = EncodedDatabaseFromShard(*b_shard);
  const EncodedDatabase* a = &a_db;
  const EncodedDatabase* b = &b_db;
  const double threshold = argc > 5 ? std::atof(argv[5]) : 0.8;
  if (a->size() == 0 || b->size() == 0 ||
      a->filters[0].size() != b->filters[0].size()) {
    std::fprintf(stderr, "encoded inputs empty or of different filter lengths\n");
    return 1;
  }
  // Lossless threshold join + greedy one-to-one at the linkage unit.
  const PpjoinIndex index(b->filters, threshold);
  const auto joined = index.Join(a->filters);
  std::vector<ScoredPair> scored;
  scored.reserve(joined.size());
  for (const auto& m : joined) scored.push_back({m.a, m.b, m.dice});
  const auto matches = GreedyOneToOne(std::move(scored));

  CsvTable out;
  out.header = {"a_id", "b_id", "dice"};
  for (const ScoredPair& m : matches) {
    char dice[32];
    std::snprintf(dice, sizeof(dice), "%.4f", m.score);
    out.rows.push_back(
        {std::to_string(a->ids[m.a]), std::to_string(b->ids[m.b]), dice});
  }
  const Status status = WriteCsvFile(argv[4], out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%zu matches at dice >= %.2f -> %s (no QIDs were read)\n",
              matches.size(), threshold, argv[4]);
  return 0;
}

int Ship(int argc, char** argv) {
  if (argc < 5) return Usage();
  // Loads either shard format; the wire payload is built from the batch
  // rows directly, so no per-record vectors exist on this path.
  auto encoded = io::ReadShardAuto(argv[2]);
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s\n", encoded.status().ToString().c_str());
    return 1;
  }
  const std::string party = argv[3];
  const std::string endpoint = argv[4];
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "endpoint must be host:port, got %s\n", endpoint.c_str());
    return 1;
  }
  RemoteOwnerClientConfig config;
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<uint16_t>(std::atoi(endpoint.c_str() + colon + 1));

  Channel meter;
  RemoteOwnerClient client(config, &meter);
  std::printf("shipping %zu encodings as '%s' to %s ...\n", encoded->size(),
              party.c_str(), endpoint.c_str());
  auto summary = client.ShipShardAndAwait(party, *encoded);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "linkage done at '%s': %llu clusters over all parties, %llu comparisons\n",
      client.server_name().c_str(),
      static_cast<unsigned long long>(summary->total_clusters),
      static_cast<unsigned long long>(summary->comparisons));
  std::printf("%zu of our %zu records matched records elsewhere\n",
              summary->matches.size(), encoded->size());
  // The hello is metered against the configured label, everything after
  // the handshake against the server's self-reported name.
  const size_t payload_bytes = meter.BytesBetween(party, config.server_label) +
                               meter.BytesBetween(party, client.server_name());
  std::printf("sent %.1f KiB payload (%.1f KiB on the wire with framing)\n",
              static_cast<double>(payload_bytes) / 1024.0,
              static_cast<double>(client.wire_bytes_sent()) / 1024.0);
  if (argc > 5) {
    CsvTable out;
    out.header = {"record_id", "cluster_id", "cluster_size"};
    for (const MatchedRecordSummary& m : summary->matches) {
      out.rows.push_back({std::to_string(encoded->ids[m.record]),
                          std::to_string(m.cluster_id),
                          std::to_string(m.cluster_size)});
    }
    const Status status = WriteCsvFile(argv[5], out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("matched records -> %s\n", argv[5]);
  }
  return 0;
}

int Append(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto encoded = io::ReadShardAuto(argv[2]);
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s\n", encoded.status().ToString().c_str());
    return 1;
  }
  const std::string party = argv[3];
  const std::string endpoint = argv[4];
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "endpoint must be host:port, got %s\n", endpoint.c_str());
    return 1;
  }
  RemoteOwnerClientConfig config;
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<uint16_t>(std::atoi(endpoint.c_str() + colon + 1));
  // An online daemon absorbs the shipment into its live index and never
  // sends a results frame: return at the shipment-complete ack.
  config.wait_for_results = false;

  RemoteOwnerClient client(config);
  std::printf("appending %zu encodings as '%s' to %s ...\n", encoded->size(),
              party.c_str(), endpoint.c_str());
  auto summary = client.ShipShardAndAwait(party, *encoded);
  if (!summary.ok()) {
    std::fprintf(stderr, "%s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("appended %zu records at '%s' (%.1f KiB on the wire)\n",
              encoded->size(), client.server_name().c_str(),
              static_cast<double>(client.wire_bytes_sent()) / 1024.0);
  return 0;
}

int Query(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto encoded = io::ReadShardAuto(argv[2]);
  if (!encoded.ok()) {
    std::fprintf(stderr, "%s\n", encoded.status().ToString().c_str());
    return 1;
  }
  if (encoded->size() == 0) {
    std::fprintf(stderr, "nothing to query: empty encoding\n");
    return 1;
  }
  const std::string party = argv[3];
  const std::string endpoint = argv[4];
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::fprintf(stderr, "endpoint must be host:port, got %s\n", endpoint.c_str());
    return 1;
  }
  OnlineLinkClientConfig config;
  config.host = endpoint.substr(0, colon);
  config.port = static_cast<uint16_t>(std::atoi(endpoint.c_str() + colon + 1));

  OnlineLinkClient client(config);
  const Status connected =
      client.Connect(party, static_cast<uint32_t>(encoded->bits.num_bits()));
  if (!connected.ok()) {
    std::fprintf(stderr, "%s\n", connected.ToString().c_str());
    return 1;
  }
  std::printf("querying %zu records as '%s' against %s ...\n", encoded->size(),
              party.c_str(), client.server_name().c_str());

  // Wire-batched queries: one round trip per batch, one result per record.
  constexpr size_t kBatch = 512;
  struct Row {
    uint32_t cluster_id;
    size_t record;  ///< row index in the queried shard
    uint32_t cluster_size;
  };
  std::vector<Row> rows;
  size_t matched_records = 0;
  uint64_t index_size = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (size_t begin = 0; begin < encoded->size(); begin += kBatch) {
    const size_t end = std::min(encoded->size(), begin + kBatch);
    auto result = client.QueryRows(*encoded, begin, end,
                                   /*want_clusters=*/true, /*top_k=*/0);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    index_size = result->index_size;
    for (size_t i = 0; i < result->records.size(); ++i) {
      const QueryRecordResult& record = result->records[i];
      if (!record.matches.empty()) ++matched_records;
      if (record.cluster_size >= 2) {
        rows.push_back(Row{record.cluster_id, begin + i, record.cluster_size});
      }
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::printf("queried %zu records against %llu indexed in %.3f s "
              "(%.0f link-queries/s)\n",
              encoded->size(), static_cast<unsigned long long>(index_size),
              seconds, static_cast<double>(encoded->size()) / seconds);
  std::printf("%zu of our %zu records matched records elsewhere\n",
              matched_records, encoded->size());

  if (argc > 5) {
    // Same row order as a batch `ship` summary: clusters ascending, then
    // our records ascending within a cluster — byte-for-byte comparable.
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      return a.cluster_id != b.cluster_id ? a.cluster_id < b.cluster_id
                                          : a.record < b.record;
    });
    CsvTable out;
    out.header = {"record_id", "cluster_id", "cluster_size"};
    for (const Row& row : rows) {
      out.rows.push_back({std::to_string(encoded->ids[row.record]),
                          std::to_string(row.cluster_id),
                          std::to_string(row.cluster_size)});
    }
    const Status status = WriteCsvFile(argv[5], out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("matched records -> %s\n", argv[5]);
  }
  return 0;
}

int Generate(int argc, char** argv) {
  if (argc < 4) return Usage();
  const size_t n = argc > 4 ? static_cast<size_t>(std::atoll(argv[4])) : 1000;
  const double corruptions = argc > 5 ? std::atof(argv[5]) : 1.5;
  DataGenerator gen(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = n;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = corruptions;
  auto dbs = gen.GenerateScenario(scenario);
  if (!dbs.ok()) {
    std::fprintf(stderr, "%s\n", dbs.status().ToString().c_str());
    return 1;
  }
  for (int i = 0; i < 2; ++i) {
    const Status status = WriteDatabaseCsv(argv[2 + i], (*dbs)[static_cast<size_t>(i)]);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("wrote %zu records each to %s and %s (overlap 50%%, ~%.1f errors/dup)\n",
              n, argv[2], argv[3], corruptions);
  return 0;
}

int Link(int argc, char** argv) {
  if (argc < 5) return Usage();
  auto a = ReadDatabaseCsv(argv[2]);
  auto b = ReadDatabaseCsv(argv[3]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "failed to read inputs: %s / %s\n",
                 a.status().ToString().c_str(), b.status().ToString().c_str());
    return 1;
  }
  PipelineConfig config;
  config.match_threshold = argc > 5 ? std::atof(argv[5]) : 0.8;
  // Only use fields both schemas actually have.
  config.fields.clear();
  for (const auto& field : PprlPipeline::DefaultFieldConfigs()) {
    if (a->schema.FieldIndex(field.field_name) >= 0 &&
        b->schema.FieldIndex(field.field_name) >= 0) {
      config.fields.push_back(field);
    }
  }
  if (config.fields.empty()) {
    std::fprintf(stderr, "no shared linkable fields (need first_name/last_name/...)\n");
    return 1;
  }
  auto output = PprlPipeline(config).Link(*a, *b);
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }

  CsvTable matches;
  matches.header = {"a_id", "b_id", "dice"};
  for (const ScoredPair& m : output->matches) {
    char dice[32];
    std::snprintf(dice, sizeof(dice), "%.4f", m.score);
    matches.rows.push_back({std::to_string(a->records[m.a].id),
                            std::to_string(b->records[m.b].id), dice});
  }
  const Status status = WriteCsvFile(argv[4], matches);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("%zu matches (of %zu x %zu records, %zu comparisons) -> %s\n",
              output->matches.size(), a->size(), b->size(), output->comparisons,
              argv[4]);

  // Quality report when ground truth is available.
  bool have_truth = false;
  for (const Record& r : a->records) {
    if (r.entity_id != 0) have_truth = true;
  }
  if (have_truth) {
    const GroundTruth truth(*a, *b);
    const ConfusionCounts counts = EvaluateMatches(output->matches, truth);
    std::printf("ground truth present: precision %.3f recall %.3f F1 %.3f\n",
                counts.Precision(), counts.Recall(), counts.F1());
  }
  return 0;
}

int SchemaCmd(int argc, char** argv) {
  if (argc < 4) return Usage();
  auto a = ReadDatabaseCsv(argv[2]);
  auto b = ReadDatabaseCsv(argv[3]);
  if (!a.ok() || !b.ok()) {
    std::fprintf(stderr, "failed to read inputs\n");
    return 1;
  }
  const auto aligned = MatchSchemas(*a, *b);
  std::printf("%-20s %-20s %-10s %-10s %-10s\n", "column A", "column B", "name-sim",
              "value-sim", "confidence");
  for (const auto& corr : aligned) {
    std::printf("%-20s %-20s %-10.3f %-10.3f %-10.3f\n",
                a->schema.fields[static_cast<size_t>(corr.a_field)].name.c_str(),
                b->schema.fields[static_cast<size_t>(corr.b_field)].name.c_str(),
                corr.name_similarity, corr.value_similarity, corr.confidence);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--help" || command == "-h") {
    Usage();
    return 0;
  }
  int rc = 2;
  if (command == "generate") rc = Generate(argc, argv);
  else if (command == "link") rc = Link(argc, argv);
  else if (command == "schema") rc = SchemaCmd(argc, argv);
  else if (command == "encode") rc = Encode(argc, argv);
  else if (command == "link-encoded") rc = LinkEncoded(argc, argv);
  else if (command == "ship") rc = Ship(argc, argv);
  else if (command == "append") rc = Append(argc, argv);
  else if (command == "query") rc = Query(argc, argv);
  else return Usage();
  // With PPRL_METRICS_JSON=<path|-> set, dump everything the run recorded.
  obs::MaybeDumpMetricsJson();
  return rc;
}
