/// National-security watchlist screening (survey §4.4): an agency holds a
/// small watchlist; an airline holds a large passenger manifest. The
/// airline must learn nothing about the watchlist and the agency must learn
/// only which manifest rows hit.
///
/// Two protocols are contrasted on the same data:
///   1. exact PSI via SRA commutative encryption (two-party, no linkage
///      unit) — exact-identity hits only;
///   2. fuzzy screening via keyed CLKs + PPJoin filtering at a linkage unit
///      — catches spelling variants, at some privacy cost.
///
/// Build & run:   ./build/examples/national_security_watchlist

#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "crypto/sra.h"
#include "datagen/corruptor.h"
#include "datagen/generator.h"
#include "encoding/bloom_filter.h"
#include "filtering/ppjoin.h"

int main() {
  using namespace pprl;

  // Build a manifest of 2000 passengers; plant 25 watchlisted identities,
  // 15 exact and 10 with typos (as a document mismatch would produce).
  DataGenerator generator(GeneratorConfig{});
  Database manifest = generator.GenerateClean(2000);
  const Schema schema = manifest.schema;

  auto full_name = [&schema](const Record& r) {
    return NormalizeQid(r.values[0] + " " + r.values[1] + " " + r.values[3]);
  };

  Corruptor corruptor(CorruptorConfig{}, 77);
  std::vector<std::string> watchlist;
  std::vector<size_t> planted_rows;
  for (size_t i = 0; i < 25; ++i) {
    const size_t row = 40 * i;  // spread through the manifest
    planted_rows.push_back(row);
    if (i < 15) {
      watchlist.push_back(full_name(manifest.records[row]));
    } else {
      // Watchlist knows the true identity; the manifest has a typo.
      watchlist.push_back(full_name(manifest.records[row]));
      manifest.records[row] =
          corruptor.CorruptExactly(schema, manifest.records[row], 1);
    }
  }

  std::vector<std::string> manifest_names;
  manifest_names.reserve(manifest.records.size());
  for (const Record& r : manifest.records) manifest_names.push_back(full_name(r));

  // --- Protocol 1: exact PSI with commutative encryption. -----------------
  Rng rng(1);
  const SraDomain domain = SraDomain::Generate(rng, 128);
  size_t psi_bytes = 0;
  const auto psi_hits =
      SraPrivateSetIntersection(manifest_names, watchlist, domain, rng, &psi_bytes);

  // --- Protocol 2: fuzzy screening with keyed CLKs + PPJoin. --------------
  BloomFilterParams params;
  params.num_bits = 1000;
  params.num_hashes = 12;
  params.scheme = BloomHashScheme::kKeyedHmac;
  params.secret_key = "agency<->airline shared key";
  const BloomFilterEncoder encoder(params);
  std::vector<BitVector> manifest_filters, watch_filters;
  for (const auto& name : manifest_names) {
    manifest_filters.push_back(encoder.EncodeString(name));
  }
  for (const auto& name : watchlist) watch_filters.push_back(encoder.EncodeString(name));
  const PpjoinIndex index(watch_filters, /*dice_threshold=*/0.85);
  const auto fuzzy_hits = index.Join(manifest_filters);

  // --- Score both against the planted rows. --------------------------------
  auto count_found = [&planted_rows](const std::vector<size_t>& rows) {
    size_t found = 0;
    for (size_t planted : planted_rows) {
      for (size_t row : rows) {
        if (row == planted) {
          ++found;
          break;
        }
      }
    }
    return found;
  };
  std::vector<size_t> psi_rows(psi_hits.begin(), psi_hits.end());
  std::vector<size_t> fuzzy_rows;
  for (const auto& hit : fuzzy_hits) fuzzy_rows.push_back(hit.a);

  std::printf("watchlist size            : %zu (15 exact + 10 typo identities)\n",
              watchlist.size());
  std::printf("manifest size             : %zu\n", manifest.records.size());
  std::printf("\nexact PSI (SRA)           : %zu hits, %zu/25 planted found, %.1f KiB\n",
              psi_hits.size(), count_found(psi_rows),
              static_cast<double>(psi_bytes) / 1024.0);
  std::printf("fuzzy CLK + PPJoin        : %zu hits, %zu/25 planted found\n",
              fuzzy_hits.size(), count_found(fuzzy_rows));
  std::printf(
      "\nReading: exact PSI misses the typo'd identities by construction;\n"
      "fuzzy encoded matching recovers them — the accuracy/privacy trade\n"
      "the survey's application section describes.\n");
  return 0;
}
