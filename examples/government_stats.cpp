/// Government population statistics (survey §4.2, "Beyond 2011" [35]): a
/// national statistics office links three administrative databases (tax,
/// health, education) through a linkage unit to estimate the population
/// overlap — without any agency revealing its citizens' identities.
///
/// Demonstrates the structural who-sees-what API: `DatabaseOwner` has no
/// accessor for its raw records, the only egress is the metered
/// `ShipEncodings`, and the `LinkageUnitService` works purely on encodings.
/// Afterwards, the agencies use accountable computing to spot-check that
/// the LU really performed the comparisons it claims (survey §3.2 hybrid
/// adversary models).
///
/// Build & run:   ./build/examples/government_stats

#include <cstdio>

#include "datagen/generator.h"
#include "linkage/clustering.h"
#include "pipeline/party.h"
#include "pipeline/pipeline.h"
#include "privacy/accountability.h"
#include "similarity/similarity.h"

int main() {
  using namespace pprl;

  // Three agencies with partially overlapping populations.
  DataGenerator generator(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 800;
  scenario.num_databases = 3;
  scenario.overlap = 0.35;
  scenario.corruption.mean_corruptions = 1.0;
  auto databases = generator.GenerateScenario(scenario);
  if (!databases.ok()) {
    std::fprintf(stderr, "%s\n", databases.status().ToString().c_str());
    return 1;
  }

  // Shared encoder configuration (agreed out of band, like the HMAC key).
  PipelineConfig shared;
  const ClkEncoder encoder(shared.bloom, PprlPipeline::DefaultFieldConfigs());

  // The tax office and health department keep their own encodings around —
  // they will audit the LU with them later.
  auto tax_filters = encoder.EncodeDatabase((*databases)[0]);
  auto health_filters = encoder.EncodeDatabase((*databases)[1]);
  if (!tax_filters.ok() || !health_filters.ok()) return 1;

  Channel channel;
  LinkageUnitService lu("stats-office-lu");
  const char* agency_names[] = {"tax-office", "health-dept", "education-dept"};
  for (size_t d = 0; d < 3; ++d) {
    DatabaseOwner agency(agency_names[d], std::move((*databases)[d]));
    if (!agency.Encode(encoder).ok()) return 1;
    auto shipment = agency.ShipEncodings(channel, lu.name());
    if (!shipment.ok()) return 1;
    if (!lu.Receive(agency.name(), std::move(shipment).value()).ok()) return 1;
  }
  std::printf("shipments: %zu messages, %.1f KiB total (QIDs never left the agencies)\n",
              channel.total_messages(),
              static_cast<double>(channel.total_bytes()) / 1024.0);

  MultiPartyLinkageOptions options;
  options.dice_threshold = 0.78;
  auto result = lu.Link(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Population statistics from the cluster structure.
  const size_t in_two = ClustersInAtLeast(result->clusters, 2).size();
  const size_t in_three = ClustersInAtLeast(result->clusters, 3).size();
  std::printf("\ncomparisons performed at LU : %zu (of %d naive)\n",
              result->comparisons, 3 * 800 * 800);
  std::printf("persons in >= 2 registers   : %zu\n", in_two);
  std::printf("persons in all 3 registers  : %zu (true: %d)\n", in_three,
              static_cast<int>(0.35 * 800));

  // --- Accountable computing: spot-check the LU. ---------------------------
  // The LU publishes a commitment to its comparison log; the tax office
  // audits a random sample using its own filters plus the health
  // department's shipped encodings (both are at the LU anyway — the audit
  // guards against a lazy/cheating LU, not against the owners).
  std::vector<ComparisonRecord> log_records;
  log_records.reserve(result->edges.size());
  for (const MatchEdge& e : result->edges) {
    if (e.x.database == 0 && e.y.database == 1) {
      log_records.push_back({e.x.record, e.y.record, e.score});
    }
  }
  const ComputationCommitment commitment = CommitToComparisons(log_records);
  std::printf("\nLU commitment over %zu logged comparisons: %s...\n",
              commitment.num_records, commitment.digest_hex.substr(0, 16).c_str());
  std::vector<CandidatePair> audit_pairs;
  for (const ComparisonRecord& r : log_records) audit_pairs.push_back({r.a, r.b});
  Rng audit_rng(7);
  auto report = AuditComparisons(
      commitment, log_records, audit_pairs, *tax_filters, *health_filters,
      [](const BitVector& x, const BitVector& y) { return DiceSimilarity(x, y); },
      /*sample_size=*/60, audit_rng);
  if (report.ok()) {
    std::printf("audit of 60 sampled comparisons: %s (%zu mismatches, %zu missing)\n",
                report->Passed() ? "PASSED" : "FAILED", report->mismatches,
                report->missing_pairs);
  }
  std::printf("detection probability at 60 samples vs 5%% cheating: %.3f\n",
              DetectionProbability(0.05, 60));
  std::printf(
      "\nReading: the statistics office gets its overlap estimates; no\n"
      "agency saw another's records; and the commitment + audit machinery\n"
      "(privacy/accountability.h) keeps the linkage unit honest without\n"
      "malicious-model cryptography.\n");
  return 0;
}
