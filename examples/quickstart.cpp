/// Quickstart: link two synthetic person databases privately in ~30 lines.
///
/// Two database owners hold overlapping person data. Neither may reveal the
/// raw names/dates to the other, so each encodes its records into
/// cryptographic long-term keys (CLKs: Bloom filters over q-grams) and a
/// linkage unit matches the encodings. This example generates the data,
/// runs the full pipeline, and scores the result against the generator's
/// ground truth.
///
/// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "pipeline/pipeline.h"

int main() {
  using namespace pprl;

  // 1. Two databases with a 50% entity overlap; copies in B are dirtied
  //    with realistic typos/OCR/nickname errors.
  DataGenerator generator(GeneratorConfig{});
  LinkageScenarioConfig scenario;
  scenario.records_per_database = 1000;
  scenario.overlap = 0.5;
  scenario.corruption.mean_corruptions = 1.5;
  auto databases = generator.GenerateScenario(scenario);
  if (!databases.ok()) {
    std::fprintf(stderr, "datagen failed: %s\n", databases.status().ToString().c_str());
    return 1;
  }
  const Database& a = (*databases)[0];
  const Database& b = (*databases)[1];

  // 2. Configure the PPRL pipeline: CLK encoding, Hamming-LSH blocking,
  //    Dice threshold matching at a trusted linkage unit.
  PipelineConfig config;
  config.bloom.num_bits = 1000;
  config.match_threshold = 0.78;
  config.model = LinkageModel::kTwoPartyLinkageUnit;
  const PprlPipeline pipeline(config);

  auto output = pipeline.Link(a, b);
  if (!output.ok()) {
    std::fprintf(stderr, "linkage failed: %s\n", output.status().ToString().c_str());
    return 1;
  }

  // 3. Score against the generator's ground truth (real deployments cannot
  //    do this step — that is the survey's "evaluation is hard" challenge).
  const GroundTruth truth(a, b);
  const ConfusionCounts counts = EvaluateMatches(output->matches, truth);

  std::printf("records per database : %zu\n", a.size());
  std::printf("true matching pairs  : %zu\n", truth.num_matches());
  std::printf("candidate pairs      : %zu (of %zu possible)\n", output->candidate_pairs,
              a.size() * b.size());
  std::printf("comparisons          : %zu\n", output->comparisons);
  std::printf("matches found        : %zu\n", output->matches.size());
  std::printf("precision            : %.3f\n", counts.Precision());
  std::printf("recall               : %.3f\n", counts.Recall());
  std::printf("F1                   : %.3f\n", counts.F1());
  std::printf("communication        : %zu messages, %.1f KiB\n", output->messages,
              static_cast<double>(output->bytes) / 1024.0);
  return 0;
}
