#include "pipeline/party.h"

#include <optional>

#include "blocking/lsh_blocking.h"
#include "common/bit_matrix.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "linkage/comparison.h"
#include "linkage/parallel_linkage.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "similarity/similarity.h"

namespace pprl {

DatabaseOwner::DatabaseOwner(std::string name, Database database)
    : name_(std::move(name)), database_(std::move(database)) {}

Status DatabaseOwner::Encode(const ClkEncoder& encoder) {
  auto filters = encoder.EncodeDatabase(database_);
  if (!filters.ok()) return filters.status();
  filters_ = std::move(filters).value();
  encoded_ = true;
  return Status::OK();
}

namespace {

/// Bytes a shipment of `encoded` costs on any transport: one 8-byte id
/// plus the packed filter per record. Both the in-process channel path and
/// the wire serialisation (service/protocol.h) follow this formula, which
/// is what keeps their metered totals identical.
size_t ShipmentPayloadBytes(const EncodedDatabase& encoded) {
  const size_t filter_bytes =
      encoded.filters.empty() ? 0 : (encoded.filters[0].size() + 7) / 8;
  return encoded.filters.size() * (filter_bytes + 8);
}

}  // namespace

Result<EncodedDatabase> DatabaseOwner::ShipEncodings(Channel& channel,
                                                     const std::string& recipient) const {
  if (!encoded_) {
    return Status::FailedPrecondition("owner '" + name_ + "' has not encoded yet");
  }
  EncodedDatabase shipment;
  shipment.ids.reserve(database_.records.size());
  for (const Record& r : database_.records) shipment.ids.push_back(r.id);
  shipment.filters = filters_;
  channel.Send(name_, recipient, ShipmentPayloadBytes(shipment), "encoded-filters");
  return shipment;
}

Status DatabaseOwner::ShipEncodings(EncodingSink& sink) const {
  if (!encoded_) {
    return Status::FailedPrecondition("owner '" + name_ + "' has not encoded yet");
  }
  EncodedDatabase shipment;
  shipment.ids.reserve(database_.records.size());
  for (const Record& r : database_.records) shipment.ids.push_back(r.id);
  shipment.filters = filters_;
  return sink.Deliver(name_, shipment);
}

std::vector<uint64_t> DatabaseOwner::EntityIdsForEvaluation() const {
  std::vector<uint64_t> ids;
  ids.reserve(database_.records.size());
  for (const Record& r : database_.records) ids.push_back(r.entity_id);
  return ids;
}

LinkageUnitService::LinkageUnitService(std::string name) : name_(std::move(name)) {}

Status LinkageUnitService::Receive(const std::string& owner, EncodedDatabase encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  if (!databases_.empty() && !encoded.filters.empty() &&
      !databases_[0].filters.empty() &&
      encoded.filters[0].size() != databases_[0].filters[0].size()) {
    return Status::InvalidArgument("shipment filter length differs from earlier owners");
  }
  for (const std::string& existing : owners_) {
    if (existing == owner) {
      return Status::AlreadyExists("owner '" + owner + "' already shipped");
    }
  }
  owners_.push_back(owner);
  databases_.push_back(std::move(encoded));
  return Status::OK();
}

Result<MultiPartyLinkageResult> LinkageUnitService::Link(
    const MultiPartyLinkageOptions& options) const {
  if (databases_.size() < 2) {
    return Status::FailedPrecondition("linkage needs >= 2 shipped databases");
  }
  const size_t filter_bits =
      databases_[0].filters.empty() ? 0 : databases_[0].filters[0].size();
  if (filter_bits == 0) {
    return Status::InvalidArgument("first shipment is empty");
  }

  obs::GlobalMetrics()
      .GetCounter("pprl_linkage_runs_total",
                  "Multi-party linkage runs at a linkage unit")
      .Increment();
  MultiPartyLinkageResult result;
  Rng rng(options.lsh_seed);
  const HammingLshBlocker blocker(filter_bits, options.lsh_tables,
                                  options.lsh_bits_per_key, rng);
  // Pre-build every database's LSH index and contiguous bit matrix once.
  obs::StageTimer block_span("block");
  std::vector<BlockIndex> indexes;
  std::vector<BitMatrix> matrices;
  indexes.reserve(databases_.size());
  matrices.reserve(databases_.size());
  for (const EncodedDatabase& db : databases_) {
    indexes.push_back(blocker.BuildIndex(db.filters));
    matrices.push_back(BitMatrix::FromVectors(db.filters));
  }
  block_span.Stop();

  // Parallel runs either borrow the caller's scheduler (the daemon shares
  // one across sessions) or spin one up for this Link() call.
  const bool parallel = options.scheduler != nullptr || options.num_threads > 1;
  std::optional<WorkStealingScheduler> owned_scheduler;
  WorkStealingScheduler* scheduler = options.scheduler;
  if (parallel && scheduler == nullptr) {
    WorkStealingScheduler::Options sched_options;
    sched_options.num_threads = options.num_threads;
    sched_options.max_pending = 64;
    owned_scheduler.emplace(sched_options);
    scheduler = &*owned_scheduler;
  }

  // The kernel's min_score sits 2e-12 under the acceptance test below, so
  // cardinality pruning can never skip a pair that `dice + 1e-12 >=
  // threshold` would have kept; the final filter reproduces the exact
  // tolerance semantics of the scalar path. The streaming branch scores the
  // same pairs in the same order with the same kernel, so edges are
  // identical at any worker count.
  const ComparisonEngine engine(SimilarityMeasure::kDice);
  obs::StageTimer compare_span("compare");
  for (uint32_t d1 = 0; d1 < databases_.size(); ++d1) {
    for (uint32_t d2 = d1 + 1; d2 < databases_.size(); ++d2) {
      std::vector<ScoredPair> scored;
      if (parallel) {
        ParallelLinkageOptions parallel_options;
        parallel_options.scheduler = scheduler;
        StreamCompareResult streamed = StreamCompareBlocked(
            SimilarityMeasure::kDice, matrices[d1], matrices[d2], indexes[d1],
            indexes[d2], options.dice_threshold - 2e-12, parallel_options);
        result.candidate_pairs += streamed.comparisons;
        result.comparisons += streamed.comparisons;
        result.pruned_comparisons += streamed.pruned;
        scored = std::move(streamed.hits);
      } else {
        const auto candidates =
            HammingLshBlocker::CandidatePairs(indexes[d1], indexes[d2]);
        result.candidate_pairs += candidates.size();
        scored = engine.CompareMatrices(matrices[d1], matrices[d2], candidates,
                                        options.dice_threshold - 2e-12);
        result.comparisons += engine.last_comparison_count();
        result.pruned_comparisons += engine.last_pruned_count();
      }
      for (const ScoredPair& pair : scored) {
        if (pair.score + 1e-12 >= options.dice_threshold) {
          result.edges.push_back({{d1, pair.a}, {d2, pair.b}, pair.score});
        }
      }
    }
  }
  compare_span.Stop();
  obs::StageTimer cluster_span("cluster");
  if (options.use_star_clustering) {
    result.clusters = StarClustering(result.edges);
  } else if (parallel) {
    result.clusters = ParallelConnectedComponents(result.edges, *scheduler);
  } else {
    result.clusters = ConnectedComponents(result.edges);
  }
  cluster_span.Stop();
  return result;
}

Result<PartitionLinkResult> LinkageUnitService::LinkPartition(
    const MultiPartyLinkageOptions& options, const PartitionSpec& spec) const {
  if (databases_.size() < 2) {
    return Status::FailedPrecondition("linkage needs >= 2 shipped databases");
  }
  if (spec.num_workers == 0 || spec.worker_index >= spec.num_workers) {
    return Status::InvalidArgument(
        "partition worker " + std::to_string(spec.worker_index) +
        " outside ring of " + std::to_string(spec.num_workers));
  }
  const size_t filter_bits =
      databases_[0].filters.empty() ? 0 : databases_[0].filters[0].size();
  if (filter_bits == 0) {
    return Status::InvalidArgument("first shipment is empty");
  }

  obs::GlobalMetrics()
      .GetCounter("pprl_partition_runs_total",
                  "Partition compare runs at a worker linkage unit")
      .Increment();
  // Same seeded blocker as Link(): every worker holding the same
  // shipments derives the same indexes, so the partition rule needs no
  // coordination beyond the ring geometry in `spec`.
  Rng rng(options.lsh_seed);
  const HammingLshBlocker blocker(filter_bits, options.lsh_tables,
                                  options.lsh_bits_per_key, rng);
  obs::StageTimer block_span("block");
  std::vector<BlockIndex> indexes;
  std::vector<BitMatrix> matrices;
  indexes.reserve(databases_.size());
  matrices.reserve(databases_.size());
  for (const EncodedDatabase& db : databases_) {
    indexes.push_back(blocker.BuildIndex(db.filters));
    matrices.push_back(BitMatrix::FromVectors(db.filters));
  }
  block_span.Stop();

  const BlockPartitioner partitioner(spec.num_workers, spec.scheme);
  const ComparisonEngine engine(SimilarityMeasure::kDice);
  PartitionLinkResult result;
  obs::StageTimer compare_span("compare");
  for (uint32_t d1 = 0; d1 < databases_.size(); ++d1) {
    for (uint32_t d2 = d1 + 1; d2 < databases_.size(); ++d2) {
      const auto owned = OwnedCandidatePairs(indexes[d1], indexes[d2], partitioner,
                                             spec.worker_index);
      result.candidate_pairs += owned.size();
      // Identical threshold tolerance to Link(): the kernel's min_score
      // sits 2e-12 under the acceptance test so pruning never skips a
      // pair the `+ 1e-12` filter would have kept.
      const auto scored = engine.CompareMatrices(
          matrices[d1], matrices[d2], owned, options.dice_threshold - 2e-12);
      result.comparisons += engine.last_comparison_count();
      result.pruned_comparisons += engine.last_pruned_count();
      for (const ScoredPair& pair : scored) {
        if (pair.score + 1e-12 >= options.dice_threshold) {
          result.edges.push_back({{d1, pair.a}, {d2, pair.b}, pair.score});
        }
      }
    }
  }
  compare_span.Stop();
  return result;
}

Status LocalLinkageUnitSink::Deliver(const std::string& owner,
                                     const EncodedDatabase& encoded) {
  channel_.Send(owner, unit_.name(), ShipmentPayloadBytes(encoded), "encoded-filters");
  return unit_.Receive(owner, encoded);
}

}  // namespace pprl
