#include "pipeline/channel.h"

#include "obs/metrics.h"

namespace pprl {

size_t Channel::Send(const std::string& from, const std::string& to,
                     size_t payload_bytes, const std::string& tag) {
  // Lift every send into the global registry as per-tag counters; sends
  // are O(messages), not O(pairs), so the registry lookup is cheap here.
  obs::GlobalMetrics()
      .GetCounter("pprl_channel_messages_total",
                  "Protocol messages metered through Channel::Send",
                  {{"tag", tag}})
      .Increment();
  obs::GlobalMetrics()
      .GetCounter("pprl_channel_bytes_total",
                  "Payload bytes metered through Channel::Send", {{"tag", tag}})
      .Increment(payload_bytes);
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_messages_;
  total_bytes_ += payload_bytes;
  bytes_by_route_[{from, to}] += payload_bytes;
  messages_by_route_[{from, to}] += 1;
  bytes_by_tag_[tag] += payload_bytes;
  messages_by_tag_[tag] += 1;
  return total_messages_;
}

size_t Channel::total_messages() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_messages_;
}

size_t Channel::total_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_bytes_;
}

size_t Channel::BytesBetween(const std::string& from, const std::string& to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = bytes_by_route_.find({from, to});
  return it == bytes_by_route_.end() ? 0 : it->second;
}

size_t Channel::MessagesBetween(const std::string& from, const std::string& to) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = messages_by_route_.find({from, to});
  return it == messages_by_route_.end() ? 0 : it->second;
}

std::map<std::string, size_t> Channel::bytes_by_tag() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_by_tag_;
}

std::map<std::string, size_t> Channel::messages_by_tag() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return messages_by_tag_;
}

void Channel::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  total_messages_ = 0;
  total_bytes_ = 0;
  bytes_by_route_.clear();
  messages_by_route_.clear();
  bytes_by_tag_.clear();
  messages_by_tag_.clear();
}

}  // namespace pprl
