#include "pipeline/channel.h"

namespace pprl {

size_t Channel::Send(const std::string& from, const std::string& to,
                     size_t payload_bytes, const std::string& tag) {
  ++total_messages_;
  total_bytes_ += payload_bytes;
  bytes_by_route_[{from, to}] += payload_bytes;
  bytes_by_tag_[tag] += payload_bytes;
  return total_messages_;
}

size_t Channel::BytesBetween(const std::string& from, const std::string& to) const {
  const auto it = bytes_by_route_.find({from, to});
  return it == bytes_by_route_.end() ? 0 : it->second;
}

void Channel::Reset() {
  total_messages_ = 0;
  total_bytes_ = 0;
  bytes_by_route_.clear();
  bytes_by_tag_.clear();
}

}  // namespace pprl
