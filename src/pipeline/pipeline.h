#ifndef PPRL_PIPELINE_PIPELINE_H_
#define PPRL_PIPELINE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"
#include "encoding/bloom_filter.h"
#include "linkage/comparison.h"
#include "pipeline/channel.h"

namespace pprl {

/// Which parties participate and who performs the matching — the linkage-
/// model dimension of the survey's taxonomy (§3.1).
enum class LinkageModel {
  /// Both database owners send encodings to one trusted linkage unit.
  kTwoPartyLinkageUnit,
  /// No linkage unit: owner B sends its encodings to owner A, who matches.
  /// Cheaper but reveals B's encodings to a database owner.
  kTwoPartyDirect,
  /// Separation of duties across two linkage units: LU-1 sees only blocking
  /// keys and plans candidates; LU-2 sees only the encodings of candidate
  /// records. Reduces what any single party learns.
  kDualLinkageUnit,
};

/// Hardening applied to every record encoding before it leaves its owner.
enum class HardeningScheme { kNone, kBalance, kXorFold, kRule90, kBlip };

/// Blocking technique used by the pipeline.
enum class BlockingScheme {
  kNone,        ///< all |A| x |B| pairs
  kSoundex,     ///< keyed phonetic blocking on names
  kHammingLsh,  ///< LSH over the Bloom filters
};

/// End-to-end pipeline configuration. The defaults are a reasonable CLK
/// setup for the standard generator schema.
struct PipelineConfig {
  // --- encoding -----------------------------------------------------------
  BloomFilterParams bloom;                  ///< filter length + hash scheme
  std::vector<ClkFieldConfig> fields;       ///< empty -> DefaultFieldConfigs()
  HardeningScheme hardening = HardeningScheme::kNone;
  double blip_flip_prob = 0.05;             ///< for kBlip
  uint64_t hardening_key = 0x5eedULL;       ///< for kBalance permutation

  // --- blocking ------------------------------------------------------------
  BlockingScheme blocking = BlockingScheme::kHammingLsh;
  size_t lsh_tables = 20;
  size_t lsh_bits_per_key = 18;

  // --- matching ------------------------------------------------------------
  double match_threshold = 0.8;             ///< Dice threshold for a match
  bool one_to_one = true;                   ///< de-duplicated databases

  // --- execution ------------------------------------------------------------
  /// Workers for the comparison/classification stages. 1 keeps the serial
  /// path; >1 streams candidate shards from blocking into a work-stealing
  /// scheduler (linkage/parallel_linkage.h). Matches are identical at any
  /// thread count.
  size_t num_threads = 1;

  // --- protocol ------------------------------------------------------------
  LinkageModel model = LinkageModel::kTwoPartyLinkageUnit;
  std::string secret_key = "shared-secret"; ///< HMAC key shared by the DOs
  uint64_t seed = 42;
};

/// Everything a pipeline run reports. Matches refer to record indices of the
/// two input databases.
struct LinkageOutput {
  std::vector<ScoredPair> matches;
  size_t candidate_pairs = 0;
  size_t comparisons = 0;
  /// Of `comparisons`, pairs the Dice cardinality bound rejected without
  /// running the word loop.
  size_t pruned_comparisons = 0;
  size_t messages = 0;
  size_t bytes = 0;
  double encode_seconds = 0;
  double block_seconds = 0;
  double compare_seconds = 0;
};

/// The end-to-end PPRL pipeline of the survey's overview section:
/// pre-process -> encode -> block -> compare -> classify, wired through the
/// metered `Channel` according to the configured linkage model.
class PprlPipeline {
 public:
  explicit PprlPipeline(PipelineConfig config);

  /// Per-field CLK configuration for DataGenerator::StandardSchema().
  static std::vector<ClkFieldConfig> DefaultFieldConfigs();

  /// Links two databases end to end.
  Result<LinkageOutput> Link(const Database& a, const Database& b) const;

  const PipelineConfig& config() const { return config_; }

  /// Calibrates the match threshold without ground truth (§5.2): runs one
  /// pass at the loose `floor` threshold, fits a two-component mixture to
  /// the candidate scores (eval/quality_estimation.h) and returns the
  /// F1-optimal threshold the fitted model suggests. Use the result as
  /// `config.match_threshold` for the production run.
  static Result<double> CalibrateThreshold(const PipelineConfig& config,
                                           const Database& a, const Database& b,
                                           double floor = 0.5);

 private:
  /// A database owner's local work: CLK encoding plus hardening.
  Result<std::vector<BitVector>> EncodeDatabase(const Database& db,
                                                uint64_t party_seed) const;

  PipelineConfig config_;
};

}  // namespace pprl

#endif  // PPRL_PIPELINE_PIPELINE_H_
