#ifndef PPRL_PIPELINE_CHANNEL_H_
#define PPRL_PIPELINE_CHANNEL_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace pprl {

/// Meters the traffic between parties.
///
/// Every protocol message is routed through a `Channel`, which meters the
/// number of messages and bytes per sender/receiver pair and per tag — the
/// communication-cost axis of the survey's evaluation model (§3.3). In the
/// in-process pipelines the channel also enforces the who-sees-what
/// discipline: protocol code can only obtain another party's data by an
/// explicit, metered Send. The socket transport (`net/transport.h`) meters
/// into the very same interface, so benchmarks report identical cost
/// columns whether a run is simulated or goes over real TCP.
///
/// Send() is thread-safe (concurrent connection handlers meter into one
/// channel); the map accessors return snapshots and may be called at any
/// time.
class Channel {
 public:
  Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Delivers `payload_bytes` worth of data from `from` to `to` under a
  /// human-readable `tag` (e.g. "encoded-filters"). Returns a message id.
  size_t Send(const std::string& from, const std::string& to, size_t payload_bytes,
              const std::string& tag);

  size_t total_messages() const;
  size_t total_bytes() const;

  /// Bytes sent from `from` to `to` so far.
  size_t BytesBetween(const std::string& from, const std::string& to) const;

  /// Messages sent from `from` to `to` so far.
  size_t MessagesBetween(const std::string& from, const std::string& to) const;

  /// Per-tag byte totals, for cost breakdowns in benchmark output.
  std::map<std::string, size_t> bytes_by_tag() const;

  /// Per-tag message counts, the companion of bytes_by_tag().
  std::map<std::string, size_t> messages_by_tag() const;

  /// Forgets all metering (fresh protocol run).
  void Reset();

 private:
  mutable std::mutex mutex_;
  size_t total_messages_ = 0;
  size_t total_bytes_ = 0;
  std::map<std::pair<std::string, std::string>, size_t> bytes_by_route_;
  std::map<std::pair<std::string, std::string>, size_t> messages_by_route_;
  std::map<std::string, size_t> bytes_by_tag_;
  std::map<std::string, size_t> messages_by_tag_;
};

}  // namespace pprl

#endif  // PPRL_PIPELINE_CHANNEL_H_
