#ifndef PPRL_PIPELINE_CHANNEL_H_
#define PPRL_PIPELINE_CHANNEL_H_

#include <cstddef>
#include <utility>
#include <map>
#include <string>
#include <vector>

namespace pprl {

/// An in-process stand-in for the network between parties.
///
/// Every protocol message is routed through a `Channel`, which meters the
/// number of messages and bytes per sender/receiver pair — the
/// communication-cost axis of the survey's evaluation model (§3.3). The
/// channel also enforces the who-sees-what discipline: protocol code can
/// only obtain another party's data by an explicit, metered Send.
class Channel {
 public:
  /// Delivers `payload_bytes` worth of data from `from` to `to` under a
  /// human-readable `tag` (e.g. "encoded-filters"). Returns a message id.
  size_t Send(const std::string& from, const std::string& to, size_t payload_bytes,
              const std::string& tag);

  size_t total_messages() const { return total_messages_; }
  size_t total_bytes() const { return total_bytes_; }

  /// Bytes sent from `from` to `to` so far.
  size_t BytesBetween(const std::string& from, const std::string& to) const;

  /// Per-tag byte totals, for cost breakdowns in benchmark output.
  const std::map<std::string, size_t>& bytes_by_tag() const { return bytes_by_tag_; }

  /// Forgets all metering (fresh protocol run).
  void Reset();

 private:
  size_t total_messages_ = 0;
  size_t total_bytes_ = 0;
  std::map<std::pair<std::string, std::string>, size_t> bytes_by_route_;
  std::map<std::string, size_t> bytes_by_tag_;
};

}  // namespace pprl

#endif  // PPRL_PIPELINE_CHANNEL_H_
