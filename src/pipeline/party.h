#ifndef PPRL_PIPELINE_PARTY_H_
#define PPRL_PIPELINE_PARTY_H_

#include <map>
#include <string>
#include <vector>

#include "blocking/partitioner.h"
#include "common/record.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "encoding/bloom_filter.h"
#include "encoding/clk_io.h"
#include "linkage/clustering.h"
#include "pipeline/channel.h"

namespace pprl {

/// Where a database owner's encodings go when shipped.
///
/// The owner only ever hands its `EncodedDatabase` to a sink; whether the
/// sink is the in-process linkage unit (`LocalLinkageUnitSink`) or a TCP
/// client talking to a remote daemon (`RemoteOwnerClient` in
/// service/client.h) is invisible to the owner. This keeps the dependency
/// arrow pointing the right way: the networked service layer implements
/// this interface, the pipeline never links against sockets.
class EncodingSink {
 public:
  virtual ~EncodingSink() = default;

  /// Accepts `owner`'s shipment. Implementations meter the transfer.
  virtual Status Deliver(const std::string& owner, const EncodedDatabase& encoded) = 0;
};

/// A database owner in a simulated multi-party deployment.
///
/// The class makes the survey's who-sees-what discipline *structural*: the
/// raw `Database` is private state with no accessor, and the only outbound
/// method ships encodings through the metered `Channel`. Protocol code that
/// wants a party's QIDs simply cannot get them.
class DatabaseOwner {
 public:
  DatabaseOwner(std::string name, Database database);

  /// Local pre-processing + encoding step (nothing leaves the machine).
  Status Encode(const ClkEncoder& encoder);

  /// Ships the encodings to `recipient` over `channel` (metered). Encode()
  /// must have run.
  Result<EncodedDatabase> ShipEncodings(Channel& channel,
                                        const std::string& recipient) const;

  /// Ships the encodings into `sink` — the transport-agnostic path; the
  /// sink may be local (LocalLinkageUnitSink) or a remote socket client.
  Status ShipEncodings(EncodingSink& sink) const;

  const std::string& name() const { return name_; }
  size_t size() const { return database_.records.size(); }

  /// Evaluation-only escape hatch: ground-truth entity ids (never used by
  /// protocol code; the evaluator needs them to score results).
  std::vector<uint64_t> EntityIdsForEvaluation() const;

 private:
  std::string name_;
  Database database_;
  std::vector<BitVector> filters_;
  bool encoded_ = false;
};

/// Options for the linkage unit's multi-database run.
struct MultiPartyLinkageOptions {
  double dice_threshold = 0.8;
  /// Hamming-LSH blocking across every database pair.
  size_t lsh_tables = 20;
  size_t lsh_bits_per_key = 18;
  uint64_t lsh_seed = 42;
  /// If true, clusters come from star clustering; else connected components.
  bool use_star_clustering = true;
  /// Workers for the comparison (and, for connected components, the union)
  /// stages. 1 keeps the serial path; >1 streams each database pair's
  /// candidates through a work-stealing scheduler. Results are identical at
  /// any worker count.
  size_t num_threads = 1;
  /// Borrowed long-lived scheduler (e.g. the daemon's, shared across
  /// concurrent sessions). Overrides num_threads when set.
  WorkStealingScheduler* scheduler = nullptr;
};

/// Result of a multi-database linkage run at the linkage unit.
struct MultiPartyLinkageResult {
  /// Clusters over (database index, record index) references, in the order
  /// the owners registered.
  std::vector<Cluster> clusters;
  /// The pairwise match edges behind the clusters.
  std::vector<MatchEdge> edges;
  size_t comparisons = 0;
  size_t candidate_pairs = 0;
  /// Of `comparisons`, pairs answered by the Dice cardinality bound alone
  /// (the comparison kernels never ran their word loop for these).
  size_t pruned_comparisons = 0;
};

/// One worker's slice of a horizontally sharded linkage run: which index
/// it holds in a ring of how many, under which block-id partition scheme.
struct PartitionSpec {
  uint32_t worker_index = 0;
  uint32_t num_workers = 1;
  PartitionScheme scheme = PartitionScheme::kAuto;
};

/// The compare+classify output of one worker's partition: every scored
/// edge of the candidate pairs this worker owns (threshold applied, same
/// tolerance semantics as Link()), sorted by (database pair, a, b), plus
/// the partition's share of the global counters. Summing the counters and
/// merging the edge lists over a full ring reproduces Link()'s totals and
/// edge order exactly (see linkage/distributed.h).
struct PartitionLinkResult {
  std::vector<MatchEdge> edges;
  size_t comparisons = 0;
  size_t candidate_pairs = 0;
  size_t pruned_comparisons = 0;
};

/// The linkage unit of a star-topology deployment: owners ship encodings
/// in; the unit blocks, compares, and clusters across all databases. It
/// never sees a quasi-identifier.
class LinkageUnitService {
 public:
  explicit LinkageUnitService(std::string name);

  /// Registers a shipment from `owner`. Owners must send equal-length
  /// filters; the first shipment fixes the length.
  Status Receive(const std::string& owner, EncodedDatabase encoded);

  /// Runs pairwise blocking + matching + clustering over all received
  /// databases. Needs >= 2 shipments.
  Result<MultiPartyLinkageResult> Link(const MultiPartyLinkageOptions& options) const;

  /// Worker-role step of a sharded run: compares only the candidate pairs
  /// this worker owns under the canonical-key partition rule
  /// (blocking/partitioner.h) and returns their scored edges — no
  /// clustering, which stays global at the coordinator. Deterministic:
  /// the LSH index is rebuilt from options.lsh_seed, so every process
  /// holding the same shipments computes the same partition.
  Result<PartitionLinkResult> LinkPartition(const MultiPartyLinkageOptions& options,
                                            const PartitionSpec& spec) const;

  const std::string& name() const { return name_; }
  size_t num_databases() const { return owners_.size(); }

  /// Owner names in registration order, and their shipments in the same
  /// order — the coordinator reads these to scatter databases to workers.
  const std::vector<std::string>& owners() const { return owners_; }
  const std::vector<EncodedDatabase>& databases() const { return databases_; }

 private:
  std::string name_;
  std::vector<std::string> owners_;
  std::vector<EncodedDatabase> databases_;
};

/// The in-process EncodingSink: delivers straight into a
/// `LinkageUnitService`, metering through `channel` exactly as the
/// Channel-based ShipEncodings overload does. The reference cost model
/// that the socket path must reproduce byte-for-byte.
class LocalLinkageUnitSink : public EncodingSink {
 public:
  LocalLinkageUnitSink(Channel& channel, LinkageUnitService& unit)
      : channel_(channel), unit_(unit) {}

  Status Deliver(const std::string& owner, const EncodedDatabase& encoded) override;

 private:
  Channel& channel_;
  LinkageUnitService& unit_;
};

}  // namespace pprl

#endif  // PPRL_PIPELINE_PARTY_H_
