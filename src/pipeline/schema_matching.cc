#include "pipeline/schema_matching.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "similarity/similarity.h"

namespace pprl {

namespace {

/// Character-class histogram + summary stats of a column sample.
struct ColumnProfile {
  double mean_length = 0;
  double digit_fraction = 0;
  double alpha_fraction = 0;
  double space_fraction = 0;
  double dash_fraction = 0;
  double distinct_ratio = 0;
  double empty_fraction = 0;
};

ColumnProfile ProfileOf(const std::vector<std::string>& sample) {
  ColumnProfile profile;
  if (sample.empty()) return profile;
  size_t total_chars = 0, digits = 0, alphas = 0, spaces = 0, dashes = 0, empties = 0;
  std::set<std::string> distinct;
  for (const std::string& value : sample) {
    if (value.empty()) ++empties;
    distinct.insert(value);
    total_chars += value.size();
    for (char c : value) {
      const unsigned char u = static_cast<unsigned char>(c);
      if (std::isdigit(u)) ++digits;
      if (std::isalpha(u)) ++alphas;
      if (std::isspace(u)) ++spaces;
      if (c == '-') ++dashes;
    }
  }
  const double n = static_cast<double>(sample.size());
  profile.mean_length = static_cast<double>(total_chars) / n;
  if (total_chars > 0) {
    const double tc = static_cast<double>(total_chars);
    profile.digit_fraction = static_cast<double>(digits) / tc;
    profile.alpha_fraction = static_cast<double>(alphas) / tc;
    profile.space_fraction = static_cast<double>(spaces) / tc;
    profile.dash_fraction = static_cast<double>(dashes) / tc;
  }
  profile.distinct_ratio = static_cast<double>(distinct.size()) / n;
  profile.empty_fraction = static_cast<double>(empties) / n;
  return profile;
}

double FeatureSimilarity(double x, double y, double scale) {
  return std::max(0.0, 1.0 - std::abs(x - y) / scale);
}

/// Normalises column names for comparison: lower-case, strip separators
/// ("First_Name" ~ "firstname").
std::string CanonicalName(const std::string& name) {
  return StripNonAlnum(ToLower(name));
}

}  // namespace

double ColumnProfileSimilarity(const std::vector<std::string>& a_sample,
                               const std::vector<std::string>& b_sample) {
  const ColumnProfile pa = ProfileOf(a_sample);
  const ColumnProfile pb = ProfileOf(b_sample);
  double sim = 0;
  sim += FeatureSimilarity(pa.mean_length, pb.mean_length, 15.0);
  sim += FeatureSimilarity(pa.digit_fraction, pb.digit_fraction, 1.0);
  sim += FeatureSimilarity(pa.alpha_fraction, pb.alpha_fraction, 1.0);
  sim += FeatureSimilarity(pa.space_fraction, pb.space_fraction, 0.5);
  sim += FeatureSimilarity(pa.dash_fraction, pb.dash_fraction, 0.5);
  sim += FeatureSimilarity(pa.distinct_ratio, pb.distinct_ratio, 1.0);
  sim += FeatureSimilarity(pa.empty_fraction, pb.empty_fraction, 1.0);
  return sim / 7.0;
}

std::vector<SchemaCorrespondence> MatchSchemas(const Database& a, const Database& b,
                                               const SchemaMatchOptions& options) {
  // Sample values per column.
  auto sample_column = [&options](const Database& db, size_t field) {
    std::vector<std::string> sample;
    const size_t n = std::min(options.sample_size, db.records.size());
    sample.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      if (field < db.records[i].values.size()) {
        sample.push_back(db.records[i].values[field]);
      }
    }
    return sample;
  };

  std::vector<SchemaCorrespondence> all;
  for (size_t fa = 0; fa < a.schema.size(); ++fa) {
    const auto a_sample = sample_column(a, fa);
    for (size_t fb = 0; fb < b.schema.size(); ++fb) {
      SchemaCorrespondence corr;
      corr.a_field = static_cast<int>(fa);
      corr.b_field = static_cast<int>(fb);
      corr.name_similarity =
          JaroWinklerSimilarity(CanonicalName(a.schema.fields[fa].name),
                                CanonicalName(b.schema.fields[fb].name));
      corr.value_similarity = ColumnProfileSimilarity(a_sample, sample_column(b, fb));
      corr.confidence = options.name_weight * corr.name_similarity +
                        (1 - options.name_weight) * corr.value_similarity;
      // Declared-type mismatch is strong negative evidence.
      if (a.schema.fields[fa].type != b.schema.fields[fb].type) {
        corr.confidence *= 0.5;
      }
      all.push_back(corr);
    }
  }

  // Greedy 1:1 alignment, highest confidence first.
  std::sort(all.begin(), all.end(),
            [](const SchemaCorrespondence& x, const SchemaCorrespondence& y) {
              return x.confidence > y.confidence;
            });
  std::set<int> used_a, used_b;
  std::vector<SchemaCorrespondence> aligned;
  for (const SchemaCorrespondence& corr : all) {
    if (corr.confidence < options.min_confidence) break;
    if (used_a.count(corr.a_field) || used_b.count(corr.b_field)) continue;
    used_a.insert(corr.a_field);
    used_b.insert(corr.b_field);
    aligned.push_back(corr);
  }
  return aligned;
}

}  // namespace pprl
