#ifndef PPRL_PIPELINE_SCHEMA_MATCHING_H_
#define PPRL_PIPELINE_SCHEMA_MATCHING_H_

#include <string>
#include <vector>

#include "common/record.h"
#include "common/status.h"

namespace pprl {

/// One aligned column pair with the evidence behind it.
struct SchemaCorrespondence {
  int a_field = -1;
  int b_field = -1;
  double name_similarity = 0;   ///< string similarity of the column names
  double value_similarity = 0;  ///< distribution similarity of sampled values
  double confidence = 0;        ///< combined score in [0,1]
};

/// Options for schema matching.
struct SchemaMatchOptions {
  /// Records sampled from each side for value-profile comparison.
  size_t sample_size = 100;
  /// Minimum combined confidence for a correspondence to be emitted.
  double min_confidence = 0.5;
  /// Weight of name similarity vs value-profile similarity in [0,1].
  double name_weight = 0.4;
};

/// Schema matching across database owners (survey §3.1: "schema matching
/// identifies the common schema across different databases" [32]).
///
/// Combines column-name similarity (Jaro-Winkler on normalised names) with
/// a value-profile similarity computed from samples: type compatibility,
/// mean value length, character-class histogram, and distinct-value ratio.
/// Returns a greedy 1:1 alignment, best correspondences first. The value
/// profiles reveal only aggregate shape, not record values, so in a PPRL
/// setting they can be exchanged with far less risk than raw data.
std::vector<SchemaCorrespondence> MatchSchemas(const Database& a, const Database& b,
                                               const SchemaMatchOptions& options = {});

/// Value-profile similarity of two columns in [0,1] (exposed for tests).
double ColumnProfileSimilarity(const std::vector<std::string>& a_sample,
                               const std::vector<std::string>& b_sample);

}  // namespace pprl

#endif  // PPRL_PIPELINE_SCHEMA_MATCHING_H_
