#include "pipeline/pipeline.h"

#include <algorithm>

#include "blocking/blocking.h"
#include "blocking/lsh_blocking.h"
#include "eval/quality_estimation.h"
#include "encoding/hardening.h"
#include "common/thread_pool.h"
#include "linkage/classifier.h"
#include "linkage/matching.h"
#include "linkage/parallel_linkage.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "similarity/similarity.h"

namespace pprl {

PprlPipeline::PprlPipeline(PipelineConfig config) : config_(std::move(config)) {
  if (config_.fields.empty()) config_.fields = DefaultFieldConfigs();
}

std::vector<ClkFieldConfig> PprlPipeline::DefaultFieldConfigs() {
  // Hash-count weighting roughly by discriminating power: names highest,
  // then date of birth, then location fields.
  std::vector<ClkFieldConfig> fields;
  ClkFieldConfig first;
  first.field_name = "first_name";
  first.num_hashes = 20;
  fields.push_back(first);
  ClkFieldConfig last;
  last.field_name = "last_name";
  last.num_hashes = 20;
  fields.push_back(last);
  ClkFieldConfig dob;
  dob.field_name = "dob";
  dob.num_hashes = 20;
  dob.q = 2;
  fields.push_back(dob);
  ClkFieldConfig city;
  city.field_name = "city";
  city.num_hashes = 10;
  fields.push_back(city);
  return fields;
}

Result<double> PprlPipeline::CalibrateThreshold(const PipelineConfig& config,
                                                const Database& a, const Database& b,
                                                double floor) {
  PipelineConfig probe = config;
  probe.match_threshold = floor;
  probe.one_to_one = false;  // the mixture needs the raw score sample
  auto output = PprlPipeline(probe).Link(a, b);
  if (!output.ok()) return output.status();
  auto model = FitScoreMixture(output->matches);
  if (!model.ok()) return model.status();
  return model->SuggestThreshold();
}

Result<std::vector<BitVector>> PprlPipeline::EncodeDatabase(const Database& db,
                                                            uint64_t party_seed) const {
  const ClkEncoder encoder(config_.bloom, config_.fields);
  auto encoded = encoder.EncodeDatabase(db);
  if (!encoded.ok()) return encoded.status();
  std::vector<BitVector> filters = std::move(encoded).value();

  // Hardening must be identical across parties, so keys/flip decisions are
  // derived from the shared configuration (BLIP noise is per record but its
  // rng must differ per record, not per party run, so seed on record index).
  switch (config_.hardening) {
    case HardeningScheme::kNone:
      break;
    case HardeningScheme::kBalance:
      for (BitVector& f : filters) f = Balance(f, config_.hardening_key);
      break;
    case HardeningScheme::kXorFold:
      for (BitVector& f : filters) f = XorFold(f);
      break;
    case HardeningScheme::kRule90:
      for (BitVector& f : filters) f = Rule90(f);
      break;
    case HardeningScheme::kBlip: {
      for (size_t i = 0; i < filters.size(); ++i) {
        Rng rng(party_seed ^ (i * 0x9e3779b97f4a7c15ull));
        filters[i] = Blip(filters[i], config_.blip_flip_prob, rng);
      }
      break;
    }
  }
  return filters;
}

Result<LinkageOutput> PprlPipeline::Link(const Database& a, const Database& b) const {
  PPRL_RETURN_IF_ERROR(config_.bloom.Validate());
  LinkageOutput out;
  Channel channel;
  obs::GlobalMetrics()
      .GetCounter("pprl_pipeline_runs_total", "End-to-end PprlPipeline::Link runs")
      .Increment();

  // --- Each database owner encodes locally. -------------------------------
  obs::StageTimer encode_span("encode");
  auto a_encoded = EncodeDatabase(a, config_.seed ^ 0xA);
  if (!a_encoded.ok()) return a_encoded.status();
  auto b_encoded = EncodeDatabase(b, config_.seed ^ 0xB);
  if (!b_encoded.ok()) return b_encoded.status();
  const std::vector<BitVector>& fa = a_encoded.value();
  const std::vector<BitVector>& fb = b_encoded.value();
  out.encode_seconds = encode_span.Stop();

  const size_t filter_bytes = fa.empty() ? 0 : (fa[0].size() + 7) / 8;
  const std::string matcher =
      config_.model == LinkageModel::kTwoPartyDirect ? "party-a" : "lu-match";

  // --- Ship encodings according to the linkage model. ----------------------
  switch (config_.model) {
    case LinkageModel::kTwoPartyLinkageUnit:
    case LinkageModel::kDualLinkageUnit:
      channel.Send("party-a", matcher, fa.size() * filter_bytes, "encoded-filters");
      channel.Send("party-b", matcher, fb.size() * filter_bytes, "encoded-filters");
      break;
    case LinkageModel::kTwoPartyDirect:
      channel.Send("party-b", matcher, fb.size() * filter_bytes, "encoded-filters");
      break;
  }

  // --- Blocking. ------------------------------------------------------------
  // With num_threads > 1 the indexes are built here but candidate pairs are
  // never materialized: the comparison stage below streams them in shards
  // (blocking/blocking.h) straight into the scheduler. The pair order — and
  // hence the matches — is identical either way.
  const bool streaming = config_.num_threads > 1;
  obs::StageTimer block_span("block");
  std::vector<CandidatePair> candidates;
  BlockIndex index_a;
  BlockIndex index_b;
  switch (config_.blocking) {
    case BlockingScheme::kNone:
      if (!streaming) candidates = FullPairs(a.records.size(), b.records.size());
      break;
    case BlockingScheme::kSoundex: {
      const StandardBlocker blocker(SoundexNameKey(config_.secret_key));
      index_a = blocker.BuildIndex(a);
      index_b = blocker.BuildIndex(b);
      // In the dual-LU model the blocking keys go to a separate LU that
      // never sees the encodings.
      if (config_.model == LinkageModel::kDualLinkageUnit) {
        channel.Send("party-a", "lu-block", a.records.size() * 16, "blocking-keys");
        channel.Send("party-b", "lu-block", b.records.size() * 16, "blocking-keys");
      }
      if (!streaming) candidates = StandardBlocker::CandidatePairs(index_a, index_b);
      break;
    }
    case BlockingScheme::kHammingLsh: {
      Rng lsh_rng(config_.seed);
      const size_t filter_bits = fa.empty() ? config_.bloom.num_bits : fa[0].size();
      const HammingLshBlocker blocker(filter_bits, config_.lsh_tables,
                                      config_.lsh_bits_per_key, lsh_rng);
      if (config_.model == LinkageModel::kDualLinkageUnit) {
        const size_t key_bytes = (config_.lsh_bits_per_key + 7) / 8 + 2;
        channel.Send("party-a", "lu-block", a.records.size() * config_.lsh_tables * key_bytes,
                     "lsh-keys");
        channel.Send("party-b", "lu-block", b.records.size() * config_.lsh_tables * key_bytes,
                     "lsh-keys");
      }
      index_a = blocker.BuildIndex(fa);
      index_b = blocker.BuildIndex(fb);
      if (!streaming) candidates = HammingLshBlocker::CandidatePairs(index_a, index_b);
      break;
    }
  }
  out.block_seconds = block_span.Stop();

  // --- Comparison + classification at the matcher. --------------------------
  // The devirtualized Dice kernel over contiguous bit-matrix storage;
  // scores are bitwise identical to DiceSimilarity(), and pairs whose
  // cardinality bound already falls below the threshold skip the word loop.
  obs::StageTimer compare_span("compare");
  std::vector<ScoredPair> scored;
  if (streaming) {
    ParallelLinkageOptions parallel_options;
    parallel_options.num_threads = config_.num_threads;
    const BitMatrix ma = BitMatrix::FromVectors(fa);
    const BitMatrix mb = BitMatrix::FromVectors(fb);
    // Resolve the auto-sized tuning once: the run-shard producers need the
    // effective shard size, and StreamCompareShards resolves to the same
    // values internally (same options, same filter width).
    const ResolvedParallelTuning tuning =
        ResolveParallelTuning(parallel_options, ma.num_bits());
    StreamCompareResult streamed = StreamCompareShards(
        SimilarityMeasure::kDice, ma, mb, config_.match_threshold, parallel_options,
        [&](const CandidateShardFn& emit) {
          if (config_.blocking == BlockingScheme::kNone) {
            StreamFullPairRuns(a.records.size(), b.records.size(),
                               tuning.shard_size, emit);
          } else {
            StreamBlockedPairRuns(index_a, index_b, tuning.shard_size, emit);
          }
        });
    scored = std::move(streamed.hits);
    out.comparisons = streamed.comparisons;
    out.pruned_comparisons = streamed.pruned;
    out.candidate_pairs = streamed.comparisons;
  } else {
    const ComparisonEngine engine(SimilarityMeasure::kDice);
    scored = engine.Compare(fa, fb, candidates, config_.match_threshold);
    out.comparisons = engine.last_comparison_count();
    out.pruned_comparisons = engine.last_pruned_count();
    out.candidate_pairs = candidates.size();
  }
  if (config_.model == LinkageModel::kDualLinkageUnit) {
    channel.Send("lu-block", matcher, out.candidate_pairs * 8, "candidate-pairs");
  }
  obs::GlobalMetrics()
      .GetCounter("pprl_pipeline_candidate_pairs_total",
                  "Candidate pairs produced by the blocking stage")
      .Increment(out.candidate_pairs);
  const double compare_seconds = compare_span.Stop();

  obs::StageTimer classify_span("classify");
  const ThresholdClassifier classifier(config_.match_threshold, config_.match_threshold);
  std::vector<ScoredPair> matches = classifier.SelectMatches(scored);
  if (config_.one_to_one) matches = GreedyOneToOne(std::move(matches));
  // compare_seconds keeps its historical meaning: comparison + classification.
  out.compare_seconds = compare_seconds + classify_span.Stop();
  obs::GlobalMetrics()
      .GetCounter("pprl_pipeline_matches_total",
                  "Matches emitted by the classification stage")
      .Increment(matches.size());

  // Matcher announces the linked pair ids back to the owners.
  channel.Send(matcher, "party-a", matches.size() * 8, "match-ids");
  channel.Send(matcher, "party-b", matches.size() * 8, "match-ids");

  out.matches = std::move(matches);
  out.messages = channel.total_messages();
  out.bytes = channel.total_bytes();
  return out;
}

}  // namespace pprl
