#ifndef PPRL_LINKAGE_ONLINE_LINKAGE_H_
#define PPRL_LINKAGE_ONLINE_LINKAGE_H_

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include <memory>

#include "blocking/lsh_index.h"
#include "common/bitvector.h"
#include "common/status.h"
#include "io/checkpoint.h"
#include "linkage/clustering.h"
#include "linkage/comparison.h"
#include "obs/metrics.h"

namespace pprl {

/// Tuning of the online serving path. The LSH and threshold fields default
/// to the same values as `MultiPartyLinkageOptions`, which is what makes
/// the stream/batch parity guarantee hold out of the box.
struct OnlineLinkageOptions {
  double dice_threshold = 0.8;
  size_t lsh_tables = 20;
  size_t lsh_bits_per_key = 18;
  uint64_t lsh_seed = 42;
  /// Default cap on matches returned per query when the caller passes
  /// top_k = 0.
  size_t max_matches_per_query = 16;
};

/// One match returned by a link query.
struct OnlineMatch {
  uint32_t database = 0;
  uint32_t record = 0;
  uint64_t id = 0;  ///< the record id the owner appended with
  double score = 0;
};

/// Result of one link query.
struct OnlineQueryResult {
  /// Accepted matches, best first (descending score, ties by ascending
  /// (database, record)), capped at top_k.
  std::vector<OnlineMatch> matches;
  /// LSH candidates scored for this query (cost transparency).
  uint32_t candidates = 0;
  /// Cluster of the best match, when clusters were requested and the best
  /// match is in a multi-record cluster; else kNoCluster/0. Cluster ids are
  /// indices into the canonical sorted partition (see Clusters()).
  uint32_t cluster_id = UINT32_MAX;
  uint32_t cluster_size = 0;
};

/// The streaming counterpart of `LinkageUnitService::Link` (ROADMAP
/// "velocity" item): records arrive one at a time, each is linked against
/// the already-indexed population in O(candidates) — LSH probe, fused
/// kernel scoring, union-find attach — instead of re-linking the world.
///
/// ## Stream/batch equivalence
///
/// With equal (threshold, LSH geometry, seed), the engine's partition
/// equals a batch `Link()` with `use_star_clustering = false` over the same
/// data, REGARDLESS of arrival order:
///  - Edge set: the batch edge set is {cross-database pairs colliding in
///    >= 1 LSH table with kernel score >= threshold}. Collisions and scores
///    depend only on record content, and the engine considers each
///    unordered pair exactly once — when its later record arrives and
///    probes the index holding the earlier one. So the engine's accepted
///    edges are exactly the batch edges.
///  - Partition: connected components are independent of edge order, and
///    the materialized clusters are sorted (members, then clusters
///    lexicographically) exactly like `ConnectedComponents`, so cluster
///    indices agree too. Records with no accepted edge are singletons and
///    are excluded, again like the batch path.
///
/// Tie-breaking therefore never influences the partition; the
/// deterministic lowest-cluster-index rule of `IncrementalClusterer`
/// matters only for representative-based (star-like) maintenance, which
/// this engine deliberately does not use.
///
/// ## Concurrency
///
/// All public methods are thread-safe. Appends take an exclusive lock;
/// queries that do not ask for cluster info run under a shared lock and
/// never write (the partition cache is only rebuilt under the exclusive
/// lock), so read-mostly query traffic scales without contention.
class OnlineLinkageEngine {
 public:
  static constexpr uint32_t kNoCluster = UINT32_MAX;
  static constexpr uint32_t kNoDatabase = UINT32_MAX;

  OnlineLinkageEngine(size_t filter_bits, OnlineLinkageOptions options = {});

  /// Registers (or finds) a database by owner name; indices are assigned in
  /// first-registration order, which must match the batch run's shipment
  /// order for cluster-id parity.
  uint32_t RegisterDatabase(const std::string& name);

  /// Index of a previously registered database.
  std::optional<uint32_t> FindDatabase(const std::string& name) const;

  /// Links one arriving record into the population: indexes it, scores its
  /// LSH candidates from other databases, attaches accepted edges.
  /// Returns the record's index within its database.
  Result<uint32_t> Append(uint32_t database, uint64_t id, const BitVector& filter);

  /// Link query: matches of `filter` against the indexed population,
  /// without inserting anything. `exclude_database` (use kNoDatabase for
  /// none) drops candidates of the caller's own database, mirroring the
  /// batch path's cross-database-only comparisons. `top_k = 0` means the
  /// configured default cap. `want_clusters` additionally resolves the
  /// best match's cluster (may rebuild the partition cache: exclusive
  /// instead of shared lock).
  Result<OnlineQueryResult> Query(const BitVector& filter,
                                  uint32_t exclude_database, bool want_clusters,
                                  size_t top_k);

  /// The canonical partition: clusters of size >= 2, members sorted,
  /// clusters sorted — element-for-element equal to the batch
  /// `MultiPartyLinkageResult::clusters` with connected-components
  /// clustering. Cluster ids in query results index into this vector.
  std::vector<Cluster> Clusters();

  size_t filter_bits() const { return index_.filter_bits(); }
  size_t size() const;                            ///< total records indexed
  size_t database_count() const;
  size_t record_count(uint32_t database) const;   ///< records of one database
  /// By value: a reference into database_names_ could dangle across a
  /// concurrent RegisterDatabase reallocation once the lock drops.
  std::string database_name(uint32_t database) const;

  uint64_t edges() const;        ///< accepted match edges so far
  uint64_t comparisons() const;  ///< candidate pairs scored by appends

  /// Serializes the engine's full durable state — rows, database registry,
  /// union-find partition, LSH band checksum — as a checkpoint snapshot
  /// covering WAL records up to `wal_sequence`. Takes the shared lock:
  /// concurrent queries proceed; appends wait only for the memory copy,
  /// never for the checkpoint file write.
  io::OnlineSnapshot ExportSnapshot(uint64_t wal_sequence) const;

  /// Rebuilds an engine from a decoded checkpoint: restores the registry
  /// and partition and re-appends every row into a fresh LSH index (band
  /// tables are a deterministic function of the row sequence), verifying
  /// the rebuild against the snapshot's band checksum so geometry or seed
  /// drift fails loudly instead of silently changing the collision
  /// relation. Engine options (threshold, LSH geometry) come from the
  /// snapshot; `serving` carries the non-durable serving knobs.
  static Result<std::unique_ptr<OnlineLinkageEngine>> FromSnapshot(
      const io::OnlineSnapshot& snapshot, const OnlineLinkageOptions& serving);

 private:
  struct RowMeta {
    uint32_t database = 0;
    uint32_t record = 0;
    uint64_t id = 0;
  };

  uint32_t Find(uint32_t row);                  ///< union-find with halving
  void Union(uint32_t a, uint32_t b);
  void RefreshPartitionLocked();
  OnlineQueryResult QueryLocked(const BitVector& filter,
                                uint32_t exclude_database, bool want_clusters,
                                size_t top_k) const;

  const OnlineLinkageOptions options_;
  LshBandIndex index_;
  ComparisonEngine engine_;

  mutable std::shared_mutex mutex_;
  std::vector<RowMeta> meta_;
  std::vector<std::string> database_names_;
  std::vector<uint32_t> database_sizes_;
  std::vector<uint32_t> parent_;   ///< union-find over row ids
  std::vector<bool> linked_;       ///< row has >= 1 accepted edge
  uint64_t edges_ = 0;
  uint64_t comparisons_ = 0;

  /// Lazily maintained canonical partition (see Clusters()); row_cluster_
  /// maps each row to its cluster id or kNoCluster.
  bool partition_dirty_ = false;
  std::vector<Cluster> clusters_cache_;
  std::vector<uint32_t> row_cluster_;

  /// Scratch for Append's probe/pair building; guarded by the exclusive lock.
  std::vector<uint32_t> append_scratch_;
  std::vector<CandidatePair> pair_scratch_;

  obs::Histogram& insert_seconds_;
  obs::Histogram& query_seconds_;
  obs::Gauge& index_size_;
};

}  // namespace pprl

#endif  // PPRL_LINKAGE_ONLINE_LINKAGE_H_
