#include "linkage/compare_kernels.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <type_traits>

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#endif

#include "similarity/similarity.h"

namespace pprl {

namespace {

/// Popcount of a AND b over `words` words, unrolled four wide; the word
/// loop every measure reduces to.
inline size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t words) {
  size_t count = 0;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w])) +
             static_cast<size_t>(std::popcount(a[w + 1] & b[w + 1])) +
             static_cast<size_t>(std::popcount(a[w + 2] & b[w + 2])) +
             static_cast<size_t>(std::popcount(a[w + 3] & b[w + 3]));
  }
  for (; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

/// Score formulas, templated so each kernel instantiation folds its
/// branch away. These reproduce the scalar functions in
/// similarity/similarity.h operation for operation (same integer
/// identities, same cast-then-divide order), which is what makes the
/// kernel scores bitwise identical to the reference path.
template <SimilarityMeasure M>
inline double ScoreImpl(size_t ca, size_t cb, size_t c, size_t num_bits) {
  if constexpr (M == SimilarityMeasure::kDice) {
    if (ca + cb == 0) return 1.0;
    return 2.0 * static_cast<double>(c) / static_cast<double>(ca + cb);
  } else if constexpr (M == SimilarityMeasure::kJaccard) {
    const size_t uni = ca + cb - c;
    if (uni == 0) return 1.0;
    return static_cast<double>(c) / static_cast<double>(uni);
  } else if constexpr (M == SimilarityMeasure::kHamming) {
    if (num_bits == 0) return 1.0;
    return 1.0 - static_cast<double>(ca + cb - 2 * c) / static_cast<double>(num_bits);
  } else if constexpr (M == SimilarityMeasure::kOverlap) {
    const size_t smaller = std::min(ca, cb);
    if (smaller == 0) return ca == cb ? 1.0 : 0.0;
    return static_cast<double>(c) / static_cast<double>(smaller);
  } else {
    static_assert(M == SimilarityMeasure::kCosine);
    if (ca == 0 && cb == 0) return 1.0;
    if (ca == 0 || cb == 0) return 0.0;
    return static_cast<double>(c) /
           std::sqrt(static_cast<double>(ca) * static_cast<double>(cb));
  }
}

/// ScoreImpl at the best-case intersection c = min(ca, cb); see the
/// header for why this dominates every reachable score.
template <SimilarityMeasure M>
inline double BoundImpl(size_t ca, size_t cb, size_t num_bits) {
  const size_t smaller = std::min(ca, cb);
  if constexpr (M == SimilarityMeasure::kHamming) {
    if (num_bits == 0) return 1.0;
    const size_t diff = ca > cb ? ca - cb : cb - ca;
    return 1.0 - static_cast<double>(diff) / static_cast<double>(num_bits);
  } else if constexpr (M == SimilarityMeasure::kOverlap) {
    if (smaller == 0) return ca == cb ? 1.0 : 0.0;
    return 1.0;
  } else {
    return ScoreImpl<M>(ca, cb, smaller, num_bits);
  }
}

/// Appends one hit in whatever shape this instantiation emits: KernelPair
/// carries an explicit output slot (tiled execution order != candidate
/// order), a plain CandidatePair scored in caller order gets slot
/// `slot_base + i`, and an Out of ScoredPair skips the slot indirection
/// entirely.
template <typename Pair, typename Out>
inline void EmitScore(const Pair& pair, size_t i, uint32_t slot_base, double score,
                      std::vector<Out>& out) {
  if constexpr (std::is_same_v<Out, ScoredPair>) {
    out.push_back({pair.a, pair.b, score});
  } else if constexpr (std::is_same_v<Pair, KernelPair>) {
    out.push_back({pair.slot, score});
  } else {
    out.push_back({slot_base + static_cast<uint32_t>(i), score});
  }
}

/// Prefetch lead, in pairs. The fused AND-popcount of one pair costs a
/// few dozen cycles, so ~8 pairs of lead hides a fresh row's
/// main-memory latency; rows already resident just retire the hint.
constexpr size_t kPrefetchPairs = 8;

/// Issues software prefetches for the rows of pairs[i + kPrefetchPairs].
/// The candidate array names rows in an order the hardware stride
/// prefetcher cannot predict (blocked streams jump between b-ranges), but
/// the kernel itself knows every future address — classic binding of
/// irregular-but-known access. Hint locality 1: into L2, not L1 — the
/// current pair's words own L1.
template <typename Pair>
inline void PrefetchPairRows(const BitMatrix& a, const BitMatrix& b,
                             const Pair* pairs, size_t i, size_t num_pairs) {
#if defined(__GNUC__) && !defined(PPRL_NO_PREFETCH)
  const size_t j = i + kPrefetchPairs;
  if (j < num_pairs) {
    __builtin_prefetch(a.row(pairs[j].a), 0, 1);
    __builtin_prefetch(b.row(pairs[j].b), 0, 1);
  }
#else
  (void)a;
  (void)b;
  (void)pairs;
  (void)i;
  (void)num_pairs;
#endif
}

/// One kernel body serves both pair layouts and both output shapes (see
/// EmitScore). `min_score <= 0` hoists the bound check out of the loop —
/// every score lands in [0, 1], so nothing can prune and the bound's
/// division would be pure overhead.
template <SimilarityMeasure M, typename Pair, typename Out>
inline void KernelLoopBody(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                           size_t num_pairs, uint32_t slot_base, double min_score,
                           std::vector<Out>& out, CompareKernelStats& stats) {
  assert(a.num_bits() == b.num_bits());
  const size_t words = a.words_per_row();
  const size_t num_bits = a.num_bits();
  const size_t* a_counts = a.row_counts().data();
  const size_t* b_counts = b.row_counts().data();
  const bool use_bound = min_score > 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    PrefetchPairRows(a, b, pairs, i, num_pairs);
    const Pair pair = pairs[i];
    const size_t ca = a_counts[pair.a];
    const size_t cb = b_counts[pair.b];
    if (use_bound && BoundImpl<M>(ca, cb, num_bits) < min_score) {
      ++stats.pruned;
      continue;
    }
    const size_t c = AndCountWords(a.row(pair.a), b.row(pair.b), words);
    ++stats.scored;
    const double score = ScoreImpl<M>(ca, cb, c, num_bits);
    if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
  }
}

/// Division-free threshold comparisons for the Dice loop below.
///
/// Every Dice decision is "is RN(2x / sum) >= t" for exact small integers
/// 2x, sum. Multiplying through: outside a narrow band around t * sum the
/// comparison's outcome survives IEEE rounding, so the division is only
/// needed inside the band (vanishingly rare) and for actual hits, whose
/// emitted score must be the exactly-rounded quotient anyway. The band is
/// +-2^-48 relative — ~32 ulps, far wider than the <= 3 ulps the two
/// roundings (the t*sum products and the quotient) can move either side —
/// so the certain-above / certain-below verdicts are never wrong and the
/// kernel stays bitwise identical to the scalar path.
struct DiceBand {
  double hi = 0;  ///< t scaled up: 2x >= hi * sum proves the quotient >= t
  double lo = 0;  ///< t scaled down: 2x <= lo * sum proves the quotient < t
  explicit DiceBand(double t) : hi(t * (1.0 + 0x1p-48)), lo(t * (1.0 - 0x1p-48)) {}
};

/// The Dice kernel for thresholded runs (the comparison path every
/// pipeline takes): same pairs, same stats, same emitted scores as
/// KernelLoopBody<kDice>, but the two per-pair divisions (cardinality
/// bound, score-vs-threshold) collapse into two multiplies and integer-ish
/// compares via DiceBand. Only hits and band cases divide.
template <typename Pair, typename Out>
inline void DiceThresholdLoopBody(const BitMatrix& a, const BitMatrix& b,
                                  const Pair* pairs, size_t num_pairs,
                                  uint32_t slot_base, double min_score,
                                  std::vector<Out>& out, CompareKernelStats& stats) {
  assert(a.num_bits() == b.num_bits());
  constexpr SimilarityMeasure M = SimilarityMeasure::kDice;
  const size_t words = a.words_per_row();
  const size_t num_bits = a.num_bits();
  const size_t* a_counts = a.row_counts().data();
  const size_t* b_counts = b.row_counts().data();
  const DiceBand band(min_score);
  for (size_t i = 0; i < num_pairs; ++i) {
    PrefetchPairRows(a, b, pairs, i, num_pairs);
    const Pair pair = pairs[i];
    const size_t ca = a_counts[pair.a];
    const size_t cb = b_counts[pair.b];
    const size_t sum = ca + cb;
    if (sum == 0) {  // two empty filters score 1.0 by convention
      if (BoundImpl<M>(ca, cb, num_bits) < min_score) {
        ++stats.pruned;
        continue;
      }
      ++stats.scored;
      const double score = ScoreImpl<M>(ca, cb, 0, num_bits);
      if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
      continue;
    }
    const double dsum = static_cast<double>(sum);
    const double above = band.hi * dsum;
    const double below = band.lo * dsum;
    const double m2 = static_cast<double>(2 * std::min(ca, cb));
    if (m2 <= below ||
        (m2 < above && BoundImpl<M>(ca, cb, num_bits) < min_score)) {
      ++stats.pruned;
      continue;
    }
    const size_t c = AndCountWords(a.row(pair.a), b.row(pair.b), words);
    ++stats.scored;
    if (static_cast<double>(2 * c) <= below) continue;  // certain miss, no division
    const double score = ScoreImpl<M>(ca, cb, c, num_bits);
    if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define PPRL_HAVE_AVX512_CLONE 1
/// Clone of the loop for AVX-512 VPOPCNTDQ machines: one 512-bit
/// AND + lane popcount per 8 words. BitMatrix rows are 64-byte aligned and
/// zero-padded to their stride, so the loop rounds the word count up to
/// whole 512-bit blocks, uses aligned loads, and never needs a scalar
/// tail. Selected once per process via __builtin_cpu_supports, like the
/// POPCNT clone below.
template <SimilarityMeasure M, typename Pair, typename Out>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vpopcntdq"))) void
KernelLoopAvx512(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                 size_t num_pairs, uint32_t slot_base, double min_score,
                 std::vector<Out>& out, CompareKernelStats& stats) {
  assert(a.num_bits() == b.num_bits());
  const size_t blocks = (a.words_per_row() + 7) / 8;
  const size_t num_bits = a.num_bits();
  const size_t* a_counts = a.row_counts().data();
  const size_t* b_counts = b.row_counts().data();
  const bool use_bound = min_score > 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    PrefetchPairRows(a, b, pairs, i, num_pairs);
    const Pair pair = pairs[i];
    const size_t ca = a_counts[pair.a];
    const size_t cb = b_counts[pair.b];
    if (use_bound && BoundImpl<M>(ca, cb, num_bits) < min_score) {
      ++stats.pruned;
      continue;
    }
    const uint64_t* ra = a.row(pair.a);
    const uint64_t* rb = b.row(pair.b);
    __m512i acc = _mm512_setzero_si512();
    for (size_t w = 0; w < blocks; ++w) {
      const __m512i va = _mm512_load_si512(ra + 8 * w);
      const __m512i vb = _mm512_load_si512(rb + 8 * w);
      acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
    }
    const size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
    ++stats.scored;
    const double score = ScoreImpl<M>(ca, cb, c, num_bits);
    if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
  }
}

/// Horizontal sums of eight vectors at once: lane k of the result is the
/// sum of all eight lanes of v<k>. A 3-level qword/128-bit-lane shuffle
/// tree — ~21 ops for eight reductions where eight
/// _mm512_reduce_add_epi64 calls would cost ~48 and serialize.
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vpopcntdq"))) inline __m512i
HorizontalSum8(__m512i v0, __m512i v1, __m512i v2, __m512i v3, __m512i v4,
               __m512i v5, __m512i v6, __m512i v7) {
  // Level 1: adjacent-qword sums, two source vectors interleaved per result.
  const __m512i s01 = _mm512_add_epi64(_mm512_unpacklo_epi64(v0, v1),
                                       _mm512_unpackhi_epi64(v0, v1));
  const __m512i s23 = _mm512_add_epi64(_mm512_unpacklo_epi64(v2, v3),
                                       _mm512_unpackhi_epi64(v2, v3));
  const __m512i s45 = _mm512_add_epi64(_mm512_unpacklo_epi64(v4, v5),
                                       _mm512_unpackhi_epi64(v4, v5));
  const __m512i s67 = _mm512_add_epi64(_mm512_unpacklo_epi64(v6, v7),
                                       _mm512_unpackhi_epi64(v6, v7));
  // Levels 2 and 3: fold 128-bit chunks (0x88 picks even chunks of both
  // operands, 0xDD the odd ones) until lane k holds v<k>'s total.
  const __m512i t0 = _mm512_add_epi64(_mm512_shuffle_i64x2(s01, s23, 0x88),
                                      _mm512_shuffle_i64x2(s01, s23, 0xDD));
  const __m512i t1 = _mm512_add_epi64(_mm512_shuffle_i64x2(s45, s67, 0x88),
                                      _mm512_shuffle_i64x2(s45, s67, 0xDD));
  return _mm512_add_epi64(_mm512_shuffle_i64x2(t0, t1, 0x88),
                          _mm512_shuffle_i64x2(t0, t1, 0xDD));
}

/// One pair of the Dice threshold loop, AVX-512 popcount. The batched loop
/// below falls back to this for groups touched by pruning or empty
/// filters, and for the tail.
template <typename Pair, typename Out>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vpopcntdq"))) inline void
DiceThresholdPairAvx512(const BitMatrix& a, const BitMatrix& b,
                        const size_t* a_counts, const size_t* b_counts,
                        size_t blocks, size_t num_bits, const DiceBand& band,
                        double min_score, const Pair& pair, size_t i,
                        uint32_t slot_base, std::vector<Out>& out,
                        CompareKernelStats& stats) {
  constexpr SimilarityMeasure M = SimilarityMeasure::kDice;
  const size_t ca = a_counts[pair.a];
  const size_t cb = b_counts[pair.b];
  const size_t sum = ca + cb;
  if (sum == 0) {  // two empty filters score 1.0 by convention
    if (BoundImpl<M>(ca, cb, num_bits) < min_score) {
      ++stats.pruned;
      return;
    }
    ++stats.scored;
    const double score = ScoreImpl<M>(ca, cb, 0, num_bits);
    if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
    return;
  }
  const double dsum = static_cast<double>(sum);
  const double above = band.hi * dsum;
  const double below = band.lo * dsum;
  const double m2 = static_cast<double>(2 * std::min(ca, cb));
  if (m2 <= below || (m2 < above && BoundImpl<M>(ca, cb, num_bits) < min_score)) {
    ++stats.pruned;
    return;
  }
  const uint64_t* ra = a.row(pair.a);
  const uint64_t* rb = b.row(pair.b);
  __m512i acc = _mm512_setzero_si512();
  for (size_t w = 0; w < blocks; ++w) {
    const __m512i va = _mm512_load_si512(ra + 8 * w);
    const __m512i vb = _mm512_load_si512(rb + 8 * w);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
  }
  const size_t c = static_cast<size_t>(_mm512_reduce_add_epi64(acc));
  ++stats.scored;
  if (static_cast<double>(2 * c) <= below) return;
  const double score = ScoreImpl<M>(ca, cb, c, num_bits);
  if (score >= min_score) EmitScore(pair, i, slot_base, score, out);
}

/// Eight pairs {a0, b0..b0+7}: one a row against eight consecutive b rows
/// — the shape StreamFullPairs emits, where BitMatrix rows b0..b0+7 are
/// also adjacent in memory. The a row, its count and the band constants
/// hoist out; the cardinality tests and the miss test run as 8-lane
/// vector compares over the contiguous b_counts window. Returns false
/// (touching nothing) when the group needs the scalar path: an empty
/// filter, or a pair inside the rounding band whose prune decision needs
/// the exact bound.
template <typename Out>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vpopcntdq"))) inline bool
DiceThresholdDense8(const BitMatrix& a, const BitMatrix& b, const size_t* a_counts,
                    const size_t* b_counts, size_t blocks, size_t num_bits,
                    const DiceBand& band, double min_score,
                    const CandidatePair* pairs, size_t i, uint32_t slot_base,
                    std::vector<Out>& out, CompareKernelStats& stats) {
  constexpr SimilarityMeasure M = SimilarityMeasure::kDice;
  const uint32_t a0 = pairs[i].a;
  const uint32_t b0 = pairs[i].b;
  const size_t ca = a_counts[a0];
  // Pass 1, vectorized: lane k decides pair (a0, b0 + k).
  const __m512i ca_v = _mm512_set1_epi64(static_cast<long long>(ca));
  const __m512i cb_v = _mm512_loadu_si512(b_counts + b0);
  const __m512i sum_v = _mm512_add_epi64(ca_v, cb_v);
  if (_mm512_cmpeq_epi64_mask(sum_v, _mm512_setzero_si512()) != 0) return false;
  const __m512d dsum = _mm512_cvtepu64_pd(sum_v);
  const __m512d above = _mm512_mul_pd(_mm512_set1_pd(band.hi), dsum);
  const __m512d below = _mm512_mul_pd(_mm512_set1_pd(band.lo), dsum);
  const __m512d m2 = _mm512_cvtepu64_pd(
      _mm512_slli_epi64(_mm512_min_epu64(ca_v, cb_v), 1));
  const __mmask8 certain_prune = _mm512_cmp_pd_mask(m2, below, _CMP_LE_OQ);
  const __mmask8 in_band =
      _mm512_cmp_pd_mask(m2, above, _CMP_LT_OQ) & static_cast<__mmask8>(~certain_prune);
  if (in_band != 0) return false;
  stats.pruned += static_cast<size_t>(__builtin_popcount(certain_prune));
  const __mmask8 scored = static_cast<__mmask8>(~certain_prune);
  stats.scored += static_cast<size_t>(__builtin_popcount(scored));
  // Pass 2: popcounts against eight consecutive (adjacent) b rows; pruned
  // lanes ride along — recomputing them is cheaper than masking them out.
  __m512i v[8];
  const uint64_t* ra = a.row(a0);
  const uint64_t* rb = b.row(b0);
  const size_t stride = b.stride_words();
  if (blocks == 1) {
    const __m512i va = _mm512_load_si512(ra);
    for (size_t k = 0; k < 8; ++k) {
      v[k] = _mm512_popcnt_epi64(
          _mm512_and_si512(va, _mm512_load_si512(rb + k * stride)));
    }
  } else if (blocks == 2) {
    const __m512i va0 = _mm512_load_si512(ra);
    const __m512i va1 = _mm512_load_si512(ra + 8);
    for (size_t k = 0; k < 8; ++k) {
      const uint64_t* row = rb + k * stride;
      v[k] = _mm512_add_epi64(
          _mm512_popcnt_epi64(_mm512_and_si512(va0, _mm512_load_si512(row))),
          _mm512_popcnt_epi64(_mm512_and_si512(va1, _mm512_load_si512(row + 8))));
    }
  } else {
    for (size_t k = 0; k < 8; ++k) {
      const uint64_t* row = rb + k * stride;
      __m512i acc = _mm512_setzero_si512();
      for (size_t w = 0; w < blocks; ++w) {
        acc = _mm512_add_epi64(
            acc, _mm512_popcnt_epi64(_mm512_and_si512(
                     _mm512_load_si512(ra + 8 * w), _mm512_load_si512(row + 8 * w))));
      }
      v[k] = acc;
    }
  }
  const __m512i c_v =
      HorizontalSum8(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]);
  // Pass 3: lanes above the certain-miss line divide; everything else is
  // done. At real thresholds the hit mask is almost always zero.
  const __m512d two_c = _mm512_cvtepu64_pd(_mm512_slli_epi64(c_v, 1));
  __mmask8 hits = _mm512_cmp_pd_mask(two_c, below, _CMP_GT_OQ) & scored;
  if (hits != 0) {
    alignas(64) uint64_t counts[8];
    _mm512_store_si512(reinterpret_cast<__m512i*>(counts), c_v);
    while (hits != 0) {
      const size_t k = static_cast<size_t>(__builtin_ctz(hits));
      hits = static_cast<__mmask8>(hits & (hits - 1));
      const size_t cb = b_counts[b0 + k];
      const double score = ScoreImpl<M>(ca, cb, counts[k], num_bits);
      if (score >= min_score) {
        EmitScore(pairs[i + k], i + k, slot_base, score, out);
      }
    }
  }
  return true;
}

/// AVX-512 clone of DiceThresholdLoopBody: the 512-bit popcount plus the
/// division-free threshold tests, eight pairs per iteration. The hottest
/// loop in the codebase.
///
/// Groups of eight run in three passes: cardinality band tests, then eight
/// AND+VPOPCNT reductions sharing one HorizontalSum8 (the per-pair
/// _mm512_reduce_add_epi64 was the bottleneck once the divisions were
/// gone), then threshold decisions. Any group containing a prune or an
/// empty filter replays pair-by-pair through DiceThresholdPairAvx512 —
/// counters and emissions stay in pair order either way, so stats and
/// output are identical to the scalar loop at every prune rate.
template <typename Pair, typename Out>
__attribute__((target("avx512f,avx512bw,avx512dq,avx512vpopcntdq"))) void
DiceThresholdLoopAvx512(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                        size_t num_pairs, uint32_t slot_base, double min_score,
                        std::vector<Out>& out, CompareKernelStats& stats) {
  assert(a.num_bits() == b.num_bits());
  constexpr SimilarityMeasure M = SimilarityMeasure::kDice;
  const size_t blocks = (a.words_per_row() + 7) / 8;
  const size_t num_bits = a.num_bits();
  const size_t* a_counts = a.row_counts().data();
  const size_t* b_counts = b.row_counts().data();
  const DiceBand band(min_score);
  alignas(64) uint64_t counts[8];
  double below8[8];
  size_t i = 0;
  for (; i + 8 <= num_pairs; i += 8) {
    // Prefetch the next group's first rows one group ahead — eight fused
    // AND-popcounts of lead is plenty to cover a fresh B range.
    PrefetchPairRows(a, b, pairs, i + 7, num_pairs);
    // Dense-run detection: eight pairs {a0, b0..b0+7} (what StreamFullPairs
    // and sorted per-record blocked runs emit) take the fully vectorized
    // path. One 64-byte compare of the pair array against the expected
    // arithmetic run decides.
    if constexpr (std::is_same_v<Pair, CandidatePair> &&
                  sizeof(CandidatePair) == 8) {
      uint64_t first = 0;
      __builtin_memcpy(&first, pairs + i, sizeof(first));
      const __m512i kStep = _mm512_setr_epi64(
          0, 1LL << 32, 2LL << 32, 3LL << 32, 4LL << 32, 5LL << 32, 6LL << 32,
          7LL << 32);
      const __m512i expect = _mm512_add_epi64(
          _mm512_set1_epi64(static_cast<long long>(first)), kStep);
      const __m512i pvec =
          _mm512_loadu_si512(reinterpret_cast<const void*>(pairs + i));
      if (_mm512_cmpeq_epi64_mask(pvec, expect) == 0xFF &&
          DiceThresholdDense8(a, b, a_counts, b_counts, blocks, num_bits, band,
                              min_score, pairs, i, slot_base, out, stats)) {
        continue;
      }
    }
    // Pass 1: the division-free cardinality tests for the whole group.
    bool slow = false;
    for (size_t k = 0; k < 8; ++k) {
      const Pair pair = pairs[i + k];
      const size_t ca = a_counts[pair.a];
      const size_t cb = b_counts[pair.b];
      const size_t sum = ca + cb;
      if (sum == 0) {
        slow = true;
        break;
      }
      const double dsum = static_cast<double>(sum);
      const double above = band.hi * dsum;
      const double below = band.lo * dsum;
      const double m2 = static_cast<double>(2 * std::min(ca, cb));
      if (m2 <= below ||
          (m2 < above && BoundImpl<M>(ca, cb, num_bits) < min_score)) {
        slow = true;
        break;
      }
      below8[k] = below;
    }
    if (slow) {
      for (size_t k = 0; k < 8; ++k) {
        DiceThresholdPairAvx512(a, b, a_counts, b_counts, blocks, num_bits, band,
                                min_score, pairs[i + k], i + k, slot_base, out,
                                stats);
      }
      continue;
    }
    // Pass 2: eight AND+popcount accumulations, one shared reduction.
    // Filters up to 512 bits (the common CLK config) are one block; that
    // path drops the inner loop and the accumulator entirely.
    __m512i v[8];
    if (blocks == 1) {
      for (size_t k = 0; k < 8; ++k) {
        const Pair pair = pairs[i + k];
        v[k] = _mm512_popcnt_epi64(
            _mm512_and_si512(_mm512_load_si512(a.row(pair.a)),
                             _mm512_load_si512(b.row(pair.b))));
      }
    } else {
      for (size_t k = 0; k < 8; ++k) {
        const Pair pair = pairs[i + k];
        const uint64_t* ra = a.row(pair.a);
        const uint64_t* rb = b.row(pair.b);
        __m512i acc = _mm512_setzero_si512();
        for (size_t w = 0; w < blocks; ++w) {
          const __m512i va = _mm512_load_si512(ra + 8 * w);
          const __m512i vb = _mm512_load_si512(rb + 8 * w);
          acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(_mm512_and_si512(va, vb)));
        }
        v[k] = acc;
      }
    }
    _mm512_store_si512(reinterpret_cast<__m512i*>(counts),
                       HorizontalSum8(v[0], v[1], v[2], v[3], v[4], v[5], v[6], v[7]));
    // Pass 3: threshold decisions; division only for hits and band cases.
    for (size_t k = 0; k < 8; ++k) {
      ++stats.scored;
      const size_t c = counts[k];
      if (static_cast<double>(2 * c) <= below8[k]) continue;
      const Pair pair = pairs[i + k];
      const size_t ca = a_counts[pair.a];
      const size_t cb = b_counts[pair.b];
      const double score = ScoreImpl<M>(ca, cb, c, num_bits);
      if (score >= min_score) EmitScore(pair, i + k, slot_base, score, out);
    }
  }
  for (; i < num_pairs; ++i) {
    DiceThresholdPairAvx512(a, b, a_counts, b_counts, blocks, num_bits, band,
                            min_score, pairs[i], i, slot_base, out, stats);
  }
}

#define PPRL_HAVE_POPCNT_CLONE 1
/// Copy of the loop compiled with the POPCNT ISA extension: std::popcount
/// becomes one instruction instead of the portable SWAR sequence. Chosen
/// once per process via __builtin_cpu_supports, never per pair.
template <SimilarityMeasure M, typename Pair, typename Out>
__attribute__((target("popcnt"))) void KernelLoopPopcnt(
    const BitMatrix& a, const BitMatrix& b, const Pair* pairs, size_t num_pairs,
    uint32_t slot_base, double min_score, std::vector<Out>& out,
    CompareKernelStats& stats) {
  KernelLoopBody<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

template <typename Pair, typename Out>
__attribute__((target("popcnt"))) void DiceThresholdLoopPopcnt(
    const BitMatrix& a, const BitMatrix& b, const Pair* pairs, size_t num_pairs,
    uint32_t slot_base, double min_score, std::vector<Out>& out,
    CompareKernelStats& stats) {
  DiceThresholdLoopBody(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}
#endif

template <SimilarityMeasure M, typename Pair, typename Out>
void KernelLoopGeneric(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                       size_t num_pairs, uint32_t slot_base, double min_score,
                       std::vector<Out>& out, CompareKernelStats& stats) {
  KernelLoopBody<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

template <SimilarityMeasure M, typename Pair, typename Out>
void CompareKernelImpl(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                       size_t num_pairs, uint32_t slot_base, double min_score,
                       std::vector<Out>& out, CompareKernelStats& stats) {
  constexpr bool kIsDice = M == SimilarityMeasure::kDice;
#ifdef PPRL_HAVE_AVX512_CLONE
  static const bool have_avx512 = __builtin_cpu_supports("avx512f") &&
                                  __builtin_cpu_supports("avx512vpopcntdq");
  if (have_avx512) {
    if constexpr (kIsDice) {
      if (min_score > 0) {
        DiceThresholdLoopAvx512(a, b, pairs, num_pairs, slot_base, min_score, out,
                                stats);
        return;
      }
    }
    KernelLoopAvx512<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
    return;
  }
#endif
#ifdef PPRL_HAVE_POPCNT_CLONE
  static const bool have_popcnt = __builtin_cpu_supports("popcnt");
  if (have_popcnt) {
    if constexpr (kIsDice) {
      if (min_score > 0) {
        DiceThresholdLoopPopcnt(a, b, pairs, num_pairs, slot_base, min_score, out,
                                stats);
        return;
      }
    }
    KernelLoopPopcnt<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
    return;
  }
#endif
  if constexpr (kIsDice) {
    if (min_score > 0) {
      DiceThresholdLoopBody(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
      return;
    }
  }
  KernelLoopGeneric<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

template <typename Pair, typename Out>
void DispatchKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                    const Pair* pairs, size_t num_pairs, uint32_t slot_base,
                    double min_score, std::vector<Out>& out,
                    CompareKernelStats& stats) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      CompareKernelImpl<SimilarityMeasure::kDice>(a, b, pairs, num_pairs, slot_base,
                                                  min_score, out, stats);
      return;
    case SimilarityMeasure::kJaccard:
      CompareKernelImpl<SimilarityMeasure::kJaccard>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kHamming:
      CompareKernelImpl<SimilarityMeasure::kHamming>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kOverlap:
      CompareKernelImpl<SimilarityMeasure::kOverlap>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kCosine:
      CompareKernelImpl<SimilarityMeasure::kCosine>(a, b, pairs, num_pairs, slot_base,
                                                    min_score, out, stats);
      return;
  }
}

}  // namespace

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return "dice";
    case SimilarityMeasure::kJaccard:
      return "jaccard";
    case SimilarityMeasure::kHamming:
      return "hamming";
    case SimilarityMeasure::kOverlap:
      return "overlap";
    case SimilarityMeasure::kCosine:
      return "cosine";
  }
  return "unknown";
}

std::function<double(const BitVector&, const BitVector&)> MeasureFunction(
    SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return [](const BitVector& a, const BitVector& b) { return DiceSimilarity(a, b); };
    case SimilarityMeasure::kJaccard:
      return
          [](const BitVector& a, const BitVector& b) { return JaccardSimilarity(a, b); };
    case SimilarityMeasure::kHamming:
      return
          [](const BitVector& a, const BitVector& b) { return HammingSimilarity(a, b); };
    case SimilarityMeasure::kOverlap:
      return
          [](const BitVector& a, const BitVector& b) { return OverlapSimilarity(a, b); };
    case SimilarityMeasure::kCosine:
      return
          [](const BitVector& a, const BitVector& b) { return CosineSimilarity(a, b); };
  }
  return nullptr;
}

double ScoreFromIntersection(SimilarityMeasure measure, size_t ca, size_t cb, size_t c,
                             size_t num_bits) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return ScoreImpl<SimilarityMeasure::kDice>(ca, cb, c, num_bits);
    case SimilarityMeasure::kJaccard:
      return ScoreImpl<SimilarityMeasure::kJaccard>(ca, cb, c, num_bits);
    case SimilarityMeasure::kHamming:
      return ScoreImpl<SimilarityMeasure::kHamming>(ca, cb, c, num_bits);
    case SimilarityMeasure::kOverlap:
      return ScoreImpl<SimilarityMeasure::kOverlap>(ca, cb, c, num_bits);
    case SimilarityMeasure::kCosine:
      return ScoreImpl<SimilarityMeasure::kCosine>(ca, cb, c, num_bits);
  }
  return 0;
}

double ScoreUpperBound(SimilarityMeasure measure, size_t ca, size_t cb,
                       size_t num_bits) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return BoundImpl<SimilarityMeasure::kDice>(ca, cb, num_bits);
    case SimilarityMeasure::kJaccard:
      return BoundImpl<SimilarityMeasure::kJaccard>(ca, cb, num_bits);
    case SimilarityMeasure::kHamming:
      return BoundImpl<SimilarityMeasure::kHamming>(ca, cb, num_bits);
    case SimilarityMeasure::kOverlap:
      return BoundImpl<SimilarityMeasure::kOverlap>(ca, cb, num_bits);
    case SimilarityMeasure::kCosine:
      return BoundImpl<SimilarityMeasure::kCosine>(ca, cb, num_bits);
  }
  return 0;
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const KernelPair* pairs, size_t num_pairs, double min_score,
                   std::vector<SlottedScore>& out, CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, 0, min_score, out, stats);
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, uint32_t slot_base,
                   double min_score, std::vector<SlottedScore>& out,
                   CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, double min_score,
                   std::vector<ScoredPair>& out, CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, 0, min_score, out, stats);
}

}  // namespace pprl
