#include "linkage/compare_kernels.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <type_traits>

#include "similarity/similarity.h"

namespace pprl {

namespace {

/// Popcount of a AND b over `words` words, unrolled four wide; the word
/// loop every measure reduces to.
inline size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t words) {
  size_t count = 0;
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w])) +
             static_cast<size_t>(std::popcount(a[w + 1] & b[w + 1])) +
             static_cast<size_t>(std::popcount(a[w + 2] & b[w + 2])) +
             static_cast<size_t>(std::popcount(a[w + 3] & b[w + 3]));
  }
  for (; w < words; ++w) {
    count += static_cast<size_t>(std::popcount(a[w] & b[w]));
  }
  return count;
}

/// Score formulas, templated so each kernel instantiation folds its
/// branch away. These reproduce the scalar functions in
/// similarity/similarity.h operation for operation (same integer
/// identities, same cast-then-divide order), which is what makes the
/// kernel scores bitwise identical to the reference path.
template <SimilarityMeasure M>
inline double ScoreImpl(size_t ca, size_t cb, size_t c, size_t num_bits) {
  if constexpr (M == SimilarityMeasure::kDice) {
    if (ca + cb == 0) return 1.0;
    return 2.0 * static_cast<double>(c) / static_cast<double>(ca + cb);
  } else if constexpr (M == SimilarityMeasure::kJaccard) {
    const size_t uni = ca + cb - c;
    if (uni == 0) return 1.0;
    return static_cast<double>(c) / static_cast<double>(uni);
  } else if constexpr (M == SimilarityMeasure::kHamming) {
    if (num_bits == 0) return 1.0;
    return 1.0 - static_cast<double>(ca + cb - 2 * c) / static_cast<double>(num_bits);
  } else if constexpr (M == SimilarityMeasure::kOverlap) {
    const size_t smaller = std::min(ca, cb);
    if (smaller == 0) return ca == cb ? 1.0 : 0.0;
    return static_cast<double>(c) / static_cast<double>(smaller);
  } else {
    static_assert(M == SimilarityMeasure::kCosine);
    if (ca == 0 && cb == 0) return 1.0;
    if (ca == 0 || cb == 0) return 0.0;
    return static_cast<double>(c) /
           std::sqrt(static_cast<double>(ca) * static_cast<double>(cb));
  }
}

/// ScoreImpl at the best-case intersection c = min(ca, cb); see the
/// header for why this dominates every reachable score.
template <SimilarityMeasure M>
inline double BoundImpl(size_t ca, size_t cb, size_t num_bits) {
  const size_t smaller = std::min(ca, cb);
  if constexpr (M == SimilarityMeasure::kHamming) {
    if (num_bits == 0) return 1.0;
    const size_t diff = ca > cb ? ca - cb : cb - ca;
    return 1.0 - static_cast<double>(diff) / static_cast<double>(num_bits);
  } else if constexpr (M == SimilarityMeasure::kOverlap) {
    if (smaller == 0) return ca == cb ? 1.0 : 0.0;
    return 1.0;
  } else {
    return ScoreImpl<M>(ca, cb, smaller, num_bits);
  }
}

/// One kernel body serves both pair layouts and both output shapes:
/// KernelPair carries an explicit output slot (tiled execution order !=
/// candidate order), a plain CandidatePair scored in caller order gets
/// slot `slot_base + i`, and an Out of ScoredPair skips the slot
/// indirection entirely and emits the finished pair. `min_score <= 0`
/// hoists the bound check out of the loop — every score lands in [0, 1],
/// so nothing can prune and the bound's division would be pure overhead.
template <SimilarityMeasure M, typename Pair, typename Out>
inline void KernelLoopBody(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                           size_t num_pairs, uint32_t slot_base, double min_score,
                           std::vector<Out>& out, CompareKernelStats& stats) {
  assert(a.num_bits() == b.num_bits());
  const size_t words = a.words_per_row();
  const size_t num_bits = a.num_bits();
  const size_t* a_counts = a.row_counts().data();
  const size_t* b_counts = b.row_counts().data();
  const bool use_bound = min_score > 0;
  for (size_t i = 0; i < num_pairs; ++i) {
    const Pair pair = pairs[i];
    const size_t ca = a_counts[pair.a];
    const size_t cb = b_counts[pair.b];
    if (use_bound && BoundImpl<M>(ca, cb, num_bits) < min_score) {
      ++stats.pruned;
      continue;
    }
    const size_t c = AndCountWords(a.row(pair.a), b.row(pair.b), words);
    ++stats.scored;
    const double score = ScoreImpl<M>(ca, cb, c, num_bits);
    if (score >= min_score) {
      if constexpr (std::is_same_v<Out, ScoredPair>) {
        out.push_back({pair.a, pair.b, score});
      } else if constexpr (std::is_same_v<Pair, KernelPair>) {
        out.push_back({pair.slot, score});
      } else {
        out.push_back({slot_base + static_cast<uint32_t>(i), score});
      }
    }
  }
}

#if defined(__x86_64__) && defined(__GNUC__)
#define PPRL_HAVE_POPCNT_CLONE 1
/// Copy of the loop compiled with the POPCNT ISA extension: std::popcount
/// becomes one instruction instead of the portable SWAR sequence. Chosen
/// once per process via __builtin_cpu_supports, never per pair.
template <SimilarityMeasure M, typename Pair, typename Out>
__attribute__((target("popcnt"))) void KernelLoopPopcnt(
    const BitMatrix& a, const BitMatrix& b, const Pair* pairs, size_t num_pairs,
    uint32_t slot_base, double min_score, std::vector<Out>& out,
    CompareKernelStats& stats) {
  KernelLoopBody<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}
#endif

template <SimilarityMeasure M, typename Pair, typename Out>
void KernelLoopGeneric(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                       size_t num_pairs, uint32_t slot_base, double min_score,
                       std::vector<Out>& out, CompareKernelStats& stats) {
  KernelLoopBody<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

template <SimilarityMeasure M, typename Pair, typename Out>
void CompareKernelImpl(const BitMatrix& a, const BitMatrix& b, const Pair* pairs,
                       size_t num_pairs, uint32_t slot_base, double min_score,
                       std::vector<Out>& out, CompareKernelStats& stats) {
#ifdef PPRL_HAVE_POPCNT_CLONE
  static const bool have_popcnt = __builtin_cpu_supports("popcnt");
  if (have_popcnt) {
    KernelLoopPopcnt<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
    return;
  }
#endif
  KernelLoopGeneric<M>(a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

template <typename Pair, typename Out>
void DispatchKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                    const Pair* pairs, size_t num_pairs, uint32_t slot_base,
                    double min_score, std::vector<Out>& out,
                    CompareKernelStats& stats) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      CompareKernelImpl<SimilarityMeasure::kDice>(a, b, pairs, num_pairs, slot_base,
                                                  min_score, out, stats);
      return;
    case SimilarityMeasure::kJaccard:
      CompareKernelImpl<SimilarityMeasure::kJaccard>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kHamming:
      CompareKernelImpl<SimilarityMeasure::kHamming>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kOverlap:
      CompareKernelImpl<SimilarityMeasure::kOverlap>(a, b, pairs, num_pairs, slot_base,
                                                     min_score, out, stats);
      return;
    case SimilarityMeasure::kCosine:
      CompareKernelImpl<SimilarityMeasure::kCosine>(a, b, pairs, num_pairs, slot_base,
                                                    min_score, out, stats);
      return;
  }
}

}  // namespace

const char* SimilarityMeasureName(SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return "dice";
    case SimilarityMeasure::kJaccard:
      return "jaccard";
    case SimilarityMeasure::kHamming:
      return "hamming";
    case SimilarityMeasure::kOverlap:
      return "overlap";
    case SimilarityMeasure::kCosine:
      return "cosine";
  }
  return "unknown";
}

std::function<double(const BitVector&, const BitVector&)> MeasureFunction(
    SimilarityMeasure measure) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return [](const BitVector& a, const BitVector& b) { return DiceSimilarity(a, b); };
    case SimilarityMeasure::kJaccard:
      return
          [](const BitVector& a, const BitVector& b) { return JaccardSimilarity(a, b); };
    case SimilarityMeasure::kHamming:
      return
          [](const BitVector& a, const BitVector& b) { return HammingSimilarity(a, b); };
    case SimilarityMeasure::kOverlap:
      return
          [](const BitVector& a, const BitVector& b) { return OverlapSimilarity(a, b); };
    case SimilarityMeasure::kCosine:
      return
          [](const BitVector& a, const BitVector& b) { return CosineSimilarity(a, b); };
  }
  return nullptr;
}

double ScoreFromIntersection(SimilarityMeasure measure, size_t ca, size_t cb, size_t c,
                             size_t num_bits) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return ScoreImpl<SimilarityMeasure::kDice>(ca, cb, c, num_bits);
    case SimilarityMeasure::kJaccard:
      return ScoreImpl<SimilarityMeasure::kJaccard>(ca, cb, c, num_bits);
    case SimilarityMeasure::kHamming:
      return ScoreImpl<SimilarityMeasure::kHamming>(ca, cb, c, num_bits);
    case SimilarityMeasure::kOverlap:
      return ScoreImpl<SimilarityMeasure::kOverlap>(ca, cb, c, num_bits);
    case SimilarityMeasure::kCosine:
      return ScoreImpl<SimilarityMeasure::kCosine>(ca, cb, c, num_bits);
  }
  return 0;
}

double ScoreUpperBound(SimilarityMeasure measure, size_t ca, size_t cb,
                       size_t num_bits) {
  switch (measure) {
    case SimilarityMeasure::kDice:
      return BoundImpl<SimilarityMeasure::kDice>(ca, cb, num_bits);
    case SimilarityMeasure::kJaccard:
      return BoundImpl<SimilarityMeasure::kJaccard>(ca, cb, num_bits);
    case SimilarityMeasure::kHamming:
      return BoundImpl<SimilarityMeasure::kHamming>(ca, cb, num_bits);
    case SimilarityMeasure::kOverlap:
      return BoundImpl<SimilarityMeasure::kOverlap>(ca, cb, num_bits);
    case SimilarityMeasure::kCosine:
      return BoundImpl<SimilarityMeasure::kCosine>(ca, cb, num_bits);
  }
  return 0;
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const KernelPair* pairs, size_t num_pairs, double min_score,
                   std::vector<SlottedScore>& out, CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, 0, min_score, out, stats);
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, uint32_t slot_base,
                   double min_score, std::vector<SlottedScore>& out,
                   CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, slot_base, min_score, out, stats);
}

void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, double min_score,
                   std::vector<ScoredPair>& out, CompareKernelStats& stats) {
  DispatchKernel(measure, a, b, pairs, num_pairs, 0, min_score, out, stats);
}

}  // namespace pprl
