#ifndef PPRL_LINKAGE_CLUSTERING_H_
#define PPRL_LINKAGE_CLUSTERING_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "linkage/comparison.h"

namespace pprl {

/// A record reference in a multi-database setting.
struct RecordRef {
  uint32_t database = 0;
  uint32_t record = 0;

  friend bool operator==(const RecordRef& x, const RecordRef& y) {
    return x.database == y.database && x.record == y.record;
  }
  friend bool operator<(const RecordRef& x, const RecordRef& y) {
    return x.database != y.database ? x.database < y.database : x.record < y.record;
  }
};

/// A cluster of records believed to be the same entity.
using Cluster = std::vector<RecordRef>;

/// An edge between records of (possibly different) databases.
struct MatchEdge {
  RecordRef x;
  RecordRef y;
  double score = 0;
};

/// Connected-components clustering over match edges: the transitive closure
/// of pairwise matches. Fast but merges over-eagerly on chains.
std::vector<Cluster> ConnectedComponents(const std::vector<MatchEdge>& edges);

/// ConnectedComponents() with the union phase sharded over `scheduler`:
/// edge chunks union concurrently into a lock-free union-find (parents are
/// atomics linked by CAS, always higher root onto lower, so linking is
/// ABA-free and termination is guaranteed). Components and their members
/// are fully sorted before returning, so the clustering is identical to the
/// serial function regardless of worker count or union order.
std::vector<Cluster> ParallelConnectedComponents(const std::vector<MatchEdge>& edges,
                                                 WorkStealingScheduler& scheduler);

/// Star clustering: sorts records by how strongly they are connected, makes
/// the strongest unassigned record a cluster centre, assigns its unassigned
/// neighbours to it. Avoids the chain-merging of connected components.
std::vector<Cluster> StarClustering(const std::vector<MatchEdge>& edges);

/// Incremental clustering for multi-party PPRL [43]: records arrive one at a
/// time (velocity!) and are compared against existing cluster
/// representatives only; a record joins the best cluster above `threshold`
/// or founds a new one. The representative is the bitwise majority of the
/// cluster's encodings.
class IncrementalClusterer {
 public:
  /// `similarity` compares an encoding against a cluster representative.
  IncrementalClusterer(double threshold, PairSimilarityFunction similarity);

  /// Inserts one encoded record; returns the cluster index it joined.
  ///
  /// Determinism rule (both overloads): candidate clusters are scanned in
  /// ascending cluster index and only a strictly better score displaces the
  /// current best, so ties on score join the LOWEST cluster index. Stream
  /// replays therefore reproduce the same assignment regardless of how the
  /// candidate set was produced, as long as it contains the best cluster.
  size_t Insert(const RecordRef& ref, const BitVector& encoding);

  /// Candidate-restricted insert: compares `encoding` only against the
  /// listed cluster indices (out-of-range entries ignored, duplicates
  /// deduplicated) instead of scanning every cluster — O(candidates), not
  /// O(clusters). Callers obtain candidates from a blocking index over the
  /// cluster representatives or members (e.g. blocking/lsh_index.h). When
  /// the candidate set contains the would-be winner of the full scan, the
  /// result is identical to the unrestricted overload.
  size_t Insert(const RecordRef& ref, const BitVector& encoding,
                const std::vector<size_t>& candidate_clusters);

  /// A cluster may only contain one record per database when
  /// `one_per_database` is set (entities appear at most once per source).
  void set_one_per_database(bool value) { one_per_database_ = value; }

  const std::vector<Cluster>& clusters() const { return clusters_; }

  /// Number of representative comparisons performed so far (the metric the
  /// E9 benchmark reports against batch re-linkage).
  size_t comparisons() const { return comparisons_; }

 private:
  void UpdateRepresentative(size_t cluster_index, const BitVector& encoding);

  /// Scores cluster `c` against `encoding` and updates the running best
  /// (strictly-better-only; see the determinism rule on Insert). Returns
  /// whether the cluster was actually compared.
  bool ConsiderCluster(size_t c, const RecordRef& ref, const BitVector& encoding,
                       double* best_score, size_t* best_cluster);

  /// Joins `best_cluster` when `best_score` clears the threshold, else
  /// founds a new cluster. Returns the cluster index.
  size_t Attach(const RecordRef& ref, const BitVector& encoding,
                double best_score, size_t best_cluster);

  double threshold_;
  PairSimilarityFunction similarity_;
  bool one_per_database_ = false;
  std::vector<Cluster> clusters_;
  std::vector<BitVector> representatives_;
  /// Per-cluster, per-position counts of one-bits, for majority voting.
  std::vector<std::vector<uint32_t>> bit_counts_;
  size_t comparisons_ = 0;
};

/// Subset matching across p databases [43]: returns the clusters that
/// contain records from at least `min_databases` distinct databases (e.g.
/// "patients seen in at least 3 of 5 hospitals").
std::vector<Cluster> ClustersInAtLeast(const std::vector<Cluster>& clusters,
                                       size_t min_databases);

}  // namespace pprl

#endif  // PPRL_LINKAGE_CLUSTERING_H_
