#ifndef PPRL_LINKAGE_MULTIPARTY_H_
#define PPRL_LINKAGE_MULTIPARTY_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/random.h"
#include "common/status.h"

namespace pprl {

/// Communication patterns for multi-party PPRL (survey §3.4 "Advanced
/// communication patterns", [42]).
enum class CommunicationPattern {
  /// Every party sends to a single linkage unit (star).
  kStar,
  /// Values travel party -> party in a chain, accumulating on the way.
  kSequential,
  /// A ring: like sequential but the result returns to the initiator.
  kRing,
  /// Pairwise tree reduction: ceil(log2 p) rounds.
  kTree,
};

/// Cost metering of one multi-party aggregation.
struct MultiPartyCost {
  size_t messages = 0;
  size_t bytes = 0;
  size_t rounds = 0;
};

/// Securely aggregates the Bloom filters of p parties into a counting Bloom
/// filter using additive masking (per-position secure summation): each party
/// adds a random mask share that cancels over the full round, so no party or
/// linkage unit sees another's individual filter — the CBF protocol of [42].
///
/// Returns the position-wise counts plus the communication cost of the
/// chosen pattern. All filters must share one length; >= 3 parties required
/// for the masking to hide anything.
Result<std::vector<uint32_t>> SecureCbfAggregate(
    const std::vector<const BitVector*>& party_filters, CommunicationPattern pattern,
    Rng& rng, MultiPartyCost* cost);

/// Multi-party Dice similarity computed from the securely aggregated CBF:
///   p * |positions with count == p| / sum(counts).
Result<double> SecureMultiPartyDice(const std::vector<const BitVector*>& party_filters,
                                    CommunicationPattern pattern, Rng& rng,
                                    MultiPartyCost* cost);

/// Analytic message count of aggregating one value of `value_bytes` bytes
/// among `p` parties under `pattern` (used by the E6 benchmark to plot cost
/// versus party count without running every size).
MultiPartyCost PatternCost(CommunicationPattern pattern, size_t p, size_t value_bytes);

}  // namespace pprl

#endif  // PPRL_LINKAGE_MULTIPARTY_H_
