#ifndef PPRL_LINKAGE_TWO_PARTY_ITERATIVE_H_
#define PPRL_LINKAGE_TWO_PARTY_ITERATIVE_H_

#include <cstdint>
#include <vector>

#include "common/bitvector.h"
#include "common/status.h"
#include "blocking/blocking.h"
#include "linkage/comparison.h"

namespace pprl {

/// The iterative two-party protocol of Vatsalan & Christen [38]: two
/// database owners classify candidate pairs WITHOUT a linkage unit by
/// revealing their Bloom filters one random segment at a time.
///
/// After each round, both parties know the exact overlap on the revealed
/// positions and can bound the final Dice similarity from above and below:
///   * if even the optimistic bound misses the threshold, the pair is
///     dropped as a non-match (no more of it is revealed);
///   * if the pessimistic bound already clears the threshold, it is
///     accepted as a match early.
/// Only the undecided pairs survive to the next round, so most non-matches
/// are discarded after seeing a small fraction of the filters — the
/// protocol's privacy argument.
struct IterativeProtocolParams {
  double dice_threshold = 0.8;
  size_t num_rounds = 10;   ///< the filters are cut into this many segments
};

/// Outcome of the protocol for metering and evaluation.
struct IterativeProtocolResult {
  std::vector<ScoredPair> matches;  ///< score = exact Dice of accepted pairs
  /// Decided-per-round counts (accepted + rejected), length num_rounds.
  std::vector<size_t> decided_per_round;
  /// Average fraction of filter bits revealed per candidate pair before its
  /// decision (1.0 would mean "everything revealed", i.e. no privacy gain).
  double mean_revealed_fraction = 0;
  size_t messages = 0;
  size_t bytes = 0;
};

/// Runs the protocol over the candidate pairs. Filters of both parties
/// must share one length, which must be >= params.num_rounds.
Result<IterativeProtocolResult> IterativeTwoPartyLink(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, const IterativeProtocolParams& params,
    uint64_t segment_seed = 42);

}  // namespace pprl

#endif  // PPRL_LINKAGE_TWO_PARTY_ITERATIVE_H_
