#include "linkage/clustering.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>

#include "common/thread_pool.h"

namespace pprl {

namespace {

/// Union-find over compacted node ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(size_t x, size_t y) {
    x = Find(x);
    y = Find(y);
    if (x == y) return;
    if (rank_[x] < rank_[y]) std::swap(x, y);
    parent_[y] = x;
    if (rank_[x] == rank_[y]) ++rank_[x];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> rank_;
};

/// Wait-free-for-readers concurrent union-find: parents are atomics, Find
/// compresses with benign CAS path-halving, Union links the higher root
/// under the lower by CAS on the higher's own parent slot. A lost race
/// means some root moved, so retrying with fresh roots always makes
/// progress, and roots only ever decrease — no ABA, no locks.
class AtomicUnionFind {
 public:
  explicit AtomicUnionFind(size_t n)
      : parent_(std::make_unique<std::atomic<size_t>[]>(n)) {
    for (size_t i = 0; i < n; ++i) parent_[i].store(i, std::memory_order_relaxed);
  }

  size_t Find(size_t x) {
    while (true) {
      size_t p = parent_[x].load(std::memory_order_acquire);
      if (p == x) return x;
      const size_t gp = parent_[p].load(std::memory_order_acquire);
      // Halving: point x at its grandparent. Failure just means another
      // thread compressed first; either way the chain shortened.
      parent_[x].compare_exchange_weak(p, gp, std::memory_order_acq_rel);
      x = gp;
    }
  }

  void Union(size_t x, size_t y) {
    while (true) {
      x = Find(x);
      y = Find(y);
      if (x == y) return;
      if (x < y) std::swap(x, y);  // link the higher root x under y
      size_t expected = x;
      if (parent_[x].compare_exchange_strong(expected, y,
                                             std::memory_order_acq_rel)) {
        return;
      }
    }
  }

 private:
  std::unique_ptr<std::atomic<size_t>[]> parent_;
};

}  // namespace

std::vector<Cluster> ConnectedComponents(const std::vector<MatchEdge>& edges) {
  std::map<RecordRef, size_t> ids;
  std::vector<RecordRef> rev;
  for (const MatchEdge& e : edges) {
    for (const RecordRef& r : {e.x, e.y}) {
      if (ids.emplace(r, rev.size()).second) rev.push_back(r);
    }
  }
  UnionFind uf(rev.size());
  for (const MatchEdge& e : edges) uf.Union(ids[e.x], ids[e.y]);

  std::unordered_map<size_t, Cluster> components;
  for (size_t i = 0; i < rev.size(); ++i) components[uf.Find(i)].push_back(rev[i]);
  std::vector<Cluster> out;
  out.reserve(components.size());
  for (auto& [root, cluster] : components) {
    std::sort(cluster.begin(), cluster.end());
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cluster> ParallelConnectedComponents(const std::vector<MatchEdge>& edges,
                                                 WorkStealingScheduler& scheduler) {
  // Id assignment stays serial (it orders the nodes deterministically and
  // is a fraction of the union work); the unions are what shard.
  std::map<RecordRef, size_t> ids;
  std::vector<RecordRef> rev;
  for (const MatchEdge& e : edges) {
    for (const RecordRef& r : {e.x, e.y}) {
      if (ids.emplace(r, rev.size()).second) rev.push_back(r);
    }
  }

  AtomicUnionFind uf(rev.size());
  constexpr size_t kMinChunkEdges = 4096;
  const size_t n = edges.size();
  const size_t target_chunks = std::max<size_t>(1, scheduler.num_threads() * 4);
  const size_t chunk = std::max(kMinChunkEdges, (n + target_chunks - 1) / target_chunks);
  TaskGroup group(scheduler);
  for (size_t begin = 0; begin < n; begin += chunk) {
    const size_t end = std::min(n, begin + chunk);
    group.Submit([&edges, &ids, &uf, begin, end] {
      for (size_t i = begin; i < end; ++i) {
        uf.Union(ids.find(edges[i].x)->second, ids.find(edges[i].y)->second);
      }
    });
  }
  group.Wait();

  // Grouping plus the two full sorts make the output independent of union
  // order, hence identical to ConnectedComponents().
  std::unordered_map<size_t, Cluster> components;
  for (size_t i = 0; i < rev.size(); ++i) components[uf.Find(i)].push_back(rev[i]);
  std::vector<Cluster> out;
  out.reserve(components.size());
  for (auto& [root, cluster] : components) {
    std::sort(cluster.begin(), cluster.end());
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Cluster> StarClustering(const std::vector<MatchEdge>& edges) {
  // Adjacency with strongest-first ordering by total incident weight.
  std::map<RecordRef, std::vector<std::pair<double, RecordRef>>> adj;
  std::map<RecordRef, double> strength;
  for (const MatchEdge& e : edges) {
    adj[e.x].push_back({e.score, e.y});
    adj[e.y].push_back({e.score, e.x});
    strength[e.x] += e.score;
    strength[e.y] += e.score;
  }
  std::vector<std::pair<double, RecordRef>> order;
  order.reserve(strength.size());
  for (const auto& [ref, s] : strength) order.push_back({s, ref});
  std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });

  std::set<RecordRef> assigned;
  std::vector<Cluster> out;
  for (const auto& [s, centre] : order) {
    if (assigned.count(centre)) continue;
    Cluster cluster{centre};
    assigned.insert(centre);
    auto& neighbors = adj[centre];
    std::sort(neighbors.begin(), neighbors.end(), [](const auto& x, const auto& y) {
      if (x.first != y.first) return x.first > y.first;
      return x.second < y.second;
    });
    for (const auto& [score, neighbor] : neighbors) {
      if (assigned.count(neighbor)) continue;
      cluster.push_back(neighbor);
      assigned.insert(neighbor);
    }
    std::sort(cluster.begin(), cluster.end());
    out.push_back(std::move(cluster));
  }
  std::sort(out.begin(), out.end());
  return out;
}

IncrementalClusterer::IncrementalClusterer(double threshold,
                                           PairSimilarityFunction similarity)
    : threshold_(threshold), similarity_(std::move(similarity)) {}

void IncrementalClusterer::UpdateRepresentative(size_t cluster_index,
                                                const BitVector& encoding) {
  auto& counts = bit_counts_[cluster_index];
  if (counts.size() < encoding.size()) counts.resize(encoding.size(), 0);
  for (uint32_t pos : encoding.SetPositions()) ++counts[pos];
  const size_t cluster_size = clusters_[cluster_index].size();
  BitVector rep(counts.size());
  for (size_t i = 0; i < counts.size(); ++i) {
    if (2 * counts[i] >= cluster_size) rep.Set(i);
  }
  representatives_[cluster_index] = std::move(rep);
}

bool IncrementalClusterer::ConsiderCluster(size_t c, const RecordRef& ref,
                                           const BitVector& encoding,
                                           double* best_score,
                                           size_t* best_cluster) {
  if (one_per_database_) {
    bool database_taken = false;
    for (const RecordRef& member : clusters_[c]) {
      if (member.database == ref.database) {
        database_taken = true;
        break;
      }
    }
    if (database_taken) return false;
  }
  if (representatives_[c].size() != encoding.size()) return false;
  ++comparisons_;
  const double score = similarity_(representatives_[c], encoding);
  // Strictly better only: ties keep the earlier (lowest-index) cluster,
  // the determinism rule documented in the header.
  if (score > *best_score) {
    *best_score = score;
    *best_cluster = c;
  }
  return true;
}

size_t IncrementalClusterer::Insert(const RecordRef& ref, const BitVector& encoding) {
  double best_score = -1;
  size_t best_cluster = clusters_.size();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    ConsiderCluster(c, ref, encoding, &best_score, &best_cluster);
  }
  return Attach(ref, encoding, best_score, best_cluster);
}

size_t IncrementalClusterer::Insert(const RecordRef& ref,
                                    const BitVector& encoding,
                                    const std::vector<size_t>& candidate_clusters) {
  // Ascending order + dedup preserve the lowest-index tie rule no matter
  // how the caller's blocking index ordered its candidates.
  std::vector<size_t> candidates = candidate_clusters;
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  double best_score = -1;
  size_t best_cluster = clusters_.size();
  for (size_t c : candidates) {
    if (c >= clusters_.size()) continue;
    ConsiderCluster(c, ref, encoding, &best_score, &best_cluster);
  }
  return Attach(ref, encoding, best_score, best_cluster);
}

size_t IncrementalClusterer::Attach(const RecordRef& ref,
                                    const BitVector& encoding,
                                    double best_score, size_t best_cluster) {
  if (best_cluster == clusters_.size() || best_score < threshold_) {
    clusters_.push_back({ref});
    representatives_.push_back(encoding);
    bit_counts_.emplace_back();
    auto& counts = bit_counts_.back();
    counts.resize(encoding.size(), 0);
    for (uint32_t pos : encoding.SetPositions()) ++counts[pos];
    return clusters_.size() - 1;
  }
  clusters_[best_cluster].push_back(ref);
  UpdateRepresentative(best_cluster, encoding);
  return best_cluster;
}

std::vector<Cluster> ClustersInAtLeast(const std::vector<Cluster>& clusters,
                                       size_t min_databases) {
  std::vector<Cluster> out;
  for (const Cluster& cluster : clusters) {
    std::set<uint32_t> databases;
    for (const RecordRef& ref : cluster) databases.insert(ref.database);
    if (databases.size() >= min_databases) out.push_back(cluster);
  }
  return out;
}

}  // namespace pprl
