#include "linkage/online_linkage.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>

namespace pprl {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Sub-millisecond query path: DefaultLatencyBuckets() starts at 100 us,
/// which would put the entire distribution in two buckets. These start at
/// 1 us so p50/p99 of the 10k-QPS target are actually resolvable.
const std::vector<double>& MicroLatencyBuckets() {
  static const std::vector<double> buckets = {
      1e-6, 2.5e-6, 5e-6,  1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4,
      5e-4, 1e-3,   2.5e-3, 5e-3, 1e-2,   0.1,  1.0};
  return buckets;
}

/// Same acceptance tolerances as the batch path in pipeline/party.cc: the
/// kernel may prune with a bound 2e-12 under the threshold, and a score
/// within 1e-12 of the threshold is accepted.
constexpr double kKernelSlack = 2e-12;
constexpr double kAcceptSlack = 1e-12;

}  // namespace

OnlineLinkageEngine::OnlineLinkageEngine(size_t filter_bits,
                                         OnlineLinkageOptions options)
    : options_(options),
      index_(filter_bits, options.lsh_tables, options.lsh_bits_per_key,
             options.lsh_seed),
      engine_(SimilarityMeasure::kDice),
      insert_seconds_(obs::GlobalMetrics().GetHistogram(
          "pprl_index_insert_seconds",
          "Latency of linking one arriving record (LSH index append + "
          "candidate scoring + cluster attach)",
          MicroLatencyBuckets())),
      query_seconds_(obs::GlobalMetrics().GetHistogram(
          "pprl_query_seconds",
          "Latency of one online link query (LSH probe + candidate scoring)",
          MicroLatencyBuckets())),
      index_size_(obs::GlobalMetrics().GetGauge(
          "pprl_index_size", "Records currently held by the online LSH index")) {}

uint32_t OnlineLinkageEngine::RegisterDatabase(const std::string& name) {
  std::unique_lock lock(mutex_);
  for (size_t i = 0; i < database_names_.size(); ++i) {
    if (database_names_[i] == name) return static_cast<uint32_t>(i);
  }
  database_names_.push_back(name);
  database_sizes_.push_back(0);
  return static_cast<uint32_t>(database_names_.size() - 1);
}

std::optional<uint32_t> OnlineLinkageEngine::FindDatabase(
    const std::string& name) const {
  std::shared_lock lock(mutex_);
  for (size_t i = 0; i < database_names_.size(); ++i) {
    if (database_names_[i] == name) return static_cast<uint32_t>(i);
  }
  return std::nullopt;
}

uint32_t OnlineLinkageEngine::Find(uint32_t row) {
  while (parent_[row] != row) {
    parent_[row] = parent_[parent_[row]];  // path halving
    row = parent_[row];
  }
  return row;
}

void OnlineLinkageEngine::Union(uint32_t a, uint32_t b) {
  uint32_t ra = Find(a);
  uint32_t rb = Find(b);
  if (ra == rb) return;
  if (rb < ra) std::swap(ra, rb);
  parent_[rb] = ra;
}

Result<uint32_t> OnlineLinkageEngine::Append(uint32_t database, uint64_t id,
                                             const BitVector& filter) {
  if (filter.size() != filter_bits()) {
    return Status::InvalidArgument(
        "filter has " + std::to_string(filter.size()) + " bits, index takes " +
        std::to_string(filter_bits()));
  }
  const Clock::time_point start = Clock::now();
  std::unique_lock lock(mutex_);
  if (database >= database_names_.size()) {
    return Status::InvalidArgument("unregistered database index " +
                                   std::to_string(database));
  }
  // Probe before appending, so the candidate set is exactly the rows that
  // arrived earlier — each unordered pair is considered once, by whichever
  // record arrives later (the stream/batch equivalence argument).
  index_.Probe(filter, &append_scratch_);
  const uint32_t row = index_.Append(filter);
  const uint32_t record = database_sizes_[database]++;
  meta_.push_back({database, record, id});
  parent_.push_back(row);
  linked_.push_back(false);

  pair_scratch_.clear();
  for (uint32_t cand : append_scratch_) {
    // The batch path never compares records of the same database.
    if (meta_[cand].database == database) continue;
    pair_scratch_.push_back({row, cand});
  }
  comparisons_ += pair_scratch_.size();
  const std::vector<ScoredPair> scored = engine_.CompareMatrices(
      index_.rows(), index_.rows(), pair_scratch_,
      options_.dice_threshold - kKernelSlack);
  for (const ScoredPair& pair : scored) {
    if (pair.score + kAcceptSlack < options_.dice_threshold) continue;
    Union(pair.a, pair.b);
    linked_[pair.a] = true;
    linked_[pair.b] = true;
    ++edges_;
    partition_dirty_ = true;
  }
  index_size_.Set(static_cast<int64_t>(meta_.size()));
  insert_seconds_.Observe(SecondsSince(start));
  return record;
}

void OnlineLinkageEngine::RefreshPartitionLocked() {
  if (!partition_dirty_) {
    // Edge-free appends only add excluded singletons; extend the row map
    // without rebuilding.
    row_cluster_.resize(meta_.size(), kNoCluster);
    return;
  }
  std::unordered_map<uint32_t, std::vector<uint32_t>> groups;
  for (uint32_t row = 0; row < meta_.size(); ++row) {
    if (linked_[row]) groups[Find(row)].push_back(row);
  }
  // Materialize exactly like ConnectedComponents: members sorted, clusters
  // sorted, so ids are canonical regardless of union order.
  std::vector<std::pair<Cluster, std::vector<uint32_t>>> built;
  built.reserve(groups.size());
  for (auto& [root, rows] : groups) {
    Cluster members;
    members.reserve(rows.size());
    for (uint32_t r : rows) members.push_back({meta_[r].database, meta_[r].record});
    std::sort(members.begin(), members.end());
    built.emplace_back(std::move(members), std::move(rows));
  }
  std::sort(built.begin(), built.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  clusters_cache_.clear();
  clusters_cache_.reserve(built.size());
  row_cluster_.assign(meta_.size(), kNoCluster);
  for (size_t c = 0; c < built.size(); ++c) {
    for (uint32_t r : built[c].second) row_cluster_[r] = static_cast<uint32_t>(c);
    clusters_cache_.push_back(std::move(built[c].first));
  }
  partition_dirty_ = false;
}

OnlineQueryResult OnlineLinkageEngine::QueryLocked(const BitVector& filter,
                                                   uint32_t exclude_database,
                                                   bool want_clusters,
                                                   size_t top_k) const {
  OnlineQueryResult out;
  std::vector<uint32_t> candidates;
  index_.Probe(filter, &candidates);
  std::vector<CandidatePair> pairs;
  pairs.reserve(candidates.size());
  for (uint32_t cand : candidates) {
    if (exclude_database != kNoDatabase &&
        meta_[cand].database == exclude_database) {
      continue;
    }
    pairs.push_back({0, cand});
  }
  out.candidates = static_cast<uint32_t>(pairs.size());
  if (pairs.empty()) return out;

  BitMatrix probe(1, filter_bits());
  std::memcpy(probe.mutable_row(0), filter.words().data(),
              filter.words().size() * sizeof(uint64_t));
  probe.RecountRow(0);
  std::vector<ScoredPair> scored = engine_.CompareMatrices(
      probe, index_.rows(), pairs, options_.dice_threshold - kKernelSlack);
  scored.erase(std::remove_if(scored.begin(), scored.end(),
                              [this](const ScoredPair& p) {
                                return p.score + kAcceptSlack <
                                       options_.dice_threshold;
                              }),
               scored.end());
  std::sort(scored.begin(), scored.end(),
            [this](const ScoredPair& x, const ScoredPair& y) {
              if (x.score != y.score) return x.score > y.score;
              const RowMeta& mx = meta_[x.b];
              const RowMeta& my = meta_[y.b];
              return mx.database != my.database ? mx.database < my.database
                                                : mx.record < my.record;
            });
  const size_t cap = top_k == 0 ? options_.max_matches_per_query : top_k;
  if (scored.size() > cap) scored.resize(cap);
  out.matches.reserve(scored.size());
  for (const ScoredPair& pair : scored) {
    const RowMeta& m = meta_[pair.b];
    out.matches.push_back({m.database, m.record, m.id, pair.score});
  }
  if (want_clusters && !scored.empty()) {
    const uint32_t best_row = scored.front().b;
    const uint32_t cid = row_cluster_[best_row];
    if (cid != kNoCluster) {
      out.cluster_id = cid;
      out.cluster_size = static_cast<uint32_t>(clusters_cache_[cid].size());
    }
  }
  return out;
}

Result<OnlineQueryResult> OnlineLinkageEngine::Query(const BitVector& filter,
                                                     uint32_t exclude_database,
                                                     bool want_clusters,
                                                     size_t top_k) {
  if (filter.size() != filter_bits()) {
    return Status::InvalidArgument(
        "query filter has " + std::to_string(filter.size()) +
        " bits, index takes " + std::to_string(filter_bits()));
  }
  const Clock::time_point start = Clock::now();
  OnlineQueryResult out;
  if (want_clusters) {
    std::unique_lock lock(mutex_);
    RefreshPartitionLocked();
    out = QueryLocked(filter, exclude_database, want_clusters, top_k);
  } else {
    std::shared_lock lock(mutex_);
    out = QueryLocked(filter, exclude_database, want_clusters, top_k);
  }
  query_seconds_.Observe(SecondsSince(start));
  return out;
}

std::vector<Cluster> OnlineLinkageEngine::Clusters() {
  std::unique_lock lock(mutex_);
  RefreshPartitionLocked();
  return clusters_cache_;
}

size_t OnlineLinkageEngine::size() const {
  std::shared_lock lock(mutex_);
  return meta_.size();
}

size_t OnlineLinkageEngine::database_count() const {
  std::shared_lock lock(mutex_);
  return database_names_.size();
}

size_t OnlineLinkageEngine::record_count(uint32_t database) const {
  std::shared_lock lock(mutex_);
  return database < database_sizes_.size() ? database_sizes_[database] : 0;
}

std::string OnlineLinkageEngine::database_name(uint32_t database) const {
  std::shared_lock lock(mutex_);
  return database_names_[database];
}

uint64_t OnlineLinkageEngine::edges() const {
  std::shared_lock lock(mutex_);
  return edges_;
}

uint64_t OnlineLinkageEngine::comparisons() const {
  std::shared_lock lock(mutex_);
  return comparisons_;
}

io::OnlineSnapshot OnlineLinkageEngine::ExportSnapshot(
    uint64_t wal_sequence) const {
  std::shared_lock lock(mutex_);
  io::OnlineSnapshot snapshot;
  snapshot.filter_bits = static_cast<uint32_t>(filter_bits());
  snapshot.lsh_tables = static_cast<uint32_t>(options_.lsh_tables);
  snapshot.lsh_bits_per_key = static_cast<uint32_t>(options_.lsh_bits_per_key);
  snapshot.lsh_seed = options_.lsh_seed;
  snapshot.dice_threshold = options_.dice_threshold;
  snapshot.wal_sequence = wal_sequence;
  snapshot.database_names = database_names_;
  snapshot.database_sizes = database_sizes_;
  snapshot.rows.ids.reserve(meta_.size());
  snapshot.row_database.reserve(meta_.size());
  snapshot.linked.reserve(meta_.size());
  for (const RowMeta& m : meta_) {
    snapshot.rows.ids.push_back(m.id);
    snapshot.row_database.push_back(m.database);
  }
  snapshot.rows.bits = index_.rows();
  snapshot.parent = parent_;
  for (const bool l : linked_) snapshot.linked.push_back(l ? 1 : 0);
  snapshot.edges = edges_;
  snapshot.comparisons = comparisons_;
  snapshot.band_checksum = index_.band_checksum();
  return snapshot;
}

Result<std::unique_ptr<OnlineLinkageEngine>> OnlineLinkageEngine::FromSnapshot(
    const io::OnlineSnapshot& snapshot, const OnlineLinkageOptions& serving) {
  OnlineLinkageOptions options = serving;
  options.dice_threshold = snapshot.dice_threshold;
  options.lsh_tables = snapshot.lsh_tables;
  options.lsh_bits_per_key = snapshot.lsh_bits_per_key;
  options.lsh_seed = snapshot.lsh_seed;
  auto engine = std::make_unique<OnlineLinkageEngine>(snapshot.filter_bits,
                                                      options);
  std::unique_lock lock(engine->mutex_);
  engine->database_names_ = snapshot.database_names;
  engine->database_sizes_.assign(snapshot.database_names.size(), 0);
  const size_t rows = snapshot.rows.size();
  engine->meta_.reserve(rows);
  engine->linked_.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    // DecodeCheckpoint validated row_database against the registry; the
    // per-database record index is recomputed from arrival order, which is
    // exactly how Append() assigned it.
    const uint32_t db = snapshot.row_database[i];
    engine->index_.AppendFrom(snapshot.rows.bits, i);
    engine->meta_.push_back({db, engine->database_sizes_[db]++,
                             snapshot.rows.ids[i]});
    engine->linked_.push_back(snapshot.linked[i] != 0);
  }
  if (engine->index_.band_checksum() != snapshot.band_checksum) {
    return Status::IoError(
        "checkpoint LSH band checksum mismatch: rebuilt tables disagree "
        "with the snapshot (geometry or seed drift?)");
  }
  for (size_t d = 0; d < engine->database_sizes_.size(); ++d) {
    if (engine->database_sizes_[d] != snapshot.database_sizes[d]) {
      return Status::ProtocolViolation(
          "checkpoint database '" + snapshot.database_names[d] +
          "' size disagrees with its rows");
    }
  }
  engine->parent_ = snapshot.parent;
  engine->edges_ = snapshot.edges;
  engine->comparisons_ = snapshot.comparisons;
  engine->partition_dirty_ = engine->edges_ > 0;
  engine->index_size_.Set(static_cast<int64_t>(engine->meta_.size()));
  return engine;
}

}  // namespace pprl
