#include "linkage/distributed.h"

#include <algorithm>
#include <utility>

namespace pprl {

MergedPartitions MergeWorkerPartitions(std::vector<WorkerPartitionResult> parts) {
  MergedPartitions merged;
  size_t total_edges = 0;
  for (const WorkerPartitionResult& part : parts) total_edges += part.edges.size();
  merged.edges.reserve(total_edges);
  for (WorkerPartitionResult& part : parts) {
    merged.comparisons += part.comparisons;
    merged.candidate_pairs += part.candidate_pairs;
    merged.pruned_comparisons += part.pruned_comparisons;
    merged.edges.insert(merged.edges.end(),
                        std::make_move_iterator(part.edges.begin()),
                        std::make_move_iterator(part.edges.end()));
  }
  // Canonical order: the single-daemon Link() iterates database pairs
  // (d1, d2) in ascending nested-loop order and emits each pair's edges in
  // ascending (a, b) candidate order — so the global key is the database
  // pair first, the record indices second. Scores never participate — an
  // edge's endpoints are unique across the ring (disjoint partitions), so
  // the sort is a total order and the merge is deterministic for any
  // gather order.
  std::sort(merged.edges.begin(), merged.edges.end(),
            [](const MatchEdge& lhs, const MatchEdge& rhs) {
              if (lhs.x.database != rhs.x.database)
                return lhs.x.database < rhs.x.database;
              if (lhs.y.database != rhs.y.database)
                return lhs.y.database < rhs.y.database;
              if (lhs.x.record != rhs.x.record) return lhs.x.record < rhs.x.record;
              return lhs.y.record < rhs.y.record;
            });
  return merged;
}

}  // namespace pprl
