#include "linkage/multiparty.h"

#include <cmath>

namespace pprl {

namespace {

/// One party's masked contribution: its filter bits plus its mask share.
/// Masks are generated pairwise so they cancel in the total: party i adds
/// r_i and subtracts r_{i-1} (indices cyclic), all modulo 2^32.
std::vector<uint32_t> MaskedContribution(const BitVector& filter, uint32_t own_mask_seed,
                                         uint32_t prev_mask_seed, size_t length) {
  std::vector<uint32_t> out(length, 0);
  Rng own(own_mask_seed);
  Rng prev(prev_mask_seed);
  // Word-level bit extraction (no per-position Get() bounds dance); the rng
  // streams are consumed one pair per position exactly as before, so the
  // masked outputs are unchanged.
  const std::vector<uint64_t>& words = filter.words();
  for (size_t i = 0; i < length; ++i) {
    const size_t w = i / 64;
    const uint32_t bit =
        i < filter.size() ? static_cast<uint32_t>((words[w] >> (i % 64)) & 1u) : 0;
    const uint32_t own_mask = static_cast<uint32_t>(own.NextUint64());
    const uint32_t prev_mask = static_cast<uint32_t>(prev.NextUint64());
    out[i] = bit + own_mask - prev_mask;  // mod 2^32
  }
  return out;
}

}  // namespace

Result<std::vector<uint32_t>> SecureCbfAggregate(
    const std::vector<const BitVector*>& party_filters, CommunicationPattern pattern,
    Rng& rng, MultiPartyCost* cost) {
  const size_t p = party_filters.size();
  if (p < 3) {
    return Status::InvalidArgument(
        "secure CBF aggregation needs >= 3 parties for masking to hide inputs");
  }
  const size_t length = party_filters[0]->size();
  for (const BitVector* f : party_filters) {
    if (f->size() != length) {
      return Status::InvalidArgument("all party filters must have equal length");
    }
  }

  // Pairwise-cancelling mask seeds: party i shares seed s_i with party
  // (i+1) mod p, set up once out of band.
  std::vector<uint32_t> seeds(p);
  for (auto& s : seeds) s = static_cast<uint32_t>(rng.NextUint64());

  std::vector<std::vector<uint32_t>> contributions(p);
  for (size_t i = 0; i < p; ++i) {
    contributions[i] =
        MaskedContribution(*party_filters[i], seeds[i], seeds[(i + p - 1) % p], length);
  }

  MultiPartyCost metered;
  const size_t message_bytes = length * sizeof(uint32_t);
  std::vector<uint32_t> total(length, 0);

  switch (pattern) {
    case CommunicationPattern::kStar:
      // Every party sends its masked vector to the LU in one round.
      for (size_t i = 0; i < p; ++i) {
        for (size_t j = 0; j < length; ++j) total[j] += contributions[i][j];
        ++metered.messages;
        metered.bytes += message_bytes;
      }
      metered.rounds = 1;
      break;
    case CommunicationPattern::kSequential:
      // Chain: party 0 -> 1 -> ... -> p-1; last party holds the sum.
      for (size_t i = 0; i < p; ++i) {
        for (size_t j = 0; j < length; ++j) total[j] += contributions[i][j];
        if (i + 1 < p) {
          ++metered.messages;
          metered.bytes += message_bytes;
        }
      }
      metered.rounds = p - 1;
      break;
    case CommunicationPattern::kRing:
      // Chain plus the final hop back to the initiator.
      for (size_t i = 0; i < p; ++i) {
        for (size_t j = 0; j < length; ++j) total[j] += contributions[i][j];
        ++metered.messages;
        metered.bytes += message_bytes;
      }
      metered.rounds = p;
      break;
    case CommunicationPattern::kTree: {
      // Pairwise reduction: ceil(log2 p) rounds, p-1 messages.
      std::vector<std::vector<uint32_t>> level = std::move(contributions);
      while (level.size() > 1) {
        std::vector<std::vector<uint32_t>> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2) {
          std::vector<uint32_t> merged(length);
          for (size_t j = 0; j < length; ++j) merged[j] = level[i][j] + level[i + 1][j];
          next.push_back(std::move(merged));
          ++metered.messages;
          metered.bytes += message_bytes;
        }
        if (level.size() % 2 == 1) next.push_back(std::move(level.back()));
        level = std::move(next);
        ++metered.rounds;
      }
      total = std::move(level[0]);
      break;
    }
  }

  if (cost != nullptr) *cost = metered;
  return total;
}

Result<double> SecureMultiPartyDice(const std::vector<const BitVector*>& party_filters,
                                    CommunicationPattern pattern, Rng& rng,
                                    MultiPartyCost* cost) {
  auto counts = SecureCbfAggregate(party_filters, pattern, rng, cost);
  if (!counts.ok()) return counts.status();
  const size_t p = party_filters.size();
  uint64_t total = 0;
  size_t common = 0;
  for (uint32_t c : counts.value()) {
    total += c;
    if (c == p) ++common;
  }
  if (total == 0) return 1.0;
  return static_cast<double>(p) * static_cast<double>(common) /
         static_cast<double>(total);
}

MultiPartyCost PatternCost(CommunicationPattern pattern, size_t p, size_t value_bytes) {
  MultiPartyCost cost;
  switch (pattern) {
    case CommunicationPattern::kStar:
      cost.messages = p;
      cost.rounds = 1;
      break;
    case CommunicationPattern::kSequential:
      cost.messages = p - 1;
      cost.rounds = p - 1;
      break;
    case CommunicationPattern::kRing:
      cost.messages = p;
      cost.rounds = p;
      break;
    case CommunicationPattern::kTree:
      cost.messages = p - 1;
      cost.rounds = static_cast<size_t>(std::ceil(std::log2(static_cast<double>(p))));
      break;
  }
  cost.bytes = cost.messages * value_bytes;
  return cost;
}

}  // namespace pprl
