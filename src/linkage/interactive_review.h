#ifndef PPRL_LINKAGE_INTERACTIVE_REVIEW_H_
#define PPRL_LINKAGE_INTERACTIVE_REVIEW_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/record.h"
#include "common/status.h"

namespace pprl {

/// Interactive PPRL with incremental value disclosure, after Kum et al.
/// [22] (survey §5.2): possible matches that automated classification
/// cannot decide are sent to a human reviewer, but instead of the raw
/// values the reviewer sees *masked* values whose characters are revealed a
/// few at a time — only as many as needed to decide — so the privacy
/// compromise is metered and minimal.

/// Governs how much is revealed per round and when to stop.
struct ReviewPolicy {
  /// Fraction of characters newly revealed per round (of each value).
  double reveal_fraction_per_round = 0.2;
  size_t max_rounds = 5;
  /// Decide "match" when the agreement rate over revealed characters is at
  /// least this, and "non-match" when at most (1 - it).
  double decide_margin = 0.85;
};

/// One pair's review result.
struct ReviewOutcome {
  bool decided = false;
  bool is_match = false;
  size_t rounds_used = 0;
  /// Privacy cost: fraction of the pair's characters that were disclosed.
  double fraction_revealed = 0;
};

/// A masked rendering of two values with the same revealed positions, as
/// the reviewer would see them ('*' hides a character).
struct MaskedPair {
  std::string a;
  std::string b;
};

/// Produces the masked view of `a` and `b` with the first `revealed`
/// positions of the shared random order disclosed (exposed for tests/UIs).
MaskedPair MaskPair(const std::string& a, const std::string& b, size_t revealed,
                    uint64_t order_seed);

/// Reviews one candidate pair by incremental disclosure. The decision is
/// made automatically from the agreement rate over revealed characters —
/// standing in for the human reviewer of [22] — but the disclosure
/// schedule, metering, and outcome layout match the interactive protocol.
///
/// `fields` lists the schema fields shown to the reviewer. Records must
/// carry values for all of them.
Result<ReviewOutcome> ReviewPair(const Schema& schema, const Record& a, const Record& b,
                                 const std::vector<std::string>& fields,
                                 const ReviewPolicy& policy, uint64_t order_seed);

/// Batch review of many pairs; returns outcomes plus the total privacy
/// budget consumed (mean fraction revealed).
struct BatchReviewResult {
  std::vector<ReviewOutcome> outcomes;
  double mean_fraction_revealed = 0;
  size_t undecided = 0;
};
Result<BatchReviewResult> ReviewPairs(
    const Schema& schema, const std::vector<std::pair<const Record*, const Record*>>& pairs,
    const std::vector<std::string>& fields, const ReviewPolicy& policy,
    uint64_t order_seed);

}  // namespace pprl

#endif  // PPRL_LINKAGE_INTERACTIVE_REVIEW_H_
