#ifndef PPRL_LINKAGE_DISTRIBUTED_H_
#define PPRL_LINKAGE_DISTRIBUTED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linkage/clustering.h"

namespace pprl {

/// One worker's gathered partition output, as decoded off the wire (or
/// produced in-process for tests). Mirrors PartitionLinkResult but is
/// independent of the pipeline layer so the merge stays a pure linkage
/// concern.
struct WorkerPartitionResult {
  uint32_t worker_index = 0;
  uint64_t comparisons = 0;
  uint64_t candidate_pairs = 0;
  uint64_t pruned_comparisons = 0;
  std::vector<MatchEdge> edges;
};

/// The coordinator-side merge of a gathered ring.
struct MergedPartitions {
  /// All workers' edges in the single-daemon path's canonical order:
  /// ascending (x.database, y.database, x.record, y.record). Because the
  /// canonical-key partition rule makes per-worker candidate sets
  /// disjoint, this is bitwise-identical to the edge list Link() produces
  /// over the same shipments.
  std::vector<MatchEdge> edges;
  uint64_t comparisons = 0;
  uint64_t candidate_pairs = 0;
  uint64_t pruned_comparisons = 0;
};

/// Merges gathered worker results deterministically: concatenates the edge
/// lists, sorts them into the canonical single-path order, and sums the
/// counters. Input order does not matter — workers may be gathered in any
/// order (retries reorder them in practice).
MergedPartitions MergeWorkerPartitions(std::vector<WorkerPartitionResult> parts);

}  // namespace pprl

#endif  // PPRL_LINKAGE_DISTRIBUTED_H_
