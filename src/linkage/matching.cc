#include "linkage/matching.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace pprl {

std::vector<ScoredPair> GreedyOneToOne(std::vector<ScoredPair> scored) {
  std::sort(scored.begin(), scored.end(), [](const ScoredPair& x, const ScoredPair& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.a != y.a) return x.a < y.a;
    return x.b < y.b;
  });
  std::unordered_set<uint32_t> used_a, used_b;
  std::vector<ScoredPair> out;
  for (const ScoredPair& pair : scored) {
    if (used_a.count(pair.a) || used_b.count(pair.b)) continue;
    used_a.insert(pair.a);
    used_b.insert(pair.b);
    out.push_back(pair);
  }
  return out;
}

std::vector<ScoredPair> HungarianOneToOne(const std::vector<ScoredPair>& scored) {
  if (scored.empty()) return {};
  // Compact the record ids that actually occur.
  std::unordered_map<uint32_t, size_t> a_ids, b_ids;
  std::vector<uint32_t> a_rev, b_rev;
  for (const ScoredPair& pair : scored) {
    if (a_ids.emplace(pair.a, a_rev.size()).second) a_rev.push_back(pair.a);
    if (b_ids.emplace(pair.b, b_rev.size()).second) b_rev.push_back(pair.b);
  }
  const size_t n = std::max(a_rev.size(), b_rev.size());
  // Maximise total similarity == minimise (1 - score). A non-edge costs the
  // same as a zero-score edge so the assignment maximises raw total score
  // with no hidden bias toward higher cardinality.
  constexpr double kMissingCost = 1.0;
  std::vector<std::vector<double>> cost(n + 1,
                                        std::vector<double>(n + 1, kMissingCost));
  for (const ScoredPair& pair : scored) {
    double& cell = cost[a_ids[pair.a] + 1][b_ids[pair.b] + 1];
    cell = std::min(cell, 1.0 - pair.score);  // in [0, 1], below kMissingCost
  }

  // Hungarian algorithm with potentials (1-indexed, square matrix).
  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u(n + 1, 0), v(n + 1, 0);
  std::vector<size_t> p(n + 1, 0), way(n + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(n + 1, kInf);
    std::vector<bool> used(n + 1, false);
    do {
      used[j0] = true;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0][j] - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<ScoredPair> out;
  for (size_t j = 1; j <= n; ++j) {
    const size_t i = p[j];
    if (i == 0 || i > a_rev.size() || j > b_rev.size()) continue;
    const double c = cost[i][j];
    if (c >= kMissingCost - 1e-12) continue;  // padding or zero-score edge
    out.push_back({a_rev[i - 1], b_rev[j - 1], 1.0 - c});
  }
  std::sort(out.begin(), out.end(), [](const ScoredPair& x, const ScoredPair& y) {
    return x.score > y.score;
  });
  return out;
}

std::vector<ScoredPair> ManyToMany(std::vector<ScoredPair> scored) {
  std::sort(scored.begin(), scored.end(), [](const ScoredPair& x, const ScoredPair& y) {
    return x.score > y.score;
  });
  return scored;
}

}  // namespace pprl
