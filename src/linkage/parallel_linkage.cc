#include "linkage/parallel_linkage.h"

#include <atomic>
#include <deque>
#include <memory>
#include <optional>
#include <utility>

namespace pprl {

namespace {

/// One shard's landing zone. Slots live in a deque so references stay valid
/// while the producer keeps appending; only the owning worker writes a
/// slot, and the merge pass reads it after TaskGroup::Wait().
struct ShardSlot {
  std::vector<ScoredPair> hits;
  size_t comparisons = 0;
  size_t pruned = 0;
};

}  // namespace

StreamCompareResult StreamCompareShards(SimilarityMeasure measure,
                                        const BitMatrix& a_matrix,
                                        const BitMatrix& b_matrix, double min_score,
                                        const ParallelLinkageOptions& options,
                                        const ShardProducer& produce) {
  // Either borrow the caller's long-lived scheduler or spin one up for this
  // call. The owned scheduler's queue bound is what turns `emit` into
  // backpressure on the blocking thread.
  std::optional<WorkStealingScheduler> owned;
  WorkStealingScheduler* scheduler = options.scheduler;
  if (scheduler == nullptr) {
    WorkStealingScheduler::Options sched_options;
    sched_options.num_threads = options.num_threads;
    sched_options.max_pending = options.max_pending_shards;
    owned.emplace(sched_options);
    scheduler = &*owned;
  }

  TaskGroup group(*scheduler);
  std::deque<ShardSlot> slots;
  produce([&](CandidateShard shard) {
    slots.emplace_back();
    ShardSlot* slot = &slots.back();
    // The shard moves into the closure, so the window of pairs alive at
    // once is bounded by the scheduler's max_pending plus one per worker.
    group.Submit([&a_matrix, &b_matrix, measure, min_score, slot,
                  shard = std::move(shard)] {
      CompareKernelStats stats;
      std::vector<ScoredPair> hits;
      hits.reserve(shard.pairs.size());
      CompareKernel(measure, a_matrix, b_matrix, shard.pairs.data(),
                    shard.pairs.size(), min_score, hits, stats);
      slot->hits = std::move(hits);
      slot->comparisons = shard.pairs.size();
      slot->pruned = stats.pruned;
    });
  });
  group.Wait();

  // Shards were emitted in global candidate order and slots sit in emission
  // order, so concatenation restores the serial output exactly.
  StreamCompareResult result;
  size_t total_hits = 0;
  for (const ShardSlot& slot : slots) total_hits += slot.hits.size();
  result.hits.reserve(total_hits);
  for (ShardSlot& slot : slots) {
    result.hits.insert(result.hits.end(), slot.hits.begin(), slot.hits.end());
    result.comparisons += slot.comparisons;
    result.pruned += slot.pruned;
    slot.hits = {};
  }
  return result;
}

StreamCompareResult StreamCompareBlocked(SimilarityMeasure measure,
                                         const BitMatrix& a_matrix,
                                         const BitMatrix& b_matrix,
                                         const BlockIndex& a_index,
                                         const BlockIndex& b_index, double min_score,
                                         const ParallelLinkageOptions& options) {
  return StreamCompareShards(
      measure, a_matrix, b_matrix, min_score, options,
      [&](const CandidateShardFn& emit) {
        StreamBlockedPairs(a_index, b_index, options.shard_size, emit);
      });
}

}  // namespace pprl
