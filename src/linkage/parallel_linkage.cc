#include "linkage/parallel_linkage.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <utility>

#include "common/cache_info.h"
#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"

namespace pprl {

namespace {

/// Metrics of the tiled compare path, aggregated process-wide.
struct TileMetrics {
  obs::Counter& tiles = obs::GlobalMetrics().GetCounter(
      "pprl_tiles_total", "Cache tiles executed by the tiled compare path");
  obs::Histogram& tile_seconds = obs::GlobalMetrics().GetHistogram(
      "pprl_tile_seconds", "Per-tile execution time in the tiled compare path",
      obs::DefaultLatencyBuckets());
  obs::Counter& shard_bytes = obs::GlobalMetrics().GetCounter(
      "pprl_shard_bytes_touched_total",
      "Matrix bytes tiles pulled through the cache (distinct rows x row "
      "stride, counting scratch copies twice)");
};

TileMetrics& Metrics() {
  static TileMetrics* m = new TileMetrics();
  return *m;
}

size_t Clamp(size_t v, size_t lo, size_t hi) { return std::min(std::max(v, lo), hi); }

/// Clamps an explicitly configured knob into [lo, hi], warning when the
/// configured value was out of range (silently accepting shard_size=0 or
/// max_pending=10^9 is how misconfigurations used to ship).
size_t ClampConfigured(const char* name, size_t v, size_t lo, size_t hi) {
  const size_t clamped = Clamp(v, lo, hi);
  if (clamped != v) {
    PPRL_LOG(kWarning) << "parallel tuning: " << name << "=" << v
                       << " out of range [" << lo << ", " << hi << "], using "
                       << clamped;
  }
  return clamped;
}

/// One shard's landing zone. Slots live in a deque so references stay valid
/// while the producer keeps appending; only the owning worker writes a
/// slot, and the merge pass reads it after TaskGroup::Wait().
struct ShardSlot {
  std::vector<ScoredPair> hits;
  size_t comparisons = 0;
  size_t pruned = 0;
};

/// Per-thread scratch of the tiled path. The B-tile matrix keeps its
/// allocation across shards (AssignRowSlice refills in place), and because
/// the copy runs on the worker, first-touch policy places the pages on the
/// worker's NUMA node — workers then stream a *local* copy of the shared
/// B rows instead of hammering the producer's node.
struct TileScratch {
  BitMatrix b_tile;
  std::vector<CandidatePair> pair_buf;
};

TileScratch& Scratch() {
  static thread_local TileScratch scratch;
  return scratch;
}

/// Executes one run shard cache-blocked: sub-runs bucketed by
/// (a-row-tile, b-row-tile), buckets in ascending tile order, hits sorted
/// back to candidate order at the end. Scores are computed per pair from
/// the same rows regardless of tiling, so the result is bitwise identical
/// to expanding the runs and scoring them in order.
void RunTiledShard(SimilarityMeasure measure, const BitMatrix& a_matrix,
                   const BitMatrix& b_matrix, double min_score,
                   const ResolvedParallelTuning& tuning, const CandidateShard& shard,
                   ShardSlot* slot) {
  // Bucket the runs. Keys order buckets (a_tile, b_tile) ascending, so a
  // bucket's B rows stay hot while every A tile that needs them streams by.
  std::map<uint64_t, std::vector<PairRun>> buckets;
  size_t total_pairs = 0;
  for (const PairRun& run : shard.runs) {
    total_pairs += run.b_end - run.b_begin;
    const uint64_t a_tile = run.a / tuning.tile_a_rows;
    for (uint32_t b = run.b_begin; b < run.b_end;) {
      const uint32_t tile_end = static_cast<uint32_t>(std::min<uint64_t>(
          (b / tuning.tile_b_rows + 1) * tuning.tile_b_rows, run.b_end));
      const uint64_t key = (a_tile << 32) | (b / tuning.tile_b_rows);
      buckets[key].push_back(PairRun{run.a, b, tile_end});
      b = tile_end;
    }
  }

  TileScratch& scratch = Scratch();
  CompareKernelStats stats;
  slot->hits.reserve(total_pairs / 16);
  size_t bytes_touched = 0;

  for (auto& [key, runs] : buckets) {
    (void)key;
    Timer tile_timer;

    // The touched B span and the bucket's pair count decide whether a
    // worker-local copy pays for itself.
    uint32_t b_min = runs.front().b_begin;
    uint32_t b_max = runs.front().b_end;
    size_t bucket_pairs = 0;
    size_t distinct_a = 0;
    uint32_t last_a = ~0u;
    for (const PairRun& r : runs) {
      b_min = std::min(b_min, r.b_begin);
      b_max = std::max(b_max, r.b_end);
      bucket_pairs += r.b_end - r.b_begin;
      if (r.a != last_a) {
        ++distinct_a;
        last_a = r.a;
      }
    }
    const size_t b_span = b_max - b_min;
    const bool copy_b = tuning.num_threads > 1 && tuning.b_copy_min_reuse > 0 &&
                        bucket_pairs >= tuning.b_copy_min_reuse * b_span;

    const BitMatrix* b_used = &b_matrix;
    uint32_t b_offset = 0;
    if (copy_b) {
      scratch.b_tile.AssignRowSlice(b_matrix, b_min, b_max);
      b_used = &scratch.b_tile;
      b_offset = b_min;
    }

    // Expand the bucket's runs into kernel-ready pairs (b remapped into
    // the scratch tile when copied) in small chunks: the chunk buffer
    // stays L1/L2-resident instead of round-tripping a shard-sized pair
    // vector through the cache the tiles are trying to keep for rows.
    // Chunks split runs at arbitrary points, which is harmless — every
    // window of the expansion is still consecutive in b, so the dense-run
    // vector kernels keep detecting their shape, and expansion order (and
    // with it hit order before the final sort) is unchanged.
    constexpr size_t kChunkPairs = 16384;  // 128 KiB of CandidatePair
    scratch.pair_buf.resize(std::min(bucket_pairs, kChunkPairs));
    const size_t hits_before = slot->hits.size();
    size_t filled = 0;
    for (const PairRun& r : runs) {
      uint32_t b = r.b_begin;
      while (b < r.b_end) {
        const uint32_t take = static_cast<uint32_t>(
            std::min<size_t>(r.b_end - b, kChunkPairs - filled));
        CandidatePair* p = scratch.pair_buf.data() + filled;
        for (uint32_t k = 0; k < take; ++k) p[k] = CandidatePair{r.a, b + k - b_offset};
        filled += take;
        b += take;
        if (filled == kChunkPairs) {
          CompareKernel(measure, a_matrix, *b_used, scratch.pair_buf.data(), filled,
                        min_score, slot->hits, stats);
          filled = 0;
        }
      }
    }
    if (filled != 0) {
      CompareKernel(measure, a_matrix, *b_used, scratch.pair_buf.data(), filled,
                    min_score, slot->hits, stats);
    }
    if (b_offset != 0) {
      for (size_t i = hits_before; i < slot->hits.size(); ++i) {
        slot->hits[i].b += b_offset;
      }
    }

    bytes_touched += (distinct_a + b_span + (copy_b ? b_span : 0)) * tuning.row_bytes;
    Metrics().tiles.Increment();
    Metrics().tile_seconds.Observe(tile_timer.ElapsedSeconds());
  }
  Metrics().shard_bytes.Increment(bytes_touched);

  // Tiling scored the candidates out of order; the shard's expanded run
  // sequence is ascending (a, b), so one sort restores candidate order.
  std::sort(slot->hits.begin(), slot->hits.end(),
            [](const ScoredPair& x, const ScoredPair& y) {
              return x.a != y.a ? x.a < y.a : x.b < y.b;
            });
  slot->comparisons = total_pairs;
  slot->pruned = stats.pruned;
}

}  // namespace

ResolvedParallelTuning ResolveParallelTuning(const ParallelLinkageOptions& options,
                                             size_t bits_per_row) {
  const CacheInfo& cache = DetectCacheInfo();
  ResolvedParallelTuning t;

  t.num_threads = options.scheduler != nullptr
                      ? options.scheduler->num_threads()
                      : ClampConfigured("num_threads", options.num_threads, 1, 256);

  // Row stride in bytes, matching BitMatrix: ceil(bits/64) words rounded
  // up to a 64-byte boundary. All the working-set math is in this unit.
  const size_t words = (std::max<size_t>(bits_per_row, 1) + 63) / 64;
  t.row_bytes = ((words + 7) / 8) * 64;

  // B tile: half of L2 — the tile's rows stay resident while every A row
  // of the bucket streams against them, leaving the other half for A rows,
  // the pair buffer and the result vector.
  t.tile_b_rows = options.tile_b_rows != 0
                      ? ClampConfigured("tile_b_rows", options.tile_b_rows, 8,
                                        size_t{1} << 20)
                      : Clamp(cache.l2_bytes / 2 / t.row_bytes, 64, 32768);

  // A tile: a quarter of L2 bounds the a-rows touched between B-tile
  // refills.
  t.tile_a_rows = options.tile_a_rows != 0
                      ? ClampConfigured("tile_a_rows", options.tile_a_rows, 1,
                                        size_t{1} << 20)
                      : Clamp(cache.l2_bytes / 4 / t.row_bytes, 16, 4096);

  // Shard: the scheduling unit. Auto-sizing targets a quarter of the LLC
  // (capped at 16 MiB) worth of B rows per shard — big enough that a shard
  // spans many A rows (so tiles actually reuse B rows; the old fixed 8192
  // pairs spanned at most two A rows against a 10k B side, making reuse
  // impossible), small enough that thousands of shards exist for stealing
  // to balance.
  t.shard_size =
      options.shard_size != 0
          ? ClampConfigured("shard_size", options.shard_size, 1024, size_t{1} << 22)
          : Clamp(std::min<size_t>(cache.llc_bytes / 4, 16u << 20) / t.row_bytes,
                  16384, 524288);

  // Window: a few shards per worker keeps everyone fed without letting
  // the producer run away.
  t.max_pending_shards =
      options.max_pending_shards != 0
          ? ClampConfigured("max_pending_shards", options.max_pending_shards, 2, 1024)
          : Clamp(4 * t.num_threads, 8, 64);

  t.b_copy_min_reuse = options.b_copy_min_reuse;
  return t;
}

StreamCompareResult StreamCompareShards(SimilarityMeasure measure,
                                        const BitMatrix& a_matrix,
                                        const BitMatrix& b_matrix, double min_score,
                                        const ParallelLinkageOptions& options,
                                        const ShardProducer& produce) {
  const ResolvedParallelTuning tuning =
      ResolveParallelTuning(options, a_matrix.num_bits());

  // Either borrow the caller's long-lived scheduler or spin one up for this
  // call. The owned scheduler's queue bound is what turns `emit` into
  // backpressure on the blocking thread.
  std::optional<WorkStealingScheduler> owned;
  WorkStealingScheduler* scheduler = options.scheduler;
  if (scheduler == nullptr) {
    WorkStealingScheduler::Options sched_options;
    sched_options.num_threads = tuning.num_threads;
    sched_options.max_pending = tuning.max_pending_shards;
    owned.emplace(sched_options);
    scheduler = &*owned;
  }

  TaskGroup group(*scheduler);
  std::deque<ShardSlot> slots;
  produce([&](CandidateShard shard) {
    slots.emplace_back();
    ShardSlot* slot = &slots.back();
    // The shard moves into the closure, so the candidates alive at once
    // are bounded by the scheduler's max_pending plus one per worker.
    group.Submit([&a_matrix, &b_matrix, measure, min_score, slot, tuning,
                  shard = std::move(shard)] {
      if (!shard.runs.empty()) {
        RunTiledShard(measure, a_matrix, b_matrix, min_score, tuning, shard, slot);
        return;
      }
      // Materialized pair shards (generic producers, arbitrary pair
      // order): score in place, untiled — candidate order is whatever the
      // producer emitted, so no sort may be applied.
      CompareKernelStats stats;
      slot->hits.reserve(shard.pairs.size() / 16);
      CompareKernel(measure, a_matrix, b_matrix, shard.pairs.data(),
                    shard.pairs.size(), min_score, slot->hits, stats);
      slot->comparisons = shard.pairs.size();
      slot->pruned = stats.pruned;
    });
  });
  group.Wait();

  // Shards were emitted in global candidate order and slots sit in emission
  // order, so concatenation restores the serial output exactly.
  StreamCompareResult result;
  size_t total_hits = 0;
  for (const ShardSlot& slot : slots) total_hits += slot.hits.size();
  result.hits.reserve(total_hits);
  for (ShardSlot& slot : slots) {
    result.hits.insert(result.hits.end(), slot.hits.begin(), slot.hits.end());
    result.comparisons += slot.comparisons;
    result.pruned += slot.pruned;
    slot.hits = {};
  }
  return result;
}

StreamCompareResult StreamCompareBlocked(SimilarityMeasure measure,
                                         const BitMatrix& a_matrix,
                                         const BitMatrix& b_matrix,
                                         const BlockIndex& a_index,
                                         const BlockIndex& b_index, double min_score,
                                         const ParallelLinkageOptions& options) {
  const ResolvedParallelTuning tuning =
      ResolveParallelTuning(options, a_matrix.num_bits());
  return StreamCompareShards(
      measure, a_matrix, b_matrix, min_score, options,
      [&](const CandidateShardFn& emit) {
        StreamBlockedPairRuns(a_index, b_index, tuning.shard_size, emit);
      });
}

}  // namespace pprl
