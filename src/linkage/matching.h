#ifndef PPRL_LINKAGE_MATCHING_H_
#define PPRL_LINKAGE_MATCHING_H_

#include <vector>

#include "linkage/comparison.h"

namespace pprl {

/// One-to-one matching (survey §3.4 "Matching"): when both databases are
/// internally de-duplicated, each record may match at most one partner.

/// Greedy one-to-one assignment: repeatedly takes the highest-scoring
/// remaining pair whose endpoints are both free. Linearithmic and within a
/// factor 2 of the optimal total weight.
std::vector<ScoredPair> GreedyOneToOne(std::vector<ScoredPair> scored);

/// Optimal one-to-one assignment by total score via the Hungarian algorithm
/// on the bipartite graph induced by `scored` (missing edges are
/// impossible). Intended for block-sized inputs — cost is
/// O((n_a + n_b)^3) on the records that occur in `scored`.
std::vector<ScoredPair> HungarianOneToOne(const std::vector<ScoredPair>& scored);

/// Many-to-many matching keeps every pair (databases with internal
/// duplicates). Provided for symmetry; simply returns its input sorted by
/// descending score.
std::vector<ScoredPair> ManyToMany(std::vector<ScoredPair> scored);

}  // namespace pprl

#endif  // PPRL_LINKAGE_MATCHING_H_
