#ifndef PPRL_LINKAGE_PARALLEL_LINKAGE_H_
#define PPRL_LINKAGE_PARALLEL_LINKAGE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "blocking/blocking.h"
#include "common/bit_matrix.h"
#include "common/thread_pool.h"
#include "linkage/compare_kernels.h"

namespace pprl {

/// The end-to-end parallel execution path (survey §3.4 "Parallel/distributed
/// processing"): blocking streams candidate shards into a bounded window, a
/// work-stealing scheduler scores them on every core, and per-shard result
/// buffers merge back in shard order — so the output is byte-identical to
/// the serial pipeline at any thread count while peak memory stays
/// O(window), not O(candidates).
///
/// Workers execute run shards cache-blocked: a shard's candidates are
/// bucketed into (a-row-tile, b-row-tile) tiles sized so a tile's B rows
/// fit in L2, each tile's B rows are optionally copied into a worker-local
/// (first-touch NUMA-local) scratch matrix, and the tile's hits are sorted
/// back into candidate order afterwards. Every tuning knob below defaults
/// to 0 = auto-size from the filter width and the detected cache hierarchy
/// (common/cache_info.h); ResolveParallelTuning() is the single place the
/// defaults, validation and clamping live.
struct ParallelLinkageOptions {
  /// Workers in the scheduler this call spins up. Ignored when `scheduler`
  /// is set.
  size_t num_threads = 1;

  /// Candidate pairs per shard — the scheduling unit. 0 auto-sizes so a
  /// shard amortizes dispatch and spans enough A rows for B-tile reuse
  /// while staying numerous enough for stealing to balance skewed blocks.
  size_t shard_size = 0;

  /// Max shards submitted but not yet started before the producing
  /// (blocking) thread blocks — the streaming memory bound. 0 auto-sizes
  /// to a few shards per worker.
  size_t max_pending_shards = 0;

  /// B rows per cache tile inside a shard. 0 auto-sizes the tile's rows
  /// to half of L2.
  size_t tile_b_rows = 0;

  /// A rows per tile bucket. 0 auto-sizes.
  size_t tile_a_rows = 0;

  /// Copy a tile's B rows into the worker-local scratch matrix when the
  /// tile touches each row at least this many times on average (and more
  /// than one worker is running). 0 disables copies.
  size_t b_copy_min_reuse = 8;

  /// Borrowed long-lived scheduler (e.g. the daemon's). When set, shards
  /// run on its workers and completion is tracked per call with a
  /// TaskGroup, so concurrent sessions can share it safely.
  WorkStealingScheduler* scheduler = nullptr;
};

/// The effective (validated, clamped, auto-sized) tuning a streaming run
/// executes with. Exposed so operators (daemon effective-config printout)
/// and benches can see — and record — what "auto" resolved to.
struct ResolvedParallelTuning {
  size_t num_threads = 1;
  size_t shard_size = 0;
  size_t max_pending_shards = 0;
  size_t tile_b_rows = 0;
  size_t tile_a_rows = 0;
  size_t b_copy_min_reuse = 0;
  /// Bytes one matrix row occupies (stride), the unit of the sizing math.
  size_t row_bytes = 0;
};

/// Validates `options` against the filter width and fills every auto (0)
/// knob from the detected cache sizes. Out-of-range explicit values are
/// clamped with a logged warning rather than silently accepted — a
/// shard_size of 3 would drown the scheduler in dispatch, a
/// max_pending_shards of 10^9 would defeat the streaming memory bound.
ResolvedParallelTuning ResolveParallelTuning(const ParallelLinkageOptions& options,
                                             size_t bits_per_row);

/// What a streaming comparison run produced.
struct StreamCompareResult {
  /// Pairs scoring >= min_score, in the global candidate order (identical
  /// to materializing the pairs and calling ComparisonEngine::Compare).
  std::vector<ScoredPair> hits;
  /// Candidate pairs evaluated (word loop or cardinality bound).
  size_t comparisons = 0;
  /// Of those, pairs the cardinality bound rejected without the word loop.
  size_t pruned = 0;
};

/// A producer that drives any candidate stream (StreamBlockedPairRuns,
/// StreamFullPairRuns, the materializing variants, a custom generator)
/// into the consumer callback. It runs on the calling thread and blocks
/// inside `emit` when the shard window is full.
using ShardProducer = std::function<void(const CandidateShardFn& emit)>;

/// Runs `produce`'s candidate stream through the comparison kernels on a
/// work-stealing scheduler. Shard results land in per-shard buffers and are
/// concatenated in shard order after the last shard finishes, so `hits` is
/// deterministic for every (options.num_threads, scheduler) choice.
///
/// Run shards (CandidateShard::runs) take the cache-blocked tiled path;
/// their expanded candidate sequence must be ascending (a, b) within the
/// shard — which every Stream*PairRuns producer guarantees — so hits can
/// be restored to candidate order by an (a, b) sort. Materialized pair
/// shards may use any order and are scored in place, untiled.
StreamCompareResult StreamCompareShards(SimilarityMeasure measure,
                                        const BitMatrix& a_matrix,
                                        const BitMatrix& b_matrix, double min_score,
                                        const ParallelLinkageOptions& options,
                                        const ShardProducer& produce);

/// Convenience: streams the blocked candidates of two indexes (same pairs
/// as StandardBlocker::CandidatePairs) straight into StreamCompareShards.
StreamCompareResult StreamCompareBlocked(SimilarityMeasure measure,
                                         const BitMatrix& a_matrix,
                                         const BitMatrix& b_matrix,
                                         const BlockIndex& a_index,
                                         const BlockIndex& b_index, double min_score,
                                         const ParallelLinkageOptions& options);

}  // namespace pprl

#endif  // PPRL_LINKAGE_PARALLEL_LINKAGE_H_
