#ifndef PPRL_LINKAGE_PARALLEL_LINKAGE_H_
#define PPRL_LINKAGE_PARALLEL_LINKAGE_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "blocking/blocking.h"
#include "common/bit_matrix.h"
#include "common/thread_pool.h"
#include "linkage/compare_kernels.h"

namespace pprl {

/// The end-to-end parallel execution path (survey §3.4 "Parallel/distributed
/// processing"): blocking streams candidate shards into a bounded window, a
/// work-stealing scheduler scores them on every core, and per-shard result
/// buffers merge back in shard order — so the output is byte-identical to
/// the serial pipeline at any thread count while peak memory stays
/// O(window), not O(candidates).
struct ParallelLinkageOptions {
  /// Workers in the scheduler this call spins up. Ignored when `scheduler`
  /// is set.
  size_t num_threads = 1;

  /// Candidate pairs per shard. Shards must amortize a scheduler dispatch
  /// over the fused word loop yet stay numerous enough for stealing to
  /// balance skewed blocks; 8192 pairs (the comparison engine's chunk
  /// floor) does both.
  size_t shard_size = 8192;

  /// Max shards submitted but not yet started before the producing
  /// (blocking) thread blocks — the streaming memory bound. 0 disables
  /// backpressure.
  size_t max_pending_shards = 64;

  /// Borrowed long-lived scheduler (e.g. the daemon's). When set, shards
  /// run on its workers and completion is tracked per call with a
  /// TaskGroup, so concurrent sessions can share it safely.
  WorkStealingScheduler* scheduler = nullptr;
};

/// What a streaming comparison run produced.
struct StreamCompareResult {
  /// Pairs scoring >= min_score, in the global candidate order (identical
  /// to materializing the pairs and calling ComparisonEngine::Compare).
  std::vector<ScoredPair> hits;
  /// Candidate pairs evaluated (word loop or cardinality bound).
  size_t comparisons = 0;
  /// Of those, pairs the cardinality bound rejected without the word loop.
  size_t pruned = 0;
};

/// A producer that drives any candidate stream (StreamBlockedPairs,
/// StreamFullPairs, a custom generator) into the consumer callback. It runs
/// on the calling thread and blocks inside `emit` when the shard window is
/// full.
using ShardProducer = std::function<void(const CandidateShardFn& emit)>;

/// Runs `produce`'s candidate stream through the comparison kernels on a
/// work-stealing scheduler. Shard results land in per-shard buffers and are
/// concatenated in shard order after the last shard finishes, so `hits` is
/// deterministic for every (options.num_threads, scheduler) choice.
StreamCompareResult StreamCompareShards(SimilarityMeasure measure,
                                        const BitMatrix& a_matrix,
                                        const BitMatrix& b_matrix, double min_score,
                                        const ParallelLinkageOptions& options,
                                        const ShardProducer& produce);

/// Convenience: streams the blocked candidates of two indexes (same pairs
/// as StandardBlocker::CandidatePairs) straight into StreamCompareShards.
StreamCompareResult StreamCompareBlocked(SimilarityMeasure measure,
                                         const BitMatrix& a_matrix,
                                         const BitMatrix& b_matrix,
                                         const BlockIndex& a_index,
                                         const BlockIndex& b_index, double min_score,
                                         const ParallelLinkageOptions& options);

}  // namespace pprl

#endif  // PPRL_LINKAGE_PARALLEL_LINKAGE_H_
