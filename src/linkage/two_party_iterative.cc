#include "linkage/two_party_iterative.h"

#include <algorithm>
#include <numeric>

#include "common/random.h"

namespace pprl {

Result<IterativeProtocolResult> IterativeTwoPartyLink(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, const IterativeProtocolParams& params,
    uint64_t segment_seed) {
  if (params.num_rounds == 0) {
    return Status::InvalidArgument("num_rounds must be > 0");
  }
  const size_t l = a_filters.empty()
                       ? (b_filters.empty() ? 0 : b_filters[0].size())
                       : a_filters[0].size();
  for (const auto& f : a_filters) {
    if (f.size() != l) return Status::InvalidArgument("filter length mismatch");
  }
  for (const auto& f : b_filters) {
    if (f.size() != l) return Status::InvalidArgument("filter length mismatch");
  }
  if (l < params.num_rounds) {
    return Status::InvalidArgument("filters shorter than the number of rounds");
  }

  // Shared random segmentation of the positions.
  std::vector<uint32_t> order(l);
  std::iota(order.begin(), order.end(), 0);
  Rng rng(segment_seed);
  rng.Shuffle(order);

  struct PairState {
    uint32_t a = 0;
    uint32_t b = 0;
    size_t common_revealed = 0;  // c_S
    size_t a_revealed_ones = 0;  // xa_S
    size_t b_revealed_ones = 0;  // xb_S
  };
  std::vector<PairState> undecided;
  undecided.reserve(candidates.size());
  for (const CandidatePair& pair : candidates) {
    undecided.push_back({pair.a, pair.b, 0, 0, 0});
  }

  IterativeProtocolResult result;
  result.decided_per_round.assign(params.num_rounds, 0);
  const size_t total_pairs = candidates.size();
  double revealed_fraction_sum = 0;

  const size_t segment = (l + params.num_rounds - 1) / params.num_rounds;
  size_t revealed_so_far = 0;

  for (size_t round = 0; round < params.num_rounds && !undecided.empty(); ++round) {
    const size_t begin = round * segment;
    const size_t end = std::min(l, begin + segment);
    if (begin >= end) break;
    revealed_so_far = end;

    // Both parties ship this segment of every still-undecided record's
    // filter (batched: 2 messages, segment bits per involved record).
    result.messages += 2;
    result.bytes += undecided.size() * 2 * ((end - begin + 7) / 8);

    std::vector<PairState> next;
    next.reserve(undecided.size());
    for (PairState& state : undecided) {
      const BitVector& fa = a_filters[state.a];
      const BitVector& fb = b_filters[state.b];
      for (size_t i = begin; i < end; ++i) {
        const uint32_t pos = order[i];
        const bool ba = fa.Get(pos);
        const bool bb = fb.Get(pos);
        state.a_revealed_ones += ba ? 1 : 0;
        state.b_revealed_ones += bb ? 1 : 0;
        state.common_revealed += (ba && bb) ? 1 : 0;
      }
      // Bounds on the final Dice. Cardinalities are public (the standard
      // length-filter disclosure), so the unrevealed one-counts are known.
      const size_t xa = fa.Count();
      const size_t xb = fb.Count();
      const size_t denom = xa + xb;
      if (denom == 0) {
        // Two empty filters: define as a match with Dice 1.
        result.matches.push_back({state.a, state.b, 1.0});
        ++result.decided_per_round[round];
        revealed_fraction_sum +=
            static_cast<double>(revealed_so_far) / static_cast<double>(l);
        continue;
      }
      const size_t a_hidden = xa - state.a_revealed_ones;
      const size_t b_hidden = xb - state.b_revealed_ones;
      const double lower =
          2.0 * static_cast<double>(state.common_revealed) / static_cast<double>(denom);
      const double upper =
          2.0 *
          static_cast<double>(state.common_revealed + std::min(a_hidden, b_hidden)) /
          static_cast<double>(denom);

      if (lower + 1e-12 >= params.dice_threshold) {
        result.matches.push_back({state.a, state.b, lower});  // grows to exact later
        ++result.decided_per_round[round];
        revealed_fraction_sum +=
            static_cast<double>(revealed_so_far) / static_cast<double>(l);
      } else if (upper < params.dice_threshold) {
        ++result.decided_per_round[round];  // rejected
        revealed_fraction_sum +=
            static_cast<double>(revealed_so_far) / static_cast<double>(l);
      } else {
        next.push_back(state);
      }
    }
    undecided = std::move(next);
  }

  // After the final round everything is revealed, so bounds coincide; any
  // leftover undecided pair simply missed the threshold.
  revealed_fraction_sum += static_cast<double>(undecided.size());
  (void)total_pairs;
  result.mean_revealed_fraction =
      candidates.empty() ? 0
                         : revealed_fraction_sum / static_cast<double>(candidates.size());

  // Replace early-accept scores with the exact Dice for downstream use.
  for (ScoredPair& match : result.matches) {
    const BitVector& fa = a_filters[match.a];
    const BitVector& fb = b_filters[match.b];
    const size_t denom = fa.Count() + fb.Count();
    match.score = denom == 0
                      ? 1.0
                      : 2.0 * static_cast<double>(fa.AndCount(fb)) /
                            static_cast<double>(denom);
  }
  return result;
}

}  // namespace pprl
