#include "linkage/classifier.h"

#include <algorithm>
#include <cmath>

namespace pprl {

ThresholdClassifier::ThresholdClassifier(double lower, double upper)
    : lower_(std::min(lower, upper)), upper_(std::max(lower, upper)) {}

MatchDecision ThresholdClassifier::Classify(double score) const {
  if (score >= upper_) return MatchDecision::kMatch;
  if (score >= lower_) return MatchDecision::kPossibleMatch;
  return MatchDecision::kNonMatch;
}

std::vector<ScoredPair> ThresholdClassifier::SelectMatches(
    const std::vector<ScoredPair>& scored) const {
  std::vector<ScoredPair> out;
  for (const ScoredPair& pair : scored) {
    if (Classify(pair.score) == MatchDecision::kMatch) out.push_back(pair);
  }
  return out;
}

std::vector<ScoredPair> ThresholdClassifier::ParallelSelectMatches(
    const std::vector<ScoredPair>& scored, WorkStealingScheduler& scheduler) const {
  // Chunks are large: classification is two double compares per pair, so
  // anything finer drowns in dispatch overhead.
  constexpr size_t kMinChunk = 1u << 16;
  const size_t n = scored.size();
  const size_t target_chunks = std::max<size_t>(1, scheduler.num_threads() * 4);
  const size_t chunk = std::max(kMinChunk, (n + target_chunks - 1) / target_chunks);
  const size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  if (num_chunks <= 1) return SelectMatches(scored);

  std::vector<std::vector<ScoredPair>> buffers(num_chunks);
  TaskGroup group(scheduler);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    group.Submit([this, &scored, &buffers, c, begin, end] {
      std::vector<ScoredPair> kept;
      for (size_t i = begin; i < end; ++i) {
        if (Classify(scored[i].score) == MatchDecision::kMatch) {
          kept.push_back(scored[i]);
        }
      }
      buffers[c] = std::move(kept);
    });
  }
  group.Wait();

  size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  std::vector<ScoredPair> out;
  out.reserve(total);
  for (auto& buffer : buffers) {
    out.insert(out.end(), buffer.begin(), buffer.end());
    buffer = {};
  }
  return out;
}

RuleBasedClassifier::RuleBasedClassifier(std::vector<MatchRule> rules)
    : rules_(std::move(rules)) {}

bool RuleBasedClassifier::Matches(const std::vector<double>& field_scores) const {
  for (const MatchRule& rule : rules_) {
    bool fires = !rule.conditions.empty();
    for (const auto& [field, min_sim] : rule.conditions) {
      if (field >= field_scores.size() || field_scores[field] < min_sim) {
        fires = false;
        break;
      }
    }
    if (fires) return true;
  }
  return false;
}

std::vector<FieldwiseScoredPair> RuleBasedClassifier::SelectMatches(
    const std::vector<FieldwiseScoredPair>& pairs) const {
  std::vector<FieldwiseScoredPair> out;
  for (const FieldwiseScoredPair& pair : pairs) {
    if (Matches(pair.field_scores)) out.push_back(pair);
  }
  return out;
}

FellegiSunterClassifier::FellegiSunterClassifier()
    : FellegiSunterClassifier(Params()) {}

FellegiSunterClassifier::FellegiSunterClassifier(Params params) : params_(params) {}

std::vector<bool> FellegiSunterClassifier::Agreements(
    const std::vector<double>& field_scores) const {
  std::vector<bool> agree(field_scores.size());
  for (size_t f = 0; f < field_scores.size(); ++f) {
    agree[f] = field_scores[f] >= params_.agreement_threshold;
  }
  return agree;
}

Status FellegiSunterClassifier::Fit(const std::vector<FieldwiseScoredPair>& pairs) {
  if (pairs.empty()) return Status::InvalidArgument("EM needs at least one pair");
  const size_t num_fields = pairs[0].field_scores.size();
  if (num_fields == 0) return Status::InvalidArgument("EM needs at least one field");

  // Precompute agreement patterns.
  std::vector<std::vector<bool>> patterns;
  patterns.reserve(pairs.size());
  for (const auto& pair : pairs) {
    if (pair.field_scores.size() != num_fields) {
      return Status::InvalidArgument("inconsistent field count across pairs");
    }
    patterns.push_back(Agreements(pair.field_scores));
  }

  m_.assign(num_fields, params_.initial_m);
  u_.assign(num_fields, params_.initial_u);
  prevalence_ = params_.initial_prevalence;
  constexpr double kClamp = 1e-6;

  std::vector<double> responsibility(patterns.size());
  for (size_t iter = 0; iter < params_.em_iterations; ++iter) {
    // E-step: posterior probability each pair is a match.
    for (size_t i = 0; i < patterns.size(); ++i) {
      double log_match = std::log(prevalence_);
      double log_non = std::log(1.0 - prevalence_);
      for (size_t f = 0; f < num_fields; ++f) {
        if (patterns[i][f]) {
          log_match += std::log(m_[f]);
          log_non += std::log(u_[f]);
        } else {
          log_match += std::log(1.0 - m_[f]);
          log_non += std::log(1.0 - u_[f]);
        }
      }
      const double max_log = std::max(log_match, log_non);
      const double pm = std::exp(log_match - max_log);
      const double pn = std::exp(log_non - max_log);
      responsibility[i] = pm / (pm + pn);
    }
    // M-step.
    double total_resp = 0;
    for (double r : responsibility) total_resp += r;
    const double total_non = static_cast<double>(patterns.size()) - total_resp;
    prevalence_ = std::clamp(total_resp / static_cast<double>(patterns.size()),
                             kClamp, 1.0 - kClamp);
    for (size_t f = 0; f < num_fields; ++f) {
      double agree_match = 0, agree_non = 0;
      for (size_t i = 0; i < patterns.size(); ++i) {
        if (patterns[i][f]) {
          agree_match += responsibility[i];
          agree_non += 1.0 - responsibility[i];
        }
      }
      m_[f] = std::clamp(agree_match / std::max(total_resp, kClamp), kClamp,
                         1.0 - kClamp);
      u_[f] = std::clamp(agree_non / std::max(total_non, kClamp), kClamp,
                         1.0 - kClamp);
    }
  }
  fitted_ = true;
  return Status::OK();
}

double FellegiSunterClassifier::Weight(const std::vector<double>& field_scores) const {
  const std::vector<bool> agree = Agreements(field_scores);
  double weight = 0;
  for (size_t f = 0; f < agree.size() && f < m_.size(); ++f) {
    if (agree[f]) {
      weight += std::log2(m_[f] / u_[f]);
    } else {
      weight += std::log2((1.0 - m_[f]) / (1.0 - u_[f]));
    }
  }
  return weight;
}

double FellegiSunterClassifier::MatchProbability(
    const std::vector<double>& field_scores) const {
  const std::vector<bool> agree = Agreements(field_scores);
  double log_match = std::log(prevalence_);
  double log_non = std::log(1.0 - prevalence_);
  for (size_t f = 0; f < agree.size() && f < m_.size(); ++f) {
    if (agree[f]) {
      log_match += std::log(m_[f]);
      log_non += std::log(u_[f]);
    } else {
      log_match += std::log(1.0 - m_[f]);
      log_non += std::log(1.0 - u_[f]);
    }
  }
  const double max_log = std::max(log_match, log_non);
  const double pm = std::exp(log_match - max_log);
  const double pn = std::exp(log_non - max_log);
  return pm / (pm + pn);
}

std::vector<FieldwiseScoredPair> FellegiSunterClassifier::SelectMatches(
    const std::vector<FieldwiseScoredPair>& pairs, double weight_threshold) const {
  std::vector<FieldwiseScoredPair> out;
  for (const FieldwiseScoredPair& pair : pairs) {
    if (Weight(pair.field_scores) >= weight_threshold) out.push_back(pair);
  }
  return out;
}

LogisticClassifier::LogisticClassifier() : LogisticClassifier(Params()) {}

LogisticClassifier::LogisticClassifier(Params params) : params_(params) {}

Status LogisticClassifier::Fit(const std::vector<std::vector<double>>& features,
                               const std::vector<int>& labels) {
  if (features.empty() || features.size() != labels.size()) {
    return Status::InvalidArgument("features and labels must be nonempty and equal-sized");
  }
  const size_t dim = features[0].size();
  for (const auto& row : features) {
    if (row.size() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensionality");
    }
  }
  weights_.assign(dim, 0.0);
  bias_ = 0;
  for (size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    for (size_t i = 0; i < features.size(); ++i) {
      const double p = Predict(features[i]);
      const double err = static_cast<double>(labels[i]) - p;
      for (size_t d = 0; d < dim; ++d) {
        weights_[d] += params_.learning_rate *
                       (err * features[i][d] - params_.l2 * weights_[d]);
      }
      bias_ += params_.learning_rate * err;
    }
  }
  return Status::OK();
}

double LogisticClassifier::Predict(const std::vector<double>& field_scores) const {
  double z = bias_;
  for (size_t d = 0; d < field_scores.size() && d < weights_.size(); ++d) {
    z += weights_[d] * field_scores[d];
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace pprl
