#ifndef PPRL_LINKAGE_CLASSIFIER_H_
#define PPRL_LINKAGE_CLASSIFIER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "linkage/comparison.h"

namespace pprl {

/// Match decision for one compared pair.
enum class MatchDecision { kNonMatch = 0, kPossibleMatch = 1, kMatch = 2 };

/// Simple threshold classification (survey §3.4 "Classification"): a pair is
/// a match when its score reaches `upper`, a possible match between `lower`
/// and `upper` (for the manual-review step of non-PPRL pipelines), and a
/// non-match below `lower`. Setting lower == upper removes the review band.
class ThresholdClassifier {
 public:
  ThresholdClassifier(double lower, double upper);

  MatchDecision Classify(double score) const;

  /// Convenience: keeps the pairs classified kMatch.
  std::vector<ScoredPair> SelectMatches(const std::vector<ScoredPair>& scored) const;

  /// SelectMatches() sharded over `scheduler`: chunks classify in parallel
  /// into per-chunk buffers that merge in chunk order, so the output is
  /// identical to the serial call at any worker count. Worth it only for
  /// multi-million-pair score vectors; the per-pair work is two compares.
  std::vector<ScoredPair> ParallelSelectMatches(const std::vector<ScoredPair>& scored,
                                                WorkStealingScheduler& scheduler) const;

 private:
  double lower_;
  double upper_;
};

/// One conjunctive rule over per-field similarities: the rule fires when
/// every listed field reaches its minimum similarity.
struct MatchRule {
  /// (field index, minimum similarity) conjuncts.
  std::vector<std::pair<size_t, double>> conditions;
};

/// Rule-based classification: a pair matches when any rule fires (a
/// disjunction of conjunctions, the form domain experts write).
class RuleBasedClassifier {
 public:
  explicit RuleBasedClassifier(std::vector<MatchRule> rules);

  bool Matches(const std::vector<double>& field_scores) const;

  std::vector<FieldwiseScoredPair> SelectMatches(
      const std::vector<FieldwiseScoredPair>& pairs) const;

 private:
  std::vector<MatchRule> rules_;
};

/// Fellegi-Sunter probabilistic linkage with EM-estimated m/u parameters.
///
/// Per-field similarities are binarised at `agreement_threshold`; the EM
/// algorithm estimates, without any labels, the probability m_f of field f
/// agreeing among true matches and u_f among non-matches, plus the match
/// prevalence. Pairs are then scored by the classic log2(m/u) agreement
/// weights, giving the unsupervised probabilistic classifier the survey
/// lists between threshold and ML classification.
class FellegiSunterClassifier {
 public:
  struct Params {
    double agreement_threshold = 0.8;  ///< binarisation of field similarities
    size_t em_iterations = 50;
    double initial_m = 0.9;
    double initial_u = 0.1;
    double initial_prevalence = 0.05;
  };

  FellegiSunterClassifier();
  explicit FellegiSunterClassifier(Params params);

  /// Runs EM on the (unlabelled) compared pairs. Needs at least one pair and
  /// one field.
  Status Fit(const std::vector<FieldwiseScoredPair>& pairs);

  /// Total match weight (sum of per-field log2(m/u) or log2((1-m)/(1-u))).
  double Weight(const std::vector<double>& field_scores) const;

  /// Posterior match probability for a pair given the fitted model.
  double MatchProbability(const std::vector<double>& field_scores) const;

  /// Pairs whose weight reaches `weight_threshold`.
  std::vector<FieldwiseScoredPair> SelectMatches(
      const std::vector<FieldwiseScoredPair>& pairs, double weight_threshold) const;

  const std::vector<double>& m() const { return m_; }
  const std::vector<double>& u() const { return u_; }
  double prevalence() const { return prevalence_; }

 private:
  std::vector<bool> Agreements(const std::vector<double>& field_scores) const;

  Params params_;
  std::vector<double> m_;
  std::vector<double> u_;
  double prevalence_ = 0.05;
  bool fitted_ = false;
};

/// A tiny supervised baseline: online logistic regression over per-field
/// similarities. Stands in for the "machine learning classifiers need
/// ground-truth labels" branch of the survey's discussion.
class LogisticClassifier {
 public:
  struct Params {
    double learning_rate = 0.1;
    size_t epochs = 200;
    double l2 = 1e-4;
  };

  LogisticClassifier();
  explicit LogisticClassifier(Params params);

  /// Trains on labelled similarity vectors. Sizes must agree and be nonzero.
  Status Fit(const std::vector<std::vector<double>>& features,
             const std::vector<int>& labels);

  /// P(match | field_scores).
  double Predict(const std::vector<double>& field_scores) const;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  Params params_;
  std::vector<double> weights_;
  double bias_ = 0;
};

}  // namespace pprl

#endif  // PPRL_LINKAGE_CLASSIFIER_H_
