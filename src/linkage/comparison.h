#ifndef PPRL_LINKAGE_COMPARISON_H_
#define PPRL_LINKAGE_COMPARISON_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvector.h"
#include "blocking/blocking.h"

namespace pprl {

/// A compared record pair with its similarity score.
struct ScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;
  double score = 0;

  friend bool operator==(const ScoredPair& x, const ScoredPair& y) {
    return x.a == y.a && x.b == y.b && x.score == y.score;
  }
};

/// Similarity of two encoded records (e.g. Dice of Bloom filters).
using PairSimilarityFunction = std::function<double(const BitVector&, const BitVector&)>;

/// The comparison step of the PPRL pipeline: evaluates the similarity
/// function on every candidate pair. This is the bottleneck the survey's
/// complexity-reduction technologies exist to shrink, so the engine counts
/// exactly how many comparisons it performs.
class ComparisonEngine {
 public:
  explicit ComparisonEngine(PairSimilarityFunction similarity);

  /// Scores all candidate pairs; `min_score` drops pairs below it early
  /// (pass 0 to keep everything).
  std::vector<ScoredPair> Compare(const std::vector<BitVector>& a_filters,
                                  const std::vector<BitVector>& b_filters,
                                  const std::vector<CandidatePair>& candidates,
                                  double min_score = 0) const;

  /// Multi-threaded variant for the parallel-PPRL experiments; results are
  /// in candidate order, identical to Compare().
  std::vector<ScoredPair> CompareParallel(const std::vector<BitVector>& a_filters,
                                          const std::vector<BitVector>& b_filters,
                                          const std::vector<CandidatePair>& candidates,
                                          double min_score, size_t num_threads) const;

  /// Comparisons performed by the last Compare*/ call.
  size_t last_comparison_count() const { return last_comparisons_; }

 private:
  PairSimilarityFunction similarity_;
  mutable size_t last_comparisons_ = 0;
};

/// Per-field similarity vectors for multi-attribute classifiers: one
/// encoded filter per field per record.
struct FieldwiseScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;
  std::vector<double> field_scores;
};

/// Compares candidate pairs field by field (field-level Bloom filters),
/// producing the similarity vectors that rule-based, Fellegi-Sunter and ML
/// classifiers consume.
std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates,
    const PairSimilarityFunction& similarity);

}  // namespace pprl

#endif  // PPRL_LINKAGE_COMPARISON_H_
