#ifndef PPRL_LINKAGE_COMPARISON_H_
#define PPRL_LINKAGE_COMPARISON_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/bit_matrix.h"
#include "common/bitvector.h"
#include "common/thread_pool.h"
#include "blocking/blocking.h"
#include "linkage/compare_kernels.h"

namespace pprl {

// ScoredPair lives in compare_kernels.h (the kernels emit it directly).

/// Similarity of two encoded records (e.g. Dice of Bloom filters).
using PairSimilarityFunction = std::function<double(const BitVector&, const BitVector&)>;

/// The comparison step of the PPRL pipeline: evaluates the similarity
/// function on every candidate pair. This is the bottleneck the survey's
/// complexity-reduction technologies exist to shrink, so the engine counts
/// exactly how many comparisons it performs.
///
/// Constructed from a `SimilarityMeasure`, the engine runs the batch
/// kernels of compare_kernels.h over contiguous `BitMatrix` storage:
/// candidate pairs are tiled for cache locality, each pair costs one fused
/// AND-popcount loop with no indirect call, and pairs whose cardinality
/// upper bound falls below `min_score` skip the loop entirely (counted by
/// last_pruned_count()). Scores are bitwise identical to the scalar
/// functions in similarity/similarity.h and results stay in candidate
/// order. The `std::function` constructor remains as the fully general
/// fallback (custom measures, instrumented runs).
class ComparisonEngine {
 public:
  /// Fast path: devirtualized batch kernels for a named measure.
  explicit ComparisonEngine(SimilarityMeasure measure);

  /// Fallback path: arbitrary per-pair similarity, no pruning.
  explicit ComparisonEngine(PairSimilarityFunction similarity);

  /// Scores all candidate pairs; `min_score` drops pairs below it early
  /// (pass 0 to keep everything).
  std::vector<ScoredPair> Compare(const std::vector<BitVector>& a_filters,
                                  const std::vector<BitVector>& b_filters,
                                  const std::vector<CandidatePair>& candidates,
                                  double min_score = 0) const;

  /// Same, over already-packed matrices — lets callers amortize the
  /// conversion across many calls. Measure-constructed engines only.
  std::vector<ScoredPair> CompareMatrices(const BitMatrix& a_matrix,
                                          const BitMatrix& b_matrix,
                                          const std::vector<CandidatePair>& candidates,
                                          double min_score = 0) const;

  /// Multi-threaded variant for the parallel-PPRL experiments; results are
  /// in candidate order, identical to Compare(). Spins up a scheduler for
  /// this one call — callers with a long-lived scheduler (the daemon, the
  /// streaming pipeline) should use the scheduler overload instead.
  std::vector<ScoredPair> CompareParallel(const std::vector<BitVector>& a_filters,
                                          const std::vector<BitVector>& b_filters,
                                          const std::vector<CandidatePair>& candidates,
                                          double min_score, size_t num_threads) const;

  /// Same, sharing `scheduler`'s workers (no per-call thread spawn).
  std::vector<ScoredPair> CompareParallel(const std::vector<BitVector>& a_filters,
                                          const std::vector<BitVector>& b_filters,
                                          const std::vector<CandidatePair>& candidates,
                                          double min_score,
                                          WorkStealingScheduler& scheduler) const;

  /// Matrix variant of CompareParallel(); measure-constructed engines only.
  std::vector<ScoredPair> CompareMatricesParallel(
      const BitMatrix& a_matrix, const BitMatrix& b_matrix,
      const std::vector<CandidatePair>& candidates, double min_score,
      size_t num_threads) const;

  /// Same, sharing `scheduler`'s workers; measure-constructed engines only.
  std::vector<ScoredPair> CompareMatricesParallel(
      const BitMatrix& a_matrix, const BitMatrix& b_matrix,
      const std::vector<CandidatePair>& candidates, double min_score,
      WorkStealingScheduler& scheduler) const;

  /// Candidate pairs evaluated (attempted) by the last Compare*() call,
  /// whether by the word loop or by the cardinality bound. Counters are
  /// atomic so one engine may serve concurrent sessions; under concurrent
  /// calls each reader sees the totals of some completed call.
  size_t last_comparison_count() const {
    return last_comparisons_.load(std::memory_order_relaxed);
  }

  /// Of those, pairs the cardinality bound rejected without running the
  /// word loop. Always 0 on the `std::function` path.
  size_t last_pruned_count() const {
    return last_pruned_.load(std::memory_order_relaxed);
  }

  /// The measure this engine runs kernels for, if measure-constructed.
  std::optional<SimilarityMeasure> measure() const { return measure_; }

 private:
  std::optional<SimilarityMeasure> measure_;
  PairSimilarityFunction similarity_;
  mutable std::atomic<size_t> last_comparisons_{0};
  mutable std::atomic<size_t> last_pruned_{0};
};

/// Per-field similarity vectors for multi-attribute classifiers: one
/// encoded filter per field per record.
struct FieldwiseScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;
  std::vector<double> field_scores;
};

/// Compares candidate pairs field by field (field-level Bloom filters),
/// producing the similarity vectors that rule-based, Fellegi-Sunter and ML
/// classifiers consume.
std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates,
    const PairSimilarityFunction& similarity);

/// Kernel-backed CompareFieldwise: packs each field into a BitMatrix once
/// and scores every candidate with the fused word loop. Bitwise identical
/// to the `std::function` overload over the matching scalar measure.
std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates, SimilarityMeasure measure);

}  // namespace pprl

#endif  // PPRL_LINKAGE_COMPARISON_H_
