#include "linkage/interactive_review.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace pprl {

namespace {

/// Pads both values to a common length and returns the shared random order
/// in which positions are revealed.
struct AlignedValues {
  std::string a;
  std::string b;
  std::vector<uint32_t> order;
};

AlignedValues Align(const std::string& a, const std::string& b, uint64_t seed) {
  AlignedValues out;
  const size_t len = std::max(a.size(), b.size());
  out.a = a + std::string(len - a.size(), '\x04');
  out.b = b + std::string(len - b.size(), '\x04');
  out.order.resize(len);
  std::iota(out.order.begin(), out.order.end(), 0);
  Rng rng(seed);
  rng.Shuffle(out.order);
  return out;
}

}  // namespace

MaskedPair MaskPair(const std::string& a, const std::string& b, size_t revealed,
                    uint64_t order_seed) {
  const AlignedValues aligned = Align(a, b, order_seed);
  MaskedPair out;
  out.a.assign(aligned.a.size(), '*');
  out.b.assign(aligned.b.size(), '*');
  for (size_t i = 0; i < revealed && i < aligned.order.size(); ++i) {
    const uint32_t pos = aligned.order[i];
    out.a[pos] = aligned.a[pos] == '\x04' ? '_' : aligned.a[pos];
    out.b[pos] = aligned.b[pos] == '\x04' ? '_' : aligned.b[pos];
  }
  // Trim the padding back to each value's true length for display.
  out.a.resize(a.size());
  out.b.resize(b.size());
  return out;
}

Result<ReviewOutcome> ReviewPair(const Schema& schema, const Record& a, const Record& b,
                                 const std::vector<std::string>& fields,
                                 const ReviewPolicy& policy, uint64_t order_seed) {
  if (fields.empty()) return Status::InvalidArgument("review needs at least one field");
  if (policy.max_rounds == 0) {
    return Status::InvalidArgument("max_rounds must be > 0");
  }

  // Concatenate the reviewed fields (normalised), as the reviewer sees them.
  std::string va, vb;
  for (const std::string& field : fields) {
    const int idx = schema.FieldIndex(field);
    if (idx < 0) return Status::InvalidArgument("unknown review field: " + field);
    if (static_cast<size_t>(idx) >= a.values.size() ||
        static_cast<size_t>(idx) >= b.values.size()) {
      return Status::InvalidArgument("record lacks value for field: " + field);
    }
    va += NormalizeQid(a.values[static_cast<size_t>(idx)]) + "\x1f";
    vb += NormalizeQid(b.values[static_cast<size_t>(idx)]) + "\x1f";
  }

  const AlignedValues aligned = Align(va, vb, order_seed);
  const size_t total = aligned.order.size();
  ReviewOutcome outcome;
  if (total == 0) {
    outcome.decided = true;
    outcome.is_match = true;  // both empty
    return outcome;
  }

  const size_t per_round = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(policy.reveal_fraction_per_round *
                                       static_cast<double>(total))));
  size_t revealed = 0;
  size_t agree = 0;
  for (size_t round = 1; round <= policy.max_rounds && revealed < total; ++round) {
    const size_t new_end = std::min(total, revealed + per_round);
    for (size_t i = revealed; i < new_end; ++i) {
      const uint32_t pos = aligned.order[i];
      if (aligned.a[pos] == aligned.b[pos]) ++agree;
    }
    revealed = new_end;
    outcome.rounds_used = round;
    const double agreement =
        static_cast<double>(agree) / static_cast<double>(revealed);
    if (agreement >= policy.decide_margin) {
      outcome.decided = true;
      outcome.is_match = true;
      break;
    }
    if (agreement <= 1.0 - policy.decide_margin) {
      outcome.decided = true;
      outcome.is_match = false;
      break;
    }
  }
  outcome.fraction_revealed =
      static_cast<double>(revealed) / static_cast<double>(total);
  return outcome;
}

Result<BatchReviewResult> ReviewPairs(
    const Schema& schema,
    const std::vector<std::pair<const Record*, const Record*>>& pairs,
    const std::vector<std::string>& fields, const ReviewPolicy& policy,
    uint64_t order_seed) {
  BatchReviewResult result;
  result.outcomes.reserve(pairs.size());
  double total_fraction = 0;
  uint64_t pair_seed = order_seed;
  for (const auto& [a, b] : pairs) {
    // Each pair gets its own disclosure order so revealed positions of one
    // pair say nothing about another.
    pair_seed = pair_seed * 6364136223846793005ull + 1442695040888963407ull;
    auto outcome = ReviewPair(schema, *a, *b, fields, policy, pair_seed);
    if (!outcome.ok()) return outcome.status();
    total_fraction += outcome->fraction_revealed;
    if (!outcome->decided) ++result.undecided;
    result.outcomes.push_back(std::move(outcome).value());
  }
  result.mean_fraction_revealed =
      pairs.empty() ? 0 : total_fraction / static_cast<double>(pairs.size());
  return result;
}

}  // namespace pprl
