#ifndef PPRL_LINKAGE_COMPARE_KERNELS_H_
#define PPRL_LINKAGE_COMPARE_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "blocking/blocking.h"
#include "common/bit_matrix.h"
#include "common/bitvector.h"

namespace pprl {

/// The token-based similarity measures PPRL compares Bloom-filter
/// encodings with (survey §3.4). Naming a measure instead of passing a
/// `std::function` lets the comparison engine pick a devirtualized batch
/// kernel: one fused word loop per pair, no indirect call, no re-derived
/// cardinalities.
enum class SimilarityMeasure {
  kDice,     // 2c / (x1 + x2)
  kJaccard,  // c / (x1 + x2 - c)
  kHamming,  // 1 - (x1 + x2 - 2c) / m
  kOverlap,  // c / min(x1, x2)
  kCosine,   // c / sqrt(x1 * x2)
};

const char* SimilarityMeasureName(SimilarityMeasure measure);

/// The scalar reference implementation of `measure` (the functions in
/// similarity/similarity.h), wrapped for the engine's fallback path. The
/// batch kernels below produce bitwise-identical scores.
std::function<double(const BitVector&, const BitVector&)> MeasureFunction(
    SimilarityMeasure measure);

/// Score of a pair given the two set-bit counts `ca`, `cb`, the
/// intersection count `c`, and the filter length `num_bits`. Every
/// measure above is a function of only these four values — |a OR b| is
/// ca + cb - c and the Hamming distance is ca + cb - 2c, both exact in
/// integers — which is why the kernels only ever run one fused AND
/// popcount loop. Degenerate cases (empty filters) follow the scalar
/// conventions: two empty filters compare as 1.
double ScoreFromIntersection(SimilarityMeasure measure, size_t ca, size_t cb,
                             size_t c, size_t num_bits);

/// Upper bound on the pair's score from cardinalities alone, i.e. the
/// score at the best-case intersection c = min(ca, cb). Monotonicity of
/// IEEE division guarantees ScoreFromIntersection(...) <=
/// ScoreUpperBound(...) for every real intersection, so a pair whose
/// bound falls strictly below a threshold can be skipped without running
/// the word loop at all — the PPJoin-style length filter applied at the
/// comparison step. (For Overlap the bound is the trivial 1, so only
/// degenerate pairs prune.)
double ScoreUpperBound(SimilarityMeasure measure, size_t ca, size_t cb,
                       size_t num_bits);

/// Counters a kernel run reports: how many candidate pairs ran the word
/// loop and how many the cardinality bound answered without it.
struct CompareKernelStats {
  size_t scored = 0;
  size_t pruned = 0;
};

/// A compared record pair with its similarity score.
struct ScoredPair {
  uint32_t a = 0;
  uint32_t b = 0;
  double score = 0;

  friend bool operator==(const ScoredPair& x, const ScoredPair& y) {
    return x.a == y.a && x.b == y.b && x.score == y.score;
  }
};

/// A candidate pair prepared for the kernel: row indices plus the slot in
/// the caller's candidate order the result belongs to (the engine tiles
/// pairs for cache locality, so kernel execution order is not output
/// order).
struct KernelPair {
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t slot = 0;
};

/// A scored pair tagged with its output slot.
struct SlottedScore {
  uint32_t slot = 0;
  double score = 0;
};

/// Scores `pairs[begin, end)` of rows drawn from `a` x `b`, appending one
/// SlottedScore per pair whose score is >= `min_score` to `out` (in
/// execution order — callers sort by slot to recover candidate order).
/// Pairs whose cardinality bound is strictly below `min_score` are
/// skipped and counted in `stats.pruned`; everything else runs the fused
/// word loop and counts in `stats.scored`.
void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const KernelPair* pairs, size_t num_pairs, double min_score,
                   std::vector<SlottedScore>& out, CompareKernelStats& stats);

/// Same, over candidates in caller order: pair i is assigned slot
/// `slot_base + i`, so hits arrive already sorted by slot and need no
/// reorder. This is the path the engine takes when the matrices fit in
/// cache and tiling would only add two O(n log n) sorts.
void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, uint32_t slot_base,
                   double min_score, std::vector<SlottedScore>& out,
                   CompareKernelStats& stats);

/// In-order scoring that emits finished ScoredPairs directly — the
/// engine's hot path. Skipping the slot indirection saves a full pass of
/// intermediate hits when every pair clears `min_score`.
void CompareKernel(SimilarityMeasure measure, const BitMatrix& a, const BitMatrix& b,
                   const CandidatePair* pairs, size_t num_pairs, double min_score,
                   std::vector<ScoredPair>& out, CompareKernelStats& stats);

}  // namespace pprl

#endif  // PPRL_LINKAGE_COMPARE_KERNELS_H_
