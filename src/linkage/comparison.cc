#include "linkage/comparison.h"

#include <algorithm>
#include <cassert>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace pprl {

namespace {

/// Comparison counters: one relaxed atomic add per Compare*() call (not
/// per pair), so instrumentation cost is invisible next to the O(pairs)
/// kernel work. The `path` label is the kernel-dispatch breakdown.
struct CompareMetrics {
  obs::Counter& pairs = obs::GlobalMetrics().GetCounter(
      "pprl_compare_pairs_total",
      "Candidate pairs evaluated by ComparisonEngine (word loop or bound)");
  obs::Counter& pruned = obs::GlobalMetrics().GetCounter(
      "pprl_compare_pairs_pruned_total",
      "Pairs the cardinality bound rejected without running the word loop");
  obs::Counter& scalar_calls = obs::GlobalMetrics().GetCounter(
      "pprl_compare_calls_total", "Compare*() dispatches by execution path",
      {{"path", "scalar"}});
  obs::Counter& kernel_calls = obs::GlobalMetrics().GetCounter(
      "pprl_compare_calls_total", "Compare*() dispatches by execution path",
      {{"path", "kernel"}});
  obs::Counter& scalar_parallel_calls = obs::GlobalMetrics().GetCounter(
      "pprl_compare_calls_total", "Compare*() dispatches by execution path",
      {{"path", "scalar-parallel"}});
  obs::Counter& kernel_parallel_calls = obs::GlobalMetrics().GetCounter(
      "pprl_compare_calls_total", "Compare*() dispatches by execution path",
      {{"path", "kernel-parallel"}});
  obs::Counter& fieldwise_calls = obs::GlobalMetrics().GetCounter(
      "pprl_compare_calls_total", "Compare*() dispatches by execution path",
      {{"path", "fieldwise"}});
};

CompareMetrics& Metrics() {
  static CompareMetrics* m = new CompareMetrics();
  return *m;
}

/// Rows per cache tile. Pairs are sorted by (a-tile, b-tile) so the kernel
/// keeps revisiting the same few hundred rows of each matrix while they
/// are hot: 256 rows of a 1000-bit filter are ~32 KiB per side, which sits
/// in L2 with room to spare.
constexpr uint32_t kTileRows = 256;

/// Tiling trades two O(n log n) sorts over the pair list for row reuse
/// while rows are hot, so it only pays once random row access actually
/// misses cache. Below this combined matrix footprint (comfortably inside
/// a desktop LLC) the engine scores pairs in candidate order instead —
/// hits then come out pre-sorted by slot and the sorts vanish.
constexpr size_t kTileBytesThreshold = 16u << 20;

bool WorthTiling(const BitMatrix& a, const BitMatrix& b) {
  const size_t bytes = (a.num_rows() + b.num_rows()) * a.stride_words() * 8;
  return bytes > kTileBytesThreshold;
}

/// Tags every candidate with its output slot and sorts into tile order.
/// Ties break on slot so the ordering is deterministic.
std::vector<KernelPair> TiledPairs(const std::vector<CandidatePair>& candidates) {
  std::vector<KernelPair> pairs(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    pairs[i] = {candidates[i].a, candidates[i].b, static_cast<uint32_t>(i)};
  }
  std::sort(pairs.begin(), pairs.end(), [](const KernelPair& x, const KernelPair& y) {
    const uint32_t xa = x.a / kTileRows;
    const uint32_t ya = y.a / kTileRows;
    if (xa != ya) return xa < ya;
    const uint32_t xb = x.b / kTileRows;
    const uint32_t yb = y.b / kTileRows;
    if (xb != yb) return xb < yb;
    return x.slot < y.slot;
  });
  return pairs;
}

/// Maps slot-sorted hits back to ScoredPairs in the caller's order.
std::vector<ScoredPair> EmitSlotSorted(const std::vector<SlottedScore>& hits,
                                       const std::vector<CandidatePair>& candidates) {
  std::vector<ScoredPair> out;
  out.reserve(hits.size());
  for (const SlottedScore& hit : hits) {
    const CandidatePair& pair = candidates[hit.slot];
    out.push_back({pair.a, pair.b, hit.score});
  }
  return out;
}

/// Restores candidate order: hits arrive in kernel execution order, each
/// slot at most once, so sorting by slot recovers the caller's order.
std::vector<ScoredPair> EmitInCandidateOrder(std::vector<SlottedScore> hits,
                                             const std::vector<CandidatePair>& candidates) {
  std::sort(hits.begin(), hits.end(),
            [](const SlottedScore& x, const SlottedScore& y) { return x.slot < y.slot; });
  return EmitSlotSorted(hits, candidates);
}

}  // namespace

ComparisonEngine::ComparisonEngine(SimilarityMeasure measure) : measure_(measure) {}

ComparisonEngine::ComparisonEngine(PairSimilarityFunction similarity)
    : similarity_(std::move(similarity)) {}

std::vector<ScoredPair> ComparisonEngine::Compare(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, double min_score) const {
  if (measure_.has_value()) {
    return CompareMatrices(BitMatrix::FromVectors(a_filters),
                           BitMatrix::FromVectors(b_filters), candidates, min_score);
  }
  std::vector<ScoredPair> out;
  out.reserve(candidates.size());
  for (const CandidatePair& pair : candidates) {
    const double score = similarity_(a_filters[pair.a], b_filters[pair.b]);
    if (score >= min_score) out.push_back({pair.a, pair.b, score});
  }
  last_comparisons_ = candidates.size();
  last_pruned_ = 0;
  Metrics().scalar_calls.Increment();
  Metrics().pairs.Increment(candidates.size());
  return out;
}

std::vector<ScoredPair> ComparisonEngine::CompareMatrices(
    const BitMatrix& a_matrix, const BitMatrix& b_matrix,
    const std::vector<CandidatePair>& candidates, double min_score) const {
  assert(measure_.has_value());
  CompareKernelStats stats;
  last_comparisons_ = candidates.size();
  Metrics().kernel_calls.Increment();
  Metrics().pairs.Increment(candidates.size());
  if (WorthTiling(a_matrix, b_matrix)) {
    const std::vector<KernelPair> pairs = TiledPairs(candidates);
    std::vector<SlottedScore> hits;
    CompareKernel(*measure_, a_matrix, b_matrix, pairs.data(), pairs.size(), min_score,
                  hits, stats);
    last_pruned_ = stats.pruned;
    Metrics().pruned.Increment(stats.pruned);
    return EmitInCandidateOrder(std::move(hits), candidates);
  }
  std::vector<ScoredPair> out;
  out.reserve(candidates.size());
  CompareKernel(*measure_, a_matrix, b_matrix, candidates.data(), candidates.size(),
                min_score, out, stats);
  last_pruned_ = stats.pruned;
  Metrics().pruned.Increment(stats.pruned);
  return out;
}

namespace {

/// Chunking for the parallel paths. Shards must be big enough that a
/// dispatch (one scheduler hop, one buffer move) amortizes over the word
/// loop, and numerous enough that stealing can balance uneven pruning;
/// `threads * 8` chunks with a floor of kMinChunkPairs satisfies both.
constexpr size_t kMinChunkPairs = 8192;

size_t ChunkSizeFor(size_t n, size_t num_threads) {
  const size_t target_chunks = std::max<size_t>(1, num_threads * 8);
  return std::max(kMinChunkPairs, (n + target_chunks - 1) / target_chunks);
}

/// Concatenates per-chunk buffers in chunk order (chunks cover ascending
/// ranges, so this is deterministic no matter which worker ran what).
template <typename T>
std::vector<T> MergeChunks(std::vector<std::vector<T>>& buffers) {
  size_t total = 0;
  for (const auto& buffer : buffers) total += buffer.size();
  std::vector<T> out;
  out.reserve(total);
  for (auto& buffer : buffers) {
    out.insert(out.end(), buffer.begin(), buffer.end());
    buffer = {};
  }
  return out;
}

}  // namespace

std::vector<ScoredPair> ComparisonEngine::CompareParallel(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, double min_score,
    size_t num_threads) const {
  WorkStealingScheduler scheduler(num_threads);
  return CompareParallel(a_filters, b_filters, candidates, min_score, scheduler);
}

std::vector<ScoredPair> ComparisonEngine::CompareParallel(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, double min_score,
    WorkStealingScheduler& scheduler) const {
  if (measure_.has_value()) {
    return CompareMatricesParallel(BitMatrix::FromVectors(a_filters),
                                   BitMatrix::FromVectors(b_filters), candidates,
                                   min_score, scheduler);
  }
  // Fallback path: chunk results accumulate in a worker-local vector (one
  // reserve, no reallocation churn) and land in the shared per-chunk slot
  // with a single move, so workers never write interleaved cache lines.
  const size_t n = candidates.size();
  const size_t chunk = ChunkSizeFor(n, scheduler.num_threads());
  const size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  TaskGroup group(scheduler);
  std::vector<std::vector<SlottedScore>> buffers(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    group.Submit([this, &candidates, &a_filters, &b_filters, &buffers, c, begin,
                      end, min_score] {
      std::vector<SlottedScore> hits;
      hits.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        const CandidatePair& pair = candidates[i];
        const double score = similarity_(a_filters[pair.a], b_filters[pair.b]);
        if (score >= min_score) hits.push_back({static_cast<uint32_t>(i), score});
      }
      buffers[c] = std::move(hits);
    });
  }
  group.Wait();
  last_comparisons_.store(n, std::memory_order_relaxed);
  last_pruned_.store(0, std::memory_order_relaxed);
  Metrics().scalar_parallel_calls.Increment();
  Metrics().pairs.Increment(n);
  return EmitInCandidateOrder(MergeChunks(buffers), candidates);
}

std::vector<ScoredPair> ComparisonEngine::CompareMatricesParallel(
    const BitMatrix& a_matrix, const BitMatrix& b_matrix,
    const std::vector<CandidatePair>& candidates, double min_score,
    size_t num_threads) const {
  WorkStealingScheduler scheduler(num_threads);
  return CompareMatricesParallel(a_matrix, b_matrix, candidates, min_score, scheduler);
}

std::vector<ScoredPair> ComparisonEngine::CompareMatricesParallel(
    const BitMatrix& a_matrix, const BitMatrix& b_matrix,
    const std::vector<CandidatePair>& candidates, double min_score,
    WorkStealingScheduler& scheduler) const {
  assert(measure_.has_value());
  const size_t n = candidates.size();
  const size_t chunk = ChunkSizeFor(n, scheduler.num_threads());
  const size_t num_chunks = n == 0 ? 0 : (n + chunk - 1) / chunk;
  // Chunk stats live on the worker's stack and fold into the shared
  // atomics once per chunk; the old per-chunk stats array put four
  // counters on each cache line and every scored pair bounced them
  // between cores (the "t8 slower than t1" regression).
  std::atomic<size_t> pruned_total{0};
  TaskGroup group(scheduler);
  last_comparisons_.store(n, std::memory_order_relaxed);
  Metrics().kernel_parallel_calls.Increment();
  Metrics().pairs.Increment(n);
  if (WorthTiling(a_matrix, b_matrix)) {
    const std::vector<KernelPair> pairs = TiledPairs(candidates);
    std::vector<std::vector<SlottedScore>> buffers(num_chunks);
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = c * chunk;
      const size_t end = std::min(n, begin + chunk);
      group.Submit([this, &a_matrix, &b_matrix, &pairs, &buffers, &pruned_total, c,
                        begin, end, min_score] {
        CompareKernelStats stats;
        std::vector<SlottedScore> hits;
        hits.reserve(end - begin);
        CompareKernel(*measure_, a_matrix, b_matrix, pairs.data() + begin, end - begin,
                      min_score, hits, stats);
        buffers[c] = std::move(hits);
        pruned_total.fetch_add(stats.pruned, std::memory_order_relaxed);
      });
    }
    group.Wait();
    const size_t pruned = pruned_total.load(std::memory_order_relaxed);
    last_pruned_.store(pruned, std::memory_order_relaxed);
    Metrics().pruned.Increment(pruned);
    return EmitInCandidateOrder(MergeChunks(buffers), candidates);
  }
  // Untiled chunks cover ascending candidate ranges and emit finished
  // ScoredPairs, so concatenating the buffers is already candidate order.
  std::vector<std::vector<ScoredPair>> buffers(num_chunks);
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * chunk;
    const size_t end = std::min(n, begin + chunk);
    group.Submit([this, &a_matrix, &b_matrix, &candidates, &buffers, &pruned_total,
                  c, begin, end, min_score] {
      CompareKernelStats stats;
      std::vector<ScoredPair> hits;
      hits.reserve(end - begin);
      CompareKernel(*measure_, a_matrix, b_matrix, candidates.data() + begin,
                    end - begin, min_score, hits, stats);
      buffers[c] = std::move(hits);
      pruned_total.fetch_add(stats.pruned, std::memory_order_relaxed);
    });
  }
  group.Wait();
  const size_t pruned = pruned_total.load(std::memory_order_relaxed);
  last_pruned_.store(pruned, std::memory_order_relaxed);
  Metrics().pruned.Increment(pruned);
  return MergeChunks(buffers);
}

std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates,
    const PairSimilarityFunction& similarity) {
  std::vector<FieldwiseScoredPair> out;
  out.reserve(candidates.size());
  const size_t num_fields = a_field_filters.size();
  for (const CandidatePair& pair : candidates) {
    FieldwiseScoredPair fsp;
    fsp.a = pair.a;
    fsp.b = pair.b;
    fsp.field_scores.reserve(num_fields);
    for (size_t f = 0; f < num_fields; ++f) {
      fsp.field_scores.push_back(
          similarity(a_field_filters[f][pair.a], b_field_filters[f][pair.b]));
    }
    out.push_back(std::move(fsp));
  }
  return out;
}

std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates, SimilarityMeasure measure) {
  std::vector<FieldwiseScoredPair> out(candidates.size());
  const size_t num_fields = a_field_filters.size();
  Metrics().fieldwise_calls.Increment();
  Metrics().pairs.Increment(candidates.size() * num_fields);
  for (size_t i = 0; i < candidates.size(); ++i) {
    out[i].a = candidates[i].a;
    out[i].b = candidates[i].b;
    out[i].field_scores.reserve(num_fields);
  }
  std::vector<SlottedScore> hits;
  hits.reserve(candidates.size());
  for (size_t f = 0; f < num_fields; ++f) {
    const BitMatrix ma = BitMatrix::FromVectors(a_field_filters[f]);
    const BitMatrix mb = BitMatrix::FromVectors(b_field_filters[f]);
    hits.clear();
    CompareKernelStats stats;
    // min_score 0 keeps every pair (all measures map into [0, 1]), so each
    // slot receives exactly one score per field, appended in field order.
    CompareKernel(measure, ma, mb, candidates.data(), candidates.size(),
                  /*slot_base=*/0, 0.0, hits, stats);
    for (const SlottedScore& hit : hits) out[hit.slot].field_scores.push_back(hit.score);
  }
  return out;
}

}  // namespace pprl
