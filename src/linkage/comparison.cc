#include "linkage/comparison.h"

#include <atomic>
#include <mutex>

#include "common/thread_pool.h"

namespace pprl {

ComparisonEngine::ComparisonEngine(PairSimilarityFunction similarity)
    : similarity_(std::move(similarity)) {}

std::vector<ScoredPair> ComparisonEngine::Compare(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, double min_score) const {
  std::vector<ScoredPair> out;
  out.reserve(candidates.size());
  for (const CandidatePair& pair : candidates) {
    const double score = similarity_(a_filters[pair.a], b_filters[pair.b]);
    if (score >= min_score) out.push_back({pair.a, pair.b, score});
  }
  last_comparisons_ = candidates.size();
  return out;
}

std::vector<ScoredPair> ComparisonEngine::CompareParallel(
    const std::vector<BitVector>& a_filters, const std::vector<BitVector>& b_filters,
    const std::vector<CandidatePair>& candidates, double min_score,
    size_t num_threads) const {
  std::vector<ScoredPair> scored(candidates.size());
  std::vector<uint8_t> keep(candidates.size(), 0);
  ThreadPool pool(num_threads);
  ParallelFor(pool, 0, candidates.size(), [&](size_t i) {
    const CandidatePair& pair = candidates[i];
    const double score = similarity_(a_filters[pair.a], b_filters[pair.b]);
    scored[i] = {pair.a, pair.b, score};
    keep[i] = score >= min_score ? 1 : 0;
  });
  std::vector<ScoredPair> out;
  out.reserve(candidates.size());
  for (size_t i = 0; i < scored.size(); ++i) {
    if (keep[i]) out.push_back(scored[i]);
  }
  last_comparisons_ = candidates.size();
  return out;
}

std::vector<FieldwiseScoredPair> CompareFieldwise(
    const std::vector<std::vector<BitVector>>& a_field_filters,
    const std::vector<std::vector<BitVector>>& b_field_filters,
    const std::vector<CandidatePair>& candidates,
    const PairSimilarityFunction& similarity) {
  std::vector<FieldwiseScoredPair> out;
  out.reserve(candidates.size());
  const size_t num_fields = a_field_filters.size();
  for (const CandidatePair& pair : candidates) {
    FieldwiseScoredPair fsp;
    fsp.a = pair.a;
    fsp.b = pair.b;
    fsp.field_scores.reserve(num_fields);
    for (size_t f = 0; f < num_fields; ++f) {
      fsp.field_scores.push_back(
          similarity(a_field_filters[f][pair.a], b_field_filters[f][pair.b]));
    }
    out.push_back(std::move(fsp));
  }
  return out;
}

}  // namespace pprl
