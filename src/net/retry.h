#ifndef PPRL_NET_RETRY_H_
#define PPRL_NET_RETRY_H_

#include <chrono>
#include <cstdint>

#include "common/random.h"

namespace pprl {

/// Session-level retry policy: how hard a fault-tolerant delivery tries
/// before giving up. Connection loss, timeouts, corrupted frames and BUSY
/// shedding are all retried (resuming server-side state where it left
/// off); errors that retrying cannot fix end the delivery at once. Shared
/// by the owner -> unit client (service/client.h) and every
/// coordinator -> worker link (service/coordinator.h).
struct RetryPolicy {
  int max_attempts = 10;
  /// Exponential backoff between attempts, with multiplicative jitter so
  /// shed peers do not re-dial in lockstep. BUSY frames override the
  /// backoff with the server's retry-after hint.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 2000;
  double jitter = 0.2;
  /// Seed of the jitter stream (deterministic tests).
  uint64_t jitter_seed = 7;
  /// Wall-clock bound over all attempts of one delivery.
  int deadline_ms = 180000;
};

/// The per-delivery backoff state a retry loop carries across attempts:
/// one jitter stream, one deadline. NextDelayMs() computes the sleep
/// before attempt `attempt + 1`; a non-negative `server_hint_ms` (from a
/// BUSY frame) replaces the exponential schedule with the server's own
/// hint (jitter still applies).
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy);

  int NextDelayMs(int attempt, int server_hint_ms);

  /// True when sleeping `delay_ms` would cross the delivery deadline —
  /// the loop should return the last error instead of retrying.
  bool DeadlineExceededAfter(int delay_ms) const;

 private:
  RetryPolicy policy_;
  Rng jitter_rng_;
  std::chrono::steady_clock::time_point deadline_;
};

}  // namespace pprl

#endif  // PPRL_NET_RETRY_H_
