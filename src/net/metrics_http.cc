#include "net/metrics_http.h"

#include <cstring>

#include "common/logging.h"

namespace pprl {

namespace {

/// Reads until the end of the request headers ("\r\n\r\n"), a size cap, or
/// EOF; returns what was read. A scrape request is a few hundred bytes, so
/// the cap is generous.
std::string ReadRequest(TcpConnection& conn) {
  constexpr size_t kMaxRequestBytes = 8192;
  std::string request;
  uint8_t buf[1024];
  while (request.size() < kMaxRequestBytes) {
    auto n = conn.Read(buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    request.append(reinterpret_cast<const char*>(buf), *n);
    if (request.find("\r\n\r\n") != std::string::npos) break;
  }
  return request;
}

/// First line up to CRLF (or LF), e.g. "GET /metrics HTTP/1.1".
std::string RequestLine(const std::string& request) {
  const size_t eol = request.find_first_of("\r\n");
  return eol == std::string::npos ? request : request.substr(0, eol);
}

Status WriteResponse(TcpConnection& conn, const char* status_line,
                     const std::string& body) {
  std::string response = std::string("HTTP/1.0 ") + status_line +
                         "\r\n"
                         "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                         "Content-Length: " +
                         std::to_string(body.size()) +
                         "\r\n"
                         "Connection: close\r\n\r\n" +
                         body;
  return conn.Write(reinterpret_cast<const uint8_t*>(response.data()), response.size());
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(MetricsHttpServerConfig config,
                                     BodyProvider provider)
    : config_(config), provider_(std::move(provider)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("metrics server already started");
  }
  PPRL_RETURN_IF_ERROR(listener_.Listen(config_.port, config_.loopback_only));
  serve_thread_ = std::thread([this] { ServeLoop(); });
  PPRL_LOG(kInfo) << "metrics endpoint listening on port " << listener_.port()
                  << " (GET /metrics)";
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (serve_thread_.joinable()) serve_thread_.join();
    return;
  }
  listener_.Close();
  if (serve_thread_.joinable()) serve_thread_.join();
}

void MetricsHttpServer::ServeLoop() {
  while (!stopping_.load()) {
    auto conn = listener_.Accept(config_.accept_poll_ms);
    if (!conn.ok()) {
      // kNotFound is a poll timeout — keep polling. kFailedPrecondition is
      // the listener being torn down (Stop() from another thread) — leave
      // the loop even if the stopping flag write hasn't been observed yet.
      if (conn.status().code() == StatusCode::kNotFound) continue;
      if (conn.status().code() == StatusCode::kFailedPrecondition) break;
      if (stopping_.load()) break;
      PPRL_LOG(kWarning) << "metrics accept failed: " << conn.status().ToString();
      continue;
    }
    // Scrapes are rare and the body is small: serving sequentially on the
    // accept thread keeps the endpoint to a single thread of overhead.
    ServeOne(**conn);
    (*conn)->Close();
  }
}

void MetricsHttpServer::ServeOne(TcpConnection& conn) {
  conn.SetIoTimeout(config_.io_timeout_ms);
  const std::string line = RequestLine(ReadRequest(conn));
  if (line.rfind("GET ", 0) != 0) {
    WriteResponse(conn, "405 Method Not Allowed", "metrics endpoint only serves GET\n");
    return;
  }
  const size_t path_start = 4;
  const size_t path_end = line.find(' ', path_start);
  const std::string path = line.substr(
      path_start, path_end == std::string::npos ? std::string::npos
                                                : path_end - path_start);
  if (path != "/metrics" && path != "/") {
    WriteResponse(conn, "404 Not Found", "try /metrics\n");
    return;
  }
  WriteResponse(conn, "200 OK", provider_());
}

}  // namespace pprl
