#ifndef PPRL_NET_WIRE_H_
#define PPRL_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace pprl {

/// Little-endian binary serialisation helpers for the wire protocol.
///
/// `WireWriter` appends fixed-width integers, length-prefixed strings and
/// raw byte runs to a growable buffer; `WireReader` is its bounds-checked
/// inverse. Every read validates the remaining length first and returns a
/// `Status` error on truncated input — the decoder never reads past the
/// end of the buffer and never allocates more than the buffer could
/// possibly hold, which is what makes the frame decoder safe against
/// adversarial payloads (see tests/net_framing_test.cc).
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Raw bytes, no length prefix.
  void PutBytes(const uint8_t* data, size_t len);
  /// u32 length prefix + bytes.
  void PutString(const std::string& s);

  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte buffer (does not own the bytes).
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
  explicit WireReader(const std::vector<uint8_t>& buf)
      : data_(buf.data()), len_(buf.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  /// Reads a u32 length prefix + that many bytes. `max_len` bounds the
  /// declared length so a hostile prefix cannot trigger a huge allocation.
  Result<std::string> ReadString(size_t max_len = 1 << 20);
  /// Raw bytes, no prefix.
  Result<std::vector<uint8_t>> ReadBytes(size_t len);

  size_t remaining() const { return len_ - pos_; }
  bool exhausted() const { return pos_ == len_; }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace pprl

#endif  // PPRL_NET_WIRE_H_
