#include "net/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace pprl {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetTimeout(int fd, int optname, int timeout_ms) {
  timeval tv{};
  if (timeout_ms > 0) {
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
  }
  if (setsockopt(fd, SOL_SOCKET, optname, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt timeout");
  }
  return Status::OK();
}

/// One dial attempt with a connect timeout (non-blocking connect + poll).
Result<int> DialOnce(const std::string& host, uint16_t port, int connect_timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");

  // Non-blocking connect so the timeout is ours, not the kernel's.
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    const Status s = Errno("connect");
    close(fd);
    return s;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    rc = poll(&pfd, 1, connect_timeout_ms > 0 ? connect_timeout_ms : -1);
    if (rc == 0) {
      close(fd);
      return Status::IoError("connect to " + host + ":" + std::to_string(port) +
                             " timed out");
    }
    if (rc < 0) {
      const Status s = Errno("poll(connect)");
      close(fd);
      return s;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len);
    if (err != 0) {
      close(fd);
      return Status::IoError("connect to " + host + ":" + std::to_string(port) + ": " +
                             std::strerror(err));
    }
  }
  fcntl(fd, F_SETFL, flags);  // back to blocking I/O
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {}

TcpConnection::~TcpConnection() { Close(); }

Result<std::unique_ptr<TcpConnection>> TcpConnection::Connect(
    const std::string& host, uint16_t port, const ConnectOptions& options) {
  Status last = Status::IoError("no connect attempt made");
  int backoff_ms = options.backoff_initial_ms;
  for (int attempt = 0; attempt <= options.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, options.backoff_max_ms);
    }
    auto fd = DialOnce(host, port, options.connect_timeout_ms);
    if (fd.ok()) {
      auto conn = std::make_unique<TcpConnection>(*fd);
      PPRL_RETURN_IF_ERROR(conn->SetIoTimeout(options.io_timeout_ms));
      return conn;
    }
    last = fd.status();
    // Address errors will not improve with retries.
    if (last.code() == StatusCode::kInvalidArgument) return last;
  }
  return Status::IoError("connect failed after " +
                         std::to_string(options.max_retries + 1) +
                         " attempts; last error: " + last.message());
}

Status TcpConnection::SetIoTimeout(int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  PPRL_RETURN_IF_ERROR(SetTimeout(fd_, SO_RCVTIMEO, timeout_ms));
  return SetTimeout(fd_, SO_SNDTIMEO, timeout_ms);
}

Result<size_t> TcpConnection::Read(uint8_t* buf, size_t max) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  for (;;) {
    const ssize_t n = recv(fd_, buf, max, 0);
    if (n >= 0) {
      wire_bytes_received_ += static_cast<size_t>(n);
      return static_cast<size_t>(n);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IoError("read timed out");
    }
    return Errno("recv");
  }
}

Status TcpConnection::Write(const uint8_t* buf, size_t len) {
  if (fd_ < 0) return Status::FailedPrecondition("connection is closed");
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = send(fd_, buf + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::IoError("write timed out");
      }
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
    wire_bytes_sent_ += static_cast<size_t>(n);
  }
  return Status::OK();
}

void TcpConnection::Close() {
  if (fd_ >= 0) {
    shutdown(fd_, SHUT_RDWR);
    close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(uint16_t port, bool loopback_only, int backlog) {
  if (fd_ >= 0) return Status::FailedPrecondition("listener already bound");
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("bind port " + std::to_string(port));
    close(fd);
    return s;
  }
  if (listen(fd, backlog) != 0) {
    const Status s = Errno("listen");
    close(fd);
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const Status s = Errno("getsockname");
    close(fd);
    return s;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Result<std::unique_ptr<TcpConnection>> TcpListener::Accept(int timeout_ms) {
  // Snapshot the fd once: a concurrent Close() swaps fd_ to -1 and shuts
  // the socket down, which makes the poll/accept below fail with the
  // distinct teardown code instead of racing on the member.
  const int fd = fd_.load();
  if (fd < 0) return Status::FailedPrecondition("listener shut down");
  pollfd pfd{fd, POLLIN, 0};
  const int rc = poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
  if (rc == 0) return Status::NotFound("accept timed out");
  if (rc < 0) {
    if (errno == EINTR) return Status::NotFound("accept interrupted");
    return Errno("poll(accept)");
  }
  // A Close() from another thread shuts the listening socket down, which
  // wakes the poll with an error event rather than a pending connection.
  // Surface that as the distinct teardown code so accept loops can stop
  // polling instead of mistaking it for a timeout.
  if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
    return Status::FailedPrecondition("listener shut down");
  }
  const int conn_fd = accept(fd, nullptr, nullptr);
  if (conn_fd < 0) {
    if (errno == EBADF || errno == EINVAL) {
      return Status::FailedPrecondition("listener shut down");
    }
    return Errno("accept");
  }
  const int one = 1;
  setsockopt(conn_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<TcpConnection>(conn_fd);
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() unblocks any thread parked in poll/accept.
    shutdown(fd, SHUT_RDWR);
    close(fd);
  }
}

namespace {

/// Frame-level traffic counters, both directions, headers included —
/// the wire view the channel's payload accounting deliberately excludes.
struct FrameMetrics {
  obs::Counter& frames_in = obs::GlobalMetrics().GetCounter(
      "pprl_net_frames_total", "Protocol frames by direction", {{"direction", "in"}});
  obs::Counter& frames_out = obs::GlobalMetrics().GetCounter(
      "pprl_net_frames_total", "Protocol frames by direction", {{"direction", "out"}});
  obs::Counter& bytes_in = obs::GlobalMetrics().GetCounter(
      "pprl_net_frame_bytes_total", "Frame bytes (header + payload) by direction",
      {{"direction", "in"}});
  obs::Counter& bytes_out = obs::GlobalMetrics().GetCounter(
      "pprl_net_frame_bytes_total", "Frame bytes (header + payload) by direction",
      {{"direction", "out"}});
};

FrameMetrics& GlobalFrameMetrics() {
  static FrameMetrics* m = new FrameMetrics();
  return *m;
}

}  // namespace

MeteredFrameConnection::MeteredFrameConnection(Connection& conn, Channel* meter,
                                               std::string self, size_t max_payload)
    : conn_(conn),
      reader_(conn, max_payload),
      writer_(conn, max_payload),
      meter_(meter),
      self_(std::move(self)) {}

Status MeteredFrameConnection::Send(uint8_t type, const std::vector<uint8_t>& payload,
                                    const std::string& tag, size_t metered_bytes) {
  PPRL_RETURN_IF_ERROR(writer_.WriteFrame(type, payload));
  GlobalFrameMetrics().frames_out.Increment();
  GlobalFrameMetrics().bytes_out.Increment(kFrameHeaderSize + payload.size());
  if (meter_ != nullptr) {
    const size_t bytes =
        metered_bytes == kMeterWholePayload ? payload.size() : metered_bytes;
    meter_->Send(self_, peer_.empty() ? "peer" : peer_, bytes, tag);
  }
  return Status::OK();
}

Result<Frame> MeteredFrameConnection::Receive(const char* (*tag_of)(uint8_t)) {
  auto frame = ReceiveUnmetered();  // counts the frame; channel metering below
  if (!frame.ok()) return frame.status();
  MeterReceived(*frame, tag_of);
  return frame;
}

Result<Frame> MeteredFrameConnection::ReceiveUnmetered() {
  auto frame = reader_.ReadFrame();
  if (frame.ok()) {
    // Frame counters are independent of the channel's payload metering:
    // even a frame whose sender is still unknown is wire traffic.
    GlobalFrameMetrics().frames_in.Increment();
    GlobalFrameMetrics().bytes_in.Increment(frame->wire_size());
  }
  return frame;
}

void MeteredFrameConnection::MeterReceived(const Frame& frame,
                                           const char* (*tag_of)(uint8_t)) {
  if (meter_ == nullptr) return;
  const char* tag = tag_of != nullptr ? tag_of(frame.type) : "frame";
  meter_->Send(peer_.empty() ? "peer" : peer_, self_, frame.payload.size(), tag);
}

void MeteredFrameConnection::MeterReceivedBytes(size_t bytes, const std::string& tag) {
  if (meter_ == nullptr) return;
  meter_->Send(peer_.empty() ? "peer" : peer_, self_, bytes, tag);
}

}  // namespace pprl
