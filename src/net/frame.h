#ifndef PPRL_NET_FRAME_H_
#define PPRL_NET_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace pprl {

/// Length-prefixed binary framing for the linkage wire protocol.
///
/// Every message on a connection is one frame:
///
///   offset  size  field
///   0       4     magic "PPRL" (0x50 0x50 0x52 0x4c)
///   4       1     protocol version (kWireProtocolVersion)
///   5       1     message type tag (service/protocol.h)
///   6       2     reserved, must be zero
///   8       4     payload length N, uint32 little-endian
///   12      N     payload bytes
///
/// The decoder is strict: bad magic, unknown version, non-zero reserved
/// bytes, or a declared length above the reader's limit are hard protocol
/// errors. The declared length is validated *before* any allocation, so a
/// hostile 4 GiB length prefix costs nothing.

/// Version of the frame layout + message payloads. Bump on any
/// incompatible change; the handshake rejects mismatches.
inline constexpr uint8_t kWireProtocolVersion = 4;

/// Frame header size on the wire.
inline constexpr size_t kFrameHeaderSize = 12;

/// Default cap on a single frame payload (64 MiB — a million 512-bit
/// filters ship comfortably; anything larger should be chunked).
inline constexpr size_t kDefaultMaxFramePayload = 64u << 20;

/// One decoded protocol message.
struct Frame {
  uint8_t version = kWireProtocolVersion;
  uint8_t type = 0;
  std::vector<uint8_t> payload;

  size_t wire_size() const { return kFrameHeaderSize + payload.size(); }
};

/// Serialises `frame` (header + payload) into a contiguous buffer.
std::vector<uint8_t> EncodeFrame(const Frame& frame);

/// Parses and validates a 12-byte frame header; returns the declared
/// payload length. `header` must hold at least kFrameHeaderSize bytes.
Result<size_t> DecodeFrameHeader(const uint8_t* header, size_t len, uint8_t* version_out,
                                 uint8_t* type_out, size_t max_payload);

/// Pull-based byte stream the frame reader consumes. Implemented by the
/// TCP transport and by in-memory buffers in tests.
class ByteSource {
 public:
  virtual ~ByteSource() = default;
  /// Reads up to `max` bytes into `buf`. Returns the number of bytes read;
  /// 0 means clean end-of-stream. Errors (timeout, reset) come back as a
  /// non-OK status.
  virtual Result<size_t> Read(uint8_t* buf, size_t max) = 0;
};

/// Push-based byte stream the frame writer targets.
class ByteSink {
 public:
  virtual ~ByteSink() = default;
  /// Writes all `len` bytes or returns an error.
  virtual Status Write(const uint8_t* buf, size_t len) = 0;
};

/// A ByteSource over an in-memory buffer (tests, replay).
class BufferSource : public ByteSource {
 public:
  explicit BufferSource(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}
  Result<size_t> Read(uint8_t* buf, size_t max) override;

 private:
  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

/// A ByteSink into an in-memory buffer (tests).
class BufferSink : public ByteSink {
 public:
  Status Write(const uint8_t* buf, size_t len) override;
  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Reads whole frames off a ByteSource, enforcing the payload cap.
class FrameReader {
 public:
  explicit FrameReader(ByteSource& source, size_t max_payload = kDefaultMaxFramePayload)
      : source_(source), max_payload_(max_payload) {}

  /// Blocks until one full frame is read. Returns:
  ///  - the frame on success,
  ///  - kNotFound if the stream ended cleanly *between* frames,
  ///  - kProtocolViolation / kOutOfRange on malformed or truncated frames,
  ///  - the transport's error for I/O failures.
  Result<Frame> ReadFrame();

 private:
  /// Reads exactly `len` bytes or fails (kOutOfRange on mid-object EOF).
  Status ReadExact(uint8_t* buf, size_t len, bool* clean_eof_at_start);

  ByteSource& source_;
  size_t max_payload_;
};

/// Writes whole frames to a ByteSink.
class FrameWriter {
 public:
  explicit FrameWriter(ByteSink& sink, size_t max_payload = kDefaultMaxFramePayload)
      : sink_(sink), max_payload_(max_payload) {}

  /// Serialises and writes one frame; rejects payloads above the cap
  /// (keeps us honest about what peers will accept).
  Status WriteFrame(uint8_t type, const std::vector<uint8_t>& payload);

 private:
  ByteSink& sink_;
  size_t max_payload_;
};

}  // namespace pprl

#endif  // PPRL_NET_FRAME_H_
