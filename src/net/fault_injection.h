#ifndef PPRL_NET_FAULT_INJECTION_H_
#define PPRL_NET_FAULT_INJECTION_H_

#include <cstdint>
#include <limits>

#include "common/random.h"
#include "common/status.h"
#include "net/transport.h"

namespace pprl {

/// What a FaultInjectingConnection may do to the stream, and how often.
///
/// All randomness is drawn from one seeded Rng per connection, so a given
/// (spec, seed, operation sequence) replays the same faults — chaos runs
/// are reproducible, and a failing seed can be committed as a regression
/// test. The byte-point triggers are fully deterministic: the connection
/// hard-closes the first time the running byte count crosses the
/// threshold, which is how tests cut a session mid-frame at an exact
/// offset and prove the resume path continues from the last acked chunk.
struct FaultSpec {
  static constexpr size_t kNever = std::numeric_limits<size_t>::max();

  uint64_t seed = 0;
  /// Per-I/O-operation probability of dropping the connection (hard close).
  double close_rate = 0.0;
  /// Per-I/O-operation probability of sleeping `delay_ms` first.
  double delay_rate = 0.0;
  int delay_ms = 2;
  /// Per-write probability of writing only a prefix, then hard-closing.
  double truncate_rate = 0.0;
  /// Per-write probability of flipping one bit of the outgoing bytes.
  double corrupt_rate = 0.0;
  /// Deterministic byte points: hard-close once this many bytes have gone
  /// out / come in through this connection.
  size_t close_after_bytes_sent = kNever;
  size_t close_after_bytes_received = kNever;
  /// Deterministic crash point for the durability layer: the PROCESS dies
  /// (SIGKILL-equivalent, see InjectedCrash) right after the n-th journaled
  /// operation reaches the OS — i.e. after the WAL write, before the
  /// in-memory apply and the ack. 0 = never. Not a connection fault, so it
  /// does not arm enabled()/connection wrapping.
  uint64_t crash_after_ops = 0;

  bool enabled() const {
    return close_rate > 0.0 || delay_rate > 0.0 || truncate_rate > 0.0 ||
           corrupt_rate > 0.0 || close_after_bytes_sent != kNever ||
           close_after_bytes_received != kNever;
  }

  /// The same fault mix with an independent random stream — each accepted
  /// or re-dialled connection gets its own derived seed.
  FaultSpec WithSeed(uint64_t derived_seed) const {
    FaultSpec spec = *this;
    spec.seed = derived_seed;
    return spec;
  }
};

/// Kills the process at a crash point: logs `what` to stderr, then
/// `_Exit(137)` — no destructors, no atexit hooks, no stream flushes, the
/// same abrupt end as `kill -9`. The durability gates in check.sh restart
/// the daemon afterwards and assert byte-identical query output, which is
/// only honest if nothing "graceful" happens on the way down.
[[noreturn]] void InjectedCrash(const char* what);

/// Chaos decorator over any Connection (net/transport.h).
///
/// Sits between the protocol layers and the real socket and injects the
/// faults a deployed linkage service actually sees: connections dropped
/// mid-frame, deliveries delayed, writes truncated at arbitrary byte
/// points, payload bytes corrupted in flight. Injected failures surface
/// through the normal Status channel (kIoError mentioning "injected"), so
/// the code under test cannot tell them from real network trouble.
///
/// Not thread-safe — like the connections it wraps, one session handler
/// drives it. Counts every injected fault into
/// `pprl_faults_injected_total{kind}` and locally via faults_injected().
class FaultInjectingConnection : public Connection {
 public:
  /// `inner` must outlive this wrapper (callers own it).
  FaultInjectingConnection(Connection& inner, const FaultSpec& spec);

  Result<size_t> Read(uint8_t* buf, size_t max) override;
  Status Write(const uint8_t* buf, size_t len) override;
  Status SetIoTimeout(int timeout_ms) override { return inner_.SetIoTimeout(timeout_ms); }
  void Close() override { inner_.Close(); }
  bool closed() const override { return inner_.closed(); }
  size_t wire_bytes_sent() const override { return inner_.wire_bytes_sent(); }
  size_t wire_bytes_received() const override { return inner_.wire_bytes_received(); }

  /// Faults injected on this connection so far.
  size_t faults_injected() const { return faults_injected_; }

 private:
  /// Hard-closes the inner connection and reports the injected fault.
  Status InjectClose(const char* what);
  void CountFault(const char* kind);

  Connection& inner_;
  FaultSpec spec_;
  Rng rng_;
  size_t bytes_in_ = 0;
  size_t bytes_out_ = 0;
  size_t faults_injected_ = 0;
};

}  // namespace pprl

#endif  // PPRL_NET_FAULT_INJECTION_H_
