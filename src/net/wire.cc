#include "net/wire.h"

#include <cstring>

namespace pprl {

void WireWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v & 0xff));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::PutBytes(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

void WireWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

Result<uint8_t> WireReader::ReadU8() {
  if (remaining() < 1) return Status::OutOfRange("wire: truncated u8");
  return data_[pos_++];
}

Result<uint16_t> WireReader::ReadU16() {
  if (remaining() < 2) return Status::OutOfRange("wire: truncated u16");
  uint16_t v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

Result<uint32_t> WireReader::ReadU32() {
  if (remaining() < 4) return Status::OutOfRange("wire: truncated u32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::ReadU64() {
  if (remaining() < 8) return Status::OutOfRange("wire: truncated u64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<std::string> WireReader::ReadString(size_t max_len) {
  auto len = ReadU32();
  if (!len.ok()) return len.status();
  if (*len > max_len) {
    return Status::OutOfRange("wire: declared string length " + std::to_string(*len) +
                              " exceeds limit " + std::to_string(max_len));
  }
  if (remaining() < *len) return Status::OutOfRange("wire: truncated string body");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<std::vector<uint8_t>> WireReader::ReadBytes(size_t len) {
  if (remaining() < len) return Status::OutOfRange("wire: truncated byte run");
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

}  // namespace pprl
