#include "net/frame.h"

#include <cstring>

#include "net/wire.h"

namespace pprl {

namespace {
constexpr uint8_t kMagic[4] = {'P', 'P', 'R', 'L'};
}  // namespace

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  WireWriter w;
  w.PutBytes(kMagic, sizeof(kMagic));
  w.PutU8(frame.version);
  w.PutU8(frame.type);
  w.PutU16(0);  // reserved
  w.PutU32(static_cast<uint32_t>(frame.payload.size()));
  w.PutBytes(frame.payload.data(), frame.payload.size());
  return w.Take();
}

Result<size_t> DecodeFrameHeader(const uint8_t* header, size_t len, uint8_t* version_out,
                                 uint8_t* type_out, size_t max_payload) {
  if (len < kFrameHeaderSize) {
    return Status::OutOfRange("frame: header truncated at " + std::to_string(len) +
                              " bytes");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::ProtocolViolation("frame: bad magic");
  }
  WireReader r(header + sizeof(kMagic), kFrameHeaderSize - sizeof(kMagic));
  const uint8_t version = r.ReadU8().value();
  const uint8_t type = r.ReadU8().value();
  const uint16_t reserved = r.ReadU16().value();
  const uint32_t declared = r.ReadU32().value();
  if (version != kWireProtocolVersion) {
    return Status::ProtocolViolation("frame: unsupported protocol version " +
                                     std::to_string(version));
  }
  if (reserved != 0) {
    return Status::ProtocolViolation("frame: non-zero reserved bytes");
  }
  if (declared > max_payload) {
    return Status::OutOfRange("frame: declared payload " + std::to_string(declared) +
                              " exceeds cap " + std::to_string(max_payload));
  }
  if (version_out != nullptr) *version_out = version;
  if (type_out != nullptr) *type_out = type;
  return static_cast<size_t>(declared);
}

Result<size_t> BufferSource::Read(uint8_t* buf, size_t max) {
  const size_t n = std::min(max, bytes_.size() - pos_);
  if (n == 0) return n;  // empty vector data() may be null; keep memcpy defined
  std::memcpy(buf, bytes_.data() + pos_, n);
  pos_ += n;
  return n;
}

Status BufferSink::Write(const uint8_t* buf, size_t len) {
  bytes_.insert(bytes_.end(), buf, buf + len);
  return Status::OK();
}

Status FrameReader::ReadExact(uint8_t* buf, size_t len, bool* clean_eof_at_start) {
  size_t got = 0;
  while (got < len) {
    auto n = source_.Read(buf + got, len - got);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (got == 0 && clean_eof_at_start != nullptr) {
        *clean_eof_at_start = true;
        return Status::NotFound("frame: end of stream");
      }
      return Status::OutOfRange("frame: stream truncated after " + std::to_string(got) +
                                " of " + std::to_string(len) + " bytes");
    }
    got += *n;
  }
  return Status::OK();
}

Result<Frame> FrameReader::ReadFrame() {
  uint8_t header[kFrameHeaderSize];
  bool clean_eof = false;
  PPRL_RETURN_IF_ERROR(ReadExact(header, kFrameHeaderSize, &clean_eof));
  Frame frame;
  auto payload_len =
      DecodeFrameHeader(header, kFrameHeaderSize, &frame.version, &frame.type, max_payload_);
  if (!payload_len.ok()) return payload_len.status();
  frame.payload.resize(*payload_len);
  if (*payload_len > 0) {
    PPRL_RETURN_IF_ERROR(ReadExact(frame.payload.data(), *payload_len, nullptr));
  }
  return frame;
}

Status FrameWriter::WriteFrame(uint8_t type, const std::vector<uint8_t>& payload) {
  if (payload.size() > max_payload_) {
    return Status::OutOfRange("frame: payload " + std::to_string(payload.size()) +
                              " exceeds cap " + std::to_string(max_payload_));
  }
  Frame frame;
  frame.type = type;
  frame.payload = payload;
  const std::vector<uint8_t> encoded = EncodeFrame(frame);
  return sink_.Write(encoded.data(), encoded.size());
}

}  // namespace pprl
