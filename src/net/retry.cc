#include "net/retry.h"

#include <algorithm>

namespace pprl {

RetryBackoff::RetryBackoff(const RetryPolicy& policy)
    : policy_(policy),
      jitter_rng_(policy.jitter_seed),
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(policy.deadline_ms)) {}

int RetryBackoff::NextDelayMs(int attempt, int server_hint_ms) {
  int delay_ms =
      std::min(policy_.backoff_max_ms,
               policy_.backoff_initial_ms * (1 << std::min(attempt, 10)));
  if (server_hint_ms >= 0) delay_ms = std::max(1, server_hint_ms);
  const int jitter_span = static_cast<int>(delay_ms * policy_.jitter);
  if (jitter_span > 0) {
    delay_ms += static_cast<int>(jitter_rng_.NextUint64(
                    static_cast<uint64_t>(2 * jitter_span + 1))) -
                jitter_span;
  }
  return delay_ms;
}

bool RetryBackoff::DeadlineExceededAfter(int delay_ms) const {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(delay_ms) >
         deadline_;
}

}  // namespace pprl
