#ifndef PPRL_NET_METRICS_HTTP_H_
#define PPRL_NET_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"
#include "net/transport.h"

namespace pprl {

/// Configuration of the side-channel metrics endpoint.
struct MetricsHttpServerConfig {
  /// 0 binds an ephemeral port; read it back via port() after Start().
  uint16_t port = 0;
  /// Loopback-only by default, like the linkage daemon itself.
  bool loopback_only = true;
  /// How often the accept loop wakes to check for Stop().
  int accept_poll_ms = 100;
  /// Per-connection read/write timeout; scrapers are expected to be fast.
  int io_timeout_ms = 2000;
};

/// A deliberately tiny HTTP/1.0 server for Prometheus scrapes: answers
/// `GET /metrics` (and `GET /`) with a text body produced by the caller's
/// provider callback, everything else with 404. One connection at a time,
/// close-after-response — exactly what a scraper needs and nothing more.
///
/// The body provider keeps this class free of a dependency on the obs
/// registry: the daemon passes a lambda that renders the global snapshot,
/// tests can pass a constant.
class MetricsHttpServer {
 public:
  using BodyProvider = std::function<std::string()>;

  MetricsHttpServer(MetricsHttpServerConfig config, BodyProvider provider);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds, listens and starts the serve loop. Non-blocking.
  Status Start();

  /// Stops accepting and joins the serve thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return listener_.port(); }

 private:
  void ServeLoop();
  void ServeOne(TcpConnection& conn);

  MetricsHttpServerConfig config_;
  BodyProvider provider_;
  TcpListener listener_;
  std::thread serve_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

}  // namespace pprl

#endif  // PPRL_NET_METRICS_HTTP_H_
