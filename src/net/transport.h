#ifndef PPRL_NET_TRANSPORT_H_
#define PPRL_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "pipeline/channel.h"

namespace pprl {

/// Connection establishment knobs. Retries use exponential backoff:
/// attempt k sleeps `backoff_initial_ms * 2^k` (capped at
/// `backoff_max_ms`) before re-dialling — the standard pattern for a
/// client racing a daemon that is still binding its port.
struct ConnectOptions {
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 30000;
  int max_retries = 5;
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
};

/// A bidirectional byte-stream endpoint: ByteSource + ByteSink plus the
/// lifecycle and accounting the framed protocol layers need. TcpConnection
/// is the real socket; FaultInjectingConnection (net/fault_injection.h)
/// decorates any Connection with deterministic injected faults, which is
/// how the chaos tests and `pprl_linkd --chaos` exercise the resume path
/// without special-casing the protocol code.
class Connection : public ByteSource, public ByteSink {
 public:
  ~Connection() override = default;

  /// Applies `timeout_ms` to subsequent reads and writes; <= 0 blocks
  /// forever.
  virtual Status SetIoTimeout(int timeout_ms) = 0;

  /// Shuts the stream down (idempotent).
  virtual void Close() = 0;

  virtual bool closed() const = 0;

  /// Raw wire bytes in each direction, frame headers included.
  virtual size_t wire_bytes_sent() const = 0;
  virtual size_t wire_bytes_received() const = 0;
};

/// A blocking TCP byte stream (POSIX sockets) with read/write timeouts.
///
/// Implements ByteSource/ByteSink so FrameReader/FrameWriter run directly
/// on top, and counts raw wire bytes in each direction so framing overhead
/// can be reported separately from the metered protocol payloads.
class TcpConnection : public Connection {
 public:
  /// Takes ownership of a connected socket fd (server side; Accept()).
  explicit TcpConnection(int fd);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Dials `host:port`, retrying with exponential backoff per `options`.
  static Result<std::unique_ptr<TcpConnection>> Connect(const std::string& host,
                                                        uint16_t port,
                                                        const ConnectOptions& options);

  /// Applies `timeout_ms` to subsequent reads and writes (SO_RCVTIMEO /
  /// SO_SNDTIMEO). <= 0 means block forever.
  Status SetIoTimeout(int timeout_ms) override;

  /// ByteSource: up to `max` bytes; 0 = peer closed. Timeouts surface as
  /// kIoError mentioning "timed out".
  Result<size_t> Read(uint8_t* buf, size_t max) override;

  /// ByteSink: writes all `len` bytes or fails.
  Status Write(const uint8_t* buf, size_t len) override;

  /// Shuts down and closes the socket (idempotent).
  void Close() override;

  bool closed() const override { return fd_ < 0; }

  /// Raw wire bytes, including frame headers — the basis of the
  /// framing-overhead column in benchmarks.
  size_t wire_bytes_sent() const override { return wire_bytes_sent_.load(); }
  size_t wire_bytes_received() const override { return wire_bytes_received_.load(); }

 private:
  int fd_ = -1;
  std::atomic<size_t> wire_bytes_sent_{0};
  std::atomic<size_t> wire_bytes_received_{0};
};

/// A listening TCP socket bound to 127.0.0.1 (loopback service) or any
/// interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  /// `loopback_only` binds 127.0.0.1, else INADDR_ANY.
  Status Listen(uint16_t port, bool loopback_only = true, int backlog = 16);

  /// Accepts one connection, waiting at most `timeout_ms` (<= 0 = forever).
  /// The error code tells pollers what happened:
  ///   - kNotFound: poll timeout or a transient interruption — poll again;
  ///   - kFailedPrecondition: the listener was shut down (Close() from
  ///     another thread, or never bound) — stop polling;
  ///   - kIoError: a real accept failure.
  Result<std::unique_ptr<TcpConnection>> Accept(int timeout_ms);

  /// The bound port (resolved after Listen, also for ephemeral binds).
  uint16_t port() const { return port_; }

  bool listening() const { return fd_.load() >= 0; }

  /// Stops accepting (unblocks a blocked Accept with an error). Safe to
  /// call from a different thread than the one parked in Accept — that
  /// is how accept loops are torn down.
  void Close();

 private:
  /// Atomic because Close() races a concurrent Accept() by design.
  std::atomic<int> fd_{-1};
  uint16_t port_ = 0;
};

/// A framed, metered protocol connection: FrameReader/FrameWriter over a
/// TcpConnection, metering every frame into a `Channel` with the same
/// (from, to, tag) accounting the in-process pipelines use.
///
/// Metering covers the *payload* bytes under the message-type's tag; the
/// constant 12-byte frame header is deliberately excluded so byte totals
/// line up with the in-process `Channel` path, and is recoverable as
/// wire_bytes() - channel totals.
class MeteredFrameConnection {
 public:
  /// `meter` may be null (no accounting). `self` names this endpoint;
  /// `peer` is set after the handshake identifies the remote party. The
  /// connection must outlive this wrapper (callers own it).
  MeteredFrameConnection(Connection& conn, Channel* meter, std::string self,
                         size_t max_payload = kDefaultMaxFramePayload);

  void set_peer(std::string peer) { peer_ = std::move(peer); }
  const std::string& peer() const { return peer_; }

  /// Sends one frame; meters payload bytes as self -> peer under `tag`.
  /// `metered_bytes` overrides the byte count handed to the channel —
  /// shipment chunks pass only their data length, so the per-chunk session
  /// header stays wire-level overhead (like the frame header) and the
  /// "encoded-filters" cost column matches the in-process path exactly.
  Status Send(uint8_t type, const std::vector<uint8_t>& payload, const std::string& tag,
              size_t metered_bytes = kMeterWholePayload);

  /// Receives one frame; meters payload bytes as peer -> self under the
  /// tag derived from the received type by `tag_of` (may be null).
  Result<Frame> Receive(const char* (*tag_of)(uint8_t));

  /// Receives one frame without metering it — for the server's first read,
  /// where the sender's name is only known once the hello is decoded. Pair
  /// with MeterReceived() after set_peer().
  Result<Frame> ReceiveUnmetered();

  /// Meters an already-received frame as peer -> self (see
  /// ReceiveUnmetered).
  void MeterReceived(const Frame& frame, const char* (*tag_of)(uint8_t));

  /// Meters `bytes` as peer -> self under `tag` — for frames whose metered
  /// size differs from the payload size (applied shipment-chunk data).
  void MeterReceivedBytes(size_t bytes, const std::string& tag);

  Connection& socket() { return conn_; }

  /// Sentinel for Send(): meter payload.size().
  static constexpr size_t kMeterWholePayload = static_cast<size_t>(-1);

 private:
  Connection& conn_;
  FrameReader reader_;
  FrameWriter writer_;
  Channel* meter_;
  std::string self_;
  std::string peer_;
};

}  // namespace pprl

#endif  // PPRL_NET_TRANSPORT_H_
