#ifndef PPRL_NET_TRANSPORT_H_
#define PPRL_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "net/frame.h"
#include "pipeline/channel.h"

namespace pprl {

/// Connection establishment knobs. Retries use exponential backoff:
/// attempt k sleeps `backoff_initial_ms * 2^k` (capped at
/// `backoff_max_ms`) before re-dialling — the standard pattern for a
/// client racing a daemon that is still binding its port.
struct ConnectOptions {
  int connect_timeout_ms = 5000;
  int io_timeout_ms = 30000;
  int max_retries = 5;
  int backoff_initial_ms = 50;
  int backoff_max_ms = 2000;
};

/// A blocking TCP byte stream (POSIX sockets) with read/write timeouts.
///
/// Implements ByteSource/ByteSink so FrameReader/FrameWriter run directly
/// on top, and counts raw wire bytes in each direction so framing overhead
/// can be reported separately from the metered protocol payloads.
class TcpConnection : public ByteSource, public ByteSink {
 public:
  /// Takes ownership of a connected socket fd (server side; Accept()).
  explicit TcpConnection(int fd);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Dials `host:port`, retrying with exponential backoff per `options`.
  static Result<std::unique_ptr<TcpConnection>> Connect(const std::string& host,
                                                        uint16_t port,
                                                        const ConnectOptions& options);

  /// Applies `timeout_ms` to subsequent reads and writes (SO_RCVTIMEO /
  /// SO_SNDTIMEO). <= 0 means block forever.
  Status SetIoTimeout(int timeout_ms);

  /// ByteSource: up to `max` bytes; 0 = peer closed. Timeouts surface as
  /// kIoError mentioning "timed out".
  Result<size_t> Read(uint8_t* buf, size_t max) override;

  /// ByteSink: writes all `len` bytes or fails.
  Status Write(const uint8_t* buf, size_t len) override;

  /// Shuts down and closes the socket (idempotent).
  void Close();

  bool closed() const { return fd_ < 0; }

  /// Raw wire bytes, including frame headers — the basis of the
  /// framing-overhead column in benchmarks.
  size_t wire_bytes_sent() const { return wire_bytes_sent_.load(); }
  size_t wire_bytes_received() const { return wire_bytes_received_.load(); }

 private:
  int fd_ = -1;
  std::atomic<size_t> wire_bytes_sent_{0};
  std::atomic<size_t> wire_bytes_received_{0};
};

/// A listening TCP socket bound to 127.0.0.1 (loopback service) or any
/// interface.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens. `port` 0 picks an ephemeral port (see port()).
  /// `loopback_only` binds 127.0.0.1, else INADDR_ANY.
  Status Listen(uint16_t port, bool loopback_only = true, int backlog = 16);

  /// Accepts one connection, waiting at most `timeout_ms` (<= 0 = forever).
  /// Timeout returns kNotFound so pollers can distinguish it from failure.
  Result<std::unique_ptr<TcpConnection>> Accept(int timeout_ms);

  /// The bound port (resolved after Listen, also for ephemeral binds).
  uint16_t port() const { return port_; }

  bool listening() const { return fd_ >= 0; }

  /// Stops accepting (unblocks a blocked Accept with an error).
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

/// A framed, metered protocol connection: FrameReader/FrameWriter over a
/// TcpConnection, metering every frame into a `Channel` with the same
/// (from, to, tag) accounting the in-process pipelines use.
///
/// Metering covers the *payload* bytes under the message-type's tag; the
/// constant 12-byte frame header is deliberately excluded so byte totals
/// line up with the in-process `Channel` path, and is recoverable as
/// wire_bytes() - channel totals.
class MeteredFrameConnection {
 public:
  /// `meter` may be null (no accounting). `self` names this endpoint;
  /// `peer` is set after the handshake identifies the remote party. The
  /// connection must outlive this wrapper (callers own it).
  MeteredFrameConnection(TcpConnection& conn, Channel* meter, std::string self,
                         size_t max_payload = kDefaultMaxFramePayload);

  void set_peer(std::string peer) { peer_ = std::move(peer); }
  const std::string& peer() const { return peer_; }

  /// Sends one frame; meters payload bytes as self -> peer under `tag`.
  Status Send(uint8_t type, const std::vector<uint8_t>& payload, const std::string& tag);

  /// Receives one frame; meters payload bytes as peer -> self under the
  /// tag derived from the received type by `tag_of` (may be null).
  Result<Frame> Receive(const char* (*tag_of)(uint8_t));

  /// Receives one frame without metering it — for the server's first read,
  /// where the sender's name is only known once the hello is decoded. Pair
  /// with MeterReceived() after set_peer().
  Result<Frame> ReceiveUnmetered();

  /// Meters an already-received frame as peer -> self (see
  /// ReceiveUnmetered).
  void MeterReceived(const Frame& frame, const char* (*tag_of)(uint8_t));

  TcpConnection& socket() { return conn_; }

 private:
  TcpConnection& conn_;
  FrameReader reader_;
  FrameWriter writer_;
  Channel* meter_;
  std::string self_;
  std::string peer_;
};

}  // namespace pprl

#endif  // PPRL_NET_TRANSPORT_H_
