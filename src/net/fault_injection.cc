#include "net/fault_injection.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace pprl {

void InjectedCrash(const char* what) {
  // stderr is unbuffered, so the marker reaches the log even though
  // _Exit() flushes nothing — the crash gate greps for it.
  std::fprintf(stderr, "pprl: injected crash: %s\n", what);
  std::_Exit(137);
}

FaultInjectingConnection::FaultInjectingConnection(Connection& inner,
                                                   const FaultSpec& spec)
    : inner_(inner), spec_(spec), rng_(spec.seed) {}

void FaultInjectingConnection::CountFault(const char* kind) {
  ++faults_injected_;
  obs::GlobalMetrics()
      .GetCounter("pprl_faults_injected_total",
                  "Faults injected by FaultInjectingConnection, by kind",
                  {{"kind", kind}})
      .Increment();
}

Status FaultInjectingConnection::InjectClose(const char* what) {
  CountFault("close");
  inner_.Close();
  return Status::IoError(std::string("injected fault: ") + what);
}

Result<size_t> FaultInjectingConnection::Read(uint8_t* buf, size_t max) {
  if (spec_.delay_rate > 0.0 && rng_.NextBool(spec_.delay_rate)) {
    CountFault("delay");
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
  }
  if (spec_.close_rate > 0.0 && rng_.NextBool(spec_.close_rate)) {
    return InjectClose("connection dropped before read");
  }
  if (bytes_in_ >= spec_.close_after_bytes_received) {
    return InjectClose("read byte point reached");
  }
  // Cap the read so the deterministic byte point lands exactly where the
  // spec says, even mid-frame.
  const size_t budget = spec_.close_after_bytes_received - bytes_in_;
  auto n = inner_.Read(buf, std::min(max, budget));
  if (n.ok()) bytes_in_ += *n;
  return n;
}

Status FaultInjectingConnection::Write(const uint8_t* buf, size_t len) {
  if (spec_.delay_rate > 0.0 && rng_.NextBool(spec_.delay_rate)) {
    CountFault("delay");
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
  }
  if (spec_.close_rate > 0.0 && rng_.NextBool(spec_.close_rate)) {
    return InjectClose("connection dropped before write");
  }
  if (bytes_out_ + len > spec_.close_after_bytes_sent) {
    // Deliver exactly up to the byte point, then cut — the peer sees a
    // stream truncated mid-frame.
    const size_t prefix = spec_.close_after_bytes_sent - bytes_out_;
    if (prefix > 0) {
      const Status s = inner_.Write(buf, prefix);
      bytes_out_ += prefix;
      if (!s.ok()) return s;
    }
    return InjectClose("write byte point reached");
  }
  if (spec_.truncate_rate > 0.0 && len > 1 && rng_.NextBool(spec_.truncate_rate)) {
    CountFault("truncate");
    const size_t prefix = 1 + rng_.NextUint64(len - 1);
    const Status s = inner_.Write(buf, prefix);
    bytes_out_ += prefix;
    if (!s.ok()) return s;
    return InjectClose("write truncated");
  }
  if (spec_.corrupt_rate > 0.0 && len > 0 && rng_.NextBool(spec_.corrupt_rate)) {
    CountFault("corrupt");
    std::vector<uint8_t> corrupted(buf, buf + len);
    corrupted[rng_.NextUint64(len)] ^= static_cast<uint8_t>(1u << rng_.NextUint64(8));
    const Status s = inner_.Write(corrupted.data(), len);
    if (s.ok()) bytes_out_ += len;
    return s;
  }
  const Status s = inner_.Write(buf, len);
  if (s.ok()) bytes_out_ += len;
  return s;
}

}  // namespace pprl
