#include "service/protocol.h"

#include "net/frame.h"
#include "net/wire.h"

namespace pprl {

namespace {

/// Guard on name strings crossing the wire.
constexpr size_t kMaxNameLen = 256;
/// Guard on error text crossing the wire.
constexpr size_t kMaxErrorLen = 4096;

StatusCode StatusCodeFromWire(uint16_t v) {
  switch (v) {
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kOutOfRange;
    case 3: return StatusCode::kNotFound;
    case 4: return StatusCode::kAlreadyExists;
    case 5: return StatusCode::kFailedPrecondition;
    case 6: return StatusCode::kProtocolViolation;
    case 7: return StatusCode::kIoError;
    default: return StatusCode::kInternal;
  }
}

uint16_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kOutOfRange: return 2;
    case StatusCode::kNotFound: return 3;
    case StatusCode::kAlreadyExists: return 4;
    case StatusCode::kFailedPrecondition: return 5;
    case StatusCode::kProtocolViolation: return 6;
    case StatusCode::kIoError: return 7;
    default: return 8;
  }
}

}  // namespace

const char* MessageTypeTag(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello: return "hello";
    case MessageType::kHelloAck: return "hello-ack";
    case MessageType::kShipment: return "encoded-filters";
    case MessageType::kShipmentAck: return "shipment-ack";
    case MessageType::kResults: return "match-results";
    case MessageType::kError: return "protocol-error";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeHello(const HelloMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.party);
  w.PutU32(msg.filter_bits);
  w.PutU32(msg.record_count);
  return w.Take();
}

Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto party = r.ReadString(kMaxNameLen);
  if (!party.ok()) return party.status();
  msg.party = std::move(*party);
  auto bits = r.ReadU32();
  if (!bits.ok()) return bits.status();
  msg.filter_bits = *bits;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  msg.record_count = *count;
  if (!r.exhausted()) return Status::ProtocolViolation("hello: trailing bytes");
  if (msg.party.empty()) return Status::ProtocolViolation("hello: empty party name");
  return msg;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.server);
  w.PutU32(msg.expected_owners);
  return w.Take();
}

Result<HelloAckMessage> DecodeHelloAck(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloAckMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto server = r.ReadString(kMaxNameLen);
  if (!server.ok()) return server.status();
  msg.server = std::move(*server);
  auto expected = r.ReadU32();
  if (!expected.ok()) return expected.status();
  msg.expected_owners = *expected;
  if (!r.exhausted()) return Status::ProtocolViolation("hello-ack: trailing bytes");
  return msg;
}

std::vector<uint8_t> EncodeShipmentAck(const ShipmentAckMessage& msg) {
  WireWriter w;
  w.PutU32(msg.owners_shipped);
  w.PutU32(msg.expected_owners);
  return w.Take();
}

Result<ShipmentAckMessage> DecodeShipmentAck(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ShipmentAckMessage msg;
  auto shipped = r.ReadU32();
  if (!shipped.ok()) return shipped.status();
  msg.owners_shipped = *shipped;
  auto expected = r.ReadU32();
  if (!expected.ok()) return expected.status();
  msg.expected_owners = *expected;
  if (!r.exhausted()) return Status::ProtocolViolation("shipment-ack: trailing bytes");
  return msg;
}

Result<std::vector<uint8_t>> EncodeShipment(const EncodedDatabase& encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  WireWriter w;
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded.filters[i].size() != encoded.filters[0].size()) {
      return Status::InvalidArgument("shipment filters must share one bit length");
    }
    w.PutU64(encoded.ids[i]);
    const std::vector<uint8_t> bytes = BitVectorToBytes(encoded.filters[i]);
    w.PutBytes(bytes.data(), bytes.size());
  }
  return w.Take();
}

Result<EncodedDatabase> DecodeShipment(const std::vector<uint8_t>& payload,
                                       uint32_t filter_bits) {
  if (filter_bits == 0) {
    return Status::ProtocolViolation("shipment: filter bit length not negotiated");
  }
  const size_t filter_bytes = (static_cast<size_t>(filter_bits) + 7) / 8;
  const size_t record_size = 8 + filter_bytes;
  if (payload.size() % record_size != 0) {
    return Status::ProtocolViolation(
        "shipment: payload length " + std::to_string(payload.size()) +
        " is not a multiple of the record size " + std::to_string(record_size));
  }
  const size_t count = payload.size() / record_size;
  EncodedDatabase out;
  out.ids.reserve(count);
  out.filters.reserve(count);
  WireReader r(payload);
  for (size_t i = 0; i < count; ++i) {
    auto id = r.ReadU64();
    if (!id.ok()) return id.status();
    auto bytes = r.ReadBytes(filter_bytes);
    if (!bytes.ok()) return bytes.status();
    auto filter = BitVectorFromBytes(*bytes, filter_bits);
    if (!filter.ok()) return filter.status();
    out.ids.push_back(*id);
    out.filters.push_back(std::move(*filter));
  }
  return out;
}

std::vector<uint8_t> EncodeResults(const OwnerLinkageSummary& summary) {
  WireWriter w;
  w.PutU64(summary.comparisons);
  w.PutU64(summary.candidate_pairs);
  w.PutU64(summary.total_edges);
  w.PutU64(summary.total_clusters);
  w.PutU32(static_cast<uint32_t>(summary.matches.size()));
  for (const MatchedRecordSummary& m : summary.matches) {
    w.PutU32(m.record);
    w.PutU32(m.cluster_id);
    w.PutU32(m.cluster_size);
  }
  return w.Take();
}

Result<OwnerLinkageSummary> DecodeResults(const std::vector<uint8_t>& payload,
                                          size_t max_matches) {
  WireReader r(payload);
  OwnerLinkageSummary summary;
  auto comparisons = r.ReadU64();
  if (!comparisons.ok()) return comparisons.status();
  summary.comparisons = *comparisons;
  auto candidates = r.ReadU64();
  if (!candidates.ok()) return candidates.status();
  summary.candidate_pairs = *candidates;
  auto edges = r.ReadU64();
  if (!edges.ok()) return edges.status();
  summary.total_edges = *edges;
  auto clusters = r.ReadU64();
  if (!clusters.ok()) return clusters.status();
  summary.total_clusters = *clusters;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > max_matches || r.remaining() < static_cast<size_t>(*count) * 12) {
    return Status::OutOfRange("results: declared match count " + std::to_string(*count) +
                              " exceeds payload");
  }
  summary.matches.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    MatchedRecordSummary m;
    m.record = r.ReadU32().value();
    m.cluster_id = r.ReadU32().value();
    m.cluster_size = r.ReadU32().value();
    summary.matches.push_back(m);
  }
  if (!r.exhausted()) return Status::ProtocolViolation("results: trailing bytes");
  return summary;
}

std::vector<uint8_t> EncodeError(const Status& status) {
  WireWriter w;
  w.PutU16(StatusCodeToWire(status.code()));
  std::string msg = status.message();
  if (msg.size() > kMaxErrorLen) msg.resize(kMaxErrorLen);
  w.PutString(msg);
  return w.Take();
}

Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ErrorMessage out;
  auto code = r.ReadU16();
  if (!code.ok()) return code.status();
  out.code = StatusCodeFromWire(*code);
  auto msg = r.ReadString(kMaxErrorLen);
  if (!msg.ok()) return msg.status();
  out.message = std::move(*msg);
  return out;
}

OwnerLinkageSummary SummarizeForOwner(const MultiPartyLinkageResult& result,
                                      uint32_t database_index) {
  OwnerLinkageSummary summary;
  summary.comparisons = result.comparisons;
  summary.candidate_pairs = result.candidate_pairs;
  summary.total_edges = result.edges.size();
  summary.total_clusters = result.clusters.size();
  for (uint32_t c = 0; c < result.clusters.size(); ++c) {
    const Cluster& cluster = result.clusters[c];
    if (cluster.size() < 2) continue;
    for (const RecordRef& ref : cluster) {
      if (ref.database == database_index) {
        summary.matches.push_back({ref.record, c, static_cast<uint32_t>(cluster.size())});
      }
    }
  }
  return summary;
}

}  // namespace pprl
