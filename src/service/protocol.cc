#include "service/protocol.h"

#include <cstring>

#include "net/frame.h"
#include "net/wire.h"

namespace pprl {

namespace {

/// Guard on name strings crossing the wire.
constexpr size_t kMaxNameLen = 256;
/// Guard on error text crossing the wire.
constexpr size_t kMaxErrorLen = 4096;
/// Guard on busy-reason text crossing the wire.
constexpr size_t kMaxReasonLen = 512;

StatusCode StatusCodeFromWire(uint16_t v) {
  switch (v) {
    case 1: return StatusCode::kInvalidArgument;
    case 2: return StatusCode::kOutOfRange;
    case 3: return StatusCode::kNotFound;
    case 4: return StatusCode::kAlreadyExists;
    case 5: return StatusCode::kFailedPrecondition;
    case 6: return StatusCode::kProtocolViolation;
    case 7: return StatusCode::kIoError;
    default: return StatusCode::kInternal;
  }
}

uint16_t StatusCodeToWire(StatusCode code) {
  switch (code) {
    case StatusCode::kInvalidArgument: return 1;
    case StatusCode::kOutOfRange: return 2;
    case StatusCode::kNotFound: return 3;
    case StatusCode::kAlreadyExists: return 4;
    case StatusCode::kFailedPrecondition: return 5;
    case StatusCode::kProtocolViolation: return 6;
    case StatusCode::kIoError: return 7;
    default: return 8;
  }
}

}  // namespace

const char* MessageTypeTag(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kHello: return "hello";
    case MessageType::kHelloAck: return "hello-ack";
    case MessageType::kShipmentChunk: return "encoded-filters";
    case MessageType::kShipmentAck: return "shipment-ack";
    case MessageType::kResults: return "match-results";
    case MessageType::kError: return "protocol-error";
    case MessageType::kResume: return "resume";
    case MessageType::kResumeAck: return "resume-ack";
    case MessageType::kBusy: return "busy";
    case MessageType::kAssignPartition: return "assign-partition";
    case MessageType::kPartitionResult: return "partition-result";
    case MessageType::kAppendRecords: return "append-records";
    case MessageType::kQuery: return "link-query";
    case MessageType::kQueryResult: return "query-result";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeHello(const HelloMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.party);
  w.PutU32(msg.filter_bits);
  w.PutU32(msg.record_count);
  return w.Take();
}

Result<HelloMessage> DecodeHello(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto party = r.ReadString(kMaxNameLen);
  if (!party.ok()) return party.status();
  msg.party = std::move(*party);
  auto bits = r.ReadU32();
  if (!bits.ok()) return bits.status();
  msg.filter_bits = *bits;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  msg.record_count = *count;
  if (!r.exhausted()) return Status::ProtocolViolation("hello: trailing bytes");
  if (msg.party.empty()) return Status::ProtocolViolation("hello: empty party name");
  return msg;
}

std::vector<uint8_t> EncodeHelloAck(const HelloAckMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.server);
  w.PutU32(msg.expected_owners);
  w.PutU64(msg.session_id);
  w.PutU32(msg.max_chunk_bytes);
  return w.Take();
}

Result<HelloAckMessage> DecodeHelloAck(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  HelloAckMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto server = r.ReadString(kMaxNameLen);
  if (!server.ok()) return server.status();
  msg.server = std::move(*server);
  auto expected = r.ReadU32();
  if (!expected.ok()) return expected.status();
  msg.expected_owners = *expected;
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  auto chunk = r.ReadU32();
  if (!chunk.ok()) return chunk.status();
  msg.max_chunk_bytes = *chunk;
  if (!r.exhausted()) return Status::ProtocolViolation("hello-ack: trailing bytes");
  if (msg.session_id == 0) return Status::ProtocolViolation("hello-ack: zero session id");
  if (msg.max_chunk_bytes == 0) {
    return Status::ProtocolViolation("hello-ack: zero max chunk size");
  }
  return msg;
}

std::vector<uint8_t> EncodeShipmentChunk(const ShipmentChunkMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.offset);
  w.PutU8(msg.last ? 1 : 0);
  w.PutU64(ShipmentChunkChecksum(msg.data.data(), msg.data.size()));
  w.PutBytes(msg.data.data(), msg.data.size());
  return w.Take();
}

Result<ShipmentChunkMessage> DecodeShipmentChunk(const std::vector<uint8_t>& payload) {
  if (payload.size() < kShipmentChunkOverheadBytes) {
    return Status::ProtocolViolation("shipment-chunk: payload shorter than header");
  }
  WireReader r(payload);
  ShipmentChunkMessage msg;
  msg.session_id = r.ReadU64().value();
  msg.offset = r.ReadU64().value();
  auto last = r.ReadU8();
  if (*last > 1) return Status::ProtocolViolation("shipment-chunk: bad last flag");
  msg.last = *last == 1;
  msg.checksum = r.ReadU64().value();
  auto data = r.ReadBytes(r.remaining());
  if (!data.ok()) return data.status();
  msg.data = std::move(*data);
  return msg;
}

std::vector<uint8_t> EncodeShipmentAck(const ShipmentAckMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.acked_bytes);
  w.PutU8(msg.complete ? 1 : 0);
  w.PutU32(msg.owners_shipped);
  w.PutU32(msg.expected_owners);
  return w.Take();
}

Result<ShipmentAckMessage> DecodeShipmentAck(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ShipmentAckMessage msg;
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  auto acked = r.ReadU64();
  if (!acked.ok()) return acked.status();
  msg.acked_bytes = *acked;
  auto complete = r.ReadU8();
  if (!complete.ok()) return complete.status();
  if (*complete > 1) return Status::ProtocolViolation("shipment-ack: bad complete flag");
  msg.complete = *complete == 1;
  auto shipped = r.ReadU32();
  if (!shipped.ok()) return shipped.status();
  msg.owners_shipped = *shipped;
  auto expected = r.ReadU32();
  if (!expected.ok()) return expected.status();
  msg.expected_owners = *expected;
  if (!r.exhausted()) return Status::ProtocolViolation("shipment-ack: trailing bytes");
  return msg;
}

std::vector<uint8_t> EncodeResume(const ResumeMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.party);
  w.PutU64(msg.session_id);
  return w.Take();
}

Result<ResumeMessage> DecodeResume(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ResumeMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto party = r.ReadString(kMaxNameLen);
  if (!party.ok()) return party.status();
  msg.party = std::move(*party);
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  if (!r.exhausted()) return Status::ProtocolViolation("resume: trailing bytes");
  if (msg.party.empty()) return Status::ProtocolViolation("resume: empty party name");
  if (msg.session_id == 0) return Status::ProtocolViolation("resume: zero session id");
  return msg;
}

std::vector<uint8_t> EncodeResumeAck(const ResumeAckMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.acked_bytes);
  w.PutU8(msg.shipment_complete ? 1 : 0);
  return w.Take();
}

Result<ResumeAckMessage> DecodeResumeAck(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ResumeAckMessage msg;
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  auto acked = r.ReadU64();
  if (!acked.ok()) return acked.status();
  msg.acked_bytes = *acked;
  auto complete = r.ReadU8();
  if (!complete.ok()) return complete.status();
  if (*complete > 1) return Status::ProtocolViolation("resume-ack: bad complete flag");
  msg.shipment_complete = *complete == 1;
  if (!r.exhausted()) return Status::ProtocolViolation("resume-ack: trailing bytes");
  return msg;
}

std::vector<uint8_t> EncodeBusy(const BusyMessage& msg) {
  WireWriter w;
  w.PutU32(msg.retry_after_ms);
  std::string reason = msg.reason;
  if (reason.size() > kMaxReasonLen) reason.resize(kMaxReasonLen);
  w.PutString(reason);
  return w.Take();
}

Result<BusyMessage> DecodeBusy(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  BusyMessage msg;
  auto retry = r.ReadU32();
  if (!retry.ok()) return retry.status();
  msg.retry_after_ms = *retry;
  auto reason = r.ReadString(kMaxReasonLen);
  if (!reason.ok()) return reason.status();
  msg.reason = std::move(*reason);
  if (!r.exhausted()) return Status::ProtocolViolation("busy: trailing bytes");
  return msg;
}

std::vector<uint8_t> EncodeAssignPartition(const AssignPartitionMessage& msg) {
  WireWriter w;
  w.PutU32(msg.protocol_version);
  w.PutString(msg.coordinator);
  w.PutU32(msg.worker_index);
  w.PutU32(msg.num_workers);
  w.PutU8(msg.scheme);
  w.PutU32(msg.expected_owners);
  uint64_t threshold_bits = 0;
  static_assert(sizeof(threshold_bits) == sizeof(msg.dice_threshold));
  std::memcpy(&threshold_bits, &msg.dice_threshold, sizeof(threshold_bits));
  w.PutU64(threshold_bits);
  w.PutU32(msg.lsh_tables);
  w.PutU32(msg.lsh_bits_per_key);
  w.PutU64(msg.lsh_seed);
  return w.Take();
}

Result<AssignPartitionMessage> DecodeAssignPartition(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  AssignPartitionMessage msg;
  auto version = r.ReadU32();
  if (!version.ok()) return version.status();
  msg.protocol_version = *version;
  auto coordinator = r.ReadString(kMaxNameLen);
  if (!coordinator.ok()) return coordinator.status();
  msg.coordinator = std::move(*coordinator);
  auto worker = r.ReadU32();
  if (!worker.ok()) return worker.status();
  msg.worker_index = *worker;
  auto workers = r.ReadU32();
  if (!workers.ok()) return workers.status();
  msg.num_workers = *workers;
  auto scheme = r.ReadU8();
  if (!scheme.ok()) return scheme.status();
  if (*scheme > 2) {
    return Status::ProtocolViolation("assign-partition: unknown scheme");
  }
  msg.scheme = *scheme;
  auto owners = r.ReadU32();
  if (!owners.ok()) return owners.status();
  msg.expected_owners = *owners;
  auto threshold_bits = r.ReadU64();
  if (!threshold_bits.ok()) return threshold_bits.status();
  std::memcpy(&msg.dice_threshold, &*threshold_bits, sizeof(msg.dice_threshold));
  auto tables = r.ReadU32();
  if (!tables.ok()) return tables.status();
  msg.lsh_tables = *tables;
  auto bits_per_key = r.ReadU32();
  if (!bits_per_key.ok()) return bits_per_key.status();
  msg.lsh_bits_per_key = *bits_per_key;
  auto seed = r.ReadU64();
  if (!seed.ok()) return seed.status();
  msg.lsh_seed = *seed;
  if (!r.exhausted()) {
    return Status::ProtocolViolation("assign-partition: trailing bytes");
  }
  if (msg.coordinator.empty()) {
    return Status::ProtocolViolation("assign-partition: empty coordinator name");
  }
  if (msg.num_workers == 0 || msg.worker_index >= msg.num_workers) {
    return Status::ProtocolViolation(
        "assign-partition: worker index " + std::to_string(msg.worker_index) +
        " outside ring of " + std::to_string(msg.num_workers));
  }
  if (!(msg.dice_threshold > 0.0 && msg.dice_threshold <= 1.0)) {
    return Status::ProtocolViolation("assign-partition: threshold outside (0, 1]");
  }
  return msg;
}

std::vector<uint8_t> EncodePartitionResult(const PartitionResultMessage& msg) {
  WireWriter w;
  w.PutU32(msg.worker_index);
  w.PutU64(msg.comparisons);
  w.PutU64(msg.candidate_pairs);
  w.PutU64(msg.pruned_comparisons);
  w.PutU32(static_cast<uint32_t>(msg.edges.size()));
  for (const MatchEdge& e : msg.edges) {
    w.PutU32(e.x.database);
    w.PutU32(e.x.record);
    w.PutU32(e.y.database);
    w.PutU32(e.y.record);
    uint64_t score_bits = 0;
    std::memcpy(&score_bits, &e.score, sizeof(score_bits));
    w.PutU64(score_bits);
  }
  return w.Take();
}

Result<PartitionResultMessage> DecodePartitionResult(
    const std::vector<uint8_t>& payload, size_t max_edges) {
  WireReader r(payload);
  PartitionResultMessage msg;
  auto worker = r.ReadU32();
  if (!worker.ok()) return worker.status();
  msg.worker_index = *worker;
  auto comparisons = r.ReadU64();
  if (!comparisons.ok()) return comparisons.status();
  msg.comparisons = *comparisons;
  auto candidates = r.ReadU64();
  if (!candidates.ok()) return candidates.status();
  msg.candidate_pairs = *candidates;
  auto pruned = r.ReadU64();
  if (!pruned.ok()) return pruned.status();
  msg.pruned_comparisons = *pruned;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  // 4 x u32 refs + u64 score bits per edge.
  if (*count > max_edges || r.remaining() < static_cast<size_t>(*count) * 24) {
    return Status::OutOfRange("partition-result: declared edge count " +
                              std::to_string(*count) + " exceeds payload");
  }
  msg.edges.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    MatchEdge e;
    e.x.database = r.ReadU32().value();
    e.x.record = r.ReadU32().value();
    e.y.database = r.ReadU32().value();
    e.y.record = r.ReadU32().value();
    const uint64_t score_bits = r.ReadU64().value();
    std::memcpy(&e.score, &score_bits, sizeof(e.score));
    msg.edges.push_back(e);
  }
  if (!r.exhausted()) {
    return Status::ProtocolViolation("partition-result: trailing bytes");
  }
  return msg;
}

uint64_t ShipmentChunkChecksum(const uint8_t* data, size_t len) {
  uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis
  for (size_t i = 0; i < len; ++i) {
    hash ^= data[i];
    hash *= 0x100000001b3ULL;  // FNV-1a 64 prime
  }
  return hash;
}

Result<std::vector<uint8_t>> EncodeShipment(const EncodedDatabase& encoded) {
  if (encoded.ids.size() != encoded.filters.size()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  WireWriter w;
  for (size_t i = 0; i < encoded.size(); ++i) {
    if (encoded.filters[i].size() != encoded.filters[0].size()) {
      return Status::InvalidArgument("shipment filters must share one bit length");
    }
    w.PutU64(encoded.ids[i]);
    const std::vector<uint8_t> bytes = BitVectorToBytes(encoded.filters[i]);
    w.PutBytes(bytes.data(), bytes.size());
  }
  return w.Take();
}

Result<std::vector<uint8_t>> EncodeShipment(const EncodedShard& shard) {
  if (shard.ids.size() != shard.bits.num_rows()) {
    return Status::InvalidArgument("shipment ids/filters size mismatch");
  }
  // Little-endian byte b of a row is byte b%8 of word b/8 — the same
  // layout BitVectorToBytes produces (bits past num_bits are zero by the
  // BitMatrix invariant).
  return EncodeShipmentRows(shard, 0, shard.size());
}

Result<std::vector<uint8_t>> EncodeShipmentRows(const EncodedShard& shard,
                                                size_t row_begin,
                                                size_t row_end) {
  if (row_begin > row_end || row_end > shard.size()) {
    return Status::InvalidArgument("shipment row range out of bounds");
  }
  const size_t filter_bytes = (shard.bits.num_bits() + 7) / 8;
  WireWriter w;
  std::vector<uint8_t> row_bytes(filter_bytes);
  for (size_t i = row_begin; i < row_end; ++i) {
    w.PutU64(shard.ids[i]);
    const uint64_t* row = shard.bits.row(i);
    for (size_t b = 0; b < filter_bytes; ++b) {
      row_bytes[b] = static_cast<uint8_t>(row[b / 8] >> (8 * (b % 8)));
    }
    w.PutBytes(row_bytes.data(), row_bytes.size());
  }
  return w.Take();
}

Result<EncodedDatabase> DecodeShipment(const std::vector<uint8_t>& payload,
                                       uint32_t filter_bits) {
  if (filter_bits == 0) {
    return Status::ProtocolViolation("shipment: filter bit length not negotiated");
  }
  const size_t filter_bytes = (static_cast<size_t>(filter_bits) + 7) / 8;
  const size_t record_size = 8 + filter_bytes;
  if (payload.size() % record_size != 0) {
    return Status::ProtocolViolation(
        "shipment: payload length " + std::to_string(payload.size()) +
        " is not a multiple of the record size " + std::to_string(record_size));
  }
  const size_t count = payload.size() / record_size;
  EncodedDatabase out;
  out.ids.reserve(count);
  out.filters.reserve(count);
  WireReader r(payload);
  for (size_t i = 0; i < count; ++i) {
    auto id = r.ReadU64();
    if (!id.ok()) return id.status();
    auto bytes = r.ReadBytes(filter_bytes);
    if (!bytes.ok()) return bytes.status();
    auto filter = BitVectorFromBytes(*bytes, filter_bits);
    if (!filter.ok()) return filter.status();
    out.ids.push_back(*id);
    out.filters.push_back(std::move(*filter));
  }
  return out;
}

ShipmentAssembler::ShipmentAssembler(uint32_t filter_bits, uint32_t record_count)
    : filter_bits_(filter_bits),
      expected_(static_cast<uint64_t>(record_count) *
                (8 + (static_cast<uint64_t>(filter_bits) + 7) / 8)) {
  buffer_.reserve(expected_);
}

Result<bool> ShipmentAssembler::Apply(const ShipmentChunkMessage& chunk) {
  if (filter_bits_ == 0) {
    return Status::FailedPrecondition("assembler not initialised by a hello");
  }
  // Checksum first: a corrupted chunk must never be mistaken for a
  // duplicate or applied, whatever its claimed offset.
  if (ShipmentChunkChecksum(chunk.data.data(), chunk.data.size()) != chunk.checksum) {
    return Status::IoError("shipment chunk checksum mismatch (corrupted in flight)");
  }
  if (chunk.data.empty() && !chunk.last) {
    return Status::ProtocolViolation("empty non-final shipment chunk");
  }
  if (chunk.offset + chunk.data.size() > expected_) {
    return Status::OutOfRange("shipment chunk extends past the declared shipment size");
  }
  if (chunk.offset + chunk.data.size() <= acked_) {
    // Full duplicate of an already-applied span: the retransmit of a
    // chunk whose ack was lost. Idempotent no-op.
    return false;
  }
  if (chunk.offset > acked_) {
    return Status::ProtocolViolation("shipment chunk leaves a gap before offset " +
                                     std::to_string(chunk.offset));
  }
  if (chunk.offset < acked_) {
    return Status::ProtocolViolation("shipment chunk partially overlaps applied bytes");
  }
  const uint64_t new_acked = chunk.offset + chunk.data.size();
  if (chunk.last != (new_acked == expected_)) {
    return Status::ProtocolViolation("shipment chunk last flag disagrees with size");
  }
  buffer_.insert(buffer_.end(), chunk.data.begin(), chunk.data.end());
  acked_ = new_acked;
  if (acked_ == expected_) complete_ = true;
  return true;
}

Result<EncodedDatabase> ShipmentAssembler::Finish() const {
  if (!complete_) {
    return Status::FailedPrecondition("shipment is not complete");
  }
  return DecodeShipment(buffer_, filter_bits_);
}

void ShipmentAssembler::Discard() {
  std::vector<uint8_t>().swap(buffer_);
}

std::vector<uint8_t> EncodeResults(const OwnerLinkageSummary& summary) {
  WireWriter w;
  w.PutU64(summary.comparisons);
  w.PutU64(summary.candidate_pairs);
  w.PutU64(summary.total_edges);
  w.PutU64(summary.total_clusters);
  w.PutU32(summary.owners_linked);
  w.PutU32(summary.owners_expected);
  w.PutU32(summary.workers_linked);
  w.PutU32(summary.workers_expected);
  w.PutU32(static_cast<uint32_t>(summary.matches.size()));
  for (const MatchedRecordSummary& m : summary.matches) {
    w.PutU32(m.record);
    w.PutU32(m.cluster_id);
    w.PutU32(m.cluster_size);
  }
  return w.Take();
}

Result<OwnerLinkageSummary> DecodeResults(const std::vector<uint8_t>& payload,
                                          size_t max_matches) {
  WireReader r(payload);
  OwnerLinkageSummary summary;
  auto comparisons = r.ReadU64();
  if (!comparisons.ok()) return comparisons.status();
  summary.comparisons = *comparisons;
  auto candidates = r.ReadU64();
  if (!candidates.ok()) return candidates.status();
  summary.candidate_pairs = *candidates;
  auto edges = r.ReadU64();
  if (!edges.ok()) return edges.status();
  summary.total_edges = *edges;
  auto clusters = r.ReadU64();
  if (!clusters.ok()) return clusters.status();
  summary.total_clusters = *clusters;
  auto linked = r.ReadU32();
  if (!linked.ok()) return linked.status();
  summary.owners_linked = *linked;
  auto owners_expected = r.ReadU32();
  if (!owners_expected.ok()) return owners_expected.status();
  summary.owners_expected = *owners_expected;
  auto workers_linked = r.ReadU32();
  if (!workers_linked.ok()) return workers_linked.status();
  summary.workers_linked = *workers_linked;
  auto workers_expected = r.ReadU32();
  if (!workers_expected.ok()) return workers_expected.status();
  summary.workers_expected = *workers_expected;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  if (*count > max_matches || r.remaining() < static_cast<size_t>(*count) * 12) {
    return Status::OutOfRange("results: declared match count " + std::to_string(*count) +
                              " exceeds payload");
  }
  summary.matches.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    MatchedRecordSummary m;
    m.record = r.ReadU32().value();
    m.cluster_id = r.ReadU32().value();
    m.cluster_size = r.ReadU32().value();
    summary.matches.push_back(m);
  }
  if (!r.exhausted()) return Status::ProtocolViolation("results: trailing bytes");
  return summary;
}

namespace {

/// Guard on declared record counts in online batches (a 1M-record batch of
/// 1000-bit filters is ~133 MB, already past the default frame cap).
constexpr uint32_t kMaxBatchRecords = 16u << 20;

/// Shared layout check of the online batch messages: `data` must hold
/// exactly `count` records of (u64 id + ceil(filter_bits/8) bytes).
Status CheckBatchLayout(const char* what, uint32_t filter_bits, uint32_t count,
                        size_t data_len) {
  if (filter_bits == 0) {
    return Status::ProtocolViolation(std::string(what) +
                                     ": filter bit length missing");
  }
  if (count > kMaxBatchRecords) {
    return Status::OutOfRange(std::string(what) + ": declared record count " +
                              std::to_string(count) + " exceeds limit");
  }
  const size_t record_size = 8 + (static_cast<size_t>(filter_bits) + 7) / 8;
  if (data_len != static_cast<size_t>(count) * record_size) {
    return Status::ProtocolViolation(
        std::string(what) + ": data length " + std::to_string(data_len) +
        " does not match " + std::to_string(count) + " records of " +
        std::to_string(record_size) + " bytes");
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeAppendRecords(const AppendRecordsMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.base_index);
  w.PutU32(msg.filter_bits);
  w.PutU32(msg.count);
  w.PutBytes(msg.data.data(), msg.data.size());
  return w.Take();
}

Result<AppendRecordsMessage> DecodeAppendRecords(
    const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  AppendRecordsMessage msg;
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  auto base = r.ReadU64();
  if (!base.ok()) return base.status();
  msg.base_index = *base;
  auto bits = r.ReadU32();
  if (!bits.ok()) return bits.status();
  msg.filter_bits = *bits;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  msg.count = *count;
  Status layout = CheckBatchLayout("append-records", msg.filter_bits,
                                   msg.count, r.remaining());
  if (!layout.ok()) return layout;
  auto data = r.ReadBytes(r.remaining());
  if (!data.ok()) return data.status();
  msg.data = std::move(*data);
  return msg;
}

std::vector<uint8_t> EncodeQuery(const QueryMessage& msg) {
  WireWriter w;
  w.PutU64(msg.session_id);
  w.PutU64(msg.query_id);
  w.PutU8(msg.want_clusters ? 1 : 0);
  w.PutU32(msg.top_k);
  w.PutU32(msg.filter_bits);
  w.PutU32(msg.count);
  w.PutBytes(msg.data.data(), msg.data.size());
  return w.Take();
}

Result<QueryMessage> DecodeQuery(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  QueryMessage msg;
  auto session = r.ReadU64();
  if (!session.ok()) return session.status();
  msg.session_id = *session;
  auto query = r.ReadU64();
  if (!query.ok()) return query.status();
  msg.query_id = *query;
  auto want = r.ReadU8();
  if (!want.ok()) return want.status();
  msg.want_clusters = *want != 0;
  auto top_k = r.ReadU32();
  if (!top_k.ok()) return top_k.status();
  msg.top_k = *top_k;
  auto bits = r.ReadU32();
  if (!bits.ok()) return bits.status();
  msg.filter_bits = *bits;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  msg.count = *count;
  Status layout =
      CheckBatchLayout("link-query", msg.filter_bits, msg.count, r.remaining());
  if (!layout.ok()) return layout;
  auto data = r.ReadBytes(r.remaining());
  if (!data.ok()) return data.status();
  msg.data = std::move(*data);
  return msg;
}

std::vector<uint8_t> EncodeQueryResult(const QueryResultMessage& msg) {
  WireWriter w;
  w.PutU64(msg.query_id);
  w.PutU64(msg.index_size);
  w.PutU32(static_cast<uint32_t>(msg.records.size()));
  for (const QueryRecordResult& rec : msg.records) {
    w.PutU64(rec.id);
    w.PutU32(rec.cluster_id);
    w.PutU32(rec.cluster_size);
    w.PutU32(rec.candidates);
    w.PutU32(static_cast<uint32_t>(rec.matches.size()));
    for (const QueryMatch& m : rec.matches) {
      w.PutU32(m.database);
      w.PutU32(m.record);
      w.PutU64(m.id);
      uint64_t score_bits = 0;
      std::memcpy(&score_bits, &m.score, sizeof(score_bits));
      w.PutU64(score_bits);
    }
  }
  return w.Take();
}

Result<QueryResultMessage> DecodeQueryResult(const std::vector<uint8_t>& payload,
                                             size_t max_matches) {
  WireReader r(payload);
  QueryResultMessage msg;
  auto query = r.ReadU64();
  if (!query.ok()) return query.status();
  msg.query_id = *query;
  auto index_size = r.ReadU64();
  if (!index_size.ok()) return index_size.status();
  msg.index_size = *index_size;
  auto count = r.ReadU32();
  if (!count.ok()) return count.status();
  // u64 id + 4 x u32 per record, before its matches.
  if (*count > max_matches || r.remaining() < static_cast<size_t>(*count) * 24) {
    return Status::OutOfRange("query-result: declared record count " +
                              std::to_string(*count) + " exceeds payload");
  }
  msg.records.reserve(*count);
  for (uint32_t i = 0; i < *count; ++i) {
    QueryRecordResult rec;
    auto id = r.ReadU64();
    if (!id.ok()) return id.status();
    rec.id = *id;
    auto cluster_id = r.ReadU32();
    if (!cluster_id.ok()) return cluster_id.status();
    rec.cluster_id = *cluster_id;
    auto cluster_size = r.ReadU32();
    if (!cluster_size.ok()) return cluster_size.status();
    rec.cluster_size = *cluster_size;
    auto candidates = r.ReadU32();
    if (!candidates.ok()) return candidates.status();
    rec.candidates = *candidates;
    auto match_count = r.ReadU32();
    if (!match_count.ok()) return match_count.status();
    // u32 db + u32 record + u64 id + u64 score bits per match.
    if (*match_count > max_matches ||
        r.remaining() < static_cast<size_t>(*match_count) * 24) {
      return Status::OutOfRange("query-result: declared match count " +
                                std::to_string(*match_count) +
                                " exceeds payload");
    }
    rec.matches.reserve(*match_count);
    for (uint32_t j = 0; j < *match_count; ++j) {
      QueryMatch m;
      m.database = r.ReadU32().value();
      m.record = r.ReadU32().value();
      m.id = r.ReadU64().value();
      const uint64_t score_bits = r.ReadU64().value();
      std::memcpy(&m.score, &score_bits, sizeof(m.score));
      rec.matches.push_back(m);
    }
    msg.records.push_back(std::move(rec));
  }
  if (!r.exhausted()) {
    return Status::ProtocolViolation("query-result: trailing bytes");
  }
  return msg;
}

std::vector<uint8_t> EncodeError(const Status& status) {
  WireWriter w;
  w.PutU16(StatusCodeToWire(status.code()));
  std::string msg = status.message();
  if (msg.size() > kMaxErrorLen) msg.resize(kMaxErrorLen);
  w.PutString(msg);
  return w.Take();
}

Result<ErrorMessage> DecodeError(const std::vector<uint8_t>& payload) {
  WireReader r(payload);
  ErrorMessage out;
  auto code = r.ReadU16();
  if (!code.ok()) return code.status();
  out.code = StatusCodeFromWire(*code);
  auto msg = r.ReadString(kMaxErrorLen);
  if (!msg.ok()) return msg.status();
  out.message = std::move(*msg);
  return out;
}

OwnerLinkageSummary SummarizeForOwner(const MultiPartyLinkageResult& result,
                                      uint32_t database_index) {
  OwnerLinkageSummary summary;
  summary.comparisons = result.comparisons;
  summary.candidate_pairs = result.candidate_pairs;
  summary.total_edges = result.edges.size();
  summary.total_clusters = result.clusters.size();
  for (uint32_t c = 0; c < result.clusters.size(); ++c) {
    const Cluster& cluster = result.clusters[c];
    if (cluster.size() < 2) continue;
    for (const RecordRef& ref : cluster) {
      if (ref.database == database_index) {
        summary.matches.push_back({ref.record, c, static_cast<uint32_t>(cluster.size())});
      }
    }
  }
  return summary;
}

}  // namespace pprl
